"""Unit tests for the discrete-event kernel: events, processes, time."""

import pytest

from repro.sim import Simulator, Event, Timeout, AllOf, AnyOf, Interrupted
from repro.sim.core import EmptySchedule, UnhandledProcessError
from repro.sim.events import SimulationError


def test_timeout_advances_time(sim):
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(0.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.5, 2.0]


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_carries_value(sim):
    out = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        out.append(v)

    sim.process(proc())
    sim.run()
    assert out == ["hello"]


def test_event_succeed_wakes_waiter_with_value(sim):
    ev = sim.event()
    out = []

    def waiter():
        v = yield ev
        out.append((sim.now, v))

    def firer():
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert out == [(3.0, 42)]


def test_event_double_trigger_rejected(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_throws_into_process(sim):
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    sim.process(waiter())
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance(sim):
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_return_value_propagates(sim):
    def inner():
        yield sim.timeout(1)
        return 99

    def outer():
        v = yield sim.process(inner())
        return v + 1

    p = sim.process(outer())
    sim.run()
    assert p.value == 100


def test_yield_from_composes_generators(sim):
    def sub():
        yield sim.timeout(1)
        return "sub"

    def main():
        v = yield from sub()
        return v + "-main"

    p = sim.process(main())
    sim.run()
    assert p.value == "sub-main"


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("kaput")

    sim.process(bad())
    with pytest.raises(UnhandledProcessError):
        sim.run()


def test_waited_on_failure_is_rethrown_not_crashed(sim):
    def bad():
        yield sim.timeout(1)
        raise ValueError("kaput")

    caught = []

    def watcher():
        try:
            yield sim.process(bad())
        except ValueError:
            caught.append(True)

    sim.process(watcher())
    sim.run()
    assert caught == [True]


def test_yielding_non_event_is_an_error(sim):
    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(UnhandledProcessError):
        sim.run()


def test_deterministic_fifo_order_at_same_time(sim):
    order = []

    def proc(i):
        yield sim.timeout(1.0)
        order.append(i)

    for i in range(10):
        sim.process(proc(i))
    sim.run()
    assert order == list(range(10))


def test_run_until_limits_time(sim):
    log = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1)
            log.append(sim.now)

    sim.process(proc())
    sim.run(until=4.5)
    assert log == [1, 2, 3, 4]
    assert sim.now == 4.5


def test_run_until_in_past_rejected(sim):
    def proc():
        yield sim.timeout(10)

    sim.process(proc())
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=5)


def test_step_on_empty_schedule_raises(sim):
    with pytest.raises(EmptySchedule):
        sim.step()


def test_run_until_complete_returns_value(sim):
    def proc():
        yield sim.timeout(2)
        return "done"

    p = sim.process(proc())
    assert sim.run_until_complete(p) == "done"


def test_run_until_complete_detects_deadlock(sim):
    ev = sim.event()  # never fires

    def proc():
        yield ev

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_run_until_complete_time_limit(sim):
    def proc():
        yield sim.timeout(100)

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(p, limit=10)


def test_allof_gathers_values(sim):
    def proc(i):
        yield sim.timeout(i)
        return i * 10

    procs = [sim.process(proc(i)) for i in range(1, 4)]

    out = []

    def waiter():
        values = yield AllOf(sim, procs)
        out.append(values)

    sim.process(waiter())
    sim.run()
    assert out == [{0: 10, 1: 20, 2: 30}]
    assert sim.now == 3


def test_anyof_fires_on_first(sim):
    slow = sim.timeout(10, value="slow")
    fast = sim.timeout(1, value="fast")
    out = []

    def waiter():
        got = yield AnyOf(sim, [slow, fast])
        out.append((sim.now, got))

    sim.process(waiter())
    sim.run()
    assert out[0][0] == 1
    assert out[0][1] == {1: "fast"}


def test_allof_empty_fires_immediately(sim):
    out = []

    def waiter():
        v = yield AllOf(sim, [])
        out.append(v)

    sim.process(waiter())
    sim.run()
    assert out == [{}]


def test_interrupt_throws_interrupted(sim):
    caught = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupted as e:
            caught.append((sim.now, e.cause))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(5)
        p.interrupt("wakeup")

    sim.process(interrupter())
    sim.run()
    assert caught == [(5, "wakeup")]


def test_events_processed_counter(sim):
    def proc():
        yield sim.timeout(1)
        yield sim.timeout(1)

    sim.process(proc())
    sim.run()
    assert sim.events_processed >= 3  # init + 2 timeouts
