"""Unit tests for resources, stores, and pthread-style sync primitives."""

import pytest

from repro.sim import (
    Simulator,
    Resource,
    Store,
    Mutex,
    ConditionVar,
    SimBarrier,
    Semaphore,
    Latch,
)
from repro.sim.events import SimulationError


# ---------------------------------------------------------------- Resource
def test_resource_capacity_limits_concurrency(sim):
    res = Resource(sim, capacity=2)
    active = []
    peak = []

    def worker(i):
        yield from res.execute(1.0)
        peak.append(sim.now)

    for i in range(4):
        sim.process(worker(i))
    sim.run()
    # 4 jobs of 1s on 2 slots -> finish at 1,1,2,2
    assert sorted(peak) == [1.0, 1.0, 2.0, 2.0]


def test_resource_fifo_grant_order(sim):
    res = Resource(sim, capacity=1)
    order = []

    def worker(i):
        req = res.request()
        yield req
        order.append(i)
        yield sim.timeout(1)
        res.release(req)

    for i in range(5):
        sim.process(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_priority_beats_fifo(sim):
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(5)
        res.release(req)

    def worker(i, prio):
        yield sim.timeout(1)  # queue up while held
        req = res.request(priority=prio)
        yield req
        order.append(i)
        res.release(req)

    sim.process(holder())
    sim.process(worker("low", 5))
    sim.process(worker("high", -5))
    sim.run()
    assert order == ["high", "low"]


def test_resource_release_of_unheld_raises(sim):
    res = Resource(sim, capacity=1)
    req = res.request()

    def proc():
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    sim.process(proc())
    sim.run()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_utilization_accounting(sim):
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.execute(2.0)
        yield sim.timeout(2.0)

    sim.process(worker())
    sim.run()
    assert res.total_busy_time == pytest.approx(2.0)
    assert res.utilization_until_now == pytest.approx(0.5)


def test_resource_cancel_queued_request(sim):
    res = Resource(sim, capacity=1)
    granted = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(2)
        res.release(req)

    def canceller():
        yield sim.timeout(0.5)
        req = res.request()
        res.cancel(req)
        granted.append(req.triggered)

    sim.process(holder())
    sim.process(canceller())
    sim.run()
    assert granted == [False]


# ---------------------------------------------------------------- Store
def test_store_fifo_order(sim):
    box = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            v = yield box.get()
            got.append(v)

    def producer():
        for i in range(3):
            yield sim.timeout(1)
            box.put(i)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_before_put_blocks(sim):
    box = Store(sim)
    out = []

    def consumer():
        v = yield box.get()
        out.append((sim.now, v))

    sim.process(consumer())

    def producer():
        yield sim.timeout(7)
        box.put("x")

    sim.process(producer())
    sim.run()
    assert out == [(7, "x")]


def test_store_get_filtered(sim):
    box = Store(sim)
    box.put(("a", 1))
    box.put(("b", 2))
    box.put(("a", 3))
    assert box.get_filtered(lambda m: m[0] == "b") == ("b", 2)
    assert box.get_filtered(lambda m: m[0] == "z") is None
    assert len(box) == 2


# ---------------------------------------------------------------- Mutex
def test_mutex_mutual_exclusion(sim):
    mtx = Mutex(sim)
    inside = [0]
    max_inside = [0]

    def worker():
        yield from mtx.acquire()
        inside[0] += 1
        max_inside[0] = max(max_inside[0], inside[0])
        yield sim.timeout(1)
        inside[0] -= 1
        mtx.release()

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert max_inside[0] == 1
    assert mtx.n_acquisitions == 4
    assert mtx.n_contended == 3


def test_mutex_release_unheld_raises(sim):
    mtx = Mutex(sim)
    with pytest.raises(SimulationError):
        mtx.release()


# ---------------------------------------------------------------- ConditionVar
def test_condition_var_wait_notify(sim):
    mtx = Mutex(sim)
    cond = ConditionVar(sim, mtx)
    state = {"ready": False}
    out = []

    def waiter():
        yield from mtx.acquire()
        while not state["ready"]:
            yield from cond.wait()
        out.append(sim.now)
        mtx.release()

    def notifier():
        yield sim.timeout(5)
        yield from mtx.acquire()
        state["ready"] = True
        cond.notify_all()
        mtx.release()

    sim.process(waiter())
    sim.process(notifier())
    sim.run()
    assert out == [5]


def test_condition_var_notify_one_wakes_one(sim):
    mtx = Mutex(sim)
    cond = ConditionVar(sim, mtx)
    woken = []

    def waiter(i):
        yield from mtx.acquire()
        yield from cond.wait()
        woken.append(i)
        mtx.release()

    for i in range(3):
        sim.process(waiter(i))

    def notifier():
        yield sim.timeout(1)
        cond.notify()

    sim.process(notifier())
    sim.run()
    assert woken == [0]
    assert cond.n_waiting == 2


# ---------------------------------------------------------------- SimBarrier
def test_barrier_releases_all_at_last_arrival(sim):
    bar = SimBarrier(sim, 3)
    out = []

    def worker(i):
        yield sim.timeout(i)
        yield from bar.arrive()
        out.append((i, sim.now))

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert all(t == 2 for _, t in out)
    assert bar.n_cycles == 1


def test_barrier_is_reusable(sim):
    bar = SimBarrier(sim, 2)
    times = []

    def worker(delay):
        for k in range(3):
            yield sim.timeout(delay)
            yield from bar.arrive()
            if delay == 2:
                times.append(sim.now)

    sim.process(worker(1))
    sim.process(worker(2))
    sim.run()
    assert times == [2, 4, 6]
    assert bar.n_cycles == 3


def test_barrier_invalid_count(sim):
    with pytest.raises(ValueError):
        SimBarrier(sim, 0)


# ---------------------------------------------------------------- Semaphore
def test_semaphore_counts(sim):
    sem = Semaphore(sim, value=1)
    order = []

    def worker(i):
        yield from sem.wait()
        order.append(("in", i, sim.now))
        yield sim.timeout(1)
        sem.post()

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert [t for _, _, t in order] == [0, 1, 2]


def test_semaphore_negative_init():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, value=-1)


# ---------------------------------------------------------------- Latch
def test_latch_opens_at_zero(sim):
    latch = Latch(sim, 2)
    out = []

    def waiter():
        yield latch.wait()
        out.append(sim.now)

    def counter():
        yield sim.timeout(1)
        latch.count_down()
        yield sim.timeout(1)
        latch.count_down()

    sim.process(waiter())
    sim.process(counter())
    sim.run()
    assert out == [2]
    assert latch.open


def test_latch_overcount_raises(sim):
    latch = Latch(sim, 1)
    latch.count_down()
    with pytest.raises(SimulationError):
        latch.count_down()


def test_latch_zero_is_open_immediately(sim):
    latch = Latch(sim, 0)
    assert latch.open
