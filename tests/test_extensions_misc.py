"""Tests for the O1 locality diagnostic, autotuning, and the dynamic
schedule codegen — the three §8 future-work items implemented here."""

import pytest

from repro.translator import translate
from repro.translator.guidelines import lint
from repro.bench.autotune import find_best_config
from repro.apps import ep


# ------------------------------------------------------------- O1
def test_o1_partitioned_array_reported():
    src = """
    void f(void) {
        int i; double a[1000]; double b[1000];
        #pragma omp parallel shared(a, b) private(i)
        {
            #pragma omp for
            for (i = 0; i < 1000; i++) {
                a[i] = b[i] * 2.0;
            }
        }
    }
    """
    o1 = [d for d in lint(src) if d.rule == "O1"]
    names = {d.message.split("'")[1] for d in o1}
    assert names == {"a", "b"}


def test_o1_not_reported_for_neighbour_access():
    src = """
    void f(void) {
        int i; double a[1000]; double b[1000];
        #pragma omp parallel shared(a, b) private(i)
        {
            #pragma omp for
            for (i = 1; i < 999; i++) {
                a[i] = b[i - 1] + b[i + 1];
            }
        }
    }
    """
    o1 = [d for d in lint(src) if d.rule == "O1"]
    names = {d.message.split("'")[1] for d in o1}
    assert "b" not in names  # halo access: NOT partitioned
    assert "a" in names


# ------------------------------------------------------------- dynamic codegen
def test_schedule_dynamic_emits_dispenser_loop():
    src = """
    void f(void) {
        int i; double a[100];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for schedule(dynamic, 4)
            for (i = 0; i < 100; i++) a[i] = i;
        }
    }
    """
    out = translate(src, "parade")
    assert "parade_dynloop_init" in out
    assert "PARADE_SCHED_DYNAMIC" in out
    assert "parade_loop_static" not in out


def test_schedule_guided_emits_guided_mode():
    src = """
    void f(void) {
        int i; double a[100];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for schedule(guided)
            for (i = 0; i < 100; i++) a[i] = i;
        }
    }
    """
    assert "PARADE_SCHED_GUIDED" in translate(src, "parade")


def test_schedule_dynamic_sdsm_uses_lock_counter():
    src = """
    void f(void) {
        int i; double a[100];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for schedule(dynamic, 4)
            for (i = 0; i < 100; i++) a[i] = i;
        }
    }
    """
    out = translate(src, "sdsm")
    assert "__km_loop_next_" in out
    assert "km_lock(" in out


def test_schedule_static_chunk_still_static():
    src = """
    void f(void) {
        int i; double a[100];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for schedule(static, 8)
            for (i = 0; i < 100; i++) a[i] = i;
        }
    }
    """
    out = translate(src, "parade")
    assert "parade_loop_static" in out
    assert "parade_dynloop_init" not in out


# ------------------------------------------------------------- autotune
def test_autotune_finds_sensible_config_for_ep():
    result = find_best_config(
        lambda: ep.make_program("T"),
        nodes=(1, 2, 4),
        pool_bytes=1 << 20,
    )
    # EP scales: best point uses the most parallelism swept
    assert result.best.n_nodes == 4
    assert result.best.exec_config.threads_per_node == 2
    assert len(result.points) == 9
    assert "best" in result.table()


def test_autotune_prefers_fewer_nodes_for_tiny_comm_bound_work():
    from repro.mpi.ops import SUM

    def factory():
        def program(ctx):
            x = ctx.shared_scalar("x")

            def body(tc, x):
                # almost no compute, lots of synchronisation
                for _ in range(5):
                    yield from tc.critical_update(x, 1.0, SUM)
                    yield from tc.barrier()

            yield from ctx.parallel(body, x)

        return program

    result = find_best_config(factory, nodes=(1, 4), pool_bytes=1 << 20)
    assert result.best.n_nodes == 1  # "more processors do not always help"
