"""Smoke tests for the wall-clock perf harness (``repro.bench.perf``).

Runs the *smoke* basket (tiny workloads) end to end so a regression in
the harness itself — a workload factory drifting out of sync with an app
signature, a broken schema, a non-deterministic measurement — fails
tier-1, without the full basket's runtime.
"""

import json

from repro.bench import perf


def test_smoke_basket_runs_and_reports(tmp_path):
    out = tmp_path / "bench.json"
    rc = perf.main(["--smoke", "--baseline", "--repeat", "1", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == perf.SCHEMA
    results = report["baseline"]["results"]
    assert set(results) == {"helmholtz", "cg", "ep", "md"}
    for name, rec in results.items():
        assert rec["events"] > 0, name
        assert rec["wall_s"] > 0, name
        assert rec["virtual_s"] > 0, name
        assert rec["events_per_s"] > 0, name


def test_current_section_computes_speedup(tmp_path):
    out = tmp_path / "bench.json"
    assert perf.main(["--smoke", "--baseline", "--repeat", "1", "--out", str(out)]) == 0
    assert perf.main(["--smoke", "--repeat", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert "baseline" in report and "current" in report
    # identical code measured twice: events must match exactly (virtual
    # results are run invariants), speedup is host noise around 1.0
    for name, cur in report["current"]["results"].items():
        assert cur["events"] == report["baseline"]["results"][name]["events"]
    agg = report["speedup"]["aggregate_events_per_s"]
    assert 0.2 < agg < 5.0


def test_measure_workload_is_deterministic_across_repeats():
    spec = perf._smoke_basket()["helmholtz"]
    rec = perf.measure_workload(spec, n_nodes=2, repeat=2)  # asserts internally
    assert rec["events"] > 0


def test_unprofiled_run_pays_no_profiler_overhead():
    """The profiler hooks are all guarded by ``sim.prof is None`` checks,
    so a run without a profiler attached must not be slower than a
    profiled one (best-of-3 each; generous margin for host noise).  This
    is the wall-clock face of the zero-cost-when-detached contract the
    trace recorder already honours."""
    import time

    from repro.apps import cg
    from repro.profile import Profiler
    from repro.runtime import ParadeRuntime

    def best_of(n, profiled):
        best = float("inf")
        for _ in range(n):
            rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 21)
            if profiled:
                Profiler(rt.sim, record_intervals=False)
            else:
                assert rt.sim.prof is None
            t0 = time.perf_counter()
            rt.run(cg.make_program("T", niter=1))
            best = min(best, time.perf_counter() - t0)
        return best

    plain = best_of(3, profiled=False)
    profiled = best_of(3, profiled=True)
    assert plain <= profiled * 1.5, (
        f"unprofiled run ({plain:.3f}s) slower than profiled ({profiled:.3f}s): "
        "a profiler hook is doing work while detached"
    )


def test_phase_breakdown_recorded_and_deterministic():
    spec = perf._smoke_basket()["cg"]
    rec = perf.measure_workload(spec, n_nodes=2, repeat=1)
    ph = rec["phases"]
    assert ph and abs(sum(ph.values()) - 1.0) < 1e-2
    assert perf.phase_breakdown(spec, n_nodes=2) == ph


def test_compute_speedup_math():
    base = {"a": {"wall_s": 2.0, "events": 100, "events_per_s": 50.0}}
    cur = {"a": {"wall_s": 1.0, "events": 100, "events_per_s": 100.0}}
    out = perf.compute_speedup(base, cur)
    assert out["per_workload"]["a"] == 2.0
    assert out["aggregate_events_per_s"] == 2.0
