"""Tests for :mod:`repro.sanitizer`: vector clocks, the shadow-memory
race detector, live invariant checks, seeded-racy negatives, and clean
runs of the real apps."""

import numpy as np
import pytest

from repro.apps.racy import racy_programs
from repro.dsm.states import PageState
from repro.runtime import ALL_EXEC_CONFIGS, ParadeRuntime
from repro.sanitizer import Sanitizer, ordered_before, vc_copy, vc_join
from repro.sim import Simulator


def _exec(name):
    return next(ec for ec in ALL_EXEC_CONFIGS if ec.name == name)


def _run_sanitized(program, n_nodes=2, mode="parade", exec_name="2Thread-2CPU",
                   pool_bytes=1 << 20):
    rt = ParadeRuntime(n_nodes=n_nodes, exec_config=_exec(exec_name), mode=mode,
                       pool_bytes=pool_bytes, sanitize=True)
    rt.run(program)
    return rt.sanitizer


# ------------------------------------------------------------ clocks
def test_vector_clock_helpers():
    a = {"t0": 3, "t1": 1}
    b = {"t1": 5, "t2": 2}
    vc_join(a, b)
    assert a == {"t0": 3, "t1": 5, "t2": 2}
    c = vc_copy(a)
    c["t0"] = 99
    assert a["t0"] == 3
    assert ordered_before("t1", 5, a)
    assert not ordered_before("t1", 6, a)
    assert not ordered_before("unknown", 1, a)
    assert ordered_before("unknown", 0, a)


# ------------------------------------------------------------ attach
def test_attach_detach_contract():
    sim = Simulator()
    assert sim.san is None
    san = Sanitizer(sim, n_nodes=2, page_size=4096)
    assert sim.san is san
    san.detach()
    assert sim.san is None
    # detaching twice (or after replacement) is harmless
    san.detach()


# ------------------------------------------------------------ shadow memory
def test_unordered_overlapping_writes_race():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)

    def t(label):
        def gen():
            yield sim.timeout(1e-6)
            san.on_access(0, 0, 8, True, f"x[{label}]")
        return sim.process(gen(), label=label)

    t("a")
    t("b")
    sim.run()
    assert len(san.races) == 1
    msg = san.races[0].message
    assert "x[a]" in msg and "x[b]" in msg  # both sites named
    assert "write" in msg


def test_disjoint_bytes_on_one_page_do_not_race():
    """False sharing is not a false positive: byte ranges are exact."""
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)

    def t(label, off):
        def gen():
            yield sim.timeout(1e-6)
            san.on_access(0, off, 8, True, label)
        return sim.process(gen(), label=label)

    t("a", 0)
    t("b", 64)
    sim.run()
    assert san.ok, san.format_report()


def test_read_read_never_races():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)

    def t(label):
        def gen():
            yield sim.timeout(1e-6)
            san.on_access(0, 0, 8, False, label)
        return sim.process(gen(), label=label)

    t("a")
    t("b")
    sim.run()
    assert san.ok


def test_lock_edge_orders_accesses():
    """Release -> acquire publishes the releasing thread's clock."""
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)

    def first():
        yield sim.timeout(1e-6)
        san.on_access(0, 0, 8, True, "x")
        san.on_lock_release("L")

    def second():
        yield sim.timeout(2e-6)
        san.on_lock_acquire("L")
        san.on_access(1, 0, 8, True, "x")

    sim.process(first(), label="p1")
    sim.process(second(), label="p2")
    sim.run()
    assert san.ok, san.format_report()


def test_message_edge_orders_accesses():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)

    def sender():
        yield sim.timeout(1e-6)
        san.on_access(0, 0, 8, True, "x")
        san.on_msg_send(("ch", 0, 1))

    def receiver():
        yield sim.timeout(2e-6)
        san.on_msg_recv(("ch", 0, 1))
        san.on_access(1, 0, 8, False, "x")

    sim.process(sender(), label="s")
    sim.process(receiver(), label="r")
    sim.run()
    assert san.ok, san.format_report()


def test_shadow_record_eviction_cap():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=1, page_size=4096, max_records_per_page=4)

    def gen():
        yield sim.timeout(1e-6)
        for i in range(10):
            # stride 16 leaves gaps so the same-thread merge can't fuse
            # the records; alternating mode would work too
            san.on_access(0, i * 16, 8, False, f"r{i}")

    sim.process(gen(), label="p")
    sim.run()
    assert san.records_evicted == 6
    assert len(san._shadow[0]) == 4


def test_same_thread_ranges_merge_in_place():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=1, page_size=4096)

    def gen():
        yield sim.timeout(1e-6)
        san.on_access(0, 0, 8, True, "x")
        san.on_access(0, 8, 8, True, "x")  # adjacent, same mode/epoch

    sim.process(gen(), label="p")
    sim.run()
    assert len(san._shadow[0]) == 1
    assert san._shadow[0][0][:2] == [0, 16]


# ------------------------------------------------------------ invariants
def test_illegal_transition_flagged_live():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)
    san.on_page_state(0, 3, PageState.INVALID, PageState.DIRTY, "write-fault")
    kinds = [f.kind for f in san.violations]
    assert "illegal-transition" in kinds


def test_broken_chain_flagged():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)
    san.on_page_state(0, 3, PageState.INVALID, PageState.TRANSIENT, "fault")
    san.on_page_state(0, 3, PageState.READ_ONLY, PageState.DIRTY, "write-fault")
    assert any(f.kind == "broken-chain" for f in san.violations)


def test_cursor_regression_flagged():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)
    san.on_lock_grant(0, 1, 2, start=0, end=4, log_len=6)
    assert san.ok
    san.on_lock_grant(0, 1, 2, start=2, end=3, log_len=6)  # moved back
    assert any(f.kind == "cursor-regression" for f in san.violations)


def test_cursor_beyond_log_flagged():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)
    san.on_lock_grant(0, 1, 2, start=0, end=9, log_len=6)
    assert any(f.kind == "cursor-regression" for f in san.violations)


def test_barrier_epoch_violations():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)
    san.on_barrier_arrive(0, 0)
    san.on_barrier_arrive(0, 0)  # duplicate arrival
    assert any(f.kind == "epoch-membership" for f in san.violations)
    san2 = Sanitizer(sim, n_nodes=2, page_size=4096)
    san2.on_barrier_arrive(0, 1)  # first epoch must be 0
    assert any(f.kind == "epoch-order" for f in san2.violations)


def test_barrier_completion_resets_shadow():
    sim = Simulator()
    san = Sanitizer(sim, n_nodes=2, page_size=4096)

    def gen():
        yield sim.timeout(1e-6)
        san.on_access(0, 0, 8, True, "x")
        san.on_barrier_arrive(0, 0)
        san.on_barrier_arrive(1, 0)  # epoch complete: everyone blocked

    sim.process(gen(), label="p")
    sim.run()
    assert san._shadow == {}
    assert san.barrier_resets == 1


# ------------------------------------------------------------ racy negatives
@pytest.mark.parametrize("name", sorted(racy_programs()))
def test_racy_programs_flagged_with_both_sites(name):
    entry = racy_programs()[name]
    san = _run_sanitized(entry["factory"](), pool_bytes=entry["pool_bytes"])
    assert san.races, f"{name}: expected a data race, report clean"
    msg = san.races[0].message
    assert "races with earlier" in msg
    # both access sites name the shared array
    assert msg.count("racy_") >= 2, msg


def test_racy_ww_flagged_in_sdsm_mode_too():
    entry = racy_programs()["racy-nobar"]
    san = _run_sanitized(entry["factory"](), mode="sdsm",
                         pool_bytes=entry["pool_bytes"])
    assert san.races


# ------------------------------------------------------------ clean runs
def _clean_program(n=64):
    def program(ctx):
        a = ctx.shared_array("clean", (n,))

        def body(tc, arr):
            av = tc.array(arr)
            lo, hi = tc.for_range(0, n)
            yield from av.set(np.full(hi - lo, float(tc.tid + 1)), start=lo)
            yield from tc.barrier()
            vals = yield from av.get()
            total = yield from tc.reduce_value(float(vals.sum()))
            return total

        results = yield from ctx.parallel(body, a)
        return results

    return program


@pytest.mark.parametrize("exec_name", [ec.name for ec in ALL_EXEC_CONFIGS])
@pytest.mark.parametrize("mode", ["parade", "sdsm"])
def test_clean_program_no_findings(mode, exec_name):
    san = _run_sanitized(_clean_program(), mode=mode, exec_name=exec_name)
    assert san.ok, san.format_report()
    assert san.accesses_checked > 0
    assert san.barrier_resets > 0


def test_helmholtz_clean_under_sanitizer():
    from repro.apps import helmholtz

    san = _run_sanitized(helmholtz.make_program(n=24, m=24, max_iters=2),
                         n_nodes=2, pool_bytes=1 << 20)
    assert san.ok, san.format_report()


def test_sanitizer_disabled_by_default():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)
    assert rt.sanitizer is None
    assert rt.sim.san is None
