"""Trace JSONL round-trip and ``python -m repro.trace diff`` tests."""

from __future__ import annotations

from repro.apps import helmholtz
from repro.runtime import ParadeRuntime
from repro.trace import TraceRecorder
from repro.trace.diff import diff_traces, main_diff
from repro.trace.export import read_jsonl, write_jsonl
from repro.trace.events import TraceEvent


def _record(mode="parade"):
    rt = ParadeRuntime(n_nodes=2, mode=mode, pool_bytes=1 << 20)
    rec = TraceRecorder(rt.sim, capacity=1 << 16)
    rt.run(helmholtz.make_program(n=24, m=24, max_iters=2))
    return rec.events


def test_jsonl_round_trip(tmp_path):
    events = _record()
    path = tmp_path / "run.jsonl"
    n = write_jsonl(events, str(path))
    assert n == len(events) > 0
    loaded = read_jsonl(str(path))
    assert [e.as_dict() for e in loaded] == [e.as_dict() for e in events]


def test_identical_runs_diff_clean():
    a, b = _record(), _record()
    result = diff_traces(a, b)
    assert result.identical
    assert result.first_divergence is None
    assert "identical event streams" in result.summary()


def test_divergent_translations_report_first_divergence_and_deltas():
    a, b = _record("parade"), _record("sdsm")
    result = diff_traces(a, b)
    assert not result.identical
    assert result.first_divergence is not None
    assert result.divergent_fields
    assert result.event_a is not None and result.event_b is not None
    # the conventional translation does strictly more DSM work: the
    # lock protocol appears, and fetch bytes grow
    deltas = result.type_deltas
    acq = deltas.get(("dsm.lock", "acquire"), (0, 0, 0, 0))
    assert acq[0] == 0 and acq[1] > 0
    fetch = deltas.get(("dsm.page", "fetch"), (0, 0, 0, 0))
    assert fetch[3] > fetch[2]
    summary = result.summary("parade", "sdsm")
    assert "first divergence" in summary
    assert "per-event-type deltas" in summary


def test_truncated_prefix_reported_as_early_end():
    a = _record()
    result = diff_traces(a, a[: len(a) // 2])
    assert not result.identical
    assert result.first_divergence is None
    assert "ends early" in result.summary()


def test_diff_detects_single_field_change():
    a = _record()
    b = list(a)
    ev = b[5]
    b[5] = TraceEvent(
        ts=ev.ts, cat=ev.cat, name=ev.name, node=ev.node,
        tid="imposter", dur=ev.dur, args=ev.args, ph=ev.ph,
    )
    result = diff_traces(a, b)
    assert result.first_divergence == 5
    assert result.divergent_fields == ["tid"]


def test_cli_exit_codes(tmp_path, capsys):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    events = _record()
    write_jsonl(events, str(a))
    write_jsonl(events, str(b))
    assert main_diff([str(a), str(b)]) == 0
    write_jsonl(_record("sdsm"), str(b))
    assert main_diff([str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "first divergence" in out


def test_trace_main_dispatches_diff_subcommand(tmp_path):
    from repro.trace.__main__ import main

    jsonl = tmp_path / "run.jsonl"
    rc = main(
        [
            "helmholtz", "--nodes", "2",
            "-o", str(tmp_path / "run.json"),
            "--jsonl", str(jsonl),
        ]
    )
    assert rc == 0
    assert jsonl.exists()
    assert main(["diff", str(jsonl), str(jsonl)]) == 0
