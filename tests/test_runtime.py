"""Tests for the ParADE runtime: scheduler, fork-join, directives, configs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    ParadeRuntime,
    static_chunk,
    static_chunks_round_robin,
    ONE_THREAD_ONE_CPU,
    ONE_THREAD_TWO_CPU,
    TWO_THREAD_TWO_CPU,
    HYBRID_THRESHOLD_BYTES,
)
from repro.mpi.ops import SUM, MAX


# ------------------------------------------------------------- scheduler
@settings(max_examples=100, deadline=None)
@given(
    lo=st.integers(-100, 100),
    n=st.integers(0, 1000),
    nthreads=st.integers(1, 17),
)
def test_static_chunk_partition_property(lo, n, nthreads):
    """Chunks are disjoint, ordered, cover [lo, hi), and balanced within 1."""
    hi = lo + n
    chunks = [static_chunk(lo, hi, t, nthreads) for t in range(nthreads)]
    covered = []
    for s, e in chunks:
        assert lo <= s <= e <= hi
        covered.extend(range(s, e))
    assert covered == list(range(lo, hi))
    sizes = [e - s for s, e in chunks]
    assert max(sizes) - min(sizes) <= 1


def test_static_chunk_validation():
    with pytest.raises(ValueError):
        static_chunk(0, 10, 0, 0)
    with pytest.raises(ValueError):
        static_chunk(0, 10, 5, 3)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(0, 300),
    nthreads=st.integers(1, 8),
    chunk=st.integers(1, 20),
)
def test_round_robin_chunks_property(n, nthreads, chunk):
    covered = set()
    for t in range(nthreads):
        for s, e in static_chunks_round_robin(0, n, t, nthreads, chunk):
            span = set(range(s, e))
            assert not (covered & span)
            covered |= span
    assert covered == set(range(n))


def test_round_robin_chunk_validation():
    with pytest.raises(ValueError):
        list(static_chunks_round_robin(0, 10, 0, 2, 0))


# ------------------------------------------------------------- runtime basics
def _sum_program(n):
    def program(ctx):
        total = ctx.shared_scalar("t")

        def body(tc, total):
            lo, hi = tc.for_range(0, n)
            part = float(sum(range(lo, hi)))
            yield from tc.reduce_into(total, part, SUM)

        yield from ctx.parallel(body, total)
        v = yield from ctx.scalar(total).get()
        return float(v)

    return program


@pytest.mark.parametrize("mode", ["parade", "sdsm"])
@pytest.mark.parametrize("n_nodes", [1, 2, 4])
def test_reduction_correct_across_modes_and_sizes(mode, n_nodes):
    rt = ParadeRuntime(n_nodes=n_nodes, mode=mode, pool_bytes=1 << 20)
    res = rt.run(_sum_program(1000))
    assert res.value == 499500.0


def test_runtime_rejects_unknown_mode():
    with pytest.raises(ValueError):
        ParadeRuntime(mode="hybrid3000")


def test_runtime_single_use():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)
    rt.run(_sum_program(10))
    with pytest.raises(RuntimeError):
        rt.run(_sum_program(10))


def test_exec_config_thread_counts():
    for cfg, total in ((ONE_THREAD_ONE_CPU, 4), (TWO_THREAD_TWO_CPU, 8)):
        rt = ParadeRuntime(n_nodes=4, exec_config=cfg, pool_bytes=1 << 20)
        seen = []

        def program(ctx):
            def body(tc):
                seen.append((tc.tid, tc.node_id, tc.local_tid))
                return
                yield

            yield from ctx.parallel(body)

        rt.run(program)
        assert len(seen) == total
        assert sorted(t for t, _, _ in seen) == list(range(total))


def test_hybrid_threshold_placement():
    rt = ParadeRuntime(n_nodes=2, mode="parade", pool_bytes=1 << 20)
    small = rt.shared_array("small", (32,))         # 256 B -> object
    large = rt.shared_array("large", (33,))         # 264 B -> HLRC
    assert small.segment.object_granularity
    assert not large.segment.object_granularity
    assert 32 * 8 == HYBRID_THRESHOLD_BYTES


def test_sdsm_mode_places_everything_in_hlrc():
    rt = ParadeRuntime(n_nodes=2, mode="sdsm", pool_bytes=1 << 20)
    small = rt.shared_array("small", (4,))
    assert not small.segment.object_granularity
    sc = rt.shared_scalar("s")
    assert not sc.array.segment.object_granularity


def test_critical_update_serialises_and_sums():
    rt = ParadeRuntime(n_nodes=4, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)

    def program(ctx):
        x = ctx.shared_scalar("x")

        def body(tc, x):
            for _ in range(3):
                yield from tc.critical_update(x, float(tc.tid + 1), SUM)

        yield from ctx.parallel(body, x)
        v = yield from ctx.scalar(x).get()
        return float(v)

    res = rt.run(program)
    assert res.value == 3 * sum(range(1, 9))


def test_atomic_is_critical_special_case():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)

    def program(ctx):
        x = ctx.shared_scalar("x")

        def body(tc, x):
            yield from tc.atomic_update(x, 1.0)

        yield from ctx.parallel(body, x)
        v = yield from ctx.scalar(x).get()
        return float(v)

    assert rt.run(program).value == 4.0  # 2 nodes x 2 threads


def test_reduce_value_max():
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
    out = []

    def program(ctx):
        def body(tc):
            m = yield from tc.reduce_value(float(tc.tid), MAX)
            out.append(m)

        yield from ctx.parallel(body)

    rt.run(program)
    assert all(v == 7.0 for v in out)
    assert len(out) == 8


def test_master_runs_once():
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
    ran = []

    def program(ctx):
        def body(tc):
            def mb():
                ran.append(tc.tid)
                return None
                yield

            yield from tc.master(mb)

        yield from ctx.parallel(body)

    rt.run(program)
    assert ran == [0]


def test_single_runs_once_globally_parade():
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
    executions = []

    def program(ctx):
        v = ctx.shared_scalar("v")

        def body(tc, v):
            def sb():
                executions.append(tc.tid)
                return 3.14
                yield

            got = yield from tc.single(body_gen_fn=sb, shared_scalar=v)
            assert got == 3.14

        yield from ctx.parallel(body, v)
        out = yield from ctx.scalar(v).get()
        return float(out)

    res = rt.run(program)
    assert len(executions) == 1
    assert res.value == 3.14


def test_single_runs_once_globally_sdsm():
    rt = ParadeRuntime(n_nodes=3, mode="sdsm", pool_bytes=1 << 20)
    executions = []

    def program(ctx):
        v = ctx.shared_scalar("v")

        def body(tc, v):
            def sb():
                executions.append(tc.tid)
                return 2.71
                yield

            got = yield from tc.single(body_gen_fn=sb, shared_scalar=v)
            assert got == 2.71

        yield from ctx.parallel(body, v)

    rt.run(program)
    assert len(executions) == 1


def test_critical_region_fallback_uses_lock():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)

    def program(ctx):
        log = []

        def body(tc):
            def crit():
                log.append(tc.tid)
                yield tc.sim.timeout(1e-6)
                return None

            yield from tc.critical_region(crit, name="mysec")

        yield from ctx.parallel(body)
        return log

    res = rt.run(program)
    assert sorted(res.value) == [0, 1, 2, 3]
    assert res.dsm_stats["lock_acquires"] == 4


def test_sequential_master_writes_visible_in_region():
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)

    def program(ctx):
        x = ctx.shared_array("x", (256,))
        yield from ctx.array(x).set(np.full(256, 5.0))
        checks = []

        def body(tc, x):
            v = yield from tc.array(x).get()
            checks.append(bool(np.all(np.asarray(v) == 5.0)))

        yield from ctx.parallel(body, x)
        return checks

    res = rt.run(program)
    assert res.value == [True] * 8


def test_region_results_from_node0_threads():
    rt = ParadeRuntime(n_nodes=2, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)

    def program(ctx):
        def body(tc):
            return tc.tid * 100
            yield

        results = yield from ctx.parallel(body)
        return results

    res = rt.run(program)
    assert res.value == [0, 100]  # node 0's two threads


def test_multiple_regions_sequential():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)

    def program(ctx):
        x = ctx.shared_scalar("x")
        for _ in range(3):
            def body(tc, x):
                yield from tc.critical_update(x, 1.0, SUM)

            yield from ctx.parallel(body, x)
        v = yield from ctx.scalar(x).get()
        return float(v)

    assert rt.run(program).value == 12.0  # 3 regions x 4 threads


def test_barrier_aligns_thread_progress():
    rt = ParadeRuntime(n_nodes=3, pool_bytes=1 << 20)
    phase_times = {}

    def program(ctx):
        def body(tc):
            yield tc.sim.timeout(tc.tid * 1e-4)  # stagger
            yield from tc.barrier()
            phase_times[tc.tid] = tc.now

        yield from ctx.parallel(body)

    rt.run(program)
    slowest = max(phase_times.values())
    assert all(t >= 5 * 1e-4 for t in phase_times.values())
    assert max(phase_times.values()) - min(phase_times.values()) < 1e-3


def test_exec_config_validation():
    from repro.runtime.exec_config import ExecConfig

    with pytest.raises(ValueError):
        ExecConfig("bad", 0, 1)


def test_run_result_summary_renders():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)
    res = rt.run(_sum_program(100))
    text = res.summary()
    assert "elapsed" in text and "messages" in text
