"""Cross-document link integrity for the docs site.

The guides in ``docs/`` and the top-level documents cross-reference each
other heavily (the index in ``docs/README.md`` is the hub).  These tests
walk every markdown file and assert that every *relative* link resolves
to a real file, so a rename or a typo breaks CI instead of a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

# Top-level documents plus everything under docs/.
MARKDOWN_FILES = sorted(
    [p for p in REPO.glob("*.md")] + [p for p in (REPO / "docs").glob("*.md")]
)

# [text](target) — inline links only; reference-style links are unused here.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

GUIDES = (
    "ARCHITECTURE.md",
    "TRACING.md",
    "SANITIZER.md",
    "PROFILING.md",
    "RELIABILITY.md",
    "PERFORMANCE.md",
    "METRICS.md",
    "FLEET.md",
)


def _relative_links(md: Path):
    """Yield (target, anchor-stripped path) for every relative link in *md*."""
    for target in _LINK_RE.findall(md.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target, target.split("#", 1)[0]


def test_markdown_corpus_is_nonempty():
    names = {p.name for p in MARKDOWN_FILES}
    assert "README.md" in names and "EXPERIMENTS.md" in names
    assert (REPO / "docs" / "README.md") in MARKDOWN_FILES


@pytest.mark.parametrize("md", MARKDOWN_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(md):
    broken = []
    for target, path_part in _relative_links(md):
        if not path_part:  # pure-anchor link, handled by startswith("#") above
            continue
        resolved = (md.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{md.relative_to(REPO)} has dead links: {broken}"


def test_docs_index_links_every_guide():
    index = (REPO / "docs" / "README.md").read_text(encoding="utf-8")
    linked = {path for _, path in _relative_links(REPO / "docs" / "README.md")}
    for guide in GUIDES:
        assert guide in linked, f"docs/README.md does not link {guide}"
    # ... and each guide file actually exists (belt and braces with the
    # resolution test above, but this one names the missing guide).
    for guide in GUIDES:
        assert (REPO / "docs" / guide).exists(), f"docs/{guide} missing"
    assert "RELIABILITY.md" in index


def test_top_level_readme_links_docs_index():
    linked = {path for _, path in _relative_links(REPO / "README.md")}
    assert "docs/README.md" in linked
