"""Tests for the translator CLI and the per-node run profile."""

import io
import os
import sys

import pytest

from repro.translator.__main__ import main as translator_main
from repro.runtime import ParadeRuntime, TWO_THREAD_TWO_CPU
from repro.mpi.ops import SUM

SRC = """
void f(void)
{
    double x;
    #pragma omp parallel shared(x)
    {
        #pragma omp critical
        x = x + 1.0;
    }
}
"""


@pytest.fixture
def src_file(tmp_path):
    p = tmp_path / "in.c"
    p.write_text(SRC)
    return str(p)


def _run_cli(args, capsys):
    rc = translator_main(args)
    out = capsys.readouterr().out
    return rc, out


def test_cli_default_backend(src_file, capsys):
    rc, out = _run_cli([src_file], capsys)
    assert rc == 0
    assert "parade_allreduce" in out


def test_cli_sdsm_backend(src_file, capsys):
    rc, out = _run_cli([src_file, "--backend", "sdsm"], capsys)
    assert "km_lock" in out and "parade_allreduce" not in out


def test_cli_both_backends(src_file, capsys):
    rc, out = _run_cli([src_file, "--backend", "both"], capsys)
    assert "parade_allreduce" in out and "km_lock" in out
    assert "===== parade translation =====" in out


def test_cli_lint_flag(src_file, capsys):
    rc, out = _run_cli([src_file, "--lint"], capsys)
    assert "G2" in out  # the critical-should-be-atomic finding


def test_cli_threshold_flag(src_file, capsys):
    rc, out = _run_cli([src_file, "--threshold", "0"], capsys)
    # footprint 8 B > 0 threshold: falls back to the SDSM lock
    assert "parade_sdsm_lock" in out


def test_cli_output_file(src_file, tmp_path, capsys):
    out_path = str(tmp_path / "out.c")
    rc, out = _run_cli([src_file, "-o", out_path], capsys)
    assert out == ""
    assert "parade_allreduce" in open(out_path).read()


def test_cli_stdin(capsys, monkeypatch):
    monkeypatch.setattr(sys, "stdin", io.StringIO(SRC))
    rc, out = _run_cli(["-"], capsys)
    assert "parade_parallel" in out


# ------------------------------------------------------------- profile
def test_node_report_contents():
    rt = ParadeRuntime(n_nodes=4, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)

    def program(ctx):
        x = ctx.shared_scalar("x")

        def body(tc, x):
            yield from tc.compute(50_000)
            yield from tc.critical_update(x, 1.0, SUM)

        yield from ctx.parallel(body, x)

    res = rt.run(program)
    assert len(res.node_profile) == 4
    for row in res.node_profile:
        assert row["compute"] > 0
        assert 0 <= row["busy_frac"] <= 1
        assert row["msgs_sent"] > 0
    report = res.node_report()
    assert "compute ms" in report
    assert report.count("\n") >= 5  # header + rule + 4 rows
    # the paper testbed: nodes 0-3 are 550 MHz in a 4-node cluster
    assert res.node_profile[0]["mhz"] == 550


def test_node_report_empty_without_profile():
    from repro.runtime.results import RunResult

    r = RunResult(value=None, elapsed=0.0, region_time=0.0)
    assert "no per-node profile" in r.node_report()


def test_node_report_degrades_on_missing_optional_keys():
    """Profile rows from external drivers / older result files may lack
    optional keys; the report must render zeros, not raise KeyError."""
    from repro.runtime.results import RunResult

    r = RunResult(
        value=None,
        elapsed=1.0,
        region_time=0.5,
        node_profile=[
            {"node": 0},  # bare minimum
            {"node": 1, "compute": 0.25, "msgs_sent": 7},  # partial
            {},  # entirely empty row
        ],
    )
    report = r.node_report()
    assert "compute ms" in report
    assert report.count("\n") == 4  # header + rule + 3 rows
    rows = report.splitlines()[2:]
    assert rows[0].strip().startswith("0")
    assert "250.000" in rows[1] and " 7 " in rows[1]
    assert rows[2].strip().startswith("?")
