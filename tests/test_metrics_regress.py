"""Watchdog tests: noise-aware comparison semantics + CLI wiring."""

from __future__ import annotations

import copy
import json

import pytest

from repro.metrics import regress
from repro.metrics.__main__ import main as metrics_main


def _report(seed: int = 0) -> dict:
    return regress.synthetic_report(seed)


def test_identical_sections_pass():
    verdict = regress.compare_sections(_report())
    assert verdict.ok and not verdict.problems
    assert "OK" in verdict.render()


def test_selfcheck_is_healthy():
    assert regress.selfcheck() is None
    assert regress.selfcheck(seed=42) is None


def test_virtual_time_drift_always_fails():
    rep = _report()
    rep["current"]["results"]["alpha"]["virtual_s"] *= 1.001  # 0.1% — tiny but real
    verdict = regress.compare_sections(rep)
    assert not verdict.ok
    assert any("virtual time drifted" in p for p in verdict.problems)
    # ...unless an explicit tolerance allows it
    assert regress.compare_sections(rep, vt_tol=0.01).ok


def test_wall_time_band_and_floor():
    rep = _report()
    rep["current"]["results"]["alpha"]["wall_s"] *= 1.8
    assert not regress.compare_sections(rep).ok
    # speedups never fail
    rep2 = _report()
    rep2["current"]["results"]["alpha"]["wall_s"] *= 0.2
    assert regress.compare_sections(rep2).ok
    # below the noise floor the band does not apply
    rep3 = _report()
    rep3["baseline"]["results"]["alpha"]["wall_s"] = 0.010
    rep3["current"]["results"]["alpha"]["wall_s"] = 0.019  # +90%, but 19 ms
    assert regress.compare_sections(rep3).ok


def test_phase_fraction_drift():
    rep = _report()
    ph = rep["current"]["results"]["beta"]["phases"]
    ph["compute"] -= 0.10
    ph["stall"] += 0.10
    verdict = regress.compare_sections(rep)
    assert not verdict.ok
    assert any("phase mix shifted" in p for p in verdict.problems)
    assert regress.compare_sections(rep, phase_tol=0.2).ok


def test_invariant_counts_warn_by_default_fail_when_strict():
    rep = _report()
    rep["current"]["results"]["alpha"]["events"] += 7
    loose = regress.compare_sections(rep)
    assert loose.ok and any("events changed" in w for w in loose.warnings)
    strict = regress.compare_sections(rep, strict=True)
    assert not strict.ok


def test_meta_mismatch_refuses_comparison():
    rep = _report()
    rep["current"]["meta"]["python"] = "2.7.18"
    verdict = regress.compare_sections(rep)
    assert not verdict.ok
    assert any("apples-to-oranges" in p for p in verdict.problems)
    # no per-workload noise on top of the refusal
    assert len(verdict.problems) == 1


def test_schema1_sections_without_meta_compare_with_warning():
    rep = _report()
    del rep["baseline"]["meta"]
    del rep["current"]["meta"]
    verdict = regress.compare_sections(rep)
    assert verdict.ok
    assert any("metadata missing" in w for w in verdict.warnings)


def test_missing_workload_and_section():
    rep = _report()
    del rep["current"]["results"]["alpha"]
    verdict = regress.compare_sections(rep)
    assert not verdict.ok and any("disappeared" in p for p in verdict.problems)
    verdict = regress.compare_sections({"schema": 2, "baseline": rep["baseline"]})
    assert not verdict.ok


def test_seeded_regression_has_all_three_axes():
    for seed in (0, 1, 99):
        bad = regress.seeded_regression(_report(seed), seed)
        text = " ".join(regress.compare_sections(bad).problems)
        assert "virtual time drifted" in text
        assert "wall time regressed" in text
        assert "phase mix shifted" in text


def test_run_meta_matches_watchdog_keys():
    """The bench harness fingerprint and the watchdog compare the same
    key set — a drift here silently disables the apples-to-oranges guard."""
    from repro.bench.perf import SCHEMA, run_meta

    assert SCHEMA == 2
    meta = run_meta(4, accel=True, smoke=False)
    assert set(regress.META_KEYS) == set(meta)
    assert meta["nodes"] == 4 and meta["accel"] is True


def test_load_report_backward_compatible(tmp_path):
    from repro.bench.perf import load_report

    old = tmp_path / "old.json"
    old.write_text(json.dumps({"baseline": {"results": {}}}))
    rep = load_report(str(old))
    assert rep["schema"] == 1  # schema-1 files normalise, not crash
    assert load_report(str(tmp_path / "missing.json")) == {}


# ----------------------------------------------------------------- CLI
def test_cli_regress_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_report()))
    assert metrics_main(["regress", str(good)]) == 0
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(regress.seeded_regression(_report(), 0)))
    assert metrics_main(["regress", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "verdict: FAIL" in out
    assert metrics_main(["regress", str(tmp_path / "nope.json")]) == 1


def test_cli_regress_selfcheck():
    assert metrics_main(["regress", "--selfcheck"]) == 0


def test_cli_regress_strict_flag(tmp_path):
    rep = _report()
    rep["current"]["results"]["alpha"]["msgs_sent"] += 1
    path = tmp_path / "r.json"
    path.write_text(json.dumps(rep))
    assert metrics_main(["regress", str(path)]) == 0
    assert metrics_main(["regress", str(path), "--strict"]) == 1


def test_cli_run_and_export_round_trip(tmp_path, capsys):
    dump_path = tmp_path / "hh.metrics.json"
    assert metrics_main([
        "run", "helmholtz", "--nodes", "2", "--json", str(dump_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "helmholtz" in out and "vt(ms)" in out
    assert dump_path.exists()
    prom = tmp_path / "m.prom"
    csv = tmp_path / "m.csv"
    chrome = tmp_path / "m.trace.json"
    assert metrics_main([
        "export", str(dump_path), "--prom", str(prom), "--csv", str(csv),
        "--chrome", str(chrome), "--check",
    ]) == 0
    assert prom.exists() and csv.exists() and chrome.exists()
    from repro.metrics.export import parse_prometheus

    assert parse_prometheus(prom.read_text())


def test_cli_run_rejects_unknown_app(capsys):
    assert metrics_main(["run", "no-such-app"]) == 1


def test_cli_smoke_gate():
    assert metrics_main(["smoke"]) == 0
