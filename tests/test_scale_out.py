"""Scale-out hardening tests: tree barrier, sharded locks, 16-node goldens.

The hierarchical-synchronization knobs (``DsmConfig.barrier_fanin``,
``lock_shard``) restructure *who talks to whom* at barriers and locks
without changing what is computed.  These tests pin that contract:

* 16-node goldens (helmholtz + cg) for the hierarchical configuration —
  the large-cluster counterpart of ``test_determinism_golden.py``;
* flat-vs-tree value identity, with the master's per-epoch arrival
  inflow capped at the fan-in;
* the released-epoch watermark that keeps late/duplicate arrival frames
  from seeding ghost arrival entries (the latent flat-barrier bug);
* bit-identical recovery under the chaos ``dup`` plan with the tree on
  (duplicated relay frames must be suppressed per-hop);
* lock-shard mappings: spread must not collapse to modulo on
  power-of-two clusters, and every mode must serialise a critical
  region identically.

Regenerate goldens (only when an *intentional* protocol change lands)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_scale_out.py
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import pytest

from repro.apps import cg, helmholtz
from repro.chaos import plan_by_name
from repro.cluster.network import Message
from repro.runtime import ParadeRuntime
from repro.trace import TraceRecorder, check_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

N_NODES = 16

WORKLOADS = {
    "helmholtz": {
        "factory": lambda: helmholtz.make_program(n=48, m=48, max_iters=3),
        "pool": 1 << 21,
    },
    "cg": {
        "factory": lambda: cg.make_program("T", niter=1),
        "pool": 1 << 21,
    },
}


def _run(name, n_nodes=N_NODES, hier=True, traced=False, **kw):
    spec = WORKLOADS[name]
    rt = ParadeRuntime(
        n_nodes=n_nodes, pool_bytes=spec["pool"], hierarchical=hier, **kw
    )
    rec = TraceRecorder(rt.sim, capacity=1 << 18, queue_stride=64) if traced else None
    res = rt.run(spec["factory"]())
    return rt, res, rec


def _value_digest(res) -> str:
    return hashlib.sha256(
        json.dumps(res.value, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _trace_digest(events) -> str:
    h = hashlib.sha256()
    for ev in events:
        h.update(json.dumps(ev.as_dict(), sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()


# ----------------------------------------------------------------------
# 16-node hierarchical goldens
# ----------------------------------------------------------------------
def _golden_path(name) -> pathlib.Path:
    return GOLDEN_DIR / f"determinism_{name}_16node_hier.json"


def _snapshot(name) -> dict:
    rt, res, rec = _run(name, traced=True)
    report = check_trace(rec.events)
    assert report.ok, report.summary()
    return {
        "elapsed": res.elapsed,
        "total_messages": int(res.cluster_stats["total_messages"]),
        "total_bytes": int(res.cluster_stats["total_bytes"]),
        "dsm_stats": res.dsm_stats,
        "barrier_epochs": [dn._barrier_epoch for dn in rt.dsm.nodes],
        "n_trace_events": rec.n_emitted,
        "trace_digest": _trace_digest(rec.events),
        "value_digest": _value_digest(res),
    }


def _load_or_regen(name) -> dict:
    path = _golden_path(name)
    if os.environ.get("REPRO_REGEN_GOLDENS") or not path.exists():
        snap = _snapshot(name)
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_16node_hier_run_matches_golden(name):
    """Virtual time, stats, values and the full trace stream of a
    16-node tree-barrier + spread-shard run are pinned byte-for-byte."""
    golden = _load_or_regen(name)
    rt, res, rec = _run(name, traced=True)
    assert res.elapsed == golden["elapsed"]
    assert int(res.cluster_stats["total_messages"]) == golden["total_messages"]
    assert int(res.cluster_stats["total_bytes"]) == golden["total_bytes"]
    assert res.dsm_stats == golden["dsm_stats"]
    assert [dn._barrier_epoch for dn in rt.dsm.nodes] == golden["barrier_epochs"]
    assert rec.n_emitted == golden["n_trace_events"]
    assert _trace_digest(rec.events) == golden["trace_digest"]
    assert _value_digest(res) == golden["value_digest"]


# ----------------------------------------------------------------------
# flat vs tree: same values, capped master inflow
# ----------------------------------------------------------------------
def test_tree_barrier_caps_master_inflow_and_preserves_values():
    rt_flat, res_flat, _ = _run("helmholtz", hier=False)
    rt_tree, res_tree, _ = _run("helmholtz", hier=True)

    assert _value_digest(res_flat) == _value_digest(res_tree)

    epochs = rt_flat.dsm.nodes[0]._barrier_epoch
    assert epochs == rt_tree.dsm.nodes[0]._barrier_epoch
    flat_rx = rt_flat.dsm.nodes[0].stats.barrier_arrivals_rx
    tree_rx = rt_tree.dsm.nodes[0].stats.barrier_arrivals_rx
    fanin = rt_tree.dsm.nodes[0].config.barrier_fanin

    # flat master: one arrival frame from every other node, every epoch
    assert flat_rx == (N_NODES - 1) * epochs
    # tree master: at most fan-in subtree aggregates per epoch
    assert fanin >= 2
    assert tree_rx <= fanin * epochs
    # the interior did real work: relays in both directions, notices
    # folded before reaching the root
    assert res_tree.dsm_stats["barrier_relays"] > 0
    assert res_tree.dsm_stats["notices_merged"] > 0
    assert res_flat.dsm_stats["barrier_relays"] == 0
    assert res_flat.dsm_stats["notices_merged"] == 0


# ----------------------------------------------------------------------
# released-epoch watermark: late/duplicate arrivals must be dropped
# ----------------------------------------------------------------------
def _late_arrival(node, epoch, payload):
    msg = Message(src=1, dst=node.id, nbytes=64, payload=payload,
                  tag=("bar", "arr", epoch))
    # handle_barrier is a generator; the drop path exits before any yield
    assert list(node.handle_barrier(msg)) == []


def test_late_arrival_after_release_leaves_no_ghost_entry():
    """Regression: a straggler or duplicated arrival frame for an
    already-released epoch used to ``setdefault`` a fresh arrivals dict
    that could never reach quorum, wedging a later barrier.  The
    watermark drops it."""
    rt, _res, _ = _run("helmholtz", n_nodes=4, hier=False)
    master = rt.dsm.nodes[0]
    released = master._bar_released
    assert released >= 0
    rx_before = master.stats.barrier_arrivals_rx

    for epoch in (0, released):
        _late_arrival(master, epoch, (1, {}))
        assert epoch not in master._bar_arrivals

    assert master._bar_arrivals == {}
    assert master.stats.barrier_arrivals_rx == rx_before


def test_late_arrival_dropped_in_tree_mode_too():
    rt, _res, _ = _run("helmholtz", n_nodes=4, hier=True)
    master = rt.dsm.nodes[0]
    rx_before = master.stats.barrier_arrivals_rx

    _late_arrival(master, master._bar_released, (1, {}, None, {}))
    assert master._bar_agg == {}
    assert master.stats.barrier_arrivals_rx == rx_before


# ----------------------------------------------------------------------
# chaos dup plan with the tree on: relay frames are deduped per hop
# ----------------------------------------------------------------------
def test_dup_plan_recovers_bit_identically_with_tree_barrier():
    _, clean, _ = _run("helmholtz", n_nodes=4, hier=True)
    _, dup, _ = _run("helmholtz", n_nodes=4, hier=True,
                     fault_plan=plan_by_name("dup"), chaos_seed=0)
    assert _value_digest(dup) == _value_digest(clean)
    assert dup.chaos_stats["dups_injected"] > 0
    assert dup.chaos_stats["dup_suppressed"] == dup.chaos_stats["dups_injected"]


# ----------------------------------------------------------------------
# lock sharding
# ----------------------------------------------------------------------
def test_spread_shard_scatters_low_lock_ids():
    """The spread hash must use the product's high bits: an odd
    multiplier reduced mod a power-of-two node count degenerates to the
    modulo mapping (2654435761 is 1 mod 16)."""
    rt = ParadeRuntime(n_nodes=8, pool_bytes=1 << 20, hierarchical=True)
    node = rt.dsm.nodes[0]
    spread = [node.lock_directory_of(i) for i in range(8)]
    assert all(0 <= h < 8 for h in spread)
    assert spread != list(range(8))  # not the modulo mapping
    assert len(set(spread)) > 2  # genuinely scattered


def _critical_program(ctx):
    log = []

    def body(tc):
        def crit():
            log.append(tc.tid)
            yield tc.sim.timeout(1e-6)
            return None

        yield from tc.critical_region(crit, name="mysec")

    yield from ctx.parallel(body)
    return log


@pytest.mark.parametrize("shard", ["modulo", "spread", "locality"])
def test_critical_region_serialises_under_every_shard_mode(shard):
    from repro.dsm.config import PARADE_DSM

    rt = ParadeRuntime(
        n_nodes=4, pool_bytes=1 << 20,
        dsm_config=PARADE_DSM.replace(lock_shard=shard),
    )
    res = rt.run(_critical_program)
    assert sorted(res.value) == list(range(8))
    assert res.dsm_stats["lock_acquires"] == 8
    assert res.dsm_stats["lock_grants"] == 8
    if shard == "locality":
        # the first toucher was assigned as manager; grants taught the
        # other clients where the lock lives
        assert any(dn._lock_assign for dn in rt.dsm.nodes)
        assert any(dn._lock_home for dn in rt.dsm.nodes)


def test_locality_shard_caches_manager_at_clients():
    from repro.dsm.config import PARADE_DSM

    rt = ParadeRuntime(
        n_nodes=4, pool_bytes=1 << 20,
        dsm_config=PARADE_DSM.replace(lock_shard="locality"),
    )
    rt.run(_critical_program)
    managers = {m for dn in rt.dsm.nodes for m in dn._lock_home.values()}
    owners = {mgr for dn in rt.dsm.nodes for mgr in dn._lock_assign.values()}
    assert len(managers) == 1  # every client learned the same manager
    assert managers == owners  # and it is the assigned first toucher


# ----------------------------------------------------------------------
# every stats counter must be documented
# ----------------------------------------------------------------------
def test_every_dsm_stats_key_is_documented():
    """The DsmNodeStats docstring table and RunResult's stats prose are
    the stats contract; a counter that isn't named there is invisible to
    users.  Every ``as_dict`` key must appear in both docstrings (the
    scale-out counters included)."""
    from repro.dsm.node import DsmNodeStats
    from repro.runtime.results import RunResult

    keys = set(DsmNodeStats().as_dict())
    assert {
        "barrier_arrivals_rx", "barrier_relays", "notices_merged",
        "lock_grants", "lock_remote_grants",
    } <= keys
    for key in keys:
        assert key in DsmNodeStats.__doc__, f"{key} missing from stats table"
    for key in ("barrier_relays", "notices_merged", "barrier_arrivals_rx",
                "lock_grants", "lock_remote_grants"):
        assert key in RunResult.__doc__, f"{key} missing from RunResult docs"
