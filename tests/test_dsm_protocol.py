"""Integration tests for the DSM protocol: fetch, barrier, home migration,
locks, multi-threaded page states, coherence."""

import numpy as np
import pytest

from repro.dsm import SharedArray, PageState
from repro.dsm.config import PARADE_DSM, KDSM_BASELINE
from conftest import build_dsm, run_all


def test_initial_ownership_master_has_all_pages():
    _cluster, _cts, dsm = build_dsm(4)
    for dn in dsm.nodes:
        assert all(h == 0 for h in dn.home)
        expect = PageState.READ_ONLY if dn.id == 0 else PageState.INVALID
        assert all(s == expect for s in dn.state)


def test_read_fault_fetches_from_master():
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "x", (512,))
    got = []

    def writer():
        yield from arr.on(0).set(np.arange(512.0))
        yield from dsm.node(0).barrier()
        yield from dsm.node(0).barrier()

    def reader():
        yield from dsm.node(1).barrier()
        v = yield from arr.on(1).get()
        got.append(np.asarray(v).copy())
        yield from dsm.node(1).barrier()

    run_all(cluster, [writer(), reader()])
    assert np.array_equal(got[0], np.arange(512.0))
    assert dsm.node(1).stats.pages_fetched == 1
    assert dsm.node(0).stats.fetches_served == 1


def test_write_notice_invalidates_other_copies():
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "x", (8,))

    def n0():
        yield from arr.on(0).set_scalar(0, 1.0)
        yield from dsm.node(0).barrier()   # n1 fetches here
        yield from dsm.node(0).barrier()
        yield from arr.on(0).set_scalar(0, 2.0)
        yield from dsm.node(0).barrier()   # must invalidate n1's copy
        yield from dsm.node(0).barrier()

    seen = []

    def n1():
        yield from dsm.node(1).barrier()
        v1 = yield from arr.on(1).get_scalar(0)
        yield from dsm.node(1).barrier()
        yield from dsm.node(1).barrier()
        v2 = yield from arr.on(1).get_scalar(0)
        seen.append((float(v1), float(v2)))
        yield from dsm.node(1).barrier()

    run_all(cluster, [n0(), n1()])
    assert seen == [(1.0, 2.0)]


def test_home_migration_to_sole_modifier():
    cluster, _cts, dsm = build_dsm(4)
    arr = SharedArray.allocate(dsm, "x", (2048,))  # 4 pages
    page0 = arr.segment.addr // dsm.page_size

    def worker(nid):
        # node nid repeatedly writes its own page
        v = arr.on(nid)
        lo = nid * 512
        yield from v.set(np.full(512, float(nid)), start=lo)
        yield from dsm.node(nid).barrier()
        yield from v.set(np.full(512, float(nid) + 10), start=lo)
        yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(4)])
    for nid in range(4):
        # after the first barrier each node homes its own page
        assert dsm.node(0).home[page0 + nid] == nid
        assert dsm.node(3).home[page0 + nid] == nid
    assert dsm.stats_home_migrations >= 3


def test_migrated_home_avoids_diff_traffic():
    """After migration, the sole writer is home: steady-state iterations
    send no diffs (the §5.2.2 payoff)."""
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "x", (1024,))

    def worker(nid):
        v = arr.on(nid)
        lo = nid * 512
        for it in range(4):
            yield from v.set(np.full(512, float(it + 1)), start=lo)
            yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(0), worker(1)])
    # node 1 diffs only in iteration 1 (before its page migrated to it)
    assert dsm.node(1).stats.diffs_sent == 1


def test_fixed_home_keeps_diffing_kdsm():
    cluster, _cts, dsm = build_dsm(2, dsm_config=KDSM_BASELINE)
    arr = SharedArray.allocate(dsm, "x", (1024,))

    def worker(nid):
        v = arr.on(nid)
        lo = nid * 512
        for it in range(4):
            yield from v.set(np.full(512, float(it + 1)), start=lo)
            yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(0), worker(1)])
    # with home fixed at node 0, node 1 diffs every iteration
    assert dsm.node(1).stats.diffs_sent == 4
    assert dsm.stats_home_migrations == 0


def test_multiple_writers_home_stays_and_all_converge():
    cluster, _cts, dsm = build_dsm(3)
    arr = SharedArray.allocate(dsm, "x", (512,))  # one page
    page = arr.segment.addr // dsm.page_size
    final = {}

    def worker(nid):
        v = arr.on(nid)
        # disjoint byte ranges of the SAME page, all three nodes write
        yield from v.set(np.full(100, float(nid + 1)), start=nid * 100)
        yield from dsm.node(nid).barrier()
        data = yield from v.get()
        final[nid] = np.asarray(data).copy()
        yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(3)])
    # multi-writer page: home remains the original (node 0)
    assert dsm.node(0).home[page] == 0
    for nid in range(3):
        for w in range(3):
            assert np.all(final[nid][w * 100 : (w + 1) * 100] == w + 1), (nid, w)
    dsm.check_coherence()


def test_blocked_state_second_thread_waits_for_update():
    """Two threads on one node fault on the same page: the second must see
    TRANSIENT -> BLOCKED and wake with valid data (Figure 5)."""
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "x", (512,))
    states_seen = []
    values = []

    def n0():
        yield from arr.on(0).set(np.full(512, 7.0))
        yield from dsm.node(0).barrier()

    def n1():
        yield from dsm.node(1).barrier()
        p1 = cluster.sim.process(reader_thread())
        p2 = cluster.sim.process(late_thread())
        yield p1
        yield p2

    def reader_thread():
        v = yield from arr.on(1).get()
        values.append(float(np.asarray(v)[0]))

    def late_thread():
        yield cluster.sim.timeout(2e-6)
        page = arr.segment.addr // dsm.page_size
        states_seen.append(dsm.node(1).state[page])
        v = yield from arr.on(1).get()
        values.append(float(np.asarray(v)[0]))

    run_all(cluster, [n0(), n1()])
    assert values == [7.0, 7.0]
    assert states_seen[0] in (PageState.TRANSIENT, PageState.BLOCKED, PageState.READ_ONLY)
    assert dsm.node(1).stats.pages_fetched == 1  # only one fetch despite two readers


def test_lock_mutual_exclusion_and_consistency():
    cluster, _cts, dsm = build_dsm(4)
    counter = SharedArray.allocate(dsm, "c", (1,), dtype=np.int64)

    def worker(nid):
        v = counter.on(nid)
        for _ in range(6):
            yield from dsm.node(nid).lock_acquire(3)
            cur = yield from v.get_scalar(0)
            yield from v.set_scalar(0, cur + 1)
            yield from dsm.node(nid).lock_release(3)
        yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(4)])
    reads = {}

    def reader(nid):
        v = yield from counter.on(nid).get_scalar(0)
        reads[nid] = int(v)

    run_all(cluster, [reader(i) for i in range(4)])
    assert all(v == 24 for v in reads.values()), reads


def test_kdsm_spin_lock_also_correct():
    cluster, _cts, dsm = build_dsm(2, dsm_config=KDSM_BASELINE, cpus=2)
    counter = SharedArray.allocate(dsm, "c", (1,), dtype=np.int64)

    def worker(nid):
        v = counter.on(nid)
        for _ in range(4):
            yield from dsm.node(nid).lock_acquire(1)
            cur = yield from v.get_scalar(0)
            yield from v.set_scalar(0, cur + 1)
            yield from dsm.node(nid).lock_release(1)
        yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(0), worker(1)])
    reads = []

    def reader():
        v = yield from counter.on(0).get_scalar(0)
        reads.append(int(v))

    run_all(cluster, [reader()])
    assert reads == [8]


def test_lock_grants_are_fifo_per_manager():
    cluster, _cts, dsm = build_dsm(3)
    order = []

    def worker(nid):
        yield cluster.sim.timeout(nid * 1e-5)  # staggered requests
        yield from dsm.node(nid).lock_acquire(0)
        order.append(nid)
        yield from dsm.node(nid).lock_release(0)

    run_all(cluster, [worker(i) for i in range(3)])
    assert order == [0, 1, 2]


def test_object_granularity_pages_never_fault():
    cluster, _cts, dsm = build_dsm(2)
    obj = SharedArray.allocate(dsm, "o", (8,), object_granularity=True)

    def worker(nid):
        v = obj.on(nid)
        yield from v.set_scalar(nid, float(nid))
        got = yield from v.get_scalar(nid)
        assert got == float(nid)

    run_all(cluster, [worker(0), worker(1)])
    assert dsm.node(0).stats.read_faults == 0
    assert dsm.node(1).stats.write_faults == 0
    assert dsm.node(1).stats.pages_fetched == 0


def test_object_segments_take_whole_pages():
    _cluster, _cts, dsm = build_dsm(2)
    a = dsm.alloc(100, name="hlrc1")
    o = dsm.alloc(16, name="obj", object_granularity=True)
    b = dsm.alloc(100, name="hlrc2")
    assert o.addr % dsm.page_size == 0
    assert b.addr >= o.addr + dsm.page_size  # padded to page end


def test_pool_exhaustion_raises():
    _cluster, _cts, dsm = build_dsm(2, pool_bytes=8192)
    with pytest.raises(MemoryError):
        dsm.alloc(100 * 4096, name="huge")


def test_duplicate_segment_name_rejected():
    _cluster, _cts, dsm = build_dsm(2)
    dsm.alloc(64, name="seg")
    with pytest.raises(ValueError):
        dsm.alloc(64, name="seg")


def test_coherence_invariant_after_random_writes():
    """Property-style: random disjoint writers + barriers keep every valid
    copy identical to the home copy."""
    rng = np.random.default_rng(42)
    cluster, _cts, dsm = build_dsm(4)
    arr = SharedArray.allocate(dsm, "x", (4096,))
    plans = [rng.integers(0, 100, size=(3, 2)) for _ in range(4)]

    def worker(nid):
        v = arr.on(nid)
        base = nid * 1024
        for it in range(3):
            off, val = plans[nid][it]
            yield from v.set(np.full(64, float(val)), start=base + int(off) * 9)
            yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(4)])
    dsm.check_coherence()
