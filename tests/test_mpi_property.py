"""Property-based tests: the MPI collectives agree with their sequential
definitions for arbitrary values and cluster sizes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.ops import SUM, MAX, MIN, PROD
from repro.testing import build_cluster, build_comm, run_all

_OPS = {"SUM": SUM, "MAX": MAX, "MIN": MIN, "PROD": PROD}


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(1, 6),
    op_name=st.sampled_from(sorted(_OPS)),
    data=st.data(),
)
def test_allreduce_matches_sequential_reduction(p, op_name, data):
    values = data.draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=p,
            max_size=p,
        )
    )
    op = _OPS[op_name]
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        total = yield from rc.allreduce(values[rc.rank], op=op)
        results[rc.rank] = total

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    expected = op.reduce_all(values)
    for r in range(p):
        assert results[r] == pytest.approx(expected, rel=1e-12, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(p=st.integers(1, 6), root=st.data())
def test_bcast_delivers_root_value_everywhere(p, root):
    r0 = root.draw(st.integers(0, p - 1))
    payload = {"nested": [1, 2, (3, 4)], "val": 2.5}
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        got = yield from rc.bcast(payload if rc.rank == r0 else None, root=r0)
        results[rc.rank] = got

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    assert all(v == payload for v in results.values())


@settings(max_examples=15, deadline=None)
@given(p=st.integers(2, 6), n_msgs=st.integers(1, 8))
def test_p2p_fifo_per_sender_receiver_pair(p, n_msgs):
    """Messages between one (src, dst, tag) pair arrive in send order."""
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    received = []

    def sender(rc):
        for i in range(n_msgs):
            yield from rc.send(i, 1, tag="seq")

    def receiver(rc):
        for _ in range(n_msgs):
            v = yield from rc.recv(source=0, tag="seq")
            received.append(v)

    others = [
        comm.rank(r) for r in range(p) if r not in (0, 1)
    ]

    def idle(rc):
        return
        yield

    run_all(
        cluster,
        [sender(comm.rank(0)), receiver(comm.rank(1))] + [idle(rc) for rc in others],
    )
    assert received == list(range(n_msgs))


@settings(max_examples=15, deadline=None)
@given(p=st.integers(1, 6))
def test_allgather_orders_by_rank(p):
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        g = yield from rc.allgather(f"rank{rc.rank}")
        results[rc.rank] = g

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    expected = [f"rank{r}" for r in range(p)]
    assert all(v == expected for v in results.values())
