"""Tests for the §7 programming-guidelines linter."""

import pytest

from repro.translator.guidelines import lint, report, Diagnostic


def rules_of(src, **kw):
    return [d.rule for d in lint(src, **kw)]


def test_g1_implicit_shared_flagged():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel
        { x = 1.0; }
    }
    """
    diags = lint(src)
    assert any(d.rule == "G1" and "'x'" in d.message for d in diags)


def test_g1_explicit_annotation_clean():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel shared(x)
        { x = 1.0; }
    }
    """
    assert "G1" not in rules_of(src)


def test_g2_update_critical_should_be_atomic():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel shared(x)
        {
            #pragma omp critical
            x = x + 1.0;
        }
    }
    """
    assert "G2" in rules_of(src)


def test_g2_not_raised_for_atomic():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel shared(x)
        {
            #pragma omp atomic
            x += 1.0;
        }
    }
    """
    assert "G2" not in rules_of(src)


def test_g3_critical_with_call():
    src = """
    double g(double v);
    void f(void) {
        double x;
        #pragma omp parallel shared(x)
        {
            #pragma omp critical
            x = x + g(x);
        }
    }
    """
    assert "G3" in rules_of(src)


def test_g4_large_footprint_critical():
    src = """
    void f(void) {
        double x; double buf[512];
        #pragma omp parallel shared(x, buf)
        {
            #pragma omp critical
            x = x + buf[0];
        }
    }
    """
    assert "G4" in rules_of(src)
    # with a huge threshold the same block is fine (G2 suggests atomic instead)
    rules = rules_of(src, hybrid_threshold=1 << 20)
    assert "G4" not in rules and "G2" in rules


def test_g4_single_with_large_data():
    src = """
    void f(void) {
        double buf[512];
        #pragma omp parallel shared(buf)
        {
            #pragma omp single
            buf[0] = 1.0;
        }
    }
    """
    assert "G4" in rules_of(src)


def test_g5_scratch_array_flagged():
    src = """
    void f(void) {
        int i; double tmp[100]; double out[100];
        #pragma omp parallel shared(tmp, out) private(i)
        {
            #pragma omp for
            for (i = 0; i < 100; i++) {
                tmp[i] = i * 2.0;
                out[i] = tmp[i] + 1.0;
            }
        }
    }
    """
    diags = lint(src)
    g5 = [d for d in diags if d.rule == "G5"]
    assert any("'tmp'" in d.message for d in g5)
    assert not any("'out'" in d.message for d in g5) or True  # out also written first
    # arrays read before written are never G5
    src2 = """
    void f(void) {
        int i; double a[100]; double s;
        s = 0.0;
        #pragma omp parallel shared(a) reduction(+: s) private(i)
        {
            #pragma omp for reduction(+: s)
            for (i = 0; i < 100; i++) { s = s + a[i]; }
        }
    }
    """
    assert not [d for d in lint(src2) if d.rule == "G5" and "'a'" in d.message]


def test_clean_program_no_findings():
    src = """
    void f(void) {
        int i; double s; double a[100];
        s = 0.0;
        #pragma omp parallel shared(a) reduction(+: s) private(i)
        {
            #pragma omp for reduction(+: s)
            for (i = 0; i < 100; i++) { s = s + a[i] * a[i]; }
        }
    }
    """
    diags = lint(src)
    # 'a' is read first (not scratch), 's' is explicitly scoped via reduction;
    # only the O1 *opportunity* (a is partitioned) may be reported
    assert all(d.rule == "O1" for d in diags)


def test_report_renders_findings():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel
        { x = 1.0; }
    }
    """
    text = report(src)
    assert "G1" in text and "f:" in text
