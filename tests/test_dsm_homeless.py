"""Tests for the homeless-LRC ablation protocol (§5.2.2 comparison)."""

import numpy as np
import pytest

from repro.dsm import SharedArray, PageState
from repro.dsm.config import HOMELESS_LRC, PARADE_DSM
from repro.testing import build_dsm, run_all


def test_all_copies_start_valid():
    _cluster, _cts, dsm = build_dsm(3, dsm_config=HOMELESS_LRC)
    for dn in dsm.nodes:
        assert all(s == PageState.READ_ONLY for s in dn.state)


def test_single_writer_diff_pull():
    cluster, _cts, dsm = build_dsm(2, dsm_config=HOMELESS_LRC)
    arr = SharedArray.allocate(dsm, "x", (512,))
    got = []

    def writer():
        yield from arr.on(0).set(np.arange(512.0))
        yield from dsm.node(0).barrier()
        yield from dsm.node(0).barrier()

    def reader():
        yield from dsm.node(1).barrier()
        v = yield from arr.on(1).get()
        got.append(np.asarray(v).copy())
        yield from dsm.node(1).barrier()

    run_all(cluster, [writer(), reader()])
    assert np.array_equal(got[0], np.arange(512.0))
    # the reader pulled a diff, not a full page
    assert dsm.node(1).stats.pages_fetched >= 1
    assert dsm.node(0).stats.fetches_served >= 1
    assert dsm.node(0).stats.diffs_sent == 0  # nothing pushed to a home


def test_multi_epoch_accumulation_applies_in_order():
    """A node that skips several barriers of updates must replay all the
    missing diffs in epoch order."""
    cluster, _cts, dsm = build_dsm(2, dsm_config=HOMELESS_LRC)
    arr = SharedArray.allocate(dsm, "x", (512,))
    got = []

    def writer():
        v = arr.on(0)
        for it in range(3):
            # overlapping writes: later epochs overwrite earlier ones
            yield from v.set(np.full(256, float(it + 1)), start=it * 64)
            yield from dsm.node(0).barrier()
        yield from dsm.node(0).barrier()

    def reader():
        for _ in range(3):
            yield from dsm.node(1).barrier()
        v = yield from arr.on(1).get()
        got.append(np.asarray(v).copy())
        yield from dsm.node(1).barrier()

    run_all(cluster, [writer(), reader()])
    ref = np.zeros(512)
    for it in range(3):
        ref[it * 64 : it * 64 + 256] = it + 1
    assert np.array_equal(got[0], ref)
    # three records accumulated -> three diff pulls at one fault
    assert dsm.node(1).stats.pages_fetched == 3


def test_multi_writer_page_pulls_from_every_writer():
    cluster, _cts, dsm = build_dsm(4, dsm_config=HOMELESS_LRC)
    arr = SharedArray.allocate(dsm, "x", (512,))  # one page
    final = {}

    def worker(nid):
        v = arr.on(nid)
        yield from v.set(np.full(128, float(nid + 1)), start=nid * 128)
        yield from dsm.node(nid).barrier()
        data = yield from v.get()
        final[nid] = np.asarray(data).copy()
        yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(4)])
    for nid in range(4):
        for w in range(4):
            assert np.all(final[nid][w * 128 : (w + 1) * 128] == w + 1)
    # each reader pulled diffs from the 3 *other* writers
    assert dsm.node(0).stats.pages_fetched == 3
    dsm.check_coherence()


def test_homeless_locks_unsupported():
    cluster, _cts, dsm = build_dsm(2, dsm_config=HOMELESS_LRC)

    def worker():
        with pytest.raises(NotImplementedError):
            yield from dsm.node(0).lock_acquire(1)

    run_all(cluster, [worker()])


def test_homeless_more_control_messages_than_home_based():
    """§5.2.2's claim, measured on a false-sharing pattern."""

    def run(cfg):
        cluster, _cts, dsm = build_dsm(4, dsm_config=cfg)
        arr = SharedArray.allocate(dsm, "x", (512,))

        def worker(nid):
            v = arr.on(nid)
            for it in range(4):
                yield from v.set(np.full(128, float(it + nid + 1)), start=nid * 128)
                yield from dsm.node(nid).barrier()
                yield from v.get()
                yield from dsm.node(nid).barrier()

        run_all(cluster, [worker(i) for i in range(4)])
        return cluster.network.total_messages

    assert run(HOMELESS_LRC) > run(PARADE_DSM)
