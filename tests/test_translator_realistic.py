"""Translator end-to-end on realistic sources: the paper's actual workload
shapes (jacobi.f's C equivalent and an MD-style force loop)."""

import pytest

from repro.translator import translate, parse
from repro.translator.guidelines import lint

JACOBI_C = """
void jacobi(int n, int m, double dx, double dy, double alpha, double omega,
            double u[], double f[], double tol, int maxit)
{
    int i, j, k;
    double error, resid, ax, ay, b;
    double uold[512 * 512];

    ax = 1.0 / (dx * dx);
    ay = 1.0 / (dy * dy);
    b = -2.0 * (ax + ay) - alpha;
    error = 10.0 * tol;
    k = 1;

    while (k <= maxit) {
        error = 0.0;
        #pragma omp parallel shared(u, uold, f, error) private(i, j, resid)
        {
            #pragma omp for
            for (j = 0; j < m; j++) {
                for (i = 0; i < n; i++) {
                    uold[i + m * j] = u[i + m * j];
                }
            }
            #pragma omp for reduction(+: error)
            for (j = 1; j < m - 1; j++) {
                for (i = 1; i < n - 1; i++) {
                    resid = (ax * (uold[i - 1 + m * j] + uold[i + 1 + m * j])
                           + ay * (uold[i + m * (j - 1)] + uold[i + m * (j + 1)])
                           + b * uold[i + m * j] - f[i + m * j]) / b;
                    u[i + m * j] = uold[i + m * j] - omega * resid;
                    error = error + resid * resid;
                }
            }
        }
        k = k + 1;
    }
}
"""

MD_C = """
double dist(int nd, double r1[], double r2[], double dr[]);
double v(double d);
double dv(double d);

void compute(int np, int nd, double box[], double pos[], double vel[],
             double mass, double f[], double *pot_p, double *kin_p)
{
    int i, j, k;
    double d;
    double rij[3];
    double pot, kin;

    pot = 0.0;
    kin = 0.0;
    #pragma omp parallel shared(pos, vel, f) private(i, j, k, d, rij) reduction(+: pot, kin)
    {
        #pragma omp for schedule(dynamic, 4)
        for (i = 0; i < np; i++) {
            for (j = 0; j < np; j++) {
                if (j != i) {
                    d = dist(nd, pos, pos, rij);
                    pot = pot + 0.5 * v(d);
                    for (k = 0; k < nd; k++) {
                        f[i * nd + k] = f[i * nd + k] - rij[k] * dv(d) / d;
                    }
                }
            }
            for (k = 0; k < nd; k++) {
                kin = kin + vel[i * nd + k] * vel[i * nd + k];
            }
        }
    }
    kin = kin * 0.5 * mass;
    *pot_p = pot;
    *kin_p = kin;
}
"""


def test_jacobi_parses_cleanly():
    unit = parse(JACOBI_C)
    assert unit.items[0].name == "jacobi"


@pytest.mark.parametrize("backend", ["parade", "sdsm"])
def test_jacobi_translates(backend):
    out = translate(JACOBI_C, backend)
    # two regions (while-loop body re-enters one parallel region per iter
    # textually: one region definition)
    assert out.count("_region_") >= 2  # definition + call site
    # the reduction loop
    assert "__red_error" in out
    if backend == "parade":
        assert "parade_allreduce(&__red_error" in out
        assert "barrier elided" in out
    else:
        assert "km_barrier();" in out


def test_jacobi_reduction_loop_keeps_array_writes():
    out = translate(JACOBI_C, "parade")
    # the stencil update survives translation; default-shared scalar params
    # (m, omega) become pointer dereferences
    assert "u[(i + (*__p_m * j))] = (uold[(i + (*__p_m * j))] - (*__p_omega * resid))" in out


def test_md_translates_with_dynamic_schedule():
    out = translate(MD_C, "parade")
    assert "parade_dynloop_init" in out
    assert "PARADE_SCHED_DYNAMIC" in out
    # merged reduction clause: two accumulators
    assert "__red_pot" in out and "__red_kin" in out


def test_md_function_calls_survive():
    out = translate(MD_C, "parade")
    assert "dist(*__p_nd, pos, pos, rij)" in out
    assert "v(d)" in out and "dv(d)" in out


def test_md_region_reduction_accumulates_into_private_partials():
    """A region-level reduction clause must rename accumulations in the
    body to the private partial, then combine once at region end."""
    out = translate(MD_C, "parade")
    assert "__red_pot = (__red_pot + (0.5 * v(d)))" in out
    assert "parade_allreduce(&__red_pot" in out
    assert "*__p_pot = *__p_pot + __red_pot" in out
    # no direct accumulation into the shared pointer inside the loops
    assert "*__p_pot = (*__p_pot +" not in out


def test_jacobi_lint_is_informative():
    diags = lint(JACOBI_C)
    rules = {d.rule for d in diags}
    # uold is written before read inside the region -> scratch candidate
    assert "G5" in rules
    # u/uold/f are stencil (i +/- 1) accesses, not partitioned: no O1 for them
    o1_names = {d.message.split("'")[1] for d in diags if d.rule == "O1"}
    assert "u" not in o1_names and "uold" not in o1_names


def test_md_lint_flags_only_unannotated_scalars():
    diags = lint(MD_C)
    g1 = {d.message.split("'")[1] for d in diags if d.rule == "G1"}
    # np and nd are read-only loop bounds the programmer left implicit —
    # exactly what §7 tells them to annotate (e.g. firstprivate)
    assert g1 == {"nd", "np"}
