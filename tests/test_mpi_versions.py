"""Tests for the pure-MPI workload versions and the SDSM < ParADE < MPI
performance bracket the paper's conclusion claims."""

import numpy as np
import pytest

from repro.apps import ep, helmholtz
from repro.apps.mpi_versions import ep_rank_main, helmholtz_rank_main, run_pure_mpi
from repro.runtime import ParadeRuntime, ONE_THREAD_TWO_CPU


def test_pure_mpi_ep_matches_reference():
    ref = ep.ep_segment(0, 1 << ep.CLASSES["T"])
    result, elapsed = run_pure_mpi(
        lambda rc, cluster: ep_rank_main(rc, cluster, "T"), n_nodes=4
    )
    assert result.sx == pytest.approx(ref.sx, abs=1e-9)
    assert result.sy == pytest.approx(ref.sy, abs=1e-9)
    assert np.array_equal(result.counts, ref.counts)
    assert elapsed > 0


def test_pure_mpi_helmholtz_matches_reference():
    seq = helmholtz.helmholtz_reference(n=32, m=32, max_iters=20)
    result, _elapsed = run_pure_mpi(
        lambda rc, cluster: helmholtz_rank_main(rc, cluster, n=32, m=32, max_iters=20),
        n_nodes=4,
    )
    assert result.iterations == seq.iterations
    assert np.allclose(result.u, seq.u, atol=1e-12)
    assert result.error == pytest.approx(seq.error, rel=1e-9)


def test_pure_mpi_helmholtz_single_rank():
    seq = helmholtz.helmholtz_reference(n=24, m=24, max_iters=10)
    result, _ = run_pure_mpi(
        lambda rc, cluster: helmholtz_rank_main(rc, cluster, n=24, m=24, max_iters=10),
        n_nodes=1,
    )
    assert np.allclose(result.u, seq.u, atol=1e-12)


def test_conclusion_bracket_sdsm_parade_mpi():
    """§8 conclusion: 'the ParADE system shows the performance between
    those of an SDSM application and a pure MPI application.'"""
    n, iters, nodes = 96, 12, 4

    # pure MPI (fast end)
    _res, t_mpi = run_pure_mpi(
        lambda rc, cluster: helmholtz_rank_main(rc, cluster, n=n, m=n, max_iters=iters),
        n_nodes=nodes,
    )

    # ParADE hybrid
    rt = ParadeRuntime(
        n_nodes=nodes, exec_config=ONE_THREAD_TWO_CPU, mode="parade", pool_bytes=1 << 21
    )
    t_parade = rt.run(helmholtz.make_program(n=n, m=n, max_iters=iters)).elapsed

    # conventional SDSM translation on the KDSM substrate (slow end)
    rt2 = ParadeRuntime(
        n_nodes=nodes, exec_config=ONE_THREAD_TWO_CPU, mode="sdsm", pool_bytes=1 << 21
    )
    t_sdsm = rt2.run(helmholtz.make_program(n=n, m=n, max_iters=iters)).elapsed

    assert t_mpi < t_parade < t_sdsm, (t_mpi, t_parade, t_sdsm)
