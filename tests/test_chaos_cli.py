"""Smoke tests of the ``python -m repro.chaos`` CLI (subprocess level)."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]


def _cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.chaos", *argv],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=600,
    )


def test_list_plans():
    proc = _cli("--list-plans")
    assert proc.returncode == 0, proc.stderr
    for name in ("clean", "drop", "dup", "reorder", "lossy-mix"):
        assert name in proc.stdout


def test_list_workloads():
    proc = _cli("--list")
    assert proc.returncode == 0, proc.stderr
    assert "helmholtz" in proc.stdout


def test_single_run_recovers():
    proc = _cli("helmholtz", "--plan", "drop", "--nodes", "2", "--seed", "3")
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "recovered bit-identically" in proc.stdout


def test_sweep_smoke():
    proc = _cli("--sweep", "--nodes", "2", "--apps", "helmholtz",
                "--plans", "drop,dup")
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "every run recovered bit-identically" in proc.stdout


def test_unknown_app_and_plan_fail_cleanly():
    proc = _cli("no-such-app")
    assert proc.returncode == 1
    assert "unknown app" in proc.stderr
    proc = _cli("helmholtz", "--plan", "no-such-plan")
    assert proc.returncode == 1
    assert "unknown fault plan" in proc.stderr
