"""Protocol accelerator: write-notice edge cases, batching x diff_gap,
update push, fetch read-ahead, and flags-on/off value identity.

The accelerator (docs/PERFORMANCE.md "Protocol optimizations") changes
*virtual* time and message counts, never computed values — every A/B test
here pins values bit-identical while asserting the protocol counters
moved the way the mechanism promises.
"""

import numpy as np

from repro.dsm import SharedArray
from repro.dsm.config import PARADE_DSM
from repro.dsm.writenotice import (
    NoticeLog,
    WriteNotice,
    dedupe_notices,
    merge_notice_bytes,
)
from repro.runtime import ParadeRuntime
from repro.testing import build_dsm, run_all


# ----------------------------------------------------- notice units
def test_dedupe_suppresses_duplicate_page_writer_pairs():
    # one notice per lock interval -> only the first (page, writer) ships
    ns = [
        WriteNotice(page=3, writer=1, interval=0),
        WriteNotice(page=3, writer=1, interval=1),   # dup: later interval
        WriteNotice(page=3, writer=2, interval=1),   # distinct writer: kept
        WriteNotice(page=4, writer=1, interval=2),
        WriteNotice(page=3, writer=1, interval=2),   # dup again
    ]
    out = dedupe_notices(ns)
    assert [(wn.page, wn.writer) for wn in out] == [(3, 1), (3, 2), (4, 1)]
    # first occurrence wins, preserving arrival order and intervals
    assert out[0].interval == 0


def test_dedupe_is_per_call_not_global():
    # dedupe happens per barrier arrival; a fresh epoch's notice for the
    # same (page, writer) must not be suppressed by history
    first = dedupe_notices([WriteNotice(1, 1, 0)])
    second = dedupe_notices([WriteNotice(1, 1, 1)])
    assert len(first) == 1 and len(second) == 1


def test_merge_notice_bytes_sums_per_writer():
    per_node = {
        1: [WriteNotice(7, 1, 0, nbytes=100), WriteNotice(7, 1, 0, nbytes=50)],
        2: [WriteNotice(7, 2, 0, nbytes=30), WriteNotice(8, 2, 0, nbytes=8)],
    }
    by_page = merge_notice_bytes(per_node)
    assert by_page == {7: {1: 150, 2: 30}, 8: {2: 8}}


def test_noticelog_stores_diffs_and_writer_history():
    log = NoticeLog()
    log.append(
        [WriteNotice(5, 1, 0), WriteNotice(6, 1, 0)],
        diffs={5: [(0, b"ab")]},
    )
    log.append([WriteNotice(5, 2, 1)])
    assert log.diff_at(0) == [(0, b"ab")]
    assert log.diff_at(1) is None          # no diff attached for page 6
    assert log.history_of(1) == {5, 6}
    assert log.history_of(2) == {5}
    assert log.history_of(3) == set()
    # cursor semantics: a consumer sees each entry exactly once
    assert len(log.unseen_by(2)) == 3
    assert log.unseen_by(2) == []


def test_notices_not_coalesced_across_barrier_epochs():
    """A page re-written in a later epoch must re-invalidate the reader:
    duplicate suppression is scoped to one barrier arrival, never across
    epochs."""
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "x", (8,))
    seen = []

    def n0():
        for epoch in range(3):
            yield from arr.on(0).set_scalar(0, float(epoch))
            yield from dsm.node(0).barrier()
            yield from dsm.node(0).barrier()

    def n1():
        for _ in range(3):
            yield from dsm.node(1).barrier()
            v = yield from arr.on(1).get_scalar(0)
            seen.append(float(v))
            yield from dsm.node(1).barrier()

    run_all(cluster, [n0(), n1()])
    assert seen == [0.0, 1.0, 2.0]
    # epoch 0 installs the first copy; epochs 1 and 2 each invalidate it
    assert dsm.node(1).stats.invalidations == 2
    assert dsm.node(1).stats.pages_fetched == 3


# ----------------------------------------------- batching x diff_gap
def _three_page_flush(cfg):
    """Node 1 dirties three pages; the barrier flushes all diffs home."""
    cluster, _cts, dsm = build_dsm(2, dsm_config=cfg)
    page_f64 = cluster.config.page_size // 8
    arr = SharedArray.allocate(dsm, "x", (3 * page_f64,))
    got = []

    def n0():
        yield from dsm.node(0).barrier()
        yield from dsm.node(0).barrier()
        for p in range(3):
            v = yield from arr.on(0).get_scalar(p * page_f64)
            got.append(float(v))

    def n1():
        for p in range(3):
            # two writes per page separated by < gap unchanged bytes:
            # with diff_gap they coalesce into one run per page
            yield from arr.on(1).set_scalar(p * page_f64, 1.0 + p)
            yield from arr.on(1).set_scalar(p * page_f64 + 2, 2.0 + p)
        yield from dsm.node(1).barrier()
        yield from dsm.node(1).barrier()

    run_all(cluster, [n0(), n1()])
    return got, dsm


def test_batching_with_diff_gap_matches_unbatched():
    base_cfg = PARADE_DSM.replace(diff_gap=32)
    got_a, dsm_a = _three_page_flush(base_cfg)
    got_b, dsm_b = _three_page_flush(base_cfg.replace(batch_notices=True))
    assert got_a == got_b == [1.0, 2.0, 3.0]
    # per-page diff accounting is batching-invariant ...
    assert dsm_b.node(1).stats.diffs_sent == dsm_a.node(1).stats.diffs_sent == 3
    assert dsm_b.node(1).stats.diff_bytes == dsm_a.node(1).stats.diff_bytes
    # ... but the three sub-512B diffs coalesced into one dbat frame
    assert dsm_a.node(1).stats.notices_batched == 0
    assert dsm_b.node(1).stats.notices_batched == 3


def test_batching_skips_diffs_over_size_ceiling():
    """A whole-page diff exceeds batch_max_bytes and keeps its own frame."""
    cfg = PARADE_DSM.replace(batch_notices=True, batch_max_bytes=64)
    cluster, _cts, dsm = build_dsm(2, dsm_config=cfg)
    page_f64 = cluster.config.page_size // 8
    arr = SharedArray.allocate(dsm, "x", (2 * page_f64,))

    def n0():
        yield from dsm.node(0).barrier()

    def n1():
        # page 0: small diff (joins the batch); page 1: full-page rewrite
        yield from arr.on(1).set_scalar(0, 1.0)
        yield from arr.on(1).set(np.arange(float(page_f64)), start=page_f64)
        yield from dsm.node(1).barrier()

    run_all(cluster, [n0(), n1()])
    assert dsm.node(1).stats.diffs_sent == 2
    assert dsm.node(1).stats.notices_batched == 1


# --------------------------------------------------- fetch read-ahead
def test_fetch_readahead_cuts_roundtrips_not_values():
    def scan(cfg):
        cluster, _cts, dsm = build_dsm(2, dsm_config=cfg)
        page_f64 = cluster.config.page_size // 8
        n_pages = 6
        arr = SharedArray.allocate(dsm, "x", (n_pages * page_f64,))
        got = []

        def n0():
            for p in range(n_pages):
                yield from arr.on(0).set_scalar(p * page_f64, float(p))
            yield from dsm.node(0).barrier()
            yield from dsm.node(0).barrier()

        def n1():
            yield from dsm.node(1).barrier()
            for p in range(n_pages):       # sequential scan: p-1 then p
                v = yield from arr.on(1).get_scalar(p * page_f64)
                got.append(float(v))
            yield from dsm.node(1).barrier()

        run_all(cluster, [n0(), n1()])
        return got, dsm.node(1).stats, cluster.sim.now

    got_off, st_off, vt_off = scan(PARADE_DSM)
    got_on, st_on, vt_on = scan(PARADE_DSM.replace(fetch_readahead=8))
    assert got_off == got_on == [float(p) for p in range(6)]
    assert st_off.readahead_pages == 0 and st_off.pages_fetched == 6
    # the second fault arms the detector; pages 2..5 arrive as trailers
    assert st_on.readahead_pages == 4
    assert st_on.pages_fetched == 2
    assert vt_on < vt_off


# ------------------------------------------------ app-level A/B identity
def _helmholtz_ab(**accel_kw):
    base = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21)
    res_base = base.run(_helm_prog())
    acc = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21, **accel_kw)
    res_acc = acc.run(_helm_prog())
    return res_base, res_acc


def _helm_prog():
    from repro.apps import helmholtz

    return helmholtz.make_program(n=48, m=48, max_iters=4)


def test_accel_values_bit_identical_and_no_slower():
    res_base, res_acc = _helmholtz_ab(protocol_accel=True)
    assert res_acc.value.iterations == res_base.value.iterations
    assert np.array_equal(res_acc.value.u, res_base.value.u)
    assert res_acc.value.error == res_base.value.error
    assert res_acc.elapsed <= res_base.elapsed
    # flags-off runs never touch the accelerator counters
    for key in ("notices_batched", "diffs_piggybacked", "updates_pushed",
                "updates_installed", "readahead_pages"):
        assert res_base.dsm_stats.get(key, 0) == 0
    # the accelerated run exercised the push pipeline, and installs
    # cannot exceed pushes (the gap is staleness drops)
    assert res_acc.dsm_stats["updates_pushed"] > 0
    assert 0 < res_acc.dsm_stats["updates_installed"] <= res_acc.dsm_stats[
        "updates_pushed"
    ]
    assert (
        res_acc.cluster_stats["total_messages"]
        < res_base.cluster_stats["total_messages"]
    )


def test_accel_flag_matrix_each_mechanism_value_safe():
    """Every single-flag configuration must reproduce the baseline values
    exactly — mechanisms are independently toggleable."""
    from repro.apps import helmholtz

    def run(cfg_kw):
        rt = ParadeRuntime(
            n_nodes=2,
            pool_bytes=1 << 21,
            dsm_config=PARADE_DSM.replace(**cfg_kw) if cfg_kw else None,
        )
        return rt.run(helmholtz.make_program(n=32, m=32, max_iters=3))

    ref = run({})
    for kw in (
        {"batch_notices": True},
        {"lock_piggyback": True},
        {"adaptive_migration": True},
        {"fetch_readahead": 8},
    ):
        res = run(kw)
        assert np.array_equal(res.value.u, ref.value.u), kw
        assert res.value.error == ref.value.error, kw
        assert res.value.iterations == ref.value.iterations, kw
