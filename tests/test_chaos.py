"""Fault-injection + reliability-layer tests (repro.chaos).

The contract under test (docs/RELIABILITY.md):

* **Graceful degradation** — under every stock fault plan the program
  completes and its numerical result is bit-identical to the fault-free
  run's; only virtual time and traffic change.
* **Determinism** — one (plan, seed) pair fully determines every injected
  fault: same seed => identical elapsed time, stats, and trace stream;
  a different seed perturbs the run.
* **Ordering** — retransmission, duplicate suppression, and the
  resequencing buffer restore the exact per-link FIFO order the perfect
  network guarantees, so the happens-before sanitizer stays green.
* **Bounded recovery** — no frame exceeds ``max_retries + 1`` attempts.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.apps import helmholtz
from repro.chaos import (
    ChaosDeliveryError,
    ChaosEngine,
    CommStall,
    FaultPlan,
    LinkFault,
    LinkFlap,
    NodeSlowdown,
    PLANS,
    ReliabilityConfig,
    plan_by_name,
)
from repro.cluster import Cluster, ClusterConfig
from repro.runtime import ParadeRuntime
from repro.trace import TraceRecorder

N_NODES = 4
POOL_BYTES = 1 << 21


def _program():
    return helmholtz.make_program(n=48, m=48, max_iters=3)


def _run(plan=None, seed=0, traced=False, sanitize=None, n_nodes=N_NODES,
         reliability=None):
    rt = ParadeRuntime(
        n_nodes=n_nodes, pool_bytes=POOL_BYTES, sanitize=sanitize,
        fault_plan=plan, chaos_seed=seed, reliability=reliability,
    )
    rec = TraceRecorder(rt.sim, capacity=1 << 18) if traced else None
    res = rt.run(_program())
    return rt, res, rec


def _value_digest(res) -> str:
    return hashlib.sha256(
        json.dumps(res.value, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _trace_digest(events) -> str:
    h = hashlib.sha256()
    for ev in events:
        h.update(json.dumps(ev.as_dict(), sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()


# ----------------------------------------------------------------------
# graceful degradation: every stock plan recovers bit-identically
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def baseline():
    _, res, _ = _run()
    return res


@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_every_stock_plan_recovers_bit_identically(plan_name, baseline):
    plan = plan_by_name(plan_name)
    _, res, _ = _run(plan, seed=7)
    assert _value_digest(res) == _value_digest(baseline)
    bound = plan.reliability.max_retries + 1
    assert res.chaos_stats["max_attempts"] <= bound


def test_injection_counters_fire_per_kind(baseline):
    """Each fault kind actually injects under its dedicated plan."""
    expectations = {
        "drop": "drops",
        "dup": "dups_injected",
        "reorder": "reorders",
        "corrupt": "corrupts",
        "latency-spike": "delays",
        "flap": "flap_drops",
        "slow-node": "slowdown_windows",
        "comm-stall": "comm_stalls",
    }
    for plan_name, counter in expectations.items():
        _, res, _ = _run(plan_by_name(plan_name), seed=7)
        assert res.chaos_stats[counter] > 0, (plan_name, counter)


def test_losses_are_recovered_by_retransmits(baseline):
    _, res, _ = _run(plan_by_name("drop"), seed=7)
    cs = res.chaos_stats
    assert cs["drops"] > 0
    assert cs["retransmits"] >= cs["drops"]
    assert res.elapsed > baseline.elapsed  # recovery costs virtual time


def test_clean_plan_matches_no_chaos_run_exactly(baseline):
    """The reliability layer alone (acks, timers, sequence numbers) is
    invisible to the protocol: a clean-plan run has the same elapsed
    virtual time, value, and protocol stats as a chaos-free run."""
    _, res, _ = _run(plan_by_name("clean"), seed=7)
    assert res.elapsed == baseline.elapsed
    assert _value_digest(res) == _value_digest(baseline)
    assert res.dsm_stats == baseline.dsm_stats
    assert int(res.cluster_stats["total_messages"]) == int(
        baseline.cluster_stats["total_messages"]
    )
    assert res.chaos_stats["frames"] > 0
    assert res.chaos_stats["retransmits"] == 0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_same_seed_is_bit_identical():
    _, res_a, rec_a = _run(plan_by_name("lossy-mix"), seed=5, traced=True)
    _, res_b, rec_b = _run(plan_by_name("lossy-mix"), seed=5, traced=True)
    assert res_a.elapsed == res_b.elapsed
    assert res_a.chaos_stats == res_b.chaos_stats
    assert res_a.dsm_stats == res_b.dsm_stats
    assert _value_digest(res_a) == _value_digest(res_b)
    assert _trace_digest(rec_a.events) == _trace_digest(rec_b.events)


def test_different_seed_perturbs_the_run():
    _, res_a, _ = _run(plan_by_name("lossy-mix"), seed=5)
    _, res_b, _ = _run(plan_by_name("lossy-mix"), seed=6)
    assert res_a.chaos_stats != res_b.chaos_stats
    # ... but both recover the same numbers
    assert _value_digest(res_a) == _value_digest(res_b)


# ----------------------------------------------------------------------
# ordering: the sanitizer's FIFO happens-before edges survive chaos
# ----------------------------------------------------------------------
def test_sanitizer_stays_green_under_lossy_mix():
    rt, _, _ = _run(plan_by_name("lossy-mix"), seed=7, sanitize=True)
    assert rt.sanitizer is not None
    assert rt.sanitizer.ok, rt.sanitizer.summary()


def test_sanitizer_stays_green_under_reorder():
    rt, _, _ = _run(plan_by_name("reorder"), seed=11, sanitize=True)
    assert rt.sanitizer.ok, rt.sanitizer.summary()


# ----------------------------------------------------------------------
# RunResult / stats plumbing
# ----------------------------------------------------------------------
def test_chaos_stats_keys_are_the_documented_set(baseline):
    _, res, _ = _run(plan_by_name("drop"), seed=7)
    documented = {
        "frames", "drops", "flap_drops", "corrupts", "delays", "reorders",
        "dups_injected", "retransmits", "max_attempts", "acks_sent",
        "ack_drops", "dup_suppressed", "reorder_buffered", "dsm_reissues",
        "comm_stalls", "slowdown_windows",
    }
    assert set(res.chaos_stats) == documented
    assert baseline.chaos_stats == {}  # chaos-free runs report nothing
    assert "retransmits (recovered)" in res.summary()


def test_dsm_stats_gain_reliability_counters(baseline):
    assert baseline.dsm_stats["dsm_reissues"] == 0
    assert baseline.dsm_stats["stale_replies"] == 0


# ----------------------------------------------------------------------
# engine-level behaviour on a bare cluster
# ----------------------------------------------------------------------
def _bare_cluster(n=2):
    return Cluster(ClusterConfig(n_nodes=n))


def test_dead_link_raises_after_retry_budget():
    """A plan that drops everything forever exhausts max_retries and
    raises ChaosDeliveryError instead of hanging."""
    cluster = _bare_cluster()
    plan = FaultPlan(
        "dead", faults=(LinkFault(drop=1.0),),
        reliability=ReliabilityConfig(max_retries=3),
    )
    engine = ChaosEngine(cluster.sim, plan, seed=1)
    engine.install(cluster)

    def sender():
        yield from cluster.network.send(0, 1, 64, "x", tag=("t",))

    cluster.sim.process(sender(), label="sender")
    with pytest.raises(ChaosDeliveryError) as exc:
        cluster.sim.run()
    assert exc.value.attempts == 4  # 1 first try + 3 retries
    assert engine.stats.max_attempts == 4


def test_reliability_restores_fifo_order_across_a_link():
    """Heavy reorder + drop on one link: the inbox still sees frames in
    send order (the invariant MPI matching and the sanitizer rely on)."""
    cluster = _bare_cluster()
    plan = FaultPlan(
        "scramble", faults=(LinkFault(drop=0.3, reorder=0.5, reorder_s=300e-6),),
    )
    ChaosEngine(cluster.sim, plan, seed=3).install(cluster)
    got = []

    def sender():
        for i in range(30):
            yield from cluster.network.send(0, 1, 64, i, tag=("t", i))

    def receiver():
        for _ in range(30):
            msg = yield cluster.nodes[1].inbox.get()
            got.append(msg.payload)

    cluster.sim.process(sender(), label="sender")
    cluster.sim.process(receiver(), label="receiver")
    cluster.sim.run()
    assert got == list(range(30))


def test_flap_window_blocks_then_recovers():
    cluster = _bare_cluster()
    plan = FaultPlan("flap", flaps=(LinkFlap(t0=0.0, t1=1e-3),))
    engine = ChaosEngine(cluster.sim, plan, seed=1).install(cluster)
    times = []

    def sender():
        yield from cluster.network.send(0, 1, 64, "x", tag=("t",))

    def receiver():
        yield cluster.nodes[1].inbox.get()
        times.append(cluster.sim.now)

    cluster.sim.process(sender(), label="sender")
    cluster.sim.process(receiver(), label="receiver")
    cluster.sim.run()
    assert times and times[0] >= 1e-3  # nothing crosses during the outage
    assert engine.stats.flap_drops > 0
    assert engine.outstanding_frames == 0  # everything acked eventually


def test_slowdown_window_slows_compute():
    def elapsed_with(plan):
        cluster = _bare_cluster()
        if plan is not None:
            ChaosEngine(cluster.sim, plan, seed=1).install(cluster)

        def worker():
            yield from cluster.nodes[1].compute(100_000)

        cluster.sim.process(worker(), label="worker")
        cluster.sim.run()
        return cluster.sim.now

    base = elapsed_with(None)
    slow = elapsed_with(
        FaultPlan("slow", slowdowns=(NodeSlowdown(node=1, factor=4.0),))
    )
    assert slow > base * 3.5


def test_comm_stall_charges_virtual_time():
    plan = FaultPlan("stall", stalls=(CommStall(prob=1.0, stall_s=100e-6),))
    _, base, _ = _run()
    _, res, _ = _run(plan, seed=2)
    assert res.chaos_stats["comm_stalls"] > 0
    assert res.elapsed > base.elapsed


def test_slowdown_node_out_of_range_is_rejected():
    cluster = _bare_cluster(2)
    plan = FaultPlan("bad", slowdowns=(NodeSlowdown(node=9),))
    with pytest.raises(ValueError, match="node 9"):
        ChaosEngine(cluster.sim, plan, seed=0).install(cluster)


def test_plan_lookup_and_channel_selector():
    with pytest.raises(KeyError, match="unknown fault plan"):
        plan_by_name("nope")
    plan = FaultPlan("dsm-only", faults=(LinkFault(channel="dsm", drop=0.5),))
    assert plan.fault_for(0, 1, "dsm") is not None
    assert plan.fault_for(0, 1, "bar") is None
    assert not plan.is_clean
    assert plan_by_name("clean").is_clean


# ----------------------------------------------------------------------
# loopback delivery accounting (the hook-gap fix)
# ----------------------------------------------------------------------
def test_loopback_send_emits_deliver_and_counts_receive():
    cluster = _bare_cluster()
    rec = TraceRecorder(cluster.sim, capacity=1 << 10)

    def sender():
        yield from cluster.network.send(0, 0, 64, "self", tag=("t",))
        yield cluster.nodes[0].inbox.get()

    cluster.sim.process(sender(), label="sender")
    cluster.sim.run()
    node = cluster.nodes[0]
    assert node.msgs_received == 1
    assert node.bytes_received == node.bytes_sent
    delivers = [ev for ev in rec.events if ev.name == "msg-deliver"]
    assert len(delivers) == 1
    assert delivers[0].args["src"] == 0
