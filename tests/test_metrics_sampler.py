"""Sampler + wiring tests: the bit-identity contract and the hooks.

The whole subsystem stands on two promises: (1) a run with metrics
attached produces *exactly* the virtual times, event counts, and
application values of an unobserved run — sampling reads state, never
perturbs the schedule; (2) a run without metrics pays one attribute load
and one compare per hook site and nothing else.
"""

from __future__ import annotations

import pytest

from repro.apps import helmholtz
from repro.metrics import (
    BARRIER_EPOCH,
    LOCK_HOLD,
    LOCK_WAIT,
    NET_LATENCY,
    Metrics,
)
from repro.metrics.sampler import Metrics as SamplerMetrics
from repro.runtime import ParadeRuntime


def _factory():
    return helmholtz.make_program(n=16, m=16, max_iters=2)


def _run(metrics: bool, n_nodes: int = 2):
    rt = ParadeRuntime(n_nodes=n_nodes, pool_bytes=1 << 20, metrics=metrics)
    res = rt.run(_factory())
    return rt, res


def test_metered_run_is_bit_identical_to_unmetered():
    import numpy as np

    rt0, plain = _run(metrics=False)
    rt1, metered = _run(metrics=True)
    assert plain.elapsed == metered.elapsed
    assert np.array_equal(plain.value.u, metered.value.u)
    assert plain.value.error == metered.value.error
    assert rt0.sim.events_processed == rt1.sim.events_processed
    assert plain.cluster_stats == metered.cluster_stats
    assert plain.dsm_stats == metered.dsm_stats


def test_metered_runs_are_deterministic_across_repeats():
    rt1, _ = _run(metrics=True)
    rt2, _ = _run(metrics=True)
    d1, d2 = rt1.metrics.dump(), rt2.metrics.dump()
    assert d1 == d2


def test_runtime_wiring_and_finalize():
    rt, res = _run(metrics=True)
    mx = rt.metrics
    assert mx is rt.sim.metrics
    assert mx.finalized_at == res.elapsed
    assert mx.n_samples > 0
    # stock sources produced their series
    for name in (
        "sim/queue_depth", "sim/events_total", "cluster/msgs_total",
        "cluster/node0/cpu_busy", "dsm/read_faults", "mpi/p2p_total",
        "runtime/regions_total", "net/inflight_msgs",
    ):
        assert name in mx.series, f"missing series {name}"
    # cumulative sources are monotone
    for name in ("sim/events_total", "cluster/msgs_total", "dsm/read_faults"):
        _, v = mx.series[name]
        assert v == sorted(v), f"{name} not monotone"
    # final sample records the end-of-run totals
    t, v = mx.series["sim/events_total"]
    assert t[-1] == res.elapsed
    assert v[-1] == rt.sim.events_processed


def test_hooks_populate_latency_histograms():
    rt, _ = _run(metrics=True)
    reg = rt.metrics.registry
    net = reg.find(NET_LATENCY)
    assert net and sum(h.count for h in net) > 0
    bars = reg.find(BARRIER_EPOCH)
    assert bars, "no barrier epochs recorded"
    total_epochs = sum(h.count for h in bars)
    assert total_epochs > 0
    ps = rt.metrics.histogram_percentiles(BARRIER_EPOCH)
    assert 0.0 < ps["p50"] <= ps["max"]
    # in-flight gauge is balanced: every send was delivered
    assert rt.metrics._inflight_msgs == 0
    assert rt.metrics._inflight_bytes == 0


def test_lock_hooks_record_wait_and_hold():
    """A critical-section workload must feed both lock histograms.

    SDSM mode: in parade mode an analyzable critical compiles to an
    allreduce wave (Figure 2) and never touches a distributed lock."""
    from repro.mpi.ops import SUM

    def program(ctx):
        total = ctx.shared_scalar("total")

        def body(tc, total):
            for _ in range(3):
                yield from tc.critical_update(total, 1.0, SUM)

        yield from ctx.parallel(body, total)
        v = yield from ctx.scalar(total).get()
        return float(v)

    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20, mode="sdsm", metrics=True)
    rt.run(program)
    reg = rt.metrics.registry
    waits = reg.find(LOCK_WAIT)
    holds = reg.find(LOCK_HOLD)
    assert waits and sum(h.count for h in waits) > 0
    assert holds and sum(h.count for h in holds) > 0
    # every grant was released: hold count matches wait count
    assert sum(h.count for h in holds) == sum(h.count for h in waits)
    for h in holds:
        assert h.min >= 0.0


def test_env_var_attaches_metrics(monkeypatch):
    monkeypatch.setenv("PARADE_METRICS", "1")
    rt = ParadeRuntime(n_nodes=1, pool_bytes=1 << 20)
    assert rt.metrics is not None and rt.sim.metrics is rt.metrics
    monkeypatch.setenv("PARADE_METRICS", "0")
    rt = ParadeRuntime(n_nodes=1, pool_bytes=1 << 20)
    assert rt.metrics is None
    # explicit argument beats the environment
    monkeypatch.setenv("PARADE_METRICS", "1")
    rt = ParadeRuntime(n_nodes=1, pool_bytes=1 << 20, metrics=False)
    assert rt.metrics is None


def test_sampling_grid_and_max_samples():
    class FakeSim:
        now = 0.0
        metrics = None

    mx = Metrics(FakeSim(), period=1.0, max_samples=3)
    for t in (0.25, 0.5):  # below the first grid point: no samples
        mx.on_step(t, queue_depth=1)
    assert mx.n_samples == 0
    mx.on_step(1.5, queue_depth=2)   # crossed 1.0
    mx.on_step(1.7, queue_depth=2)   # still before 2.0: skipped
    mx.on_step(4.0, queue_depth=3)   # crossed 2.0 (one sample, not three)
    assert mx.n_samples == 2
    t, v = mx.series["sim/queue_depth"]
    assert t == [1.5, 4.0] and v == [2.0, 3.0]
    # max_samples bounds every series; drops are counted
    mx.on_step(5.0, queue_depth=4)
    mx.on_step(6.0, queue_depth=5)
    assert len(mx.series["sim/queue_depth"][0]) == 3
    assert mx.n_dropped > 0


def test_constructor_validation_and_detach():
    class FakeSim:
        now = 0.0
        metrics = None

    with pytest.raises(ValueError):
        Metrics(FakeSim(), period=0.0)
    with pytest.raises(ValueError):
        Metrics(FakeSim(), max_samples=0)
    sim = FakeSim()
    mx = Metrics(sim)
    assert sim.metrics is mx
    mx.detach()
    assert sim.metrics is None


def test_unmetered_run_pays_no_metrics_overhead():
    """Mirror of the profiler's zero-overhead assertion: all metrics
    hooks are guarded by ``sim.metrics is None`` checks, so a detached
    run must not be slower than a metered one (best-of-3, generous
    noise margin)."""
    import time

    from repro.apps import cg

    def best_of(n, metered):
        best = float("inf")
        for _ in range(n):
            rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 21, metrics=metered)
            if not metered:
                assert rt.sim.metrics is None
            t0 = time.perf_counter()
            rt.run(cg.make_program("T", niter=1))
            best = min(best, time.perf_counter() - t0)
        return best

    plain = best_of(3, metered=False)
    metered = best_of(3, metered=True)
    assert plain <= metered * 1.5, (
        f"unmetered run ({plain:.3f}s) slower than metered ({metered:.3f}s): "
        "a metrics hook is doing work while detached"
    )


def test_metrics_import_surface():
    assert SamplerMetrics is Metrics
