"""Tests for the simulated VM subsystem and the §5.1 atomic page update
problem: the naive strategy exhibits the torn-read race of Figure 4, the
four dual-mapping strategies do not."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.vm import (
    PhysicalMemory,
    AddressSpace,
    ProtectionFault,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    PROT_RW,
    strategy_by_name,
    STRATEGY_NAMES,
    NaiveInPlaceStrategy,
    LINUX_24,
    AIX_433,
)
from repro.vm.strategies import SimpleExecutor

PAGE = 4096


# ------------------------------------------------------------- memory
def test_physical_memory_frames_are_views():
    phys = PhysicalMemory(4, PAGE)
    v = phys.frame_view(2)
    v[:] = 7
    assert phys.buffer[2 * PAGE] == 7
    assert phys.buffer[3 * PAGE] == 0


def test_physical_memory_read_write_frame():
    phys = PhysicalMemory(2, PAGE)
    data = bytes(range(256)) * 16
    phys.write_frame(1, data)
    assert phys.read_frame(1) == data


def test_physical_memory_bounds():
    phys = PhysicalMemory(2, PAGE)
    with pytest.raises(IndexError):
        phys.frame_view(2)
    with pytest.raises(ValueError):
        phys.write_frame(0, b"short")
    with pytest.raises(ValueError):
        PhysicalMemory(0, PAGE)


# ------------------------------------------------------------- address space
def make_space(n_pages=4):
    phys = PhysicalMemory(n_pages, PAGE)
    space = AddressSpace(phys)
    space.map_identity(n_pages, prot=PROT_NONE)
    return phys, space


def test_read_fault_on_protected_page():
    _phys, space = make_space()
    with pytest.raises(ProtectionFault) as e:
        space.read(100, 8)
    assert e.value.vpage == 0
    assert not e.value.is_write


def test_write_fault_on_readonly_page():
    _phys, space = make_space()
    space.protect(0, PROT_READ)
    space.read(0, 8)  # fine
    with pytest.raises(ProtectionFault) as e:
        space.write(0, b"x")
    assert e.value.is_write


def test_fault_reports_first_offending_page():
    _phys, space = make_space()
    space.protect(0, PROT_READ)
    # range spans pages 0 and 1; page 1 is PROT_NONE
    with pytest.raises(ProtectionFault) as e:
        space.read(PAGE - 4, 8)
    assert e.value.vpage == 1


def test_rw_page_read_write_roundtrip():
    _phys, space = make_space()
    space.protect(1, PROT_RW)
    space.write(PAGE + 10, b"hello")
    assert space.read(PAGE + 10, 5) == b"hello"


def test_cross_page_write_and_read():
    _phys, space = make_space()
    for p in range(4):
        space.protect(p, PROT_RW)
    blob = bytes(range(200)) * 50  # 10000 bytes, spans 3 pages
    space.write(100, blob)
    assert space.read(100, len(blob)) == blob


def test_view_zero_copy():
    phys, space = make_space()
    space.protect(0, PROT_RW)
    v = space.view(16, 32)
    v[:] = 9
    assert phys.buffer[16] == 9


def test_unmapped_page_faults():
    _phys, space = make_space()
    space.unmap(0)
    with pytest.raises(ProtectionFault):
        space.check_range(0, 4, write=False)
    with pytest.raises(KeyError):
        space.protect(0, PROT_READ)


def test_fault_counter():
    _phys, space = make_space()
    for _ in range(3):
        with pytest.raises(ProtectionFault):
            space.read(0, 1)
    assert space.n_faults == 3


# ------------------------------------------------------------- strategies
def _run_update(strategy_name, profile=LINUX_24, concurrent_reader=False):
    """Run one page update; optionally race a reader against it.

    Returns (sim, strategy, reader_observations).
    """
    sim = Simulator()
    phys = PhysicalMemory(1, PAGE)
    space = AddressSpace(phys)
    space.map_identity(1, prot=PROT_NONE)
    # old content: zeros; new content: 0xAB everywhere
    new_page = b"\xab" * PAGE
    strat = strategy_by_name(strategy_name, profile=profile)
    ex = SimpleExecutor(sim)
    observations = []

    def updater():
        yield from strat.update_page(ex, space, 0, new_page, PROT_READ)

    def reader():
        # Poll until the page is readable without faulting AND the update
        # has visibly begun (head bytes new), then immediately inspect the
        # tail: under the naive strategy the protection opens before the
        # copy completes, so the tail can still hold stale data.
        while True:
            try:
                space.check_range(0, PAGE, write=False)
            except ProtectionFault:
                yield sim.timeout(1e-7)
                continue
            data = np.frombuffer(space.read(0, PAGE), dtype=np.uint8)
            if data[0] != 0xAB:
                yield sim.timeout(1e-7)
                continue
            observations.append((data[:10].tolist(), data[-10:].tolist()))
            return

    sim.process(updater())
    if concurrent_reader:
        sim.process(reader())
    sim.run()
    return sim, strat, observations


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_update_page_installs_new_content(name):
    sim, strat, _obs = _run_update(name)
    assert strat.n_updates == 1


def test_naive_strategy_exhibits_torn_read():
    _sim, _strat, obs = _run_update("naive", concurrent_reader=True)
    head, tail = obs[0]
    # reader slipped in mid-update: first half new, second half still old
    assert head == [0xAB] * 10
    assert tail == [0] * 10


@pytest.mark.parametrize("name", [n for n in STRATEGY_NAMES if n != "naive"])
def test_dual_mapping_strategies_are_race_free(name):
    _sim, _strat, obs = _run_update(name, concurrent_reader=True)
    head, tail = obs[0]
    # the reader could only get in after the commit: fully new content
    assert head == [0xAB] * 10
    assert tail == [0xAB] * 10


def test_racy_flag_matches_behaviour():
    for name in STRATEGY_NAMES:
        strat = strategy_by_name(name)
        assert strat.racy == (name == "naive")


def _steady_state_update_cost(name, profile):
    """Per-update cost after the one-time setup is amortised."""
    sim = Simulator()
    phys = PhysicalMemory(1, PAGE)
    space = AddressSpace(phys)
    space.map_identity(1, prot=PROT_NONE)
    strat = strategy_by_name(name, profile=profile)
    ex = SimpleExecutor(sim)
    page = b"\xab" * PAGE
    marks = []

    def run():
        for _ in range(5):
            space.protect(0, PROT_NONE)
            yield from strat.update_page(ex, space, 0, page, PROT_READ)
            marks.append(sim.now)

    sim.process(run())
    sim.run()
    return (marks[-1] - marks[0]) / 4


def test_linux_costs_comparable_aix_file_mapping_slow():
    times = {}
    for profile, label in ((LINUX_24, "linux"), (AIX_433, "aix")):
        for name in STRATEGY_NAMES:
            times[(label, name)] = _steady_state_update_cost(name, profile)
    linux = [times[("linux", n)] for n in STRATEGY_NAMES if n != "naive"]
    # §5.1: "all the methods achieve comparable performance on an SMP Linux
    # cluster" — within 3x of each other
    assert max(linux) / min(linux) < 3.0
    # "the conventional file mapping method shows poor performance on IBM SP
    # ... AIX": at least 5x slower than the best AIX alternative
    aix_others = [
        times[("aix", n)] for n in STRATEGY_NAMES if n not in ("naive", "file-mapping")
    ]
    assert times[("aix", "file-mapping")] > 5 * min(aix_others)


def test_wrong_size_update_rejected():
    sim = Simulator()
    phys = PhysicalMemory(1, PAGE)
    space = AddressSpace(phys)
    space.map_identity(1)
    strat = strategy_by_name("sysv-shm")
    ex = SimpleExecutor(sim)

    def updater():
        with pytest.raises(ValueError):
            yield from strat.update_page(ex, space, 0, b"tiny", PROT_READ)

    sim.process(updater())
    sim.run()


def test_unknown_strategy_name():
    with pytest.raises(KeyError):
        strategy_by_name("voodoo")


def test_setup_cost_charged_once():
    sim = Simulator()
    phys = PhysicalMemory(1, PAGE)
    space = AddressSpace(phys)
    space.map_identity(1, prot=PROT_NONE)
    strat = strategy_by_name("fork-child")  # large setup cost
    ex = SimpleExecutor(sim)
    page = b"\x01" * PAGE

    marks = []

    def run():
        yield from strat.update_page(ex, space, 0, page, PROT_READ)
        marks.append(sim.now)
        space.protect(0, PROT_NONE)
        yield from strat.update_page(ex, space, 0, page, PROT_READ)
        marks.append(sim.now)

    sim.process(run())
    sim.run()
    first, second = marks[0], marks[1] - marks[0]
    assert first > second  # setup amortised away after the first update
