"""Exposition-format tests: Prometheus, JSON dump, CSV, Chrome counters.

The acceptance bar: the Prometheus text parses and round-trips, the JSON
dump survives export -> load unchanged, and a loaded dump exports
byte-identically to the live one.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.apps import helmholtz
from repro.metrics import export as mexport
from repro.runtime import ParadeRuntime


@pytest.fixture(scope="module")
def dump():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20, metrics=True)
    rt.run(helmholtz.make_program(n=16, m=16, max_iters=2))
    return rt.metrics.dump(meta={"app": "helmholtz-tiny", "nodes": 2})


def test_prometheus_parses_and_prefixes(dump):
    text = mexport.to_prometheus(dump)
    parsed = mexport.parse_prometheus(text)
    assert parsed, "exposition yielded no samples"
    assert all(name.startswith("parade_") for name, _ in parsed)


def test_prometheus_histogram_lines_are_cumulative(dump):
    text = mexport.to_prometheus(dump)
    parsed = mexport.parse_prometheus(text)
    hist = [inst for inst in dump["instruments"] if inst["kind"] == "histogram"]
    assert hist, "run produced no histograms"
    for inst in hist:
        name = mexport.prom_name(inst["name"])
        base = tuple(sorted(dict(inst.get("labels", {})).items()))
        rows = sorted(
            (float("inf") if dict(labels)["le"] == "+Inf" else float(dict(labels)["le"]), v)
            for (n, labels) in parsed
            if n == f"{name}_bucket"
            and tuple(sorted((k, lv) for k, lv in labels if k != "le")) == base
            for v in [parsed[(n, labels)]]
        )
        counts = [c for _, c in rows]
        assert counts == sorted(counts), f"{name} buckets not cumulative"
        assert rows[-1] == (float("inf"), inst["count"])
        assert parsed[(f"{name}_count", base)] == inst["count"]
        assert parsed[(f"{name}_sum", base)] == pytest.approx(inst["sum"])


def test_prometheus_parser_rejects_garbage():
    with pytest.raises(ValueError):
        mexport.parse_prometheus("parade_ok 1\nthis is not exposition format\n")


def test_prom_name_sanitises():
    assert mexport.prom_name("cluster/node0/cpu_busy") == "parade_cluster_node0_cpu_busy"
    assert mexport.prom_name("net/link/0->1/msgs") == "parade_net_link_0_1_msgs"


def test_json_dump_round_trip(tmp_path, dump):
    path = tmp_path / "m.json"
    mexport.write_dump(dump, str(path))
    loaded = mexport.load_dump(str(path))
    assert loaded == json.loads(json.dumps(dump))
    # a loaded dump exports byte-identically to the live one
    assert mexport.to_prometheus(loaded) == mexport.to_prometheus(dump)
    assert mexport.to_csv(loaded) == mexport.to_csv(dump)


def test_load_dump_rejects_non_dumps(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"foo": 1}')
    with pytest.raises(ValueError):
        mexport.load_dump(str(bad))


def test_csv_shape(dump):
    lines = mexport.to_csv(dump).splitlines()
    assert lines[0] == "series,time,value"
    n_points = sum(len(s["t"]) for s in dump["series"].values())
    assert len(lines) == 1 + n_points
    series, t, v = lines[1].split(",")
    assert series in dump["series"]
    float(t), float(v)  # both cells numeric


def test_chrome_counter_events(dump, tmp_path):
    events = mexport.to_chrome_events(dump)
    n_points = sum(len(s["t"]) for s in dump["series"].values())
    assert len(events) == n_points
    assert all(ev.ph == "C" for ev in events)
    assert all(ev.name.startswith("metrics/") for ev in events)
    ts = [ev.ts for ev in events]
    assert ts == sorted(ts)
    out = tmp_path / "trace.json"
    n = mexport.write_chrome(dump, str(out))
    assert n >= len(events)  # plus the writer's metadata records
    with open(out) as fh:
        doc = json.load(fh)
    assert len(doc["traceEvents"]) == n


def test_fmt_value_canonical():
    assert mexport._fmt_value(3.0) == "3"
    assert mexport._fmt_value(float("inf")) == "+Inf"
    assert mexport._fmt_value(0.5) == "0.5"
    assert not math.isnan(float(mexport._fmt_value(1e-9)))
