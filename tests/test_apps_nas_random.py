"""Tests for the NAS LCG stream: exactness, jump-ahead, vectorisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.nas_random import (
    NasRandom,
    randlc,
    ipow46,
    A,
    MOD,
    DEFAULT_SEED,
)


def _sequential(n, seed=DEFAULT_SEED):
    s = seed
    out = []
    for _ in range(n):
        s, r = randlc(s)
        out.append(r)
    return np.array(out)


def test_randlc_first_values_exact():
    s, r = randlc(DEFAULT_SEED)
    assert s == (A * DEFAULT_SEED) % MOD
    assert r == s * 0.5 ** 46


def test_generate_matches_sequential_exactly():
    rng = NasRandom()
    got = rng.generate(5000)
    assert np.array_equal(got, _sequential(5000))


def test_generate_across_lane_boundary():
    n = NasRandom.LANES * 2 + 17
    rng = NasRandom()
    assert np.array_equal(rng.generate(n), _sequential(n))


def test_generate_continues_state():
    rng = NasRandom()
    first = rng.generate(100)
    second = rng.generate(100)
    ref = _sequential(200)
    assert np.array_equal(np.concatenate([first, second]), ref)


def test_skip_equals_generate_prefix():
    rng = NasRandom()
    rng.skip(1234)
    ref = _sequential(1240)
    assert rng.next() == ref[1234]


def test_skip_zero_is_noop():
    rng = NasRandom()
    rng.skip(0)
    assert rng.next() == _sequential(1)[0]


@settings(max_examples=30, deadline=None)
@given(k=st.integers(0, 100_000))
def test_ipow46_matches_repeated_multiplication(k):
    assert ipow46(A, k) == pow(A, k, MOD)


@settings(max_examples=20, deadline=None)
@given(n1=st.integers(1, 2000), n2=st.integers(1, 2000))
def test_stream_split_property(n1, n2):
    """generate(n1) + generate(n2) == generate(n1+n2) (stream consistency)."""
    a = NasRandom()
    left = np.concatenate([a.generate(n1), a.generate(n2)])
    b = NasRandom()
    right = b.generate(n1 + n2)
    assert np.array_equal(left, right)


@settings(max_examples=20, deadline=None)
@given(offset=st.integers(0, 50_000), n=st.integers(1, 500))
def test_jump_ahead_consistency_property(offset, n):
    """skip(offset) then generate(n) equals the slice of the full stream —
    the property NPB's EP parallelisation relies on."""
    jump = NasRandom()
    jump.skip(offset)
    got = jump.generate(n)
    full = NasRandom()
    ref = full.generate(offset + n)[offset:]
    assert np.array_equal(got, ref)


def test_values_in_unit_interval():
    v = NasRandom().generate(10000)
    assert np.all(v > 0.0) and np.all(v < 1.0)


def test_invalid_seed_rejected():
    with pytest.raises(ValueError):
        NasRandom(0)
    with pytest.raises(ValueError):
        NasRandom(MOD)


def test_negative_counts_rejected():
    rng = NasRandom()
    with pytest.raises(ValueError):
        rng.generate(-1)
    with pytest.raises(ValueError):
        rng.skip(-5)


def test_generate_zero_returns_empty():
    rng = NasRandom()
    out = rng.generate(0)
    assert out.size == 0
    assert rng.next() == _sequential(1)[0]
