"""Satellite coverage: empty-range accessors and fast-path cache
invalidation across page-state transitions."""

import numpy as np

from repro.dsm import PageState, SharedArray
from repro.testing import build_dsm, run_all


def test_empty_range_accessors_take_no_protocol_action():
    """start == stop ranges on a page this node has never fetched must
    not fault, fetch, or dirty anything."""
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "e", (512,))  # home node 0

    def worker():
        v = arr.on(1)  # node 1 holds no copy
        got = yield from v.get(3, 3)
        assert got.size == 0
        w = yield from v.writable(5, 5)
        assert w.size == 0
        yield from v.set(np.empty(0), start=7)

    run_all(cluster, [worker()])
    n1 = dsm.node(1)
    assert n1.stats.pages_fetched == 0
    assert n1.stats.read_faults == 0
    assert n1.stats.write_faults == 0
    assert not n1.dirty
    page0 = arr.segment.addr // dsm.page_size
    assert n1.state[page0] == PageState.INVALID


def test_empty_range_at_array_bounds():
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "e", (16,))

    def worker():
        v = arr.on(0)
        head = yield from v.get(0, 0)
        tail = yield from v.get(16, 16)
        assert head.size == 0 and tail.size == 0
        yield from v.set(np.empty(0), start=16)

    run_all(cluster, [worker()])


def test_fast_path_cache_dropped_on_every_transition():
    """The positive-access cache must die whenever a page changes state:
    write-fault (READ_ONLY->DIRTY), flush (DIRTY->READ_ONLY), invalidate
    (READ_ONLY->INVALID), update-done (TRANSIENT->READ_ONLY)."""
    cluster, _cts, dsm = build_dsm(2)
    arr = SharedArray.allocate(dsm, "f", (512,))
    addr = arr.segment.addr
    page = addr // dsm.page_size
    n0, n1 = dsm.node(0), dsm.node(1)

    def w0():
        v = arr.on(0)
        # home starts READ_ONLY: read cached, write not
        assert n0.try_fast_access(addr, 8, False)
        assert not n0.try_fast_access(addr, 8, True)
        yield from v.set_scalar(0, 1.0)  # write-fault -> DIRTY
        assert n0.state[page] == PageState.DIRTY
        assert n0.try_fast_access(addr, 8, True)
        yield from n0.barrier()  # flush: DIRTY -> READ_ONLY
        assert n0.state[page] == PageState.READ_ONLY
        assert not n0.try_fast_access(addr, 8, True), (
            "stale writable cache survived the flush transition"
        )
        assert n0.try_fast_access(addr, 8, False)
        yield from n0.barrier()  # node 1 writes this epoch
        yield from n0.barrier()  # notice: home migrates to 1, n0 INVALID
        assert n0.state[page] == PageState.INVALID
        assert not n0.try_fast_access(addr, 8, False), (
            "stale readable cache survived the invalidate transition"
        )
        got = yield from v.get_scalar(0)  # fault -> TRANSIENT -> READ_ONLY
        assert float(got) == 2.0
        assert n0.state[page] == PageState.READ_ONLY
        assert n0.try_fast_access(addr, 8, False)
        assert not n0.try_fast_access(addr, 8, True)
        yield from n0.barrier()

    def w1():
        yield from n1.barrier()
        yield from arr.on(1).set_scalar(0, 2.0)
        yield from n1.barrier()
        yield from n1.barrier()
        yield from n1.barrier()

    run_all(cluster, [w0(), w1()])


def test_fast_path_disabled_config_never_caches():
    from repro.dsm.config import PARADE_DSM

    cluster, _cts, dsm = build_dsm(2, dsm_config=PARADE_DSM.replace(fast_path=False))
    arr = SharedArray.allocate(dsm, "f", (8,))
    assert not dsm.node(0).try_fast_access(arr.segment.addr, 8, False)
