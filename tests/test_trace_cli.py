"""Smoke tests for the ``python -m repro.trace`` CLI.

These run the module as a subprocess the way a user would, so the CLI
entry point can never silently rot (satellite of the tracing PR; see
docs/TRACING.md).  In-process tests of main() cover flag handling.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.trace", *args],
        capture_output=True, text=True, env=env, timeout=300,
    )


def test_cli_help():
    proc = _run_cli("--help")
    assert proc.returncode == 0, proc.stderr
    assert "usage" in proc.stdout.lower()
    assert "perfetto" in proc.stdout.lower() or "chrome" in proc.stdout.lower()


def test_cli_tiny_traced_run(tmp_path):
    out = tmp_path / "trace.json"
    csv = tmp_path / "trace.csv"
    proc = _run_cli("helmholtz", "--nodes", "2", "-o", str(out), "--csv", str(csv))
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "protocol check: OK" in proc.stdout
    doc = json.load(open(out))
    evs = doc["traceEvents"]
    assert evs
    for e in evs:
        assert "ph" in e and "pid" in e and "name" in e
        if e["ph"] != "M":
            assert "ts" in e and "tid" in e
    assert csv.exists() and csv.read_text().startswith("ts,dur,cat,name")


# in-process flag coverage (fast; no simulation)
def test_cli_list(capsys):
    from repro.trace.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for app in ("helmholtz", "ep", "cg", "md"):
        assert app in out


def test_cli_unknown_app(capsys):
    from repro.trace.__main__ import main

    assert main(["nosuchapp"]) == 1
    assert "unknown app" in capsys.readouterr().err


def test_cli_unknown_exec(capsys):
    from repro.trace.__main__ import main

    assert main(["helmholtz", "--exec", "9Thread-9CPU"]) == 1
    assert "unknown exec config" in capsys.readouterr().err


def test_cli_unknown_category(capsys):
    from repro.trace.__main__ import main

    assert main(["helmholtz", "--cats", "dsm.page,bogus"]) == 1
    assert "unknown categories" in capsys.readouterr().err


def test_cli_in_process_run_with_category_filter(tmp_path, capsys):
    from repro.trace.__main__ import main

    out = tmp_path / "t.json"
    rc = main(["helmholtz", "--nodes", "2", "-o", str(out),
               "--cats", "dsm.page,dsm.barrier"])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "protocol check: OK" in stdout
    doc = json.load(open(out))
    cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] != "M"}
    assert cats <= {"dsm.page", "dsm.barrier"}
