"""Golden determinism tests: the hot-path engine is invisible to the protocol.

The committed goldens under ``tests/goldens/`` were recorded *before* the
fast-path / vectorisation work landed.  These tests re-run the same
workloads and assert that virtual times, per-node protocol statistics, and
the replay-checker-validated trace stream are **identical** — any
divergence means an optimisation changed observable behaviour, not just
wall-clock speed.

Regenerate goldens (only when an *intentional* protocol change lands)::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_determinism_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.apps import helmholtz
from repro.runtime import ParadeRuntime
from repro.trace import TraceRecorder, check_trace

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
GOLDEN = GOLDEN_DIR / "determinism_helmholtz_4node.json"

#: fixed workload: helmholtz 48x48, 3 iterations, 4 nodes
N_NODES = 4
POOL_BYTES = 1 << 21


def _make_runtime(**dsm_kw) -> ParadeRuntime:
    kw = {}
    if dsm_kw:
        from repro.dsm.config import PARADE_DSM

        kw["dsm_config"] = PARADE_DSM.replace(**dsm_kw)
    return ParadeRuntime(n_nodes=N_NODES, pool_bytes=POOL_BYTES, **kw)


def _run(traced: bool, **dsm_kw):
    rt = _make_runtime(**dsm_kw)
    rec = None
    if traced:
        rec = TraceRecorder(rt.sim, capacity=1 << 18, queue_stride=64)
    res = rt.run(helmholtz.make_program(n=48, m=48, max_iters=3))
    return rt, res, rec


def _trace_digest(events) -> str:
    h = hashlib.sha256()
    for ev in events:
        h.update(json.dumps(ev.as_dict(), sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()


def _per_node_stats(rt: ParadeRuntime):
    return [dn.stats.as_dict() for dn in rt.dsm.nodes]


def _snapshot() -> dict:
    rt, res, rec = _run(traced=True)
    report = check_trace(rec.events)
    assert report.ok, report.summary()
    return {
        "elapsed": res.elapsed,
        "region_time": res.region_time,
        "events_processed": int(res.cluster_stats["events_processed"]),
        "total_messages": int(res.cluster_stats["total_messages"]),
        "total_bytes": int(res.cluster_stats["total_bytes"]),
        "dsm_stats": res.dsm_stats,
        "per_node_stats": _per_node_stats(rt),
        "mpi_stats": res.mpi_stats,
        "barrier_epochs": [dn._barrier_epoch for dn in rt.dsm.nodes],
        "n_trace_events": rec.n_emitted,
        "trace_digest": _trace_digest(rec.events),
        "value_digest": hashlib.sha256(
            json.dumps(res.value, sort_keys=True, default=repr).encode()
        ).hexdigest(),
    }


def _load_or_regen() -> dict:
    if os.environ.get("REPRO_REGEN_GOLDENS") or not GOLDEN.exists():
        snap = _snapshot()
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    return json.loads(GOLDEN.read_text())


def test_virtual_time_and_stats_match_golden():
    """Stats-invariance regression: faults, fetches, diffs, lock hops and
    barrier epochs must be byte-identical to the committed golden."""
    golden = _load_or_regen()
    rt, res, _ = _run(traced=False)
    assert res.elapsed == golden["elapsed"]
    assert res.region_time == golden["region_time"]
    assert int(res.cluster_stats["total_messages"]) == golden["total_messages"]
    assert int(res.cluster_stats["total_bytes"]) == golden["total_bytes"]
    assert res.dsm_stats == golden["dsm_stats"]
    assert _per_node_stats(rt) == golden["per_node_stats"]
    assert res.mpi_stats == golden["mpi_stats"]
    assert [dn._barrier_epoch for dn in rt.dsm.nodes] == golden["barrier_epochs"]


def test_event_count_matches_golden():
    golden = _load_or_regen()
    _, res, _ = _run(traced=False)
    assert int(res.cluster_stats["events_processed"]) == golden["events_processed"]


def test_trace_stream_matches_golden_and_passes_replay_check():
    """The full trace stream (every event, in order, with args) is part of
    the behavioural contract: the fast path may not add, drop, or reorder
    protocol events."""
    golden = _load_or_regen()
    _, _, rec = _run(traced=True)
    report = check_trace(rec.events)
    assert report.ok, report.summary()
    assert rec.n_emitted == golden["n_trace_events"]
    assert _trace_digest(rec.events) == golden["trace_digest"]


def test_fast_path_on_off_equivalence():
    """The fast-path cache is a wall-clock optimisation only: with it
    disabled the run must produce the same virtual time, stats, and trace
    stream, event for event."""
    _, res_on, rec_on = _run(traced=True, fast_path=True)
    _, res_off, rec_off = _run(traced=True, fast_path=False)
    assert res_on.elapsed == res_off.elapsed
    assert res_on.dsm_stats == res_off.dsm_stats
    assert res_on.cluster_stats == res_off.cluster_stats
    assert _trace_digest(rec_on.events) == _trace_digest(rec_off.events)


def test_repeat_run_is_bit_identical():
    """Two in-process runs of the same program are event-for-event equal."""
    _, res_a, rec_a = _run(traced=True)
    _, res_b, rec_b = _run(traced=True)
    assert res_a.elapsed == res_b.elapsed
    assert res_a.dsm_stats == res_b.dsm_stats
    assert _trace_digest(rec_a.events) == _trace_digest(rec_b.events)
