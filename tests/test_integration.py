"""Full-stack integration tests: every directive in one program, plus
the determinism guarantee the whole methodology rests on."""

import numpy as np
import pytest

from repro.runtime import (
    ParadeRuntime,
    TWO_THREAD_TWO_CPU,
    ONE_THREAD_ONE_CPU,
)
from repro.cluster import ClusterConfig, FAST_ETHERNET_TCP
from repro.mpi.ops import SUM, MAX
from repro.apps import ep


def _kitchen_sink_program(n):
    """Uses parallel, for (static + dynamic), barrier, critical, atomic,
    reduction, single, master, sections, explicit locks, shared arrays and
    scalars — all in one region."""

    def program(ctx):
        data = ctx.shared_array("data", (n,))
        total = ctx.shared_scalar("total")
        peak = ctx.shared_scalar("peak")
        marker = ctx.shared_scalar("marker")
        counter = ctx.shared_array("counter", (1,), force_object=False)

        def body(tc, data, total, peak, marker, counter):
            # static for + write
            lo, hi = tc.for_range(0, n)
            v = tc.array(data)
            yield from v.set(np.arange(lo, hi, dtype=np.float64), start=lo)
            yield from tc.barrier()

            # dynamic for + read
            part = 0.0
            loop = tc.dynamic_loop(0, n, chunk=max(1, n // 16))
            while True:
                rng = yield from loop.next_chunk()
                if rng is None:
                    break
                chunk = yield from v.get(rng[0], rng[1])
                part += float(np.sum(chunk))

            # reduction + max-reduction
            yield from tc.reduce_into(total, part, SUM)
            m = yield from tc.reduce_value(float(tc.tid), MAX)
            assert m == float(tc.nthreads - 1)

            # critical + atomic on a small scalar
            yield from tc.critical_update(peak, 1.0, SUM)
            yield from tc.atomic_update(peak, 1.0, SUM)

            # single (+ broadcast) and master
            def sbody():
                return 123.0
                yield

            got = yield from tc.single(body_gen_fn=sbody, shared_scalar=marker)
            assert got == 123.0

            def mbody():
                return "master-only"
                yield

            mres = yield from tc.master(mbody)
            if tc.tid == 0:
                assert mres == "master-only"

            # sections
            def make(k):
                def sec():
                    return k
                    yield

                return sec

            yield from tc.sections([make(k) for k in range(3)])

            # explicit OpenMP lock guarding an HLRC counter
            cv = tc.array(counter)
            yield from tc.set_lock("guard")
            cur = yield from cv.get_scalar(0)
            yield from cv.set_scalar(0, float(cur) + 1.0)
            yield from tc.unset_lock("guard")
            yield from tc.barrier()

        yield from ctx.parallel(body, data, total, peak, marker, counter)
        t = yield from ctx.scalar(total).get()
        p = yield from ctx.scalar(peak).get()
        c = yield from ctx.array(counter).get_scalar(0)
        return float(t), float(p), float(c)

    return program


@pytest.mark.parametrize("mode", ["parade", "sdsm"])
def test_kitchen_sink_all_directives(mode):
    n = 4000
    rt = ParadeRuntime(
        n_nodes=4, exec_config=TWO_THREAD_TWO_CPU, mode=mode, pool_bytes=1 << 21
    )
    total, peak, counter = rt.run(_kitchen_sink_program(n)).value
    nthreads = 8
    assert total == n * (n - 1) / 2
    assert peak == 2.0 * nthreads
    assert counter == nthreads


def test_simulation_is_deterministic():
    """Two identical runs produce bit-identical virtual times and protocol
    statistics — the property the whole evaluation methodology rests on."""
    def once():
        rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21)
        res = rt.run(_kitchen_sink_program(2000))
        return res.elapsed, res.value, res.dsm_stats, res.cluster_stats["total_messages"]

    a = once()
    b = once()
    assert a == b


def test_ethernet_slower_than_via_end_to_end():
    cfg_tcp = ClusterConfig(interconnect=FAST_ETHERNET_TCP)

    def run(cluster_config=None):
        rt = ParadeRuntime(
            n_nodes=4, pool_bytes=1 << 21, cluster_config=cluster_config
        )
        return rt.run(_kitchen_sink_program(2000)).elapsed

    assert run(cfg_tcp) > run(None)  # default = cLAN VIA


def test_heterogeneous_cluster_slower_than_uniform_fast():
    uniform = ClusterConfig(cpu_mhz=(600,) * 8)

    def run(cc):
        rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21, cluster_config=cc)
        return rt.run(_kitchen_sink_program(2000)).elapsed

    t_paper = run(None)          # 550/600 mix (paper testbed)
    t_uniform = run(uniform)
    assert t_uniform < t_paper   # the 550 MHz nodes drag the barriers


def test_ep_identical_results_across_node_counts():
    """Work partitioning must not change EP's result (up to floating-point
    summation order: counts are exact, sums agree to ~1e-9)."""
    baseline = None
    for p in (1, 2, 4, 8):
        rt = ParadeRuntime(n_nodes=p, pool_bytes=1 << 20)
        res = rt.run(ep.make_program("T"))
        if baseline is None:
            baseline = res.value
        else:
            assert res.value.sx == pytest.approx(baseline.sx, abs=1e-9)
            assert res.value.sy == pytest.approx(baseline.sy, abs=1e-9)
            assert np.array_equal(res.value.counts, baseline.counts)


def test_1t1c_uses_single_cpu_per_node():
    rt = ParadeRuntime(n_nodes=2, exec_config=ONE_THREAD_ONE_CPU, pool_bytes=1 << 20)
    assert all(n.cpus.capacity == 1 for n in rt.cluster.nodes)
    rt2 = ParadeRuntime(n_nodes=2, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)
    assert all(n.cpus.capacity == 2 for n in rt2.cluster.nodes)
