"""diff_gap > 0 precondition enforcement at the home.

``compute_diff`` with a coalescing gap emits runs that include *gap*
bytes — the writer's (possibly stale) copy of data it never wrote.  That
is only sound with a single writer per page per interval; a second
writer's bytes inside another writer's gap would be silently clobbered
at the home.  The home now detects the overlap and raises
:class:`DiffGapClobber` instead of corrupting the page, and reports
non-overlapping same-interval multi-writer merges to the sanitizer.
"""

import numpy as np
import pytest

from repro.dsm import SharedArray
from repro.dsm.config import PARADE_DSM
from repro.dsm.node import DiffGapClobber
from repro.sanitizer import Sanitizer
from repro.testing import build_dsm, run_all


def _find_clobber(exc):
    while exc is not None:
        if isinstance(exc, DiffGapClobber):
            return exc
        exc = exc.__cause__
    return None


def test_two_writer_false_sharing_overlap_raises():
    """Writer 1's coalesced run spans the bytes writer 2 wrote: the home
    must refuse to apply the clobbering diff."""
    cfg = PARADE_DSM.replace(diff_gap=64)
    cluster, _cts, dsm = build_dsm(3, dsm_config=cfg)
    arr = SharedArray.allocate(dsm, "g", (512,))  # one 4 KiB page, home 0

    def w1():
        v = arr.on(1)
        # elements 0 and 4: byte runs [0,8) and [32,40), 24-byte gap
        # < diff_gap, so the diff coalesces to one run [0,40) carrying
        # node 1's stale copy of bytes [8,32)
        yield from v.set_scalar(0, 1.0)
        yield from v.set_scalar(4, 1.0)
        yield from dsm.node(1).barrier()

    def w2():
        # element 2 = bytes [16,24): inside node 1's gap
        yield from arr.on(2).set_scalar(2, 2.0)
        yield from dsm.node(2).barrier()

    def w0():
        yield from dsm.node(0).barrier()

    with pytest.raises(Exception) as ei:
        run_all(cluster, [w0(), w1(), w2()])
    clobber = _find_clobber(ei.value)
    assert clobber is not None, f"expected DiffGapClobber in chain, got {ei.value!r}"
    assert clobber.home == 0
    assert {clobber.writer, clobber.other} == {1, 2}
    assert "single writer" in str(clobber)


def test_two_writer_disjoint_reported_to_sanitizer():
    """Non-overlapping same-interval writers don't corrupt anything (no
    gap spans them) but still violate the documented single-writer
    precondition — the sanitizer gets a finding, the run completes."""
    cfg = PARADE_DSM.replace(diff_gap=64)
    cluster, _cts, dsm = build_dsm(3, dsm_config=cfg)
    san = Sanitizer(cluster.sim, n_nodes=3, page_size=4096)
    arr = SharedArray.allocate(dsm, "g", (512,))

    def w1():
        yield from arr.on(1).set_scalar(0, 1.0)
        yield from dsm.node(1).barrier()

    def w2():
        yield from arr.on(2).set_scalar(100, 2.0)  # byte 800: far away
        yield from dsm.node(2).barrier()

    def w0():
        yield from dsm.node(0).barrier()

    run_all(cluster, [w0(), w1(), w2()])
    gap = [f for f in san.findings if f.kind == "diff-gap-multi-writer"]
    assert len(gap) == 1
    assert "writers [1, 2]" in gap[0].message


def test_lock_ordered_writer_chain_is_exempt():
    """Writers serialised by the distributed lock are NOT concurrent:
    each fetches the page (carrying the previous diff) before writing, so
    the freshness floor admits its later diff without a false clobber."""
    cfg = PARADE_DSM.replace(diff_gap=64)
    cluster, _cts, dsm = build_dsm(4, dsm_config=cfg)
    counter = SharedArray.allocate(dsm, "c", (1,), dtype=np.int64)

    def worker(nid):
        v = counter.on(nid)
        for _ in range(4):
            yield from dsm.node(nid).lock_acquire(3)
            cur = yield from v.get_scalar(0)
            yield from v.set_scalar(0, cur + 1)
            yield from dsm.node(nid).lock_release(3)
        yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(4)])
    reads = []

    def reader():
        v = yield from counter.on(0).get_scalar(0)
        reads.append(int(v))

    run_all(cluster, [reader()])
    assert reads == [16]


def test_gap_zero_never_engages_the_guard():
    """With diff_gap == 0 diffs are exact; concurrent disjoint writers of
    one page are fine and no gap bookkeeping happens."""
    cluster, _cts, dsm = build_dsm(3)  # PARADE_DSM: diff_gap=0
    arr = SharedArray.allocate(dsm, "g", (512,))

    def w(nid, idx, val):
        def gen():
            yield from arr.on(nid).set_scalar(idx, val)
            yield from dsm.node(nid).barrier()
        return gen()

    def w0():
        yield from dsm.node(0).barrier()

    run_all(cluster, [w0(), w(1, 0, 1.0), w(2, 2, 2.0)])
    assert dsm.node(0)._gap_runs == {}
    got = []

    def reader():
        v = yield from arr.on(0).get(0, 8)
        got.append(np.asarray(v).copy())

    run_all(cluster, [reader()])
    assert got[0][0] == 1.0 and got[0][2] == 2.0
