"""Backend tests: the §4 translation rules, including the structural
shapes of the paper's Figures 2 and 3."""

import pytest

from repro.translator import translate, parse, CWriter

CRITICAL_SRC = """
void reduce_x(void)
{
    double x;
    x = 0.0;
    #pragma omp parallel shared(x)
    {
        #pragma omp critical
        x = x + 1.0;
    }
}
"""

SINGLE_SRC = """
void init_x(void)
{
    double x;
    #pragma omp parallel shared(x)
    {
        #pragma omp single
        x = 3.0;
    }
}
"""


# ------------------------------------------------------------- Figure 2
def test_fig2_parade_critical_uses_pthread_plus_collective():
    out = translate(CRITICAL_SRC, "parade")
    assert "parade_pthread_lock" in out
    assert "parade_allreduce" in out
    assert "parade_pthread_unlock" in out
    # no inter-node SDSM lock on the hybrid path
    assert "parade_sdsm_lock" not in out
    assert "km_lock" not in out


def test_fig2_sdsm_critical_uses_distributed_lock():
    out = translate(CRITICAL_SRC, "sdsm")
    assert "km_lock" in out and "km_unlock" in out
    assert "allreduce" not in out
    assert "pthread" not in out


def test_fig2_delta_extracted_from_update():
    out = translate(CRITICAL_SRC, "parade")
    assert "__delta = 1.0" in out
    assert "(*__p_x) + __delta" in out


# ------------------------------------------------------------- Figure 3
def test_fig3_parade_single_uses_bcast_no_barrier():
    out = translate(SINGLE_SRC, "parade")
    assert "parade_single_begin" in out
    assert "parade_bcast" in out
    # the implicit barrier is elided (the bcast synchronises)
    assert "parade_barrier();" not in out


def test_fig3_sdsm_single_uses_lock_flag_barrier():
    out = translate(SINGLE_SRC, "sdsm")
    assert "km_lock" in out
    assert "__km_done_" in out
    assert "km_barrier();" in out
    assert "bcast" not in out


# ------------------------------------------------------------- other rules
def test_nonanalyzable_critical_falls_back_to_lock_in_parade():
    src = """
    double g(double v);
    void f(void)
    {
        double x;
        #pragma omp parallel shared(x)
        {
            #pragma omp critical
            x = x + g(x);
        }
    }
    """
    out = translate(src, "parade")
    assert "parade_sdsm_lock" in out
    assert "allreduce" not in out


def test_large_footprint_critical_falls_back():
    src = """
    void f(void)
    {
        double buf[100];
        #pragma omp parallel shared(buf)
        {
            #pragma omp critical
            buf[0] = buf[0] + 1.0;
        }
    }
    """
    out = translate(src, "parade")
    assert "parade_sdsm_lock" in out  # 800 B > 256 B threshold


def test_hybrid_threshold_configurable():
    src = """
    void f(void)
    {
        double x; double buf[100];
        #pragma omp parallel shared(x, buf)
        {
            #pragma omp critical
            x = x + buf[0];
        }
    }
    """
    # default threshold: 808 B footprint -> falls back to the lock
    assert "parade_sdsm_lock" in translate(src, "parade")
    # raised threshold: becomes a collective
    out = translate(src, "parade", hybrid_threshold=10_000)
    assert "parade_allreduce" in out


def test_atomic_maps_to_collective():
    src = """
    void f(void)
    {
        double x;
        #pragma omp parallel shared(x)
        {
            #pragma omp atomic
            x += 2.5;
        }
    }
    """
    out = translate(src, "parade")
    assert "parade_allreduce" in out
    out2 = translate(src, "sdsm")
    assert "km_lock" in out2


def test_reduction_clause_parade_elides_barrier():
    src = """
    void f(void)
    {
        int i; double s; double a[1000];
        s = 0.0;
        #pragma omp parallel shared(a, s) private(i)
        {
            #pragma omp for reduction(+: s)
            for (i = 0; i < 1000; i++) s = s + a[i];
        }
    }
    """
    out = translate(src, "parade")
    assert "__red_s = (__red_s + a[i])" in out
    assert "parade_allreduce(&__red_s" in out
    assert "barrier elided" in out
    out2 = translate(src, "sdsm")
    assert "km_lock" in out2
    assert "km_barrier();" in out2


def test_for_uses_static_chunking_both_backends():
    src = """
    void f(void)
    {
        int i; double a[100];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for
            for (i = 0; i < 100; i++) a[i] = 0.0;
        }
    }
    """
    for be, api in (("parade", "parade_loop_static"), ("sdsm", "km_loop_static")):
        out = translate(src, be)
        assert f"{api}(0, 100, &__lb, &__ub);" in out
        assert "for (i = __lb; i < __ub; i++)" in out


def test_for_nowait_skips_barrier():
    src = """
    void f(void)
    {
        int i; double a[100];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for nowait
            for (i = 0; i < 100; i++) a[i] = 0.0;
        }
    }
    """
    out = translate(src, "sdsm")
    segment = out.split("km_loop_static")[1]
    assert "km_barrier();" not in segment.split("}")[2]


def test_master_becomes_thread_zero_guard():
    src = """
    void f(void)
    {
        double x;
        #pragma omp parallel shared(x)
        {
            #pragma omp master
            x = 1.0;
        }
    }
    """
    out = translate(src, "parade")
    assert "parade_thread_id() == 0" in out


def test_barrier_directive_lowered():
    src = """
    void f(void)
    {
        #pragma omp parallel
        {
            #pragma omp barrier
        }
    }
    """
    assert "parade_barrier();" in translate(src, "parade")
    assert "km_barrier();" in translate(src, "sdsm")


def test_region_outlining_packs_shared_vars():
    out = translate(CRITICAL_SRC, "parade")
    assert "struct __parade_args_1" in out
    assert "__args_1.x = &x;" in out
    assert "parade_parallel(" in out
    assert "__parade_region_1" in out


def test_firstprivate_initialised_from_shared():
    src = """
    void f(void)
    {
        double c; double x;
        #pragma omp parallel shared(x) firstprivate(c)
        {
            x = x + c;
        }
    }
    """
    out = translate(src, "parade")
    assert "double c = *__p_c;" in out


def test_private_vars_declared_uninitialised():
    src = """
    void f(void)
    {
        int i; double x;
        #pragma omp parallel shared(x) private(i)
        { i = 0; x = i; }
    }
    """
    out = translate(src, "parade")
    assert "int i;" in out


def test_arrays_passed_as_pointers_indexing_unchanged():
    src = """
    void f(void)
    {
        int i; double a[64];
        #pragma omp parallel shared(a) private(i)
        {
            #pragma omp for
            for (i = 0; i < 64; i++) a[i] = 1.0;
        }
    }
    """
    out = translate(src, "parade")
    assert "double *a = __args->a;" in out
    assert "a[i] = 1.0" in out


def test_translate_preserves_serial_code():
    src = """
    int main(void)
    {
        int k;
        k = 3;
        return k;
    }
    """
    out = translate(src, "parade")
    assert "k = 3;" in out
    assert "return k;" in out


def test_num_threads_clause_forwarded():
    src = """
    void f(void)
    {
        double x;
        #pragma omp parallel shared(x) num_threads(4)
        { x = 1.0; }
    }
    """
    out = translate(src, "parade")
    assert "&__args_1, 4);" in out


def test_unknown_backend_rejected():
    with pytest.raises(KeyError):
        translate("int main(void){ return 0; }", "llvm")


def test_roundtrip_identity_of_plain_c():
    """CWriter(parse(src)) reparses to an equivalent tree (smoke check)."""
    src = """
    double f(double v)
    {
        int i;
        double acc;
        acc = 0.0;
        for (i = 0; i < 10; i++) {
            acc = acc + (v * i);
        }
        return acc;
    }
    """
    unit = parse(src)
    text = CWriter().write_unit(unit)
    reparsed = parse(text)
    text2 = CWriter().write_unit(reparsed)
    assert text == text2  # fixpoint after one round
