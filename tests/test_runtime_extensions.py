"""Tests for the runtime extensions: dynamic/guided scheduling (§8 future
work), sections, and the explicit OpenMP lock API."""

import numpy as np
import pytest

from repro.runtime import ParadeRuntime, TWO_THREAD_TWO_CPU, ONE_THREAD_ONE_CPU
from repro.mpi.ops import SUM


def _dyn_sum_program(n, chunk, sched):
    def program(ctx):
        total = ctx.shared_scalar("t")

        def body(tc, total):
            part = 0.0
            loop = tc.dynamic_loop(0, n, chunk=chunk, sched=sched)
            while True:
                rng = yield from loop.next_chunk()
                if rng is None:
                    break
                lo, hi = rng
                part += float(sum(range(lo, hi)))
            yield from tc.reduce_into(total, part, SUM)

        yield from ctx.parallel(body, total)
        v = yield from ctx.scalar(total).get()
        return float(v)

    return program


@pytest.mark.parametrize("sched", ["dynamic", "guided"])
@pytest.mark.parametrize("chunk", [1, 7, 64])
def test_dynamic_loop_covers_all_iterations(sched, chunk):
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
    res = rt.run(_dyn_sum_program(500, chunk, sched))
    assert res.value == 500 * 499 / 2


def test_dynamic_loop_single_node():
    rt = ParadeRuntime(n_nodes=1, exec_config=ONE_THREAD_ONE_CPU, pool_bytes=1 << 20)
    res = rt.run(_dyn_sum_program(100, 10, "dynamic"))
    assert res.value == 4950.0
    assert rt.dynamic_scheduler.total_chunks == 10


def test_guided_uses_fewer_chunks_than_dynamic():
    rt_d = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
    rt_d.run(_dyn_sum_program(1000, 4, "dynamic"))
    rt_g = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
    rt_g.run(_dyn_sum_program(1000, 4, "guided"))
    assert rt_g.dynamic_scheduler.total_chunks < rt_d.dynamic_scheduler.total_chunks


def test_dynamic_beats_static_on_imbalanced_load():
    """The paper's §8 motivation: static scheduling makes threads 'wait a
    long time at barrier due to load-imbalance'."""
    N = 200

    def make(sched):
        def program(ctx):
            def body(tc):
                if sched == "static":
                    lo, hi = tc.for_range(0, N)
                    for i in range(lo, hi):
                        yield from tc.compute(2000.0 * (i + 1))  # triangular
                else:
                    loop = tc.dynamic_loop(0, N, chunk=4, sched=sched)
                    while True:
                        rng = yield from loop.next_chunk()
                        if rng is None:
                            break
                        for i in range(*rng):
                            yield from tc.compute(2000.0 * (i + 1))
                yield from tc.barrier()

            yield from ctx.parallel(body)

        return program

    times = {}
    for sched in ("static", "dynamic"):
        rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
        times[sched] = rt.run(make(sched)).elapsed
    assert times["dynamic"] < times["static"]


def test_dynamic_loop_validation():
    rt = ParadeRuntime(n_nodes=1, pool_bytes=1 << 20)

    def program(ctx):
        def body(tc):
            with pytest.raises(ValueError):
                tc.dynamic_loop(0, 10, chunk=0)
            with pytest.raises(ValueError):
                tc.dynamic_loop(0, 10, sched="stochastic")
            return
            yield

        yield from ctx.parallel(body)

    rt.run(program)


def test_empty_dynamic_loop():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)

    def program(ctx):
        hits = []

        def body(tc):
            loop = tc.dynamic_loop(5, 5, chunk=4)
            rng = yield from loop.next_chunk()
            hits.append(rng)

        yield from ctx.parallel(body)
        return hits

    res = rt.run(program)
    assert res.value == [None] * 4


# ------------------------------------------------------------- sections
def test_sections_each_runs_once():
    rt = ParadeRuntime(n_nodes=2, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)
    ran = []

    def program(ctx):
        def body(tc):
            def make(k):
                def section():
                    ran.append(k)
                    return k * 10
                    yield

                return section

            results = yield from tc.sections([make(k) for k in range(6)])
            return results

        yield from ctx.parallel(body)

    rt.run(program)
    assert sorted(ran) == list(range(6))


def test_sections_fewer_than_threads():
    rt = ParadeRuntime(n_nodes=4, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)
    ran = []

    def program(ctx):
        def body(tc):
            def s0():
                ran.append(tc.tid)
                return None
                yield

            yield from tc.sections([s0])

        yield from ctx.parallel(body)

    rt.run(program)
    assert ran == [0]  # only thread 0 runs section 0


# ------------------------------------------------------------- explicit locks
def test_omp_lock_api_mutual_exclusion():
    rt = ParadeRuntime(n_nodes=3, exec_config=TWO_THREAD_TWO_CPU, pool_bytes=1 << 20)

    def program(ctx):
        c = ctx.shared_array("c", (1,), force_object=False)

        def body(tc, c):
            v = tc.array(c)
            for _ in range(2):
                yield from tc.set_lock("L")
                cur = yield from v.get_scalar(0)
                yield from v.set_scalar(0, float(cur) + 1.0)
                yield from tc.unset_lock("L")
            yield from tc.barrier()

        yield from ctx.parallel(body, c)
        v = yield from ctx.array(c).get_scalar(0)
        return float(v)

    res = rt.run(program)
    assert res.value == 12.0  # 6 threads x 2 increments


def test_distinct_lock_names_do_not_serialise():
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 20)
    order = []

    def program(ctx):
        def body(tc):
            name = "A" if tc.tid % 2 == 0 else "B"
            yield from tc.set_lock(name)
            order.append((tc.tid, name))
            yield tc.sim.timeout(1e-5)
            yield from tc.unset_lock(name)

        yield from ctx.parallel(body)

    rt.run(program)
    assert len(order) == 4
