"""Unit and integration tests for the MPI subset."""

import numpy as np
import pytest

from repro.mpi import nbytes_of, ANY_SOURCE, ANY_TAG, MatchQueue
from repro.mpi.ops import SUM, MAX, MIN, PROD, LAND, LOR, user_op, op_for_symbol
from repro.sim import Simulator
from conftest import build_cluster, build_comm, run_all


# ------------------------------------------------------------- ops
def test_predefined_ops_on_scalars():
    assert SUM(2, 3) == 5
    assert MAX(2, 3) == 3
    assert MIN(2, 3) == 2
    assert PROD(2, 3) == 6
    assert LAND(1, 0) is False
    assert LOR(1, 0) is True


def test_ops_on_tuples_elementwise():
    assert SUM((1, 2.5), (3, 4.5)) == (4, 7.0)
    assert MAX((1, 9), (5, 2)) == (5, 9)


def test_ops_on_numpy_arrays():
    a = np.array([1.0, 2.0])
    b = np.array([3.0, 1.0])
    assert np.array_equal(SUM(a, b), [4.0, 3.0])
    assert np.array_equal(MAX(a, b), [3.0, 2.0])


def test_ops_on_dicts():
    assert SUM({"a": 1}, {"a": 2}) == {"a": 3}
    with pytest.raises(ValueError):
        SUM({"a": 1}, {"b": 2})


def test_op_nested_tuple():
    assert SUM((1, (2, 3)), (10, (20, 30))) == (11, (22, 33))


def test_reduce_all():
    assert SUM.reduce_all([1, 2, 3, 4]) == 10
    with pytest.raises(ValueError):
        SUM.reduce_all([])


def test_user_op():
    concat = user_op(lambda a, b: a + b, name="CONCAT")
    assert concat("x", "y") == "xy"


def test_op_for_symbol():
    assert op_for_symbol("+") is SUM
    assert op_for_symbol("max") is MAX
    with pytest.raises(KeyError):
        op_for_symbol("xor")


def test_mismatched_tuple_lengths_rejected():
    with pytest.raises(ValueError):
        SUM((1, 2), (1, 2, 3))


# ------------------------------------------------------------- datatypes
def test_nbytes_of_numpy():
    assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
    assert nbytes_of(np.float32(1.0)) == 4


def test_nbytes_of_scalars():
    assert nbytes_of(3) == 8
    assert nbytes_of(3.14) == 8
    assert nbytes_of(True) == 1
    assert nbytes_of(None) == 0
    assert nbytes_of(1 + 2j) == 16


def test_nbytes_of_containers():
    assert nbytes_of((1.0, 2.0, 3.0)) == 24
    assert nbytes_of([1, 2]) == 16
    assert nbytes_of({"k": 1.0}) == 1 + 8
    assert nbytes_of(b"abcd") == 4
    assert nbytes_of("hi") == 2


# ------------------------------------------------------------- matching
def test_match_queue_posted_then_delivered():
    sim = Simulator()
    q = MatchQueue(sim)
    ev = q.post(source=2, tag="t")
    assert not ev.triggered
    q.deliver(2, "t", "payload")
    assert ev.triggered
    assert ev.value == (2, "t", "payload")


def test_match_queue_unexpected_then_posted():
    sim = Simulator()
    q = MatchQueue(sim)
    q.deliver(1, "a", "early")
    ev = q.post(source=ANY_SOURCE, tag="a")
    assert ev.triggered and ev.value[2] == "early"


def test_match_queue_wildcards():
    sim = Simulator()
    q = MatchQueue(sim)
    ev = q.post(source=ANY_SOURCE, tag=ANY_TAG)
    q.deliver(7, "whatever", 1)
    assert ev.value == (7, "whatever", 1)


def test_match_queue_tag_mismatch_queues():
    sim = Simulator()
    q = MatchQueue(sim)
    ev = q.post(source=0, tag="want")
    q.deliver(0, "other", 1)
    assert not ev.triggered
    assert q.pending_unexpected == 1
    q.deliver(0, "want", 2)
    assert ev.triggered


def test_match_queue_fifo_among_matches():
    sim = Simulator()
    q = MatchQueue(sim)
    q.deliver(0, "t", "first")
    q.deliver(0, "t", "second")
    assert q.post(0, "t").value[2] == "first"
    assert q.post(0, "t").value[2] == "second"


# ------------------------------------------------------------- communicator
@pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
def test_allreduce_all_ranks_get_total(p):
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        total = yield from rc.allreduce(rc.rank + 1, op=SUM)
        results[rc.rank] = total

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    assert all(v == p * (p + 1) // 2 for v in results.values())


@pytest.mark.parametrize("root", [0, 1, 3])
def test_bcast_from_any_root(root):
    p = 4
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        v = yield from rc.bcast("secret" if rc.rank == root else None, root=root)
        results[rc.rank] = v

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    assert all(v == "secret" for v in results.values())


def test_reduce_only_root_gets_value():
    p = 4
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        v = yield from rc.reduce(rc.rank, op=MAX, root=2)
        results[rc.rank] = v

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    assert results[2] == 3
    assert all(results[r] is None for r in range(p) if r != 2)


def test_gather_and_scatter():
    p = 4
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        g = yield from rc.gather(rc.rank * 2, root=0)
        values = [v * 10 for v in g] if rc.rank == 0 else None
        s = yield from rc.scatter(values, root=0)
        results[rc.rank] = (g, s)

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    assert results[0][0] == [0, 2, 4, 6]
    assert all(results[r][0] is None for r in range(1, p))
    assert [results[r][1] for r in range(p)] == [0, 20, 40, 60]


def test_allgather():
    p = 3
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        g = yield from rc.allgather(rc.rank ** 2)
        results[rc.rank] = g

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    assert all(v == [0, 1, 4] for v in results.values())


def test_p2p_tag_selectivity():
    cluster = build_cluster(2)
    _cts, comm = build_comm(cluster)
    got = []

    def sender(rc):
        yield from rc.send("for-b", 1, tag="b")
        yield from rc.send("for-a", 1, tag="a")

    def receiver(rc):
        a = yield from rc.recv(source=0, tag="a")
        b = yield from rc.recv(source=0, tag="b")
        got.append((a, b))

    run_all(cluster, [sender(comm.rank(0)), receiver(comm.rank(1))])
    assert got == [("for-a", "for-b")]


def test_send_to_invalid_rank_raises():
    cluster = build_cluster(2)
    _cts, comm = build_comm(cluster)

    def main(rc):
        with pytest.raises(ValueError):
            yield from rc.send(1, dest=9)

    run_all(cluster, [main(comm.rank(0))])


def test_irecv_completes_later():
    cluster = build_cluster(2)
    _cts, comm = build_comm(cluster)
    got = []

    def receiver(rc):
        req = rc.irecv(source=0, tag="x")
        yield cluster.sim.timeout(0)  # request posted before send arrives
        src, tag, payload = yield req
        got.append(payload)

    def sender(rc):
        yield cluster.sim.timeout(1e-4)
        yield from rc.send("late", 1, tag="x")

    run_all(cluster, [receiver(comm.rank(1)), sender(comm.rank(0))])
    assert got == ["late"]


def test_barrier_synchronises_ranks():
    p = 4
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    after = {}

    def main(rc):
        yield cluster.sim.timeout(rc.rank * 1e-3)  # stagger arrivals
        yield from rc.barrier()
        after[rc.rank] = cluster.now

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    slowest_arrival = (p - 1) * 1e-3
    assert all(t >= slowest_arrival for t in after.values())


def test_allreduce_numpy_payload():
    p = 4
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)
    results = {}

    def main(rc):
        v = np.full(8, float(rc.rank))
        total = yield from rc.allreduce(v, op=SUM)
        results[rc.rank] = total

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    for r in range(p):
        assert np.array_equal(results[r], np.full(8, 6.0))


def test_collective_message_count_scales_logarithmically():
    counts = {}
    for p in (4, 8):
        cluster = build_cluster(p)
        _cts, comm = build_comm(cluster)

        def main(rc):
            yield from rc.bcast(0, root=0)

        base = cluster.network.total_messages
        run_all(cluster, [main(comm.rank(r)) for r in range(p)])
        counts[p] = cluster.network.total_messages - base
    # binomial tree: p-1 messages per bcast
    assert counts[4] == 3
    assert counts[8] == 7


def test_single_rank_collectives_are_free():
    cluster = build_cluster(1)
    _cts, comm = build_comm(cluster)
    out = []

    def main(rc):
        v = yield from rc.allreduce(5, op=SUM)
        b = yield from rc.bcast("x", root=0)
        g = yield from rc.allgather(1)
        out.append((v, b, g))

    run_all(cluster, [main(comm.rank(0))])
    assert out == [(5, "x", [1])]
    assert cluster.network.total_messages == 0
