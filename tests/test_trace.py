"""Tests for repro.trace: recorder, exporters, checker, integration."""

from __future__ import annotations

import json

import pytest

from repro.sim import Simulator
from repro.trace import (
    TraceRecorder,
    TraceEvent,
    CAT_PAGE,
    CAT_BARRIER,
    CAT_SIM,
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    to_chrome,
    write_chrome_json,
    write_csv_events,
    check_trace,
)
from repro.runtime import ParadeRuntime, TWO_THREAD_TWO_CPU
from repro.bench.figures import registered_programs


# ------------------------------------------------------------ recorder
def test_ring_bounds_and_eviction(sim):
    rec = TraceRecorder(sim, capacity=8)
    for i in range(20):
        rec.instant(CAT_PAGE, "twin", node=0, page=i)
    assert len(rec) == 8
    assert rec.n_emitted == 20
    assert rec.n_dropped == 12
    # the oldest events were evicted; the tail survives
    assert [e.args["page"] for e in rec.events] == list(range(12, 20))


def test_recorder_rejects_nonpositive_capacity(sim):
    with pytest.raises(ValueError):
        TraceRecorder(sim, capacity=0)


def test_disabled_recorder_records_nothing(sim):
    rec = TraceRecorder(sim, capacity=64)
    rec.enabled = False
    for i in range(10_000):
        rec.instant(CAT_PAGE, "twin", node=0, page=i)
        rec.span(CAT_PAGE, "fetch", 0.0, node=0, page=i)
    assert len(rec) == 0
    assert rec.n_emitted == 0
    assert rec.n_dropped == 0


def test_unattached_simulator_has_no_trace(sim):
    # the zero-cost fast path: every instrumentation site guards on this
    assert sim.trace is None


def test_category_filter(sim):
    rec = TraceRecorder(sim, capacity=64, categories={CAT_BARRIER})
    rec.instant(CAT_PAGE, "twin", node=0, page=1)
    rec.instant(CAT_BARRIER, "arrive", node=0, epoch=0)
    assert len(rec) == 1
    assert rec.events[0].cat == CAT_BARRIER


def test_default_categories_exclude_sim(sim):
    rec = TraceRecorder(sim)
    assert rec.categories == DEFAULT_CATEGORIES
    assert CAT_SIM not in rec.categories
    assert CAT_SIM in ALL_CATEGORIES


def test_attach_detach(sim):
    rec = TraceRecorder(sim, capacity=4)
    assert sim.trace is rec
    rec.detach()
    assert sim.trace is None
    rec.attach()
    assert sim.trace is rec


def test_drain_clears_ring(sim):
    rec = TraceRecorder(sim, capacity=8)
    rec.instant(CAT_PAGE, "twin", node=0)
    assert len(rec.drain()) == 1
    assert len(rec) == 0


# ------------------------------------------------------------ exporters
def _golden_events():
    return [
        TraceEvent(ts=1e-6, cat="dsm.page", name="page-state", node=0, tid="omp[0.0]r1",
                   args={"page": 3, "src": "INVALID", "dst": "TRANSIENT", "reason": "fault"}),
        TraceEvent(ts=2e-6, cat="dsm.page", name="fetch", node=0, tid="omp[0.0]r1",
                   dur=3e-6, args={"page": 3, "home": 1, "nbytes": 4096}),
        TraceEvent(ts=6e-6, cat="sim", name="resume", node=-1, tid="comm[1]"),
    ]


def test_chrome_export_golden():
    doc = to_chrome(_golden_events(), label="golden")
    assert doc["otherData"]["label"] == "golden"
    evs = doc["traceEvents"]
    # metadata: process_name + process_sort_index per pid, thread_name per track
    meta = [e for e in evs if e["ph"] == "M"]
    names = {(e["name"], e["pid"]): e["args"] for e in meta}
    assert names[("process_name", 0)] == {"name": "node0"}
    assert names[("process_name", 999)] == {"name": "simulator"}
    assert names[("thread_name", 0)] == {"name": "omp[0.0]r1"}

    data = [e for e in evs if e["ph"] != "M"]
    assert [e["ph"] for e in data] == ["i", "X", "i"]
    instant, span, simev = data
    assert instant == {
        "name": "page-state", "cat": "dsm.page", "ts": 1.0, "pid": 0, "tid": 1,
        "args": {"page": 3, "src": "INVALID", "dst": "TRANSIENT", "reason": "fault"},
        "ph": "i", "s": "t",
    }
    assert span["ph"] == "X"
    assert span["ts"] == pytest.approx(2.0)
    assert span["dur"] == pytest.approx(3.0)
    assert span["pid"] == 0 and span["tid"] == 1
    assert simev["pid"] == 999


def test_chrome_json_file_roundtrip(tmp_path):
    path = str(tmp_path / "trace.json")
    n = write_chrome_json(_golden_events(), path)
    doc = json.load(open(path))
    assert len(doc["traceEvents"]) == n
    for e in doc["traceEvents"]:
        assert "ph" in e and "pid" in e and "name" in e


def test_csv_export(tmp_path):
    path = str(tmp_path / "trace.csv")
    n = write_csv_events(_golden_events(), path)
    lines = open(path).read().strip().splitlines()
    assert n == 3
    assert lines[0] == "ts,dur,cat,name,node,tid,args"
    assert len(lines) == 4
    assert '""page"": 3' in lines[1] or '"page": 3' in lines[1]


# ------------------------------------------------------------ checker
def _transition(ts, node, page, src, dst, reason):
    return TraceEvent(ts=ts, cat=CAT_PAGE, name="page-state", node=node,
                      args={"page": page, "src": src, "dst": dst, "reason": reason})


def test_checker_accepts_legal_chain():
    events = [
        _transition(1e-6, 1, 0, "INVALID", "TRANSIENT", "fault"),
        _transition(2e-6, 1, 0, "TRANSIENT", "READ_ONLY", "update-done"),
        _transition(3e-6, 1, 0, "READ_ONLY", "DIRTY", "write-fault"),
        _transition(4e-6, 1, 0, "DIRTY", "READ_ONLY", "flush"),
    ]
    report = check_trace(events)
    assert report.ok
    assert report.n_transitions == 4
    assert "OK" in report.summary()


def test_checker_flags_injected_illegal_transition():
    events = [
        _transition(1e-6, 1, 0, "INVALID", "TRANSIENT", "fault"),
        _transition(2e-6, 1, 0, "TRANSIENT", "READ_ONLY", "update-done"),
        # deliberately illegal: INVALID -> DIRTY is not a Figure-5 edge,
        # and it also breaks the chain (last state was READ_ONLY)
        _transition(3e-6, 1, 0, "INVALID", "DIRTY", "fault"),
    ]
    report = check_trace(events)
    assert not report.ok
    kinds = {v.kind for v in report.violations}
    assert kinds == {"illegal-transition", "broken-chain"}
    assert "VIOLATION" in report.summary()


def test_checker_flags_malformed_args():
    bad = TraceEvent(ts=0.0, cat=CAT_PAGE, name="page-state", node=2,
                     args={"page": 1, "src": "NOT_A_STATE", "dst": "DIRTY"})
    report = check_trace([bad])
    assert not report.ok
    assert report.violations[0].kind == "illegal-transition"


def _barrier(ts, node, epoch):
    return TraceEvent(ts=ts, cat=CAT_BARRIER, name="barrier", node=node,
                      dur=1e-6, args={"epoch": epoch})


def test_checker_barrier_epochs_ok():
    events = [_barrier(1e-6 * (e * 2 + n), n, e) for e in range(3) for n in range(2)]
    report = check_trace(events)
    assert report.ok
    assert report.n_barriers == 6


def test_checker_flags_epoch_gap_and_membership():
    events = [
        _barrier(1e-6, 0, 0), _barrier(1e-6, 1, 0),
        _barrier(2e-6, 0, 1),
        _barrier(3e-6, 0, 2), _barrier(3e-6, 1, 2),  # node 1 skipped epoch 1
    ]
    report = check_trace(events)
    kinds = {v.kind for v in report.violations}
    assert "epoch-order" in kinds
    assert "epoch-membership" in kinds


def test_checker_tolerates_ring_eviction_head_loss():
    # epochs starting above 0 (head of run evicted) are still consecutive
    events = [_barrier(1e-6 * e, n, e) for e in (5, 6, 7) for n in (0, 1)]
    assert check_trace(events).ok


def test_checker_tolerates_uneven_head_loss_across_nodes():
    # eviction truncates each node's prefix at a different epoch; only
    # the overlap window (epoch >= 6 here) is compared across nodes
    events = [_barrier(1e-6 * e, 0, e) for e in (6, 7)]
    events += [_barrier(1e-6 * e, 1, e) for e in (5, 6, 7)]
    assert check_trace(events).ok
    # ...but a node missing an epoch INSIDE the window is still flagged
    events = [_barrier(1e-6 * e, 0, e) for e in (5, 6, 7)]
    events += [_barrier(1e-6 * e, 1, e) for e in (5, 7)]
    kinds = {v.kind for v in check_trace(events).violations}
    assert "epoch-membership" in kinds


# ------------------------------------------------------------ integration
def _traced_run(n_nodes=2, **recorder_kw):
    entry = registered_programs()["helmholtz"]
    rt = ParadeRuntime(
        n_nodes=n_nodes, exec_config=TWO_THREAD_TWO_CPU,
        pool_bytes=entry["pool_bytes"],
    )
    rec = TraceRecorder(rt.sim, **recorder_kw)
    result = rt.run(entry["factory"]())
    return rec, result


def test_traced_run_passes_protocol_check():
    rec, _result = _traced_run()
    events = rec.events
    assert events, "traced run recorded nothing"
    report = check_trace(events)
    assert report.ok, report.summary()
    assert report.n_transitions > 0
    assert report.n_barriers > 0
    cats = {e.cat for e in events}
    assert {"dsm.page", "dsm.barrier", "mpi", "net", "runtime"} <= cats
    # spans carry durations; remote fetches take nonzero virtual time
    fetches = [e for e in events if e.name == "fetch"]
    assert fetches and all(e.dur > 0 for e in fetches)


def test_tracing_does_not_perturb_virtual_time():
    entry = registered_programs()["helmholtz"]

    def run(traced):
        rt = ParadeRuntime(n_nodes=2, exec_config=TWO_THREAD_TWO_CPU,
                           pool_bytes=entry["pool_bytes"])
        if traced:
            TraceRecorder(rt.sim, categories=ALL_CATEGORIES)
        return rt.run(entry["factory"]())

    untraced, traced = run(False), run(True)
    assert traced.elapsed == untraced.elapsed
    assert traced.cluster_stats == untraced.cluster_stats
    assert traced.dsm_stats == untraced.dsm_stats


def test_traced_run_respects_ring_bound():
    rec, _ = _traced_run(capacity=32)
    assert len(rec) <= 32
    assert rec.n_dropped == rec.n_emitted - len(rec) > 0


def test_sim_category_records_scheduler_events():
    rec, _ = _traced_run(categories=ALL_CATEGORIES)
    names = {e.name for e in rec.events if e.cat == CAT_SIM}
    assert {"resume", "block", "end"} <= names
    # scheduler events carry the emitting process label as the track
    tids = {e.tid for e in rec.events if e.cat == CAT_SIM}
    assert any(t.startswith("omp[") for t in tids)
    assert any(t.startswith("comm[") for t in tids)


def test_full_chrome_export_of_traced_run(tmp_path):
    rec, _ = _traced_run()
    path = str(tmp_path / "run.json")
    write_chrome_json(rec.events, path)
    doc = json.load(open(path))
    evs = doc["traceEvents"]
    assert evs
    pids = {e["pid"] for e in evs}
    assert {0, 1} <= pids  # both nodes present as processes
    for e in evs:
        assert "ph" in e and "pid" in e and "name" in e
        if e["ph"] != "M":
            assert "ts" in e and "tid" in e
