"""Application tests: sequential references vs cluster-parallel versions,
plus the NPB published verification values."""

import numpy as np
import pytest

from repro.runtime import ParadeRuntime, TWO_THREAD_TWO_CPU, ONE_THREAD_ONE_CPU
from repro.apps import ep, cg, helmholtz, md


# ------------------------------------------------------------- EP
def test_ep_segments_compose():
    whole = ep.ep_segment(0, 1 << 14)
    left = ep.ep_segment(0, 1 << 13)
    right = ep.ep_segment(1 << 13, 1 << 13)
    assert whole.sx == pytest.approx(left.sx + right.sx, abs=1e-9)
    assert whole.sy == pytest.approx(left.sy + right.sy, abs=1e-9)
    assert np.array_equal(whole.counts, left.counts + right.counts)


@pytest.mark.slow
def test_ep_class_s_matches_published_sums():
    res = ep.ep_reference("S")
    assert res.verify("S", rtol=1e-10)


def test_ep_verify_rejects_wrong_sums():
    res = ep.EpResult(sx=0.0, sy=0.0, counts=np.zeros(10), n_pairs=1)
    assert not res.verify("S")
    with pytest.raises(KeyError):
        res.verify("T")


@pytest.mark.parametrize("mode", ["parade", "sdsm"])
def test_ep_parallel_matches_reference(mode):
    ref = ep.ep_segment(0, 1 << 16)
    rt = ParadeRuntime(n_nodes=4, mode=mode, pool_bytes=1 << 20)
    res = rt.run(ep.make_program("T"))
    assert res.value.sx == pytest.approx(ref.sx, abs=1e-8)
    assert res.value.sy == pytest.approx(ref.sy, abs=1e-8)
    assert np.array_equal(res.value.counts, ref.counts)


def test_ep_counts_sum_to_accepted_pairs():
    res = ep.ep_segment(0, 1 << 14)
    # acceptance rate of the polar method is pi/4
    accepted = res.counts.sum()
    assert 0.7 < accepted / res.n_pairs < 0.85


# ------------------------------------------------------------- CG
def test_cg_matrix_is_symmetric_positive_definite():
    a = cg.make_matrix("T")
    na = cg.CLASSES["T"][0]
    assert a.shape == (na, na)
    asym = abs(a - a.T)
    assert asym.max() < 1e-12
    # Gershgorin-free check: smallest eigenvalue bounded away from -shift
    x = np.ones(na)
    for _ in range(5):
        x = a @ x
        x /= np.linalg.norm(x)
    # matrix has rcond-shift on the diagonal: main eigenvalue negative-ish;
    # just confirm CG converges to the documented zeta for class T
    ref = cg.cg_reference("T", a=a)
    assert np.isfinite(ref.zeta)


@pytest.mark.slow
def test_cg_class_s_matches_published_zeta():
    res = cg.cg_reference("S")
    assert res.verify(tol=1e-10), res.zeta


def test_cg_parallel_matches_sequential():
    a = cg.make_matrix("T")
    seq = cg.cg_reference("T", a=a, niter=3)
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21)
    res = rt.run(cg.make_program("T", a=a, niter=3))
    assert res.value.zeta == pytest.approx(seq.zeta, abs=1e-9)
    assert res.value.rnorm == pytest.approx(seq.rnorm, rel=1e-6, abs=1e-12)


def test_cg_parallel_single_node_degenerate():
    a = cg.make_matrix("T")
    seq = cg.cg_reference("T", a=a, niter=2)
    rt = ParadeRuntime(n_nodes=1, exec_config=ONE_THREAD_ONE_CPU, pool_bytes=1 << 21)
    res = rt.run(cg.make_program("T", a=a, niter=2))
    assert res.value.zeta == pytest.approx(seq.zeta, abs=1e-9)


# ------------------------------------------------------------- Helmholtz
def test_helmholtz_reference_converges_toward_exact_solution():
    coarse = helmholtz.helmholtz_reference(n=24, m=24, max_iters=400)
    late = coarse.solution_error()
    early = helmholtz.helmholtz_reference(n=24, m=24, max_iters=20).solution_error()
    assert late < early  # Jacobi iteration reduces the error


def test_helmholtz_error_decreases_monotonically():
    r1 = helmholtz.helmholtz_reference(n=32, m=32, max_iters=10)
    r2 = helmholtz.helmholtz_reference(n=32, m=32, max_iters=30)
    assert r2.error < r1.error


def test_helmholtz_parallel_matches_sequential():
    seq = helmholtz.helmholtz_reference(n=32, m=32, max_iters=25)
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21)
    res = rt.run(helmholtz.make_program(n=32, m=32, max_iters=25))
    assert res.value.iterations == seq.iterations
    assert np.allclose(res.value.u, seq.u, atol=1e-12)
    assert res.value.error == pytest.approx(seq.error, rel=1e-9)


def test_helmholtz_parallel_respects_tolerance_termination():
    # loose tolerance: should stop before max_iters, consistently everywhere
    seq = helmholtz.helmholtz_reference(n=24, m=24, tol=1e-4, max_iters=500)
    assert seq.iterations < 500
    rt = ParadeRuntime(n_nodes=2, pool_bytes=1 << 21)
    res = rt.run(helmholtz.make_program(n=24, m=24, tol=1e-4, max_iters=500))
    assert res.value.iterations == seq.iterations


# ------------------------------------------------------------- MD
def test_md_reference_is_deterministic():
    a = md.md_reference(n_particles=16, steps=3)
    b = md.md_reference(n_particles=16, steps=3)
    assert np.array_equal(a.pos, b.pos)


def test_md_forces_newtons_third_law():
    pos = md.initial_positions(12)
    vel = np.zeros_like(pos)
    f, _pot, _kin = md.compute_forces(pos, vel)
    # with the full force matrix, total force is ~0
    assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)


def test_md_force_partials_compose():
    pos = md.initial_positions(20)
    vel = np.zeros_like(pos)
    full, pot, kin = md.compute_forces(pos, vel)
    f1, p1, k1 = md.compute_forces(pos, vel, 0, 10)
    f2, p2, k2 = md.compute_forces(pos, vel, 10, 20)
    assert np.allclose(np.vstack([f1, f2]), full, atol=1e-12)
    assert pot == pytest.approx(p1 + p2)
    assert kin == pytest.approx(k1 + k2)


def test_md_energy_roughly_conserved():
    r0 = md.md_reference(n_particles=24, steps=1)
    r1 = md.md_reference(n_particles=24, steps=20)
    # dt is tiny; total energy should drift very little
    assert r1.energy == pytest.approx(r0.energy, rel=1e-3)


def test_md_parallel_matches_sequential():
    seq = md.md_reference(n_particles=24, steps=4)
    rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 21)
    res = rt.run(md.make_program(n_particles=24, steps=4))
    assert np.allclose(res.value.pos, seq.pos, atol=1e-12)
    assert np.allclose(res.value.vel, seq.vel, atol=1e-12)
    assert res.value.potential == pytest.approx(seq.potential, rel=1e-9)
    assert res.value.kinetic == pytest.approx(seq.kinetic, rel=1e-9, abs=1e-15)


def test_md_parallel_on_one_thread_config():
    seq = md.md_reference(n_particles=12, steps=2)
    rt = ParadeRuntime(n_nodes=2, exec_config=ONE_THREAD_ONE_CPU, pool_bytes=1 << 21)
    res = rt.run(md.make_program(n_particles=12, steps=2))
    assert np.allclose(res.value.pos, seq.pos, atol=1e-12)
