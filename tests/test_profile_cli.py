"""End-to-end tests for ``python -m repro.profile``."""

from __future__ import annotations

import json

from repro.profile.__main__ import main


def test_cli_text_report_and_check(capsys):
    rc = main(["helmholtz", "--nodes", "2", "--check"])
    assert rc == 0
    out = capsys.readouterr().out
    # per-thread phase table, group rollup, critical path with what-ifs,
    # hot tables — all sections of the acceptance criteria
    assert "per-thread phases" in out
    assert "phase groups" in out
    assert "critical path" in out
    assert "what-if" in out
    assert "hot pages" in out
    assert "check: ok" in out


def test_cli_json_round_trips(tmp_path):
    out = tmp_path / "report.json"
    rc = main(["helmholtz", "--nodes", "2", "--json", str(out)])
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["meta"]["app"] == "helmholtz"
    assert data["threads"]
    for tid, rec in data["threads"].items():
        total = sum(rec["phases"].values())
        assert abs(total - rec["total"]) < 1e-9, tid
    assert data["critical_path"]["what_if"]
    from repro.profile import ProfileReport

    clone = ProfileReport.from_dict(data)
    assert clone.as_dict() == data


def test_cli_chrome_export(tmp_path):
    out = tmp_path / "prof.json"
    rc = main(["helmholtz", "--nodes", "2", "--chrome", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert any(e.get("ph") == "X" and e.get("cat") == "profile" for e in events)
    assert any(e.get("ph") == "C" for e in events)


def test_cli_sdsm_lock_wait_visible(capsys):
    """Figure-7 shape on the conventional translation: the hot-lock table
    is populated and lock-wait shows up in the group rollup."""
    rc = main(["cg", "--nodes", "2", "--mode", "sdsm", "--check"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hot locks" in out
    assert "lock-wait" in out
    assert "check: ok" in out


def test_cli_rejects_unknown_app(capsys):
    assert main(["no-such-app"]) == 1
