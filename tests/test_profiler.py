"""Virtual-time profiler tests: attribution exactness and determinism.

The profiler's core contract mirrors the golden determinism suite
(``test_determinism_golden.py``): attaching it is purely observational —
it may not create simulation events or change virtual time — and its
own output (phase ledgers, critical path, hot tables) must be
bit-identical across repeated runs and across the fast-path on/off
switch.  Its accounting contract is exactness: per-thread phase sums
equal thread lifetimes to fp rounding, and the critical path tiles the
whole elapsed interval.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import cg, helmholtz
from repro.profile import (
    GROUP_OF,
    Profiler,
    ProfileReport,
    compute_critical_path,
    percentile,
)
from repro.profile.critical_path import UNATTRIBUTED
from repro.runtime import ParadeRuntime

N_NODES = 2
POOL_BYTES = 1 << 21


def _run_profiled(mode="parade", program=None, **dsm_kw):
    kw = {}
    if dsm_kw:
        from repro.dsm.config import PARADE_DSM, KDSM_BASELINE

        base = PARADE_DSM if mode == "parade" else KDSM_BASELINE
        kw["dsm_config"] = base.replace(**dsm_kw)
    rt = ParadeRuntime(n_nodes=N_NODES, mode=mode, pool_bytes=POOL_BYTES, **kw)
    prof = Profiler(rt.sim)
    res = rt.run(program() if program else helmholtz.make_program(n=48, m=48, max_iters=3))
    prof.finalize()
    return rt, res, prof


def _profile_fingerprint(prof):
    """Everything the profiler derives, as one canonical JSON string."""
    report = ProfileReport.from_profiler(prof)
    return json.dumps(report.as_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# attribution exactness
# ----------------------------------------------------------------------
def test_phase_sums_equal_thread_lifetimes():
    _, _, prof = _run_profiled()
    assert prof.ledgers()
    assert prof.max_sum_error() < 1e-9
    for tid, ledger in prof.ledgers().items():
        assert ledger, tid
        assert all(dur >= 0.0 for dur in ledger.values()), tid
        assert sum(ledger.values()) == pytest.approx(
            prof.thread_total(tid), abs=1e-9
        ), tid


def test_group_fractions_sum_to_one():
    _, _, prof = _run_profiled()
    fracs = prof.group_fractions()
    assert set(fracs) <= set(GROUP_OF.values())
    assert sum(fracs.values()) == pytest.approx(1.0, abs=1e-3)


def test_critical_path_tiles_elapsed_with_no_gaps():
    _, res, prof = _run_profiled()
    cp = compute_critical_path(
        prof.intervals + prof.net_intervals, t_end=prof.finalized_at
    )
    assert cp.elapsed == pytest.approx(res.elapsed, abs=1e-12)
    assert sum(cp.phase_time.values()) == pytest.approx(cp.elapsed, rel=1e-9)
    # the simulation is always doing *something*: every instant of the
    # run is covered by some active interval
    assert cp.phase_time.get(UNATTRIBUTED, 0.0) == pytest.approx(0.0, abs=1e-12)
    # what-if bounds: each saves a non-negative slice of the elapsed time
    assert len(cp.what_if) >= 2
    for name, bound in cp.what_if.items():
        assert 0.0 <= bound <= cp.elapsed + 1e-12, name


def test_report_check_is_clean_and_json_round_trips():
    _, _, prof = _run_profiled()
    report = ProfileReport.from_profiler(prof)
    assert report.check() == []
    clone = ProfileReport.from_dict(json.loads(json.dumps(report.as_dict())))
    assert clone.as_dict() == report.as_dict()
    assert clone.render() == report.render()


# ----------------------------------------------------------------------
# determinism (mirrors test_determinism_golden.py)
# ----------------------------------------------------------------------
def test_repeat_runs_produce_identical_profiles():
    _, res_a, prof_a = _run_profiled()
    _, res_b, prof_b = _run_profiled()
    assert res_a.elapsed == res_b.elapsed
    assert prof_a.ledgers() == prof_b.ledgers()
    assert _profile_fingerprint(prof_a) == _profile_fingerprint(prof_b)


def test_fast_path_on_off_produces_identical_profiles():
    """The hot-path cache is invisible to the profiler: same ledgers,
    same critical path, same hot tables with it on or off."""
    _, res_on, prof_on = _run_profiled(fast_path=True)
    _, res_off, prof_off = _run_profiled(fast_path=False)
    assert res_on.elapsed == res_off.elapsed
    assert prof_on.ledgers() == prof_off.ledgers()
    assert _profile_fingerprint(prof_on) == _profile_fingerprint(prof_off)


def test_profiler_is_observationally_pure():
    """Attaching the profiler may not change what the simulation does:
    virtual time, event count, and protocol stats are unchanged."""
    rt_plain = ParadeRuntime(n_nodes=N_NODES, pool_bytes=POOL_BYTES)
    res_plain = rt_plain.run(helmholtz.make_program(n=48, m=48, max_iters=3))
    assert rt_plain.sim.prof is None
    _, res_prof, _ = _run_profiled()
    assert res_prof.elapsed == res_plain.elapsed
    assert res_prof.dsm_stats == res_plain.dsm_stats
    assert res_prof.cluster_stats == res_plain.cluster_stats


# ----------------------------------------------------------------------
# hot tables (lock-heavy sdsm workload: the Figure-7 shape)
# ----------------------------------------------------------------------
def test_sdsm_hot_tables_and_lock_wait_dominance():
    _, _, prof = _run_profiled(
        mode="sdsm", program=lambda: cg.make_program("T", niter=1)
    )
    # hot pages: faults recorded, fetch bytes counted
    assert prof.pages
    assert sum(p.read_faults + p.write_faults for p in prof.pages.values()) > 0
    assert sum(p.fetch_bytes for p in prof.pages.values()) > 0
    # hot locks: the conventional translation reduces under a critical
    # section, so the reduction lock shows acquires, hops and waits
    assert prof.locks
    busiest = max(prof.locks.values(), key=lambda s: s.acquires)
    assert busiest.acquires > 0
    assert busiest.remote_acquires > 0
    assert busiest.hops > 0
    assert busiest.waits and all(w >= 0.0 for w in busiest.waits)
    # the KDSM busy-wait anomaly: lock/barrier waiting is a first-order
    # fraction of total thread time in the sdsm translation
    totals = prof.group_totals()
    assert totals.get("sync", 0.0) / sum(totals.values()) > 0.10


def test_runtime_profile_flag_attaches_and_finalizes():
    rt = ParadeRuntime(n_nodes=N_NODES, pool_bytes=POOL_BYTES, profile=True)
    assert rt.profiler is not None and rt.sim.prof is rt.profiler
    rt.run(helmholtz.make_program(n=24, m=24, max_iters=2))
    assert rt.profiler.finalized_at == rt.sim.now
    assert rt.profiler.max_sum_error() < 1e-9


# ----------------------------------------------------------------------
# unit: nearest-rank percentile
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 50) == 2.0
    assert percentile(vals, 90) == 4.0
    assert percentile(vals, 99) == 4.0
    assert percentile([7.5], 50) == 7.5
