"""Unit tests for SharedArray / SharedScalar views."""

import numpy as np
import pytest

from repro.dsm import SharedArray, SharedScalar
from repro.testing import build_dsm, run_all


def test_allocate_shapes_and_dtypes():
    _c, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (10, 20), dtype=np.float32)
    assert a.shape == (10, 20)
    assert a.size == 200
    assert a.nbytes == 800
    b = SharedArray.allocate(dsm, "b", 16, dtype=np.int64)
    assert b.shape == (16,)


def test_invalid_shapes_rejected():
    _c, _t, dsm = build_dsm(2)
    with pytest.raises(ValueError):
        SharedArray.allocate(dsm, "z", (0,))
    with pytest.raises(ValueError):
        SharedArray.allocate(dsm, "z2", (-3, 2))


def test_out_of_range_access_rejected():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (8,))

    def worker():
        v = a.on(0)
        with pytest.raises(IndexError):
            yield from v.get(0, 9)
        with pytest.raises(IndexError):
            yield from v.set(np.zeros(4), start=6)
        yield from v.set(np.zeros(8))

    run_all(cluster, [worker()])


def test_get_returns_readonly_view():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (8,))

    def worker():
        v = a.on(0)
        yield from v.set(np.arange(8.0))
        data = yield from v.get()
        assert not data.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            data[0] = 99

    run_all(cluster, [worker()])


def test_writable_view_aliases_pool():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (8,))

    def worker():
        v = a.on(0)
        w = yield from v.writable(2, 5)
        w[:] = 7.0
        back = yield from v.get()
        assert np.array_equal(back, [0, 0, 7, 7, 7, 0, 0, 0])

    run_all(cluster, [worker()])


def test_empty_range_access():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (8,))

    def worker():
        v = a.on(0)
        e = yield from v.get(3, 3)
        assert e.size == 0
        yield from v.set(np.empty(0), start=5)

    run_all(cluster, [worker()])


def test_scalar_roundtrip_and_raw():
    cluster, _t, dsm = build_dsm(2)
    s = SharedScalar(dsm, "s", dtype=np.float64)

    def worker():
        v = s.on(0)
        yield from v.set(2.5)
        got = yield from v.get()
        assert got == 2.5
        v.raw_set(7.0)
        assert v.raw_get() == 7.0

    run_all(cluster, [worker()])
    assert s.nbytes == 8


def test_integer_dtype_preserved():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (4,), dtype=np.int32)

    def worker():
        v = a.on(0)
        yield from v.set(np.array([1, 2, 3, 4], dtype=np.int32))
        got = yield from v.get_scalar(2)
        assert got == 3 and isinstance(got, np.int32)

    run_all(cluster, [worker()])


def test_values_cast_to_array_dtype():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (4,), dtype=np.float64)

    def worker():
        v = a.on(0)
        yield from v.set([1, 2, 3, 4])  # python ints
        got = yield from v.get()
        assert got.dtype == np.float64

    run_all(cluster, [worker()])


def test_unaligned_small_arrays_can_share_a_page():
    _c, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (4,), page_align=False)
    b = SharedArray.allocate(dsm, "b", (4,), page_align=False)
    pa = a.segment.addr // dsm.page_size
    pb = b.segment.addr // dsm.page_size
    assert pa == pb  # false sharing is representable


def test_two_d_array_flat_indexing():
    cluster, _t, dsm = build_dsm(2)
    a = SharedArray.allocate(dsm, "a", (4, 4))

    def worker():
        v = a.on(0)
        yield from v.set(np.arange(16.0))
        row2 = yield from v.get(8, 12)
        assert np.array_equal(row2, [8, 9, 10, 11])

    run_all(cluster, [worker()])
