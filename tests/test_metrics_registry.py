"""Instrument-level tests for repro.metrics.registry.

The load-bearing properties: power-of-two bucket boundaries are *exact*
(no float-log rounding), merges are associative across nodes, and the
bucket-resolution quantiles bracket the brute-force order statistics
within the documented factor of 2.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_lower,
    bucket_upper,
)
from repro.util.tables import percentile


# ----------------------------------------------------------------------
# bucket boundaries
# ----------------------------------------------------------------------
def test_bucket_boundaries_exact_at_powers_of_two():
    """2**k must land in bucket k (inclusive upper bound), for positive
    and negative exponents — the frexp construction makes this exact
    where a log2-and-round implementation drifts."""
    for k in range(-60, 61):
        v = 2.0 ** k
        assert bucket_index(v) == k, f"2**{k} misbucketed to {bucket_index(v)}"
        # one ulp above the boundary belongs to the next bucket
        import math

        above = math.nextafter(v, float("inf"))
        assert bucket_index(above) == k + 1


def test_bucket_interval_is_half_open_from_below():
    assert bucket_index(3.0) == 2          # (2, 4]
    assert bucket_index(4.0) == 2
    assert bucket_index(4.0000001) == 3
    assert bucket_lower(2) == 2.0 and bucket_upper(2) == 4.0


def test_nonpositive_values_hit_the_zero_bucket():
    assert bucket_index(0.0) is None
    assert bucket_index(-1.5) is None
    h = Histogram("h")
    h.observe(0.0)
    h.observe(-2.0)
    h.observe(1.0)
    assert h.zero_count == 2 and h.count == 3
    assert h.quantile(50) == 0.0  # rank 2 of 3 is in the zero bucket


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
def _filled(seed: int, n: int = 500) -> Histogram:
    rng = random.Random(seed)
    h = Histogram("lat")
    for _ in range(n):
        h.observe(rng.expovariate(1.0 / 50e-6))
    return h


def test_merge_is_associative_across_nodes():
    """(a+b)+c == a+(b+c) on buckets/count/min/max (integer adds and
    order-free min/max); float ``sum`` agrees to rounding."""
    a, b, c = _filled(1), _filled(2), _filled(3)

    left = _filled(1).merge(_filled(2)).merge(_filled(3))
    bc = _filled(2).merge(_filled(3))
    right = _filled(1).merge(bc)

    assert left.buckets == right.buckets
    assert left.zero_count == right.zero_count
    assert left.count == right.count == a.count + b.count + c.count
    assert left.min == right.min == min(a.min, b.min, c.min)
    assert left.max == right.max == max(a.max, b.max, c.max)
    assert left.sum == pytest.approx(right.sum, rel=1e-12)


def test_merge_equals_observing_everything_on_one_node():
    rng = random.Random(7)
    values = [rng.uniform(1e-7, 1e-3) for _ in range(400)]
    whole = Histogram("h")
    parts = [Histogram("h") for _ in range(4)]
    for i, v in enumerate(values):
        whole.observe(v)
        parts[i % 4].observe(v)
    merged = parts[0]
    for p in parts[1:]:
        merged.merge(p)
    assert merged.buckets == whole.buckets
    assert merged.count == whole.count
    assert (merged.min, merged.max) == (whole.min, whole.max)


# ----------------------------------------------------------------------
# quantiles vs brute force
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [11, 23, 47])
def test_quantiles_bracket_brute_force_within_factor_two(seed):
    rng = random.Random(seed)
    values = [rng.expovariate(1.0 / 100e-6) for _ in range(1000)]
    h = Histogram("h")
    for v in values:
        h.observe(v)
    s = sorted(values)
    for q in (50, 90, 99):
        true = percentile(s, q)
        est = h.quantile(q)
        assert true <= est <= 2.0 * true, (
            f"p{q}: estimate {est} not in [{true}, {2 * true}]"
        )
    assert h.percentiles()["max"] == s[-1]


def test_quantile_exact_at_bucket_boundaries():
    h = Histogram("h")
    for v in (1.0, 2.0, 4.0, 8.0):  # every value sits ON a boundary
        h.observe(v)
    assert h.quantile(25) == 1.0
    assert h.quantile(50) == 2.0
    assert h.quantile(75) == 4.0
    assert h.quantile(100) == 8.0


def test_quantile_clamps_to_observed_max():
    h = Histogram("h")
    h.observe(5.0)  # bucket (4, 8], upper bound 8 — but max is 5
    assert h.quantile(99) == 5.0


# ----------------------------------------------------------------------
# registry + serialisation
# ----------------------------------------------------------------------
def test_registry_get_or_create_and_kind_clash():
    reg = MetricsRegistry()
    c = reg.counter("frames", src=0, dst=1)
    assert reg.counter("frames", dst=1, src=0) is c  # label order irrelevant
    c.inc(3)
    assert c.value == 3
    with pytest.raises(ValueError):
        c.inc(-1)
    with pytest.raises(TypeError):
        reg.gauge("frames", src=0, dst=1)
    g = reg.gauge("depth")
    g.set(4.0)
    g.add(-1.5)
    assert g.value == 2.5
    assert len(reg) == 2


def test_registry_iteration_is_deterministic_and_merge_sums():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc(1)
    b.counter("x").inc(2)
    b.histogram("h").observe(1.0)
    b.gauge("g").set(9.0)
    a.merge(b)
    assert a.counter("x").value == 3
    assert a.histogram("h").count == 1
    assert a.gauge("g").value == 9.0
    # merge copied, not aliased
    b.counter("x").inc(10)
    assert a.counter("x").value == 3
    names = [inst.name for inst in a]
    assert names == sorted(names)


def test_histogram_round_trips_through_dict():
    h = _filled(5)
    h2 = Histogram.from_dict(h.name, h.labels, h.as_dict())
    assert h2.as_dict() == h.as_dict()
    assert h2.quantile(90) == h.quantile(90)


def test_cumulative_buckets_are_monotone_and_end_at_count():
    h = _filled(9)
    h.observe(0.0)
    cum = h.cumulative_buckets()
    les = [le for le, _ in cum]
    counts = [n for _, n in cum]
    assert les == sorted(les) and counts == sorted(counts)
    assert cum[-1] == (float("inf"), h.count)
    assert cum[0] == (0.0, h.zero_count)


def test_instrument_kinds():
    assert Counter("c").kind == "counter"
    assert Gauge("g").kind == "gauge"
    assert Histogram("h").kind == "histogram"
