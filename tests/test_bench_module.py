"""Tests for the bench harness utilities (fast, scaled-down parameters)."""

import os

import pytest

from repro.bench import (
    Series,
    FigureData,
    render_table,
    write_csv,
    fig9_ep,
    atomic_update_comparison,
)
from repro.bench.microbench import (
    measure_critical_overhead,
    measure_single_overhead,
    sweep_directive,
)


def _sample_fd():
    return FigureData(
        figure="figX",
        title="demo",
        xlabel="nodes",
        ylabel="ms",
        series=[
            Series("a", [1, 2, 4], [10.0, 5.0, 2.5]),
            Series("b", [1, 2, 4], [20.0, 10.0, 5.0]),
        ],
    )


def test_render_table_contains_all_points():
    text = render_table(_sample_fd())
    assert "figX" in text and "demo" in text
    for token in ("10.000", "5.000", "2.500", "20.000"):
        assert token in text
    assert text.index("a") < text.index("b")


def test_by_label_lookup():
    fd = _sample_fd()
    assert fd.by_label("b").y == [20.0, 10.0, 5.0]
    with pytest.raises(KeyError):
        fd.by_label("missing")


def test_write_csv_roundtrip(tmp_path):
    path = os.path.join(tmp_path, "out.csv")
    write_csv(_sample_fd(), path)
    lines = open(path).read().strip().splitlines()
    assert lines[0] == "nodes,a,b"
    assert lines[1] == "1,10.0,20.0"
    assert len(lines) == 4


def test_measure_critical_returns_positive_overhead():
    t = measure_critical_overhead("parade", n_nodes=2, iters=10)
    assert 0 < t < 1e-2


def test_measure_single_kdsm_more_expensive():
    p = measure_single_overhead("parade", n_nodes=2, iters=10)
    k = measure_single_overhead("kdsm", n_nodes=2, iters=10)
    assert k > p


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        measure_critical_overhead("treadmarks", n_nodes=2)


def test_sweep_directive_shape():
    data = sweep_directive("critical", systems=["parade"], nodes=[1, 2], iters=5)
    assert set(data) == {"parade"}
    assert len(data["parade"]) == 2


def test_fig9_small_smoke():
    fd = fig9_ep(klass="T", nodes=(1, 2))
    assert len(fd.series) == 3
    for s in fd.series:
        assert len(s.y) == 2
        assert s.y[1] < s.y[0]  # EP scales even at 2 nodes


def test_atomic_update_figure_has_all_strategies():
    from repro.vm import STRATEGY_NAMES

    fd = atomic_update_comparison(n_updates=20)
    for s in fd.series:
        assert len(s.y) == len(STRATEGY_NAMES)
        assert all(y > 0 for y in s.y)
