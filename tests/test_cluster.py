"""Unit tests for the cluster hardware model."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    GIGANET_VIA,
    FAST_ETHERNET_TCP,
    interconnect_by_name,
    PAPER_CPU_MHZ,
)
from conftest import build_cluster, run_all


# ------------------------------------------------------------- interconnects
def test_interconnect_presets_are_sane():
    assert GIGANET_VIA.latency < FAST_ETHERNET_TCP.latency
    assert GIGANET_VIA.bandwidth > FAST_ETHERNET_TCP.bandwidth
    assert GIGANET_VIA.o_send < FAST_ETHERNET_TCP.o_send


def test_wire_time_scales_with_size():
    t1 = GIGANET_VIA.wire_time(1000)
    t2 = GIGANET_VIA.wire_time(2000)
    assert t2 > t1
    assert t2 - t1 == pytest.approx(1000 / GIGANET_VIA.bandwidth)


def test_half_round_trip_combines_all_terms():
    n = 4096
    ic = FAST_ETHERNET_TCP
    expected = ic.send_cpu_time(n) + ic.wire_time(n) + ic.recv_cpu_time(n)
    assert ic.half_round_trip(n) == pytest.approx(expected)


def test_interconnect_lookup_by_name():
    assert interconnect_by_name("via") is GIGANET_VIA
    assert interconnect_by_name("TCP") is FAST_ETHERNET_TCP
    with pytest.raises(KeyError):
        interconnect_by_name("myrinet")


# ------------------------------------------------------------- config
def test_config_defaults_match_paper_testbed():
    cfg = ClusterConfig()
    assert cfg.n_nodes == 8
    assert cfg.cpus_per_node == 2
    assert cfg.cpu_mhz == PAPER_CPU_MHZ
    assert cfg.page_size == 4096


def test_config_speed_factor_heterogeneous():
    cfg = ClusterConfig()
    assert cfg.speed_factor(0) == pytest.approx(550 / 600)
    assert cfg.speed_factor(7) == pytest.approx(1.0)
    # slower node takes longer for the same work
    assert cfg.compute_seconds(1000, 0) > cfg.compute_seconds(1000, 7)


def test_config_with_nodes_resizes_cpu_list():
    cfg = ClusterConfig().with_nodes(3)
    assert cfg.n_nodes == 3
    assert len(cfg.cpu_mhz) == 3


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(cpus_per_node=0)
    with pytest.raises(ValueError):
        ClusterConfig(page_size=1000)  # not a power of two


def test_config_cpu_list_padding():
    cfg = ClusterConfig(n_nodes=4, cpu_mhz=(500,))
    assert cfg.cpu_mhz == (500, 500, 500, 500)


def test_with_nodes_reexpands_paper_cycle():
    """Regression: shrinking to 4 nodes truncates cpu_mhz to (550,)*4;
    growing back must re-expand from the canonical paper cycle, not pad
    the truncated prefix into an all-550 cluster."""
    grown = ClusterConfig().with_nodes(4).with_nodes(16)
    assert grown.cpu_mhz == tuple(
        PAPER_CPU_MHZ[i % len(PAPER_CPU_MHZ)] for i in range(16)
    )
    assert 600 in grown.cpu_mhz
    # round-tripping through any size is lossless for paper-pattern configs
    assert ClusterConfig().with_nodes(2).with_nodes(8) == ClusterConfig()


def test_with_nodes_keeps_custom_speeds_and_fields():
    """Non-paper cpu_mhz patterns keep cycling their own tuple, and
    unrelated overridden fields survive the dataclasses.replace copy."""
    cfg = ClusterConfig(n_nodes=2, cpu_mhz=(700, 800), fault_overhead=42e-6)
    grown = cfg.with_nodes(4)
    assert grown.cpu_mhz == (700, 800, 700, 800)
    assert grown.fault_overhead == 42e-6
    assert cfg.with_cpus(1).cpus_per_node == 1
    assert cfg.with_cpus(1).cpu_mhz == (700, 800)


# ------------------------------------------------------------- network
def test_message_delivery_latency():
    cluster = build_cluster(2)
    deliveries = []

    def sender():
        yield from cluster.network.send(0, 1, 1024, "payload", tag=("t",))

    def receiver():
        msg = yield cluster.nodes[1].inbox.get()
        deliveries.append((cluster.now, msg.payload))

    run_all(cluster, [sender(), receiver()])
    assert deliveries[0][1] == "payload"
    ic = cluster.config.interconnect
    n = 1024 + cluster.network.HEADER_BYTES
    expected = ic.send_cpu_time(n) + n / ic.bandwidth + ic.latency
    assert deliveries[0][0] == pytest.approx(expected, rel=0.2)


def test_nic_serialises_concurrent_sends():
    cluster = build_cluster(2)
    times = []

    def sender(k):
        yield from cluster.network.send(0, 1, 100_000, k, tag=("t",))

    def receiver():
        for _ in range(2):
            msg = yield cluster.nodes[1].inbox.get()
            times.append(cluster.now)

    run_all(cluster, [sender(0), sender(1), receiver()])
    # second message delivered roughly one serialisation time later
    ic = cluster.config.interconnect
    gap = times[1] - times[0]
    assert gap >= 100_000 / ic.bandwidth * 0.9


def test_loopback_bypasses_nic():
    cluster = build_cluster(2)
    out = []

    def sender():
        yield from cluster.network.send(0, 0, 64, "self", tag=("t",))
        msg = yield cluster.nodes[0].inbox.get()
        out.append((cluster.now, msg.payload))

    run_all(cluster, [sender()])
    assert out[0][1] == "self"
    assert out[0][0] < cluster.config.interconnect.latency  # far below wire time


def test_network_statistics_accumulate():
    cluster = build_cluster(2)

    def sender():
        yield from cluster.network.send(0, 1, 500, None, tag=("t",))
        yield from cluster.network.send(0, 1, 500, None, tag=("t",))

    def receiver():
        for _ in range(2):
            yield cluster.nodes[1].inbox.get()

    run_all(cluster, [sender(), receiver()])
    assert cluster.network.total_messages == 2
    assert cluster.nodes[0].msgs_sent == 2
    assert cluster.nodes[1].msgs_received == 2
    assert cluster.nodes[1].bytes_received == 2 * (500 + cluster.network.HEADER_BYTES)


# ------------------------------------------------------------- node compute
def test_node_compute_respects_cpu_capacity():
    cluster = Cluster(ClusterConfig(n_nodes=1, cpus_per_node=1, cpu_mhz=(600,)))
    finish = []

    def worker():
        yield from cluster.nodes[0].compute(100_000)  # 1ms at reference speed
        finish.append(cluster.now)

    run_all(cluster, [worker(), worker()])
    # serialised on the single CPU: 1ms then 2ms
    assert finish[0] == pytest.approx(1e-3, rel=1e-6)
    assert finish[1] == pytest.approx(2e-3, rel=1e-6)


def test_slow_node_takes_longer():
    cfg = ClusterConfig(n_nodes=2, cpu_mhz=(550, 600))
    cluster = Cluster(cfg)
    finish = {}

    def worker(nid):
        yield from cluster.nodes[nid].compute(100_000)
        finish[nid] = cluster.now

    run_all(cluster, [worker(0), worker(1)])
    assert finish[0] > finish[1]
    assert finish[0] / finish[1] == pytest.approx(600 / 550)


def test_cluster_stats_shape():
    cluster = build_cluster(2)
    stats = cluster.stats()
    for key in ("virtual_time", "total_messages", "total_bytes", "events_processed"):
        assert key in stats
