"""Fleet executor + run cache contracts (``repro.fleet``).

The load-bearing guarantees, pinned at tier-1:

* **parallel == sequential** — ``run_many(jobs=4)`` returns records
  byte-identical to ``jobs=1`` on every deterministic field, including
  trace digests and the merged metrics histograms (only wall-clock and
  cache bookkeeping may differ);
* **warm cache executes nothing** — a second ``run_many`` over the same
  specs serves every record from ``.parade-cache`` with zero
  re-simulations, bit-identical to the cold run;
* **a stale source digest misses** — cache entries are keyed by the
  repro source-tree digest, so a poisoned/outdated digest can never
  serve a stale record;
* **failure isolation** — one crashing spec reports ``ok: False``; the
  rest of the fleet completes.
"""

from repro.fleet import (
    RunCache,
    RunSpec,
    deterministic_view,
    execute,
    merged_histograms,
    resolve_jobs,
    run_many,
)

#: tiny two-spec basket: one observer-heavy run, one accelerated run
SPECS = [
    RunSpec(
        workload="helmholtz",
        factory=("repro.apps.helmholtz", "make_program"),
        factory_kwargs={"n": 16, "m": 16, "max_iters": 2},
        n_nodes=2,
        pool_bytes=1 << 20,
        profile=True,
        trace=True,
        metrics=True,
    ),
    RunSpec(
        workload="md",
        factory=("repro.apps.md", "make_program"),
        factory_kwargs={"n_particles": 16, "steps": 1},
        n_nodes=2,
        pool_bytes=1 << 20,
        accel=True,
        metrics=True,
    ),
]


def test_spec_canonical_is_deterministic_and_serializable():
    a, b = SPECS[0], RunSpec.from_dict(__import__("dataclasses").asdict(SPECS[0]))
    assert a == b
    assert a.canonical() == b.canonical()
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != SPECS[1].fingerprint()


def test_parallel_matches_sequential_bit_for_bit():
    """The tentpole contract: spawned workers importing ``repro`` fresh
    produce records identical to in-process runs — per-workload stats,
    value digests, trace digests, phases, and the merged histograms."""
    seq = run_many(SPECS, jobs=1)
    par = run_many(SPECS, jobs=4)
    assert seq.n_failed == 0 and par.n_failed == 0
    assert par.jobs == 4
    for a, b in zip(seq.records, par.records):
        assert deterministic_view(a) == deterministic_view(b)
    # trace digest + histogram merge called out explicitly: the fields
    # most sensitive to any ordering or environment divergence
    assert seq.records[0]["trace"]["digest"] == par.records[0]["trace"]["digest"]
    assert merged_histograms(seq.records) == merged_histograms(par.records)


def test_run_many_matches_direct_execute():
    rec = execute(SPECS[1])
    fleet = run_many([SPECS[1]], jobs=1)
    assert deterministic_view(fleet.records[0]) == deterministic_view(rec)


def test_warm_cache_executes_zero_simulations(tmp_path):
    cache = RunCache(root=str(tmp_path))
    cold = run_many(SPECS, jobs=1, cache=cache)
    assert cold.n_executed == len(SPECS) and cold.n_hits == 0
    warm = run_many(SPECS, jobs=1, cache=cache)
    assert warm.n_executed == 0
    assert warm.n_hits == len(SPECS)
    for a, b in zip(cold.records, warm.records):
        assert b["cached"] is True
        assert deterministic_view(a) == deterministic_view(b)
    assert cache.counters()["stores"] == len(SPECS)


def test_poisoned_source_digest_misses(tmp_path):
    fresh = RunCache(root=str(tmp_path))
    run_many(SPECS, jobs=1, cache=fresh)
    stale = RunCache(root=str(tmp_path), source="0" * 64)
    report = run_many(SPECS, jobs=1, cache=stale)
    assert report.n_hits == 0
    assert report.n_executed == len(SPECS)
    # and the two digests really differ — the fresh cache still hits
    again = RunCache(root=str(tmp_path))
    assert again.get(SPECS[0]) is not None


def test_failed_runs_are_never_cached(tmp_path):
    bad = RunSpec(
        workload="broken",
        factory=("repro.apps.helmholtz", "no_such_factory"),
        n_nodes=2,
        pool_bytes=1 << 20,
    )
    cache = RunCache(root=str(tmp_path))
    first = run_many([bad], jobs=1, cache=cache)
    assert first.n_failed == 1
    assert "AttributeError" in first.records[0]["error"]
    second = run_many([bad], jobs=1, cache=cache)
    assert second.n_hits == 0 and second.n_executed == 1


def test_failure_isolation_other_specs_complete():
    bad = RunSpec(
        workload="broken",
        factory=("repro.apps.helmholtz", "no_such_factory"),
        n_nodes=2,
        pool_bytes=1 << 20,
    )
    fleet = run_many([SPECS[1], bad], jobs=1)
    assert fleet.n_failed == 1 and not fleet.ok
    good, broken = fleet.records
    assert good["ok"] and good["events"] > 0
    assert not broken["ok"] and broken["workload"] == "broken"
    assert "cache hits=0" in fleet.summary()


def test_resolve_jobs_precedence(monkeypatch):
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("PARADE_JOBS", "7")
    assert resolve_jobs() == 7
    assert resolve_jobs(2) == 2  # explicit beats env
    monkeypatch.delenv("PARADE_JOBS")
    assert resolve_jobs() >= 1
    assert resolve_jobs(0) == 1  # clamped


def test_cache_eviction_cap(tmp_path):
    cache = RunCache(root=str(tmp_path), cap=1)
    run_many(SPECS, jobs=1, cache=cache)
    entries = list(cache.root.glob("??/*.json"))
    assert len(entries) == 1  # oldest evicted past the cap
