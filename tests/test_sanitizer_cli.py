"""CLI smoke tests for ``python -m repro.sanitizer``."""

from repro.sanitizer.__main__ import main


def test_list_exits_zero(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "helmholtz" in out
    assert "racy-ww" in out


def test_unknown_app_rejected(capsys):
    assert main(["no-such-app"]) == 1
    assert "unknown app" in capsys.readouterr().err


def test_unknown_exec_config_rejected(capsys):
    assert main(["helmholtz", "--exec", "bogus"]) == 1
    assert "unknown exec config" in capsys.readouterr().err


def test_bad_nodes_rejected(capsys):
    assert main(["helmholtz", "--nodes", "0"]) == 1


def test_clean_app_exits_zero(capsys):
    assert main(["md", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "sanitizer: OK" in out


def test_racy_app_exits_two_and_names_sites(capsys):
    assert main(["racy-ww", "--nodes", "2"]) == 2
    out = capsys.readouterr().out
    assert "data-race" in out
    assert "races with earlier" in out


def test_expect_races_inverts_exit(capsys):
    assert main(["racy-ww", "--nodes", "2", "--expect-races"]) == 0
    assert main(["md", "--nodes", "2", "--expect-races"]) == 2
