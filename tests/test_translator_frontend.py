"""Lexer + parser + analysis tests for the OpenMP-C translator frontend."""

import pytest

from repro.translator import (
    tokenize,
    parse,
    LexError,
    ParseError,
    c_ast as A,
    body_is_lexically_analyzable,
    shared_footprint_bytes,
    find_update_statement,
    sizeof_type,
)
from repro.translator.tokens import TokenType
from repro.translator.analysis import (
    analyze_region,
    build_symbols,
    extract_loop_bounds,
    HYBRID_THRESHOLD,
)


# ------------------------------------------------------------- lexer
def test_tokenize_basic_c():
    toks = tokenize("int x = 42;")
    kinds = [(t.type, t.value) for t in toks[:-1]]
    assert kinds == [
        (TokenType.KEYWORD, "int"),
        (TokenType.IDENT, "x"),
        (TokenType.PUNCT, "="),
        (TokenType.NUMBER, "42"),
        (TokenType.PUNCT, ";"),
    ]


def test_tokenize_multichar_punctuators():
    toks = tokenize("a <<= b >> c != d->e")
    values = [t.value for t in toks if t.type == TokenType.PUNCT]
    assert values == ["<<=", ">>", "!=", "->"]


def test_tokenize_pragma_omp_single_token():
    toks = tokenize("#pragma omp parallel for shared(a)\nint x;")
    assert toks[0].type == TokenType.PRAGMA_OMP
    assert toks[0].value == "parallel for shared(a)"


def test_tokenize_pragma_continuation_lines():
    src = "#pragma omp parallel \\\n    shared(a, b)\nint x;"
    toks = tokenize(src)
    assert toks[0].type == TokenType.PRAGMA_OMP
    assert "shared(a, b)" in toks[0].value


def test_tokenize_skips_other_preprocessor_lines():
    toks = tokenize("#include <stdio.h>\n#define N 10\nint x;")
    assert toks[0].type == TokenType.KEYWORD  # 'int'


def test_tokenize_comments_stripped():
    toks = tokenize("int /* block */ x; // line\nint y;")
    names = [t.value for t in toks if t.type == TokenType.IDENT]
    assert names == ["x", "y"]


def test_tokenize_numbers_and_strings():
    toks = tokenize('double d = 1.5e-3; char *s = "hi\\"there";')
    numbers = [t.value for t in toks if t.type == TokenType.NUMBER]
    strings = [t.value for t in toks if t.type == TokenType.STRING]
    assert numbers == ["1.5e-3"]
    assert strings == ['"hi\\"there"']


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("int x; /* never closed")


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('char *s = "oops\nint x;')


# ------------------------------------------------------------- parser
def test_parse_function_and_decls():
    unit = parse("int add(int a, int b) { int c; c = a + b; return c; }")
    fn = unit.items[0]
    assert isinstance(fn, A.FunctionDef)
    assert fn.name == "add"
    assert [p.name for p in fn.params] == ["a", "b"]


def test_parse_prototype():
    unit = parse("double work(double t);")
    proto = unit.items[0]
    assert isinstance(proto, A.FunctionDecl)
    assert proto.name == "work"


def test_parse_arrays_and_pointers():
    unit = parse("void f(void) { double a[10][20]; int *p; }")
    body = unit.items[0].body
    decls = [i for i in body.items if isinstance(i, A.Decl)]
    assert len(decls[0].declarators[0].array_dims) == 2
    assert decls[1].declarators[0].pointers == 1


def test_parse_control_flow():
    src = """
    void f(int n) {
        int i;
        for (i = 0; i < n; i++) { if (i % 2) continue; else break; }
        while (n > 0) n--;
        do { n++; } while (n < 10);
    }
    """
    unit = parse(src)
    kinds = [type(s).__name__ for s in unit.items[0].body.items]
    assert kinds == ["Decl", "For", "While", "DoWhile"]


def test_parse_expression_precedence():
    unit = parse("void f(void) { int x; x = 1 + 2 * 3; }")
    stmt = unit.items[0].body.items[1]
    assign = stmt.expr
    assert isinstance(assign.value, A.BinOp) and assign.value.op == "+"
    assert assign.value.right.op == "*"


def test_parse_ternary_and_call():
    unit = parse("void f(int a) { int x; x = a > 0 ? g(a, 1) : -a; }")
    val = unit.items[0].body.items[1].expr.value
    assert isinstance(val, A.Cond)
    assert isinstance(val.then, A.Call)


def test_parse_omp_parallel_block():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel shared(x)
        { x = 1.0; }
    }
    """
    region = parse(src).items[0].body.items[1]
    assert isinstance(region, A.OmpParallel)
    assert region.clauses.shared == ["x"]


def test_parse_omp_parallel_for_combined():
    src = """
    void f(void) {
        int i; double s;
        #pragma omp parallel for reduction(+: s)
        for (i = 0; i < 10; i++) s = s + i;
    }
    """
    region = parse(src).items[0].body.items[2]
    assert isinstance(region, A.OmpParallel)
    assert region.for_loop
    assert region.clauses.reductions == [("+", ["s"])]


def test_parse_omp_critical_named():
    src = "void f(void){ double x; \n#pragma omp critical (mysec)\n { x = x + 1; } }"
    crit = parse(src).items[0].body.items[1]
    assert isinstance(crit, A.OmpCritical)
    assert crit.name == "mysec"


def test_parse_omp_atomic_requires_expression():
    src = "void f(void){ double x;\n#pragma omp atomic\n x += 1; }"
    atomic = parse(src).items[0].body.items[1]
    assert isinstance(atomic, A.OmpAtomic)
    bad = "void f(void){ double x;\n#pragma omp atomic\n { x += 1; x += 2; } }"
    with pytest.raises(ParseError):
        parse(bad)


def test_parse_omp_clauses_full_set():
    src = """
    void f(void) {
        int i, n; double a, b, c;
        #pragma omp parallel shared(a) private(b) firstprivate(c) num_threads(4) default(shared) if(n)
        { b = a; }
    }
    """
    region = parse(src).items[0].body.items[2]
    cl = region.clauses
    assert cl.shared == ["a"] and cl.private == ["b"]
    assert cl.firstprivate == ["c"] and cl.num_threads == "4"
    assert cl.default == "shared" and cl.if_expr == "n"


def test_parse_omp_schedule_clause():
    src = """
    void f(void) {
        int i;
        #pragma omp parallel
        {
        #pragma omp for schedule(static, 8) nowait
        for (i = 0; i < 10; i++) ;
        }
    }
    """
    region = parse(src).items[0].body.items[1]
    ompfor = region.body.items[0]
    assert ompfor.clauses.schedule == ("static", "8")
    assert ompfor.clauses.nowait


def test_parse_bad_clause_rejected():
    src = "void f(void){\n#pragma omp parallel frobnicate(x)\n { } }"
    with pytest.raises(ParseError):
        parse(src)


def test_parse_pragma_outside_function_rejected():
    with pytest.raises(ParseError):
        parse("#pragma omp barrier\nint x;")


def test_parse_omp_for_needs_loop():
    src = "void f(void){\n#pragma omp parallel\n{\n#pragma omp for\n ; } }"
    with pytest.raises(ParseError):
        parse(src)


# ------------------------------------------------------------- analysis
def test_sizeof_table():
    assert sizeof_type(A.TypeSpec("double")) == 8
    assert sizeof_type(A.TypeSpec("int")) == 4
    assert sizeof_type(A.TypeSpec("char")) == 1
    assert sizeof_type(A.TypeSpec("double", pointers=1)) == 4  # 32-bit target


def test_lexical_analyzability():
    unit = parse("void f(void){ double x;\n#pragma omp critical\n{ x = x + 1; } }")
    crit = unit.items[0].body.items[1]
    assert body_is_lexically_analyzable(crit.body)
    unit2 = parse("void f(void){ double x;\n#pragma omp critical\n{ x = x + g(x); } }")
    crit2 = unit2.items[0].body.items[1]
    assert not body_is_lexically_analyzable(crit2.body)


def test_shared_footprint_counts_arrays():
    src = """
    void f(void) {
        double x; double big[1000];
        #pragma omp parallel shared(x, big)
        { x = x + big[0]; }
    }
    """
    fn = parse(src).items[0]
    region = fn.body.items[2]
    table = build_symbols(fn)
    fp = shared_footprint_bytes(region.body, table, {"x", "big"})
    assert fp == 8 + 8000
    assert fp > HYBRID_THRESHOLD


def test_update_statement_patterns():
    def pat_of(code):
        unit = parse(f"void f(void){{ double x, y; {code} }}")
        stmt = unit.items[0].body.items[1]
        return find_update_statement(stmt)

    assert pat_of("x = x + 1;").op == "+"
    assert pat_of("x = x * 2;").op == "*"
    assert pat_of("x = 3 + x;").op == "+"
    assert pat_of("x += y;").op == "+"
    assert pat_of("x++;").op == "+"
    assert pat_of("x = y + 1;") is None           # not self-referential
    assert pat_of("x = x / 2;") is None           # '/' not a reduction op
    assert pat_of("y = 0; ") is None


def test_analyze_region_default_shared():
    src = """
    void f(void) {
        double x; int i; double a[100];
        #pragma omp parallel private(i)
        { x = a[0]; }
    }
    """
    fn = parse(src).items[0]
    info = analyze_region(fn.body.items[3], fn)
    assert "x" in info.shared and "a" in info.shared
    assert "i" in info.private


def test_analyze_region_default_none_enforced():
    src = """
    void f(void) {
        double x;
        #pragma omp parallel default(none)
        { x = 1.0; }
    }
    """
    fn = parse(src).items[0]
    with pytest.raises(ValueError):
        analyze_region(fn.body.items[1], fn)


def test_analyze_region_loop_var_private_automatically():
    src = """
    void f(void) {
        int i; double s;
        #pragma omp parallel
        {
        #pragma omp for
        for (i = 0; i < 10; i++) s = s + i;
        }
    }
    """
    fn = parse(src).items[0]
    info = analyze_region(fn.body.items[2], fn)
    assert "i" not in info.shared
    assert "s" in info.shared


def test_extract_loop_bounds_forms():
    def bounds_of(loop_src):
        unit = parse(f"void f(int n){{ int i; {loop_src} }}")
        loop = unit.items[0].body.items[1]
        return extract_loop_bounds(loop)

    b = bounds_of("for (i = 0; i < n; i++) ;")
    assert b.var == "i" and not b.inclusive and b.increasing
    b2 = bounds_of("for (i = 1; i <= n; i += 2) ;")
    assert b2.inclusive
    assert bounds_of("for (i = 0; g(i); i++) ;") is None
