"""Regression: lock grants must not ship the acquirer's own notices.

A node's own write notices carry no information for it (a writer never
invalidates its own copy); the manager filters them at ``_grant`` so the
wire bytes and the grant's ``notices=`` accounting reflect what the
acquirer can act on.  Before the fix they were shipped and discarded at
apply time, so a re-acquiring writer paid wire cost proportional to its
own write history.
"""

from repro.dsm import SharedArray
from repro.dsm.writenotice import WriteNotice
from repro.testing import build_dsm, run_all
from repro.trace import TraceRecorder


def _grant_events(rec):
    grants = [e for e in rec.events if e.cat == "dsm.lock" and e.name == "grant"]
    wires = [
        e for e in rec.events
        if e.cat == "net" and e.name == "msg-send" and "'lk', 'gr'" in e.args["tag"]
    ]
    return grants, wires


def test_own_notices_filtered_at_grant():
    cluster, _cts, dsm = build_dsm(3)
    rec = TraceRecorder(cluster.sim, capacity=1 << 14)
    arr = SharedArray.allocate(dsm, "x", (8,))

    def driver():
        # node 1 (non-home) writes under the lock: its release logs one
        # write notice at the manager (node 0)
        yield from dsm.node(1).lock_acquire(0)
        yield from arr.on(1).set_scalar(0, 1.0)
        yield from dsm.node(1).lock_release(0)
        # node 1 re-acquires: the pending notice is its OWN and must not
        # be shipped back to it
        yield from dsm.node(1).lock_acquire(0)
        yield from dsm.node(1).lock_release(0)
        # node 2 acquires: node 1's notice is news to it
        yield from dsm.node(2).lock_acquire(0)
        yield from dsm.node(2).lock_release(0)

    run_all(cluster, [driver()])
    grants, wires = _grant_events(rec)
    assert [g.args["requester"] for g in grants] == [1, 1, 2]
    assert [g.args["notices"] for g in grants] == [0, 0, 1]


def test_grant_wire_bytes_match_filtered_notices():
    """Wire accounting: each grant message is header + NBYTES per notice
    actually shipped — a self-notice adds zero bytes."""
    cluster, _cts, dsm = build_dsm(3)
    rec = TraceRecorder(cluster.sim, capacity=1 << 14)
    arr = SharedArray.allocate(dsm, "x", (8,))

    def driver():
        yield from dsm.node(1).lock_acquire(0)
        yield from arr.on(1).set_scalar(0, 1.0)
        yield from dsm.node(1).lock_release(0)
        yield from dsm.node(1).lock_acquire(0)
        yield from dsm.node(1).lock_release(0)
        yield from dsm.node(2).lock_acquire(0)
        yield from dsm.node(2).lock_release(0)

    run_all(cluster, [driver()])
    _grants, wires = _grant_events(rec)
    sizes = [w.args["nbytes"] for w in wires]
    # empty-log grant and self-notice-only grant are byte-identical on
    # the wire; the foreign notice costs exactly one WriteNotice record
    assert sizes[1] == sizes[0]
    assert sizes[2] == sizes[0] + WriteNotice.NBYTES


def test_repeated_self_acquire_pays_no_notice_bytes():
    """A lock's sole user never pays for its own write history."""
    cluster, _cts, dsm = build_dsm(2)
    rec = TraceRecorder(cluster.sim, capacity=1 << 14)
    arr = SharedArray.allocate(dsm, "x", (8,))

    def driver():
        for i in range(5):
            yield from dsm.node(1).lock_acquire(0)
            yield from arr.on(1).set_scalar(0, float(i))
            yield from dsm.node(1).lock_release(0)

    run_all(cluster, [driver()])
    grants, wires = _grant_events(rec)
    assert [g.args["notices"] for g in grants] == [0] * 5
    sizes = [w.args["nbytes"] for w in wires]
    assert len(set(sizes)) == 1, (
        f"grant wire size grew with the node's own write history: {sizes}"
    )
