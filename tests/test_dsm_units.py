"""Unit + property tests for DSM building blocks: states, diffs, notices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsm import (
    PageState,
    is_valid_transition,
    make_twin,
    compute_diff,
    apply_diff,
    diff_nbytes,
    WriteNotice,
    NoticeLog,
)
from repro.dsm.states import VALID_TRANSITIONS, IllegalTransition
from repro.dsm.writenotice import merge_notices
from repro.dsm.diffs import RUN_HEADER_BYTES


# ------------------------------------------------------------- states
def test_figure5_transitions_present():
    # the arcs of Figure 5
    assert is_valid_transition(PageState.INVALID, PageState.TRANSIENT, "fault")
    assert is_valid_transition(PageState.TRANSIENT, PageState.BLOCKED, "concurrent-fault")
    assert is_valid_transition(PageState.TRANSIENT, PageState.READ_ONLY, "update-done")
    assert is_valid_transition(PageState.BLOCKED, PageState.READ_ONLY, "update-done")
    assert is_valid_transition(PageState.READ_ONLY, PageState.DIRTY, "write-fault")
    assert is_valid_transition(PageState.DIRTY, PageState.READ_ONLY, "flush")
    assert is_valid_transition(PageState.READ_ONLY, PageState.INVALID, "invalidate")
    assert is_valid_transition(PageState.DIRTY, PageState.INVALID, "invalidate")


def test_forbidden_transitions_absent():
    # an INVALID page can never become valid without passing TRANSIENT
    assert not is_valid_transition(PageState.INVALID, PageState.READ_ONLY, "update-done")
    assert not is_valid_transition(PageState.INVALID, PageState.DIRTY, "write-fault")
    # a blocked page cannot be invalidated mid-update
    assert not is_valid_transition(PageState.BLOCKED, PageState.INVALID, "invalidate")
    assert not is_valid_transition(PageState.TRANSIENT, PageState.INVALID, "invalidate")


def test_transition_table_only_uses_known_states():
    for src, dst, _reason in VALID_TRANSITIONS:
        assert isinstance(src, PageState) and isinstance(dst, PageState)


# ------------------------------------------------------------- diffs
def test_diff_empty_when_unchanged():
    page = (np.arange(4096) % 256).astype(np.uint8)
    twin = make_twin(page)
    assert compute_diff(twin, page) == []


def test_diff_captures_single_run():
    page = np.zeros(4096, dtype=np.uint8)
    twin = make_twin(page)
    page[100:108] = 42
    diff = compute_diff(twin, page)
    assert len(diff) == 1
    off, data = diff[0]
    assert off == 100 and data == bytes([42] * 8)


def test_diff_splits_disjoint_runs():
    page = np.zeros(4096, dtype=np.uint8)
    twin = make_twin(page)
    page[0] = 1
    page[4095] = 2
    diff = compute_diff(twin, page)
    assert [off for off, _ in diff] == [0, 4095]


def test_diff_coalesce_gap_merges_close_runs():
    page = np.zeros(4096, dtype=np.uint8)
    twin = make_twin(page)
    page[10] = 1
    page[14] = 2  # 3 unchanged bytes between the runs
    assert len(compute_diff(twin, page, coalesce_gap=2)) == 2
    merged = compute_diff(twin, page, coalesce_gap=3)
    assert merged == [(10, bytes(page[10:15]))]
    # the coalesced run round-trips: gap bytes equal the twin's, so
    # applying it reproduces the writer's copy exactly
    out = make_twin(twin)
    apply_diff(out, merged)
    assert np.array_equal(out, page)


def test_diff_coalesce_gap_zero_is_exact():
    rng = np.random.default_rng(7)
    page = rng.integers(0, 256, 4096).astype(np.uint8)
    twin = make_twin(page)
    page[rng.integers(0, 4096, 64)] += 1
    assert compute_diff(twin, page) == compute_diff(twin, page, coalesce_gap=0)


def test_apply_diff_merges_into_home_copy():
    home = np.zeros(4096, dtype=np.uint8)
    home[50] = 99  # home's own concurrent change at a different offset
    diff = [(100, b"\x07\x07")]
    apply_diff(home, diff)
    assert home[100] == 7 and home[101] == 7
    assert home[50] == 99  # untouched


def test_apply_diff_bounds_checked():
    page = np.zeros(16, dtype=np.uint8)
    with pytest.raises(ValueError):
        apply_diff(page, [(15, b"\x01\x02")])


def test_diff_nbytes_counts_headers():
    diff = [(0, b"abc"), (100, b"de")]
    assert diff_nbytes(diff) == 2 * RUN_HEADER_BYTES + 5


def test_diff_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        compute_diff(np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8))


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 4095), st.integers(0, 255)), min_size=0, max_size=50
    )
)
def test_diff_roundtrip_property(writes):
    """apply(twin, diff(twin, page)) == page for any write pattern."""
    rng = np.random.default_rng(0)
    original = rng.integers(0, 256, 4096, dtype=np.uint8)
    page = original.copy()
    twin = make_twin(page)
    for off, val in writes:
        page[off] = val
    diff = compute_diff(twin, page)
    reconstructed = original.copy()
    apply_diff(reconstructed, diff)
    assert np.array_equal(reconstructed, page)


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 4000), st.integers(1, 64)), min_size=1, max_size=20
    )
)
def test_diff_size_bounded_by_changes(writes):
    """A diff never ships more payload bytes than were changed."""
    page = np.zeros(4096, dtype=np.uint8)
    twin = make_twin(page)
    touched = set()
    for off, ln in writes:
        page[off : off + ln] = 200
        touched.update(range(off, min(off + ln, 4096)))
    diff = compute_diff(twin, page)
    payload = sum(len(d) for _o, d in diff)
    assert payload == len({i for i in touched if page[i] != 0})


# ------------------------------------------------------------- write notices
def test_notice_log_cursor_semantics():
    log = NoticeLog()
    log.append([WriteNotice(1, 0, 1), WriteNotice(2, 0, 1)])
    first = log.unseen_by(consumer=1)
    assert [w.page for w in first] == [1, 2]
    assert log.unseen_by(consumer=1) == []
    log.append([WriteNotice(3, 2, 2)])
    assert [w.page for w in log.unseen_by(consumer=1)] == [3]
    # a different consumer sees everything from the start
    assert [w.page for w in log.unseen_by(consumer=5)] == [1, 2, 3]


def test_merge_notices_groups_writers():
    merged = merge_notices(
        {
            0: [WriteNotice(10, 0, 1), WriteNotice(11, 0, 1)],
            1: [WriteNotice(10, 1, 1)],
            2: [],
        }
    )
    assert merged == {10: {0, 1}, 11: {0}}
