"""Unit tests for the per-node communication thread."""

import pytest

from repro.mpi import CommThread, POISON
from repro.testing import build_cluster, run_all


def test_dispatch_by_channel():
    cluster = build_cluster(2)
    ct = CommThread(cluster.nodes[1], cluster.network)
    got = []

    def handler(msg):
        got.append(msg.payload)
        return
        yield

    ct.register("foo", handler)
    ct.start()

    def sender():
        yield from cluster.network.send(0, 1, 16, "hello", tag=("foo", 1))

    run_all(cluster, [sender()])
    assert got == ["hello"]
    assert ct.messages_handled == 1


def test_unknown_channel_raises():
    cluster = build_cluster(2)
    ct = CommThread(cluster.nodes[1], cluster.network)
    ct.start()

    def sender():
        yield from cluster.network.send(0, 1, 16, "x", tag=("nochannel",))

    from repro.sim.core import UnhandledProcessError

    cluster.sim.process(sender())
    with pytest.raises(UnhandledProcessError):
        cluster.sim.run()


def test_duplicate_registration_rejected():
    cluster = build_cluster(1)
    ct = CommThread(cluster.nodes[0], cluster.network)

    def h(msg):
        return
        yield

    ct.register("a", h)
    with pytest.raises(ValueError):
        ct.register("a", h)


def test_double_start_rejected():
    cluster = build_cluster(1)
    ct = CommThread(cluster.nodes[0], cluster.network)
    ct.start()
    with pytest.raises(RuntimeError):
        ct.start()


def test_poison_shuts_down_in_fifo_order():
    cluster = build_cluster(2)
    ct = CommThread(cluster.nodes[1], cluster.network)
    got = []

    def handler(msg):
        got.append(msg.payload)
        return
        yield

    ct.register("c", handler)
    ct.start()

    def sender():
        yield from cluster.network.send(0, 1, 8, 1, tag=("c",))
        yield from cluster.network.send(0, 1, 8, 2, tag=("c",))
        # the poison pill goes straight into the inbox (no wire latency),
        # so wait for the in-flight frames to land first
        yield cluster.sim.timeout(1e-3)
        ct.shutdown()

    run_all(cluster, [sender()])
    cluster.sim.run()
    assert got == [1, 2]
    assert ct.process.processed  # loop exited


def test_service_serialises_handlers():
    """Two messages: the second is handled only after the first handler's
    generator completes (one comm thread = serial protocol service)."""
    cluster = build_cluster(2)
    ct = CommThread(cluster.nodes[1], cluster.network)
    spans = []

    def handler(msg):
        start = cluster.sim.now
        yield cluster.sim.timeout(1e-4)
        spans.append((start, cluster.sim.now))

    ct.register("s", handler)
    ct.start()

    def sender():
        yield from cluster.network.send(0, 1, 8, "a", tag=("s",))
        yield from cluster.network.send(0, 1, 8, "b", tag=("s",))

    run_all(cluster, [sender()])
    assert len(spans) == 2
    # no overlap
    assert spans[1][0] >= spans[0][1]


def test_cpu_charge_delays_handling_on_busy_node():
    """With one CPU busy on compute, message service waits for it."""
    from repro.cluster import ClusterConfig, Cluster

    cluster = Cluster(ClusterConfig(n_nodes=2, cpus_per_node=1, cpu_mhz=(600, 600)))
    ct = CommThread(cluster.nodes[1], cluster.network)
    handled_at = []

    def handler(msg):
        handled_at.append(cluster.sim.now)
        return
        yield

    ct.register("c", handler)
    ct.start()

    def hog():
        # occupy node 1's only CPU for 5 ms
        yield from cluster.nodes[1].compute(500_000)

    def sender():
        yield from cluster.network.send(0, 1, 8, "x", tag=("c",))

    run_all(cluster, [hog(), sender()])
    assert handled_at[0] >= 5e-3  # waited for the CPU
