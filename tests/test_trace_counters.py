"""Counter-series tracing: queue-depth sampling, page-state census, and
the ``ph:"C"`` Chrome export (first ROADMAP trace follow-up)."""

from __future__ import annotations

import json

import pytest

from repro.sim import Simulator
from repro.trace import (
    TraceRecorder,
    CAT_COUNTER,
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    to_chrome,
)
from repro.runtime import ParadeRuntime
from repro.bench.figures import registered_programs


def test_counter_category_is_default_on():
    assert CAT_COUNTER in ALL_CATEGORIES
    assert CAT_COUNTER in DEFAULT_CATEGORIES


def test_counter_event_shape(sim):
    rec = TraceRecorder(sim, capacity=16)
    rec.counter(CAT_COUNTER, "queue-depth", depth=7)
    (ev,) = rec.events
    assert ev.is_counter
    assert not ev.is_span
    assert ev.ph == "C"
    assert ev.args == {"depth": 7}
    assert ev.as_dict()["ph"] == "C"


def test_counter_respects_category_filter(sim):
    rec = TraceRecorder(sim, capacity=16, categories={"dsm.page"})
    rec.counter(CAT_COUNTER, "queue-depth", depth=1)
    assert len(rec) == 0


def test_queue_depth_sampling_stride(sim):
    rec = TraceRecorder(sim, capacity=1 << 12, queue_stride=4)
    # 10 timeouts -> 10 processed events -> samples at steps 4 and 8
    for _ in range(10):
        sim.timeout(1.0)
    sim.run()
    samples = [e for e in rec.events if e.name == "queue-depth"]
    assert len(samples) == 2
    assert all(e.is_counter for e in samples)
    # depths decrease as the schedule drains
    depths = [e.args["depth"] for e in samples]
    assert depths == sorted(depths, reverse=True)


def test_queue_stride_zero_disables_sampling(sim):
    rec = TraceRecorder(sim, capacity=64, queue_stride=0)
    for _ in range(100):
        sim.timeout(1.0)
    sim.run()
    assert not [e for e in rec.events if e.name == "queue-depth"]


def test_negative_queue_stride_rejected(sim):
    with pytest.raises(ValueError):
        TraceRecorder(sim, queue_stride=-1)


def test_chrome_export_counter_records(sim):
    rec = TraceRecorder(sim, capacity=16)
    rec.counter(CAT_COUNTER, "page-census", node=2, INVALID=3, READ_ONLY=5)
    doc = to_chrome(rec.events)
    counters = [r for r in doc["traceEvents"] if r.get("ph") == "C"]
    assert len(counters) == 1
    rec = counters[0]
    assert rec["name"] == "page-census"
    assert rec["pid"] == 2
    assert rec["args"] == {"INVALID": 3, "READ_ONLY": 5}
    json.dumps(doc)  # must be serialisable


def test_traced_run_emits_census_and_queue_counters():
    reg = registered_programs()["helmholtz"]
    rt = ParadeRuntime(n_nodes=2, pool_bytes=reg["pool_bytes"])
    rec = TraceRecorder(rt.sim, capacity=1 << 18, queue_stride=32)
    rt.run(reg["factory"]())
    events = rec.events
    census = [e for e in events if e.name == "page-census"]
    depth = [e for e in events if e.name == "queue-depth"]
    assert census and depth
    # every census sample covers all pages of the pool exactly once
    n_pages = rt.dsm.n_pages
    for ev in census:
        assert ev.node in (0, 1)
        assert sum(ev.args.values()) == n_pages
    # census fires once per node per barrier epoch
    barriers = [e for e in events if e.cat == "dsm.barrier" and e.name == "barrier"]
    assert len(census) == len(barriers)
