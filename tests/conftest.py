"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim import Simulator

# canonical builders live in the library so benchmarks can share them
from repro.testing import build_cluster, build_comm, build_dsm, run_all  # noqa: F401


@pytest.fixture
def sim():
    return Simulator()
