"""Chrome-trace flow events: each cross-node message's send and deliver
instants are linked by a ``ph:"s"`` / ``ph:"f"`` pair keyed by wire seq,
so Perfetto draws message arrows between node tracks."""

import numpy as np

from repro.testing import build_cluster, build_comm, run_all
from repro.trace import TraceRecorder, to_chrome
from repro.trace.events import TraceEvent


def _synthetic(seqs_with_deliver, seqs_send_only):
    evs = []
    t = 1e-6
    for seq in sorted(seqs_with_deliver | seqs_send_only):
        evs.append(TraceEvent(ts=t, cat="net", name="msg-send", node=0,
                              tid="comm[0]", args={"dst": 1, "nbytes": 64,
                                                   "tag": "t", "seq": seq}))
        t += 1e-6
        if seq in seqs_with_deliver:
            evs.append(TraceEvent(ts=t, cat="net", name="msg-deliver", node=1,
                                  tid="wire", args={"src": 0, "nbytes": 64,
                                                    "tag": "t", "seq": seq}))
            t += 1e-6
    return evs


def test_flow_pair_emitted_per_matched_seq():
    doc = to_chrome(_synthetic({1, 2}, set()))
    flows = [e for e in doc["traceEvents"] if e.get("cat") == "net.flow"]
    assert [f["ph"] for f in flows] == ["s", "f", "s", "f"]
    assert [f["id"] for f in flows] == [1, 1, 2, 2]
    for f in flows:
        assert f["name"] == "msg"
        if f["ph"] == "f":
            assert f["bp"] == "e"


def test_flow_start_binds_to_send_site():
    doc = to_chrome(_synthetic({7}, set()))
    evs = doc["traceEvents"]
    send = next(e for e in evs if e.get("name") == "msg-send")
    deliver = next(e for e in evs if e.get("name") == "msg-deliver")
    start = next(e for e in evs if e.get("cat") == "net.flow" and e["ph"] == "s")
    finish = next(e for e in evs if e.get("cat") == "net.flow" and e["ph"] == "f")
    assert (start["ts"], start["pid"], start["tid"]) == (
        send["ts"], send["pid"], send["tid"])
    assert (finish["ts"], finish["pid"], finish["tid"]) == (
        deliver["ts"], deliver["pid"], deliver["tid"])


def test_unmatched_send_gets_no_flow():
    """Loopback messages emit msg-send only; a dangling flow start would
    render as an arrow to nowhere."""
    doc = to_chrome(_synthetic({2}, {1}))
    flows = [e for e in doc["traceEvents"] if e.get("cat") == "net.flow"]
    assert [f["id"] for f in flows] == [2, 2]


def test_real_traffic_flows_are_balanced():
    """End to end: every flow start from live MPI traffic has exactly one
    finish with the same id.  Loopback sends emit msg-deliver too (same
    delivery accounting as remote frames), so their flows also pair up."""
    cluster = build_cluster(2)
    rec = TraceRecorder(cluster.sim, capacity=1 << 14)
    _cts, comm = build_comm(cluster)

    def sender():
        yield from comm.rank(0).send(np.arange(4.0), 1, tag=5)

    def receiver():
        got = yield from comm.rank(1).recv(source=0, tag=5)
        assert np.array_equal(got, np.arange(4.0))

    run_all(cluster, [sender(), receiver()])
    doc = to_chrome(rec.events)
    starts = [e["id"] for e in doc["traceEvents"]
              if e.get("cat") == "net.flow" and e["ph"] == "s"]
    finishes = [e["id"] for e in doc["traceEvents"]
                if e.get("cat") == "net.flow" and e["ph"] == "f"]
    assert len(starts) >= 1
    assert sorted(starts) == sorted(finishes)
    assert len(set(starts)) == len(starts)
