"""Helmholtz/Jacobi solver on the simulated cluster (the paper's Figure 10
workload, from the openmp.org jacobi.f sample).

Demonstrates the hybrid translation's flagship case: the solver checks a
shared error variable every iteration; ParADE turns the competitive update
into one MPI_Allreduce per iteration, and migratory homes eliminate
steady-state diff traffic for the row-partitioned grid.

Run:  python examples/jacobi_solver.py [--n 256] [--iters 25]
"""

import argparse

import numpy as np

from repro.apps import helmholtz
from repro.runtime import ParadeRuntime, ALL_EXEC_CONFIGS

NODES = (1, 2, 4, 8)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--n", type=int, default=128, help="grid size (n x n)")
    ap.add_argument("--iters", type=int, default=25)
    args = ap.parse_args()
    n = args.n

    seq = helmholtz.helmholtz_reference(n=n, m=n, max_iters=args.iters)
    print(f"grid {n}x{n}, {seq.iterations} Jacobi iterations, "
          f"residual {seq.error:.3e}, max error vs analytic solution "
          f"{seq.solution_error():.3e}")
    print()
    header = f"{'config':>14}" + "".join(f"{f'{p} nodes':>12}" for p in NODES)
    print(header)
    print("-" * len(header))
    for ec in ALL_EXEC_CONFIGS:
        times = []
        for p in NODES:
            rt = ParadeRuntime(n_nodes=p, exec_config=ec, pool_bytes=1 << 22)
            res = rt.run(helmholtz.make_program(n=n, m=n, max_iters=args.iters))
            assert np.allclose(res.value.u, seq.u, atol=1e-12), "numerics diverged"
            times.append(res.elapsed * 1e3)
        print(f"{ec.name:>14}" + "".join(f"{t:>12.2f}" for t in times) + "  ms")
    print()
    print("(values are virtual milliseconds on the simulated cLAN cluster)")


if __name__ == "__main__":
    main()
