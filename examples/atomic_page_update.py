"""The atomic page update problem (§5.1, Figure 4) demonstrated.

A page-based multi-threaded SDSM must install an incoming page while other
application threads may touch it.  The naive approach — make the
application mapping writable, copy, re-protect — lets a second thread read
a half-updated page without faulting.  The paper's four solutions create a
second access path (file mapping, SysV shm, the mdup() syscall, a forked
child) so the application mapping stays protected until the copy commits.

This script races a reader against each strategy's page update and then
prints the per-strategy cost table on the Linux and AIX cost profiles
(paper: comparable on Linux; file mapping pathological on AIX).

Run:  python examples/atomic_page_update.py
"""

import numpy as np

from repro.sim import Simulator
from repro.vm import (
    AddressSpace,
    PhysicalMemory,
    ProtectionFault,
    PROT_NONE,
    PROT_READ,
    STRATEGY_NAMES,
    strategy_by_name,
    LINUX_24,
    AIX_433,
)
from repro.vm.strategies import SimpleExecutor

PAGE = 4096


def race(strategy_name: str) -> str:
    """Race a reader against one page update; classify what it observed."""
    sim = Simulator()
    phys = PhysicalMemory(1, PAGE)
    space = AddressSpace(phys)
    space.map_identity(1, prot=PROT_NONE)
    strat = strategy_by_name(strategy_name)
    ex = SimpleExecutor(sim)
    new_page = b"\xab" * PAGE
    outcome = []

    def updater():
        yield from strat.update_page(ex, space, 0, new_page, PROT_READ)

    def reader():
        while True:
            try:
                space.check_range(0, PAGE, write=False)
            except ProtectionFault:
                yield sim.timeout(1e-7)  # would block in TRANSIENT/BLOCKED
                continue
            data = np.frombuffer(space.read(0, PAGE), dtype=np.uint8)
            if data[0] != 0xAB:
                yield sim.timeout(1e-7)
                continue
            torn = data[-1] != 0xAB
            outcome.append("TORN READ (race!)" if torn else "consistent")
            return

    sim.process(updater())
    sim.process(reader())
    sim.run()
    return outcome[0]


def steady_cost(strategy_name: str, profile) -> float:
    sim = Simulator()
    phys = PhysicalMemory(1, PAGE)
    space = AddressSpace(phys)
    space.map_identity(1, prot=PROT_NONE)
    strat = strategy_by_name(strategy_name, profile=profile)
    ex = SimpleExecutor(sim)
    page = b"\x01" * PAGE
    marks = []

    def run():
        for _ in range(11):
            space.protect(0, PROT_NONE)
            yield from strat.update_page(ex, space, 0, page, PROT_READ)
            marks.append(sim.now)

    sim.process(run())
    sim.run()
    return (marks[-1] - marks[0]) / 10 * 1e6  # us per update


def main():
    print(f"{'strategy':>14} {'reader observes':>20} {'linux us/upd':>14} {'aix us/upd':>12}")
    print("-" * 64)
    for name in STRATEGY_NAMES:
        print(
            f"{name:>14} {race(name):>20} "
            f"{steady_cost(name, LINUX_24):>14.2f} {steady_cost(name, AIX_433):>12.2f}"
        )
    print()
    print("naive opens the protection window early -> torn reads;")
    print("the four dual-mapping methods are race-free and, on Linux,")
    print("cost about the same; on AIX 4.3.3 file mapping is pathological.")


if __name__ == "__main__":
    main()
