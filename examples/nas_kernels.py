"""NAS kernels on the simulated cluster: EP and CG (§6.2 of the paper).

Runs each kernel under the paper's three execution configurations on 1-8
nodes, validates numerics against the sequential references (and, for EP,
against the published NPB class sums), and prints the scaling tables that
correspond to Figures 8 and 9.

Run:  python examples/nas_kernels.py [--class S]
"""

import argparse

import numpy as np

from repro.apps import cg, ep
from repro.runtime import ParadeRuntime, ALL_EXEC_CONFIGS

NODES = (1, 2, 4, 8)


def run_ep(klass: str):
    print(f"== NAS EP class {klass} " + "=" * 40)
    ref = ep.ep_segment(0, 1 << ep.CLASSES[klass])
    for ec in ALL_EXEC_CONFIGS:
        times = []
        for n in NODES:
            rt = ParadeRuntime(n_nodes=n, exec_config=ec, pool_bytes=1 << 20)
            res = rt.run(ep.make_program(klass))
            assert abs(res.value.sx - ref.sx) < 1e-8
            times.append(res.elapsed * 1e3)
        row = "".join(f"{t:>12.2f}" for t in times)
        print(f"{ec.name:>14}: {row}   (ms over nodes {NODES})")
    if klass in ep.REFERENCE:
        print(f"verification: sx/sy match published NPB sums: {ref.verify(klass)}")
    print()


def run_cg(klass: str, niter: int):
    print(f"== NAS CG class {klass} (niter={niter}) " + "=" * 30)
    matrix = cg.make_matrix(klass)
    seq = cg.cg_reference(klass, a=matrix, niter=niter)
    print(f"sequential zeta = {seq.zeta:.13f}")
    for ec in ALL_EXEC_CONFIGS:
        times = []
        for n in NODES:
            rt = ParadeRuntime(n_nodes=n, exec_config=ec, pool_bytes=1 << 23)
            res = rt.run(cg.make_program(klass, a=matrix, niter=niter))
            assert abs(res.value.zeta - seq.zeta) < 1e-9
            times.append(res.elapsed * 1e3)
        row = "".join(f"{t:>12.2f}" for t in times)
        print(f"{ec.name:>14}: {row}   (ms over nodes {NODES})")
    if klass in cg.REFERENCE_ZETA and niter == cg.CLASSES[klass][3]:
        print(f"verification: zeta matches published value: {seq.verify()}")
    print()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--ep-class", default="T", choices=sorted(ep.CLASSES))
    ap.add_argument("--cg-class", default="T", choices=sorted(cg.CLASSES))
    ap.add_argument("--cg-niter", type=int, default=3)
    args = ap.parse_args()
    run_ep(args.ep_class)
    run_cg(args.cg_class, args.cg_niter)


if __name__ == "__main__":
    main()
