"""The OpenMP translator in action: Figures 2 and 3 of the paper.

Feeds a C program containing the paper's canonical `critical` and `single`
constructs to both translation backends and prints the generated code side
by side: the conventional SDSM translation (distributed locks + barriers)
vs the ParADE hybrid translation (pthread locks + collectives).

Run:  python examples/translate_openmp.py [file.c]
"""

import sys

from repro.translator import translate

DEMO = """\
double heavy_work(double v);

void solver(void)
{
    int i;
    double x;
    double err;
    double a[4096];

    x = 0.0;
    err = 0.0;
    #pragma omp parallel shared(x, err, a) private(i)
    {
        /* work-sharing loop with a reduction: ParADE fuses the
           accumulation into one MPI_Allreduce and drops the barrier */
        #pragma omp for reduction(+: err)
        for (i = 0; i < 4096; i++) {
            err = err + a[i] * a[i];
        }

        /* analyzable critical on a small scalar: Figure 2 */
        #pragma omp critical
        x = x + 1.0;

        /* single initialising a small scalar: Figure 3 */
        #pragma omp single
        x = 42.0;

        /* a critical with a function call stays on the SDSM lock path */
        #pragma omp critical
        {
            x = x + heavy_work(x);
        }
    }
}
"""


def main():
    source = DEMO
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as f:
            source = f.read()

    print("#" * 30, "input OpenMP C", "#" * 30)
    print(source)
    for backend, label in (("sdsm", "conventional SDSM translation"),
                           ("parade", "ParADE hybrid translation")):
        print("#" * 30, label, "#" * 30)
        print(translate(source, backend))


if __name__ == "__main__":
    main()
