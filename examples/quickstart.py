"""Quickstart: run an OpenMP-style program on a simulated SMP cluster.

A ParADE program is a generator taking a master context.  Parallel regions
fork threads across every node of the cluster; inside a region the thread
context exposes the OpenMP directives (for_range, barrier, critical,
reduction, single) in both the ParADE hybrid translation and the
conventional SDSM translation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.runtime import ParadeRuntime, TWO_THREAD_TWO_CPU
from repro.mpi.ops import SUM

N = 100_000


def program(ctx):
    # shared data: a big array (HLRC pages) and a small scalar (<= 256 B,
    # automatically placed under the message-passing update protocol)
    data = ctx.shared_array("data", (N,))
    total = ctx.shared_scalar("total")

    def body(tc, data, total):
        lo, hi = tc.for_range(0, N)          # omp for, schedule(static)
        view = tc.array(data)
        yield from view.set(np.sqrt(np.arange(lo, hi, dtype=np.float64)), start=lo)
        yield from tc.compute((hi - lo) * 3)  # charge virtual CPU time
        yield from tc.barrier()               # omp barrier

        mine = yield from view.get(lo, hi)    # faults fetch remote pages
        partial = float(np.sum(mine))
        # reduction(+: total) -> one MPI_Allreduce in ParADE mode
        result = yield from tc.reduce_into(total, partial, SUM)

        # omp single: earliest thread runs it, result broadcast
        def announce():
            return round(result, 3)
            yield

        got = yield from tc.single(body_gen_fn=announce)
        return got

    results = yield from ctx.parallel(body, data, total)
    final = yield from ctx.scalar(total).get()
    return float(final)


def main():
    rt = ParadeRuntime(
        n_nodes=4,                      # 4 simulated dual-CPU nodes
        exec_config=TWO_THREAD_TWO_CPU, # 2 compute threads + comm thread each
        mode="parade",                  # the hybrid translation
        pool_bytes=1 << 21,
    )
    res = rt.run(program)
    expected = float(np.sum(np.sqrt(np.arange(N, dtype=np.float64))))
    print(f"sum of sqrt(0..{N})  = {res.value:.3f} (expected {expected:.3f})")
    print(f"virtual execution    = {res.elapsed * 1e3:.3f} ms on the simulated cluster")
    print()
    print(res.summary())


if __name__ == "__main__":
    main()
