"""The paper's §8 future-work items, implemented and demonstrated.

1. **Cluster-aware loop scheduling** — "the current version of ParADE
   supports only the static loop scheduling": we add dynamic and guided
   schedules via a master-node chunk dispenser and measure them on a
   maximally imbalanced (triangular) load.
2. **Adaptive configuration** — "more processors do not always give better
   performance ... we want to find the best configuration": autotune a
   workload over the (nodes × threads/CPUs) grid.
3. **Smarter translator** — "the translator can analyze locality of
   arrays": the §7/§8 guideline linter flags partitioned arrays whose
   synchronisation could be elided, plus scope/critical-section issues.

Run:  python examples/future_work.py
"""

from repro.runtime import ParadeRuntime
from repro.mpi.ops import SUM
from repro.bench.autotune import find_best_config
from repro.translator.guidelines import report
from repro.apps import ep

N = 300


def make_imbalanced(sched):
    def program(ctx):
        total = ctx.shared_scalar("t")

        def body(tc, total):
            part = 0.0
            if sched == "static":
                lo, hi = tc.for_range(0, N)
                for i in range(lo, hi):
                    yield from tc.compute(1500.0 * (i + 1))  # triangular load
                    part += i
            else:
                loop = tc.dynamic_loop(0, N, chunk=4, sched=sched)
                while True:
                    rng = yield from loop.next_chunk()
                    if rng is None:
                        break
                    for i in range(*rng):
                        yield from tc.compute(1500.0 * (i + 1))
                        part += i
            yield from tc.reduce_into(total, part, SUM)

        yield from ctx.parallel(body, total)
        v = yield from ctx.scalar(total).get()
        return float(v)

    return program


LINT_DEMO = """
void solver(void)
{
    int i;
    double x;
    double tmp[256];
    double out[1024];
    #pragma omp parallel private(i)
    {
        #pragma omp for
        for (i = 0; i < 1024; i++) {
            tmp[i % 256] = i * 2.0;
            out[i] = tmp[i % 256] + 1.0;
        }
        #pragma omp critical
        x = x + 1.0;
    }
}
"""


def main():
    print("== 1. loop scheduling on an imbalanced loop (4 nodes) ==")
    for sched in ("static", "dynamic", "guided"):
        rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
        res = rt.run(make_imbalanced(sched))
        chunks = rt.dynamic_scheduler.total_chunks
        print(f"  {sched:8s}: {res.elapsed*1e3:8.2f} ms  (dispenser chunks: {chunks})")
    print()

    print("== 2. adaptive configuration search (NAS EP class T) ==")
    result = find_best_config(lambda: ep.make_program("T"), nodes=(1, 2, 4, 8),
                              pool_bytes=1 << 20)
    print(result.table())
    print()

    print("== 3. translator guideline linter (§7 + §8 locality) ==")
    print(report(LINT_DEMO))


if __name__ == "__main__":
    main()
