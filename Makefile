# Development targets.  Everything runs from the repo root and needs only
# the baked-in toolchain (numpy/scipy/pytest; ruff if installed).
#
# Sweep targets fan out across fleet worker processes (JOBS, default:
# PARADE_JOBS env or cpu count) and the gates memoise runs in the
# content-addressed cache under .parade-cache/ — see docs/FLEET.md.

PYTHONPATH := src
export PYTHONPATH

# fleet worker count for the sweep/gate targets; empty = auto (cpu count)
JOBS ?=
JOBS_FLAG := $(if $(JOBS),--jobs $(JOBS),)

.PHONY: test test-slow lint bench-smoke bench-gate scale-smoke fleet-smoke profile-smoke chaos-smoke metrics-smoke bench perf-baseline perf micro

test:            ## tier-1 suite (the ROADMAP verify command)
	python -m pytest -x -q

test-slow:       ## include NPB class-S reference validations
	python -m pytest -x -q -m "slow or not slow"

lint:            ## ruff (config in pyproject.toml); no-op if not installed
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping lint"

bench-smoke:     ## perf harness on the tiny basket (regression check)
	python -m repro.bench.perf --smoke --repeat 1 $(JOBS_FLAG)

bench-gate:      ## accel basket vs checked-in baseline; fails on >5% virtual-time regression
	python -m repro.bench.perf --gate $(JOBS_FLAG)

scale-smoke:     ## 16-node mini-basket, flat vs tree barrier + sharded locks
	python -m repro.bench.perf --scale --smoke --scale-nodes 16 --out BENCH_smoke.json $(JOBS_FLAG)

fleet-smoke:     ## fleet executor contracts: worker bit-identity, warm cache, poisoned digest
	python -m repro.fleet --selfcheck $(JOBS_FLAG)

profile-smoke:   ## virtual-time profiler invariant check on one workload
	python -m repro.profile helmholtz --check

chaos-smoke:     ## fault-injection sweep: bit-identical recovery on a small matrix
	python -m repro.chaos --sweep --nodes 2 --apps helmholtz --plans drop,dup $(JOBS_FLAG)

metrics-smoke:   ## watchdog self-check + metered bit-identity + export round-trip
	python -m repro.metrics smoke $(JOBS_FLAG)

bench:           ## regenerate every paper figure
	python -m pytest benchmarks/ --benchmark-only

perf-baseline:   ## record pre-change wall-clock baseline -> BENCH_parade.json
	python -m repro.bench.perf --baseline --repeat 4

perf:            ## record current + speedup vs baseline -> BENCH_parade.json
	python -m repro.bench.perf --repeat 4

micro:           ## micro-benchmarks of the hot-path kernels
	python benchmarks/bench_microkernels.py

help:
	@grep -E '^[a-z-]+: ' Makefile | sed 's/:.*##/\t/'
