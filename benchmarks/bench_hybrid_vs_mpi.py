"""The conclusion's performance bracket (§8): "Even when applications are
designed without application specific optimization, the ParADE system
shows the performance between those of an SDSM application and a pure MPI
application."

Measured on the Helmholtz workload: a hand-written pure-MPI version
(explicit halo exchange + Allreduce), the ParADE hybrid translation, and
the conventional SDSM translation, all at 4 nodes on cLAN.
"""

from repro.apps import helmholtz
from repro.apps.mpi_versions import helmholtz_rank_main, run_pure_mpi
from repro.runtime import ParadeRuntime, ONE_THREAD_TWO_CPU
from conftest import run_once

N, ITERS, NODES = 128, 15, 4


def test_parade_between_sdsm_and_pure_mpi(benchmark):
    def run():
        _res, t_mpi = run_pure_mpi(
            lambda rc, cluster: helmholtz_rank_main(
                rc, cluster, n=N, m=N, max_iters=ITERS
            ),
            n_nodes=NODES,
        )
        t = {}
        for mode in ("parade", "sdsm"):
            rt = ParadeRuntime(
                n_nodes=NODES,
                exec_config=ONE_THREAD_TWO_CPU,
                mode=mode,
                pool_bytes=1 << 22,
            )
            t[mode] = rt.run(
                helmholtz.make_program(n=N, m=N, max_iters=ITERS)
            ).elapsed
        return t_mpi, t["parade"], t["sdsm"]

    t_mpi, t_parade, t_sdsm = run_once(benchmark, run)
    print(f"\npure MPI          : {t_mpi*1e3:8.2f} ms")
    print(f"ParADE (hybrid)   : {t_parade*1e3:8.2f} ms")
    print(f"conventional SDSM : {t_sdsm*1e3:8.2f} ms")
    assert t_mpi < t_parade < t_sdsm
    # and the hybrid recovers most of the SDSM -> MPI gap
    assert (t_sdsm - t_parade) > 0.3 * (t_sdsm - t_mpi)
