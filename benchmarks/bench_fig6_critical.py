"""Figure 6: `critical` directive overhead, ParADE vs KDSM, 1-8 nodes.

Paper shape: ParADE's hierarchical pthread-lock + Allreduce beats KDSM's
distributed-lock translation everywhere, and the gap widens with node
count ("the number of control messages to get locks and the amount of data
moving around increases with the number of nodes").
"""

from repro.bench import fig6_critical
from conftest import emit, run_once

NODES = (1, 2, 4, 8)


def test_fig6_critical_parade_vs_kdsm(benchmark):
    fd = run_once(benchmark, lambda: fig6_critical(nodes=NODES, iters=40))
    emit(fd)
    parade = fd.by_label("parade").y
    kdsm = fd.by_label("kdsm").y
    # ParADE wins at every node count
    for p, k in zip(parade, kdsm):
        assert p < k
    # the absolute gap widens monotonically with nodes
    gaps = [k - p for p, k in zip(parade, kdsm)]
    assert all(g2 > g1 for g1, g2 in zip(gaps, gaps[1:]))
    # and it is substantial at 8 nodes (paper: order of magnitude)
    assert kdsm[-1] / parade[-1] > 4
