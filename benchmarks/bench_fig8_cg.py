"""Figure 8: NAS CG execution time, three configurations x 1-8 nodes.

Paper shape: CG moves the most pages of the four workloads ("relatively
larger page migration ... than other programs"); 1Thread-1CPU suffers the
most because a single CPU must serve both computation and communication —
no overlap ("The configuration of 1Thread-1CPU suffers from high
communication delay").

At simulator scale (class S, 3 outer iterations) CG is communication-bound
beyond ~4 nodes, like the real CG on SDSM; the assertions target the
configuration ordering rather than absolute scaling.
"""

from repro.bench import fig8_cg
from conftest import emit, run_once

NODES = (1, 2, 4, 8)


def test_fig8_cg_config_ordering(benchmark):
    fd = run_once(benchmark, lambda: fig8_cg(klass="S", niter=3, nodes=NODES))
    emit(fd)
    one_one = fd.by_label("1Thread-1CPU").y
    one_two = fd.by_label("1Thread-2CPU").y
    two_two = fd.by_label("2Thread-2CPU").y
    # 1Thread-1CPU is never better than 1Thread-2CPU (overlap helps)
    for a, b in zip(one_one[1:], one_two[1:]):  # >1 node: communication exists
        assert a >= b * 0.999
    # and is strictly worse somewhere, by a clear margin
    assert max(a / b for a, b in zip(one_one[1:], one_two[1:])) > 1.1
    # with 2 CPUs, adding the second compute thread helps at low node counts
    assert two_two[0] < one_two[0]
    # multi-node runs beat nothing below 2 nodes but CG still gains from the
    # first doubling (paper's CG scales modestly)
    assert one_two[1] < one_two[0]
