"""§5.1: atomic page update strategies across OS cost profiles.

Paper finding: "all the methods achieve comparable performance on an SMP
Linux cluster" while "the conventional file mapping method shows poor
performance on IBM SP Night Hawk ... AIX 4.3.3".
"""

from repro.bench import atomic_update_comparison
from repro.vm import STRATEGY_NAMES
from conftest import emit, run_once


def test_atomic_update_strategies(benchmark):
    fd = run_once(benchmark, lambda: atomic_update_comparison(n_updates=200))
    emit(fd)
    linux = dict(zip(STRATEGY_NAMES, fd.by_label("linux-2.4").y))
    aix = dict(zip(STRATEGY_NAMES, fd.by_label("aix-4.3.3").y))
    safe = [n for n in STRATEGY_NAMES if n != "naive"]
    # Linux: all safe methods within 2x of each other
    vals = [linux[n] for n in safe]
    assert max(vals) / min(vals) < 2.0
    # AIX: file mapping at least 5x worse than the best safe alternative
    others = [aix[n] for n in safe if n != "file-mapping"]
    assert aix["file-mapping"] > 5 * min(others)
