"""Ablation benchmarks for the design choices DESIGN.md calls out.

* migratory home vs fixed home (§5.2.2) on an iterative stencil-style
  workload — migration should eliminate steady-state diff traffic;
* the hybrid message-passing switch (§5.2.1) — critical on a small scalar
  with the switch on (parade) vs off (sdsm translation);
* interconnect sensitivity — the same microbenchmark on cLAN VIA vs Fast
  Ethernet TCP (the paper ran both networks).
"""

import numpy as np

from repro.cluster import ClusterConfig, FAST_ETHERNET_TCP, GIGANET_VIA
from repro.dsm import SharedArray
from repro.dsm.config import PARADE_DSM
from repro.mpi import CommThread
from repro.bench.microbench import measure_critical_overhead
from repro.runtime import TWO_THREAD_TWO_CPU
from conftest import run_once

from repro.testing import build_dsm, run_all


def _stencil_run(home_migration: bool, iters: int = 6):
    """Two nodes repeatedly rewrite their own rows + one barrier per iter."""
    cfg = PARADE_DSM.replace(home_migration=home_migration)
    cluster, _cts, dsm = build_dsm(2, dsm_config=cfg)
    arr = SharedArray.allocate(dsm, "x", (2048,))

    def worker(nid):
        v = arr.on(nid)
        lo = nid * 1024
        for it in range(iters):
            yield from v.set(np.full(1024, float(it + 1)), start=lo)
            yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(0), worker(1)])
    return cluster.sim.now, dsm.stats()


def test_ablation_home_migration(benchmark):
    def run():
        t_mig, s_mig = _stencil_run(True)
        t_fix, s_fix = _stencil_run(False)
        return t_mig, s_mig, t_fix, s_fix

    t_mig, s_mig, t_fix, s_fix = run_once(benchmark, run)
    print(f"\nmigratory home: {t_mig*1e3:.3f} ms, diffs={s_mig['diffs_sent']}, "
          f"migrations={s_mig['home_migrations']}")
    print(f"fixed home    : {t_fix*1e3:.3f} ms, diffs={s_fix['diffs_sent']}")
    # migration eliminates steady-state diffs and saves time
    assert s_mig["diffs_sent"] < s_fix["diffs_sent"]
    assert s_mig["home_migrations"] >= 1
    assert t_mig < t_fix


def test_ablation_hybrid_switch(benchmark):
    def run():
        hybrid = measure_critical_overhead("parade", n_nodes=4, iters=30)
        lockpath = measure_critical_overhead("kdsm", n_nodes=4, iters=30)
        return hybrid, lockpath

    hybrid, lockpath = run_once(benchmark, run)
    print(f"\nhybrid critical : {hybrid*1e6:8.2f} us/op")
    print(f"lock critical   : {lockpath*1e6:8.2f} us/op")
    assert hybrid < lockpath / 3


def test_ablation_interconnect(benchmark):
    via_cfg = ClusterConfig(interconnect=GIGANET_VIA)
    tcp_cfg = ClusterConfig(interconnect=FAST_ETHERNET_TCP)

    def run():
        via = measure_critical_overhead(
            "parade", n_nodes=4, iters=30, cluster_config=via_cfg
        )
        tcp = measure_critical_overhead(
            "parade", n_nodes=4, iters=30, cluster_config=tcp_cfg
        )
        return via, tcp

    via, tcp = run_once(benchmark, run)
    print(f"\ncLAN VIA          : {via*1e6:8.2f} us/op")
    print(f"Fast Ethernet TCP : {tcp*1e6:8.2f} us/op")
    # user-level VIA beats kernel TCP by a wide margin on sync latency
    assert via < tcp / 3


def _sharing_run(dsm_config, n_nodes=4, iters=6, read_every=3):
    """Multi-writer page with infrequent readers: all nodes update disjoint
    slices of the SAME page every iteration; everyone reads the page every
    *read_every* iterations.  A homeless reader must pull the accumulated
    diffs from every writer (one round-trip each); a home-based reader
    takes one fetch from the home, which merged the diffs as they arrived."""
    cluster, _cts, dsm = build_dsm(n_nodes, dsm_config=dsm_config)
    arr = SharedArray.allocate(dsm, "x", (512,))  # exactly one page
    per = 512 // n_nodes

    def worker(nid):
        v = arr.on(nid)
        lo = nid * per
        for it in range(iters):
            yield from v.set(np.full(per, float(1000 * nid + it + 1)), start=lo)
            yield from dsm.node(nid).barrier()
            if (it + 1) % read_every == 0:
                yield from v.get()
            yield from dsm.node(nid).barrier()

    run_all(cluster, [worker(i) for i in range(n_nodes)])
    dsm.check_coherence()
    return cluster.sim.now, cluster.network.total_messages


def test_ablation_home_based_vs_homeless(benchmark):
    """§5.2.2: 'Home-based protocols are preferable to homeless protocols
    in that they reduce the number of control messages and the page fetch
    latency because every node knows where to fetch the most up-to-date
    pages.'"""
    from repro.dsm.config import HOMELESS_LRC

    def run():
        t_home, m_home = _sharing_run(PARADE_DSM)
        t_less, m_less = _sharing_run(HOMELESS_LRC)
        return t_home, m_home, t_less, m_less

    t_home, m_home, t_less, m_less = run_once(benchmark, run)
    print(f"\nhome-based (ParADE): {t_home*1e3:8.3f} ms, {m_home} messages")
    print(f"homeless LRC       : {t_less*1e3:8.3f} ms, {m_less} messages")
    # more control messages without a home directory
    assert m_less > m_home


def test_ablation_loop_scheduling(benchmark):
    """§8 future work: 'processes wait a long time at barrier due to
    load-imbalance in executing the for blocks since the current version of
    ParADE supports only the static loop scheduling.'  Our implemented
    extension: a master-node chunk dispenser for dynamic/guided schedules,
    measured on a triangular (maximally imbalanced) load."""
    from repro.runtime import ParadeRuntime
    from repro.mpi.ops import SUM

    N = 300

    def make(sched):
        def program(ctx):
            total = ctx.shared_scalar("t")

            def body(tc, total):
                part = 0.0
                if sched == "static":
                    lo, hi = tc.for_range(0, N)
                    for i in range(lo, hi):
                        yield from tc.compute(1500.0 * (i + 1))
                        part += i
                else:
                    loop = tc.dynamic_loop(0, N, chunk=4, sched=sched)
                    while True:
                        rng = yield from loop.next_chunk()
                        if rng is None:
                            break
                        for i in range(*rng):
                            yield from tc.compute(1500.0 * (i + 1))
                            part += i
                yield from tc.reduce_into(total, part, SUM)

            yield from ctx.parallel(body, total)
            v = yield from ctx.scalar(total).get()
            return float(v)

        return program

    def run():
        out = {}
        for sched in ("static", "dynamic", "guided"):
            rt = ParadeRuntime(n_nodes=4, pool_bytes=1 << 20)
            res = rt.run(make(sched))
            assert res.value == N * (N - 1) / 2
            out[sched] = (res.elapsed, rt.dynamic_scheduler.total_chunks)
        return out

    data = run_once(benchmark, run)
    print()
    for sched, (t, chunks) in data.items():
        print(f"{sched:8s}: {t*1e3:8.2f} ms  (chunks dispatched: {chunks})")
    assert data["dynamic"][0] < data["static"][0]
    assert data["guided"][0] < data["static"][0]
    # guided needs fewer dispenser round-trips than plain dynamic
    assert data["guided"][1] < data["dynamic"][1]
