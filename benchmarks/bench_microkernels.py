"""Micro-benchmarks for the hot-path kernels of the DSM engine.

Times ``compute_diff`` / ``apply_diff`` / ``check_range`` (the three
kernels the hot-path PR vectorised) on realistic inputs: float-update
pages with scattered multi-byte runs — the distribution Jacobi/CG updates
actually produce — plus dense and sparse extremes.  Run directly for a
table of wall-clock timings::

    PYTHONPATH=src python benchmarks/bench_microkernels.py

or through pytest, where each case asserts a generous per-call ceiling so
a catastrophic regression (e.g. an accidental per-byte Python loop) fails
tier-1 without making the suite flaky on slow hosts.
"""

from __future__ import annotations

import timeit

import numpy as np

from repro.dsm.diffs import apply_diff, compute_diff, make_twin
from repro.vm import AddressSpace, PhysicalMemory, PROT_READ, PROT_RW

PAGE = 4096

#: generous ceilings (seconds per call) — catch order-of-magnitude
#: regressions only, not host noise
CEILING_COMPUTE_DIFF = 2e-3
CEILING_APPLY_DIFF = 2e-3
CEILING_CHECK_RANGE = 5e-4


def _float_update_page(seed: int = 0):
    """A page of float64s after a Jacobi-style update: every value nudged,
    but high bytes often unchanged -> many short runs."""
    rng = np.random.default_rng(seed)
    vals = rng.random(PAGE // 8)
    twin = make_twin(vals.view(np.uint8))
    vals += rng.random(PAGE // 8) * 1e-3
    return twin, vals.view(np.uint8).copy()


def _sparse_page(seed: int = 1):
    rng = np.random.default_rng(seed)
    current = rng.integers(0, 256, PAGE).astype(np.uint8)
    twin = make_twin(current)
    current = current.copy()
    current[rng.integers(0, PAGE, 16)] += 1
    return twin, current


def _dense_page():
    twin = np.zeros(PAGE, dtype=np.uint8)
    return twin, np.ones(PAGE, dtype=np.uint8)


CASES = {
    "float-update": _float_update_page,
    "sparse-16": _sparse_page,
    "dense-full": _dense_page,
}


def _per_call(fn, number: int = 200) -> float:
    return timeit.timeit(fn, number=number) / number


def bench_compute_diff() -> dict:
    out = {}
    for name, make in CASES.items():
        twin, current = make()
        out[name] = _per_call(lambda: compute_diff(twin, current))
    return out


def bench_apply_diff() -> dict:
    out = {}
    for name, make in CASES.items():
        twin, current = make()
        diff = compute_diff(twin, current)
        target = make_twin(twin)
        out[name] = _per_call(lambda: apply_diff(target, diff))
    return out


def _make_space(n_pages: int = 1024) -> AddressSpace:
    space = AddressSpace(PhysicalMemory(n_pages, PAGE))
    space.map_identity(n_pages, prot=PROT_READ)
    for p in range(0, n_pages, 3):
        space.protect(p, PROT_RW)
    return space


def bench_check_range() -> dict:
    space = _make_space()
    cases = {
        "1-page": (100, 64),
        "2-page": (PAGE - 32, 64),
        "64-page": (0, 64 * PAGE),
    }
    out = {}
    for name, (addr, size) in cases.items():
        out[name] = _per_call(lambda: space.check_range(addr, size, write=False))
    return out


# -- pytest entry points -------------------------------------------------
def test_compute_diff_speed():
    assert max(bench_compute_diff().values()) < CEILING_COMPUTE_DIFF


def test_apply_diff_speed():
    assert max(bench_apply_diff().values()) < CEILING_APPLY_DIFF


def test_check_range_speed():
    assert max(bench_check_range().values()) < CEILING_CHECK_RANGE


def main() -> None:
    for title, fn in (
        ("compute_diff", bench_compute_diff),
        ("apply_diff", bench_apply_diff),
        ("check_range", bench_check_range),
    ):
        print(f"{title}:")
        for case, sec in fn().items():
            print(f"  {case:<14} {sec * 1e6:8.2f} us/call")


if __name__ == "__main__":
    main()
