"""Figure 11: MD execution time, three configurations x 1-8 nodes.

Paper shape: MD's communication pattern resembles Helmholtz but it shares
less memory and communicates less, "hence, ParADE is scaled well for all
the configurations".
"""

from repro.bench import fig11_md
from conftest import emit, run_once

NODES = (1, 2, 4, 8)


def test_fig11_md_scaling(benchmark):
    fd = run_once(
        benchmark, lambda: fig11_md(n_particles=256, steps=5, nodes=NODES)
    )
    emit(fd)
    for series in fd.series:
        t = series.y
        # all configurations improve from 1 to 8 nodes
        assert t[-1] < t[0]
    one_two = fd.by_label("1Thread-2CPU").y
    assert one_two[0] / one_two[-1] > 2.0  # scales well
    one_one = fd.by_label("1Thread-1CPU").y
    # the dedicated communication CPU helps once communication exists
    assert all(a >= b * 0.999 for a, b in zip(one_one[1:], one_two[1:]))
