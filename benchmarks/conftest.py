"""Shared helpers for the figure benchmarks.

Each ``bench_figN_*`` file regenerates one figure of the paper: it runs the
corresponding workload sweep once under pytest-benchmark (rounds=1 — the
simulator is deterministic, so repetition adds nothing), prints the series
as a table, writes a CSV next to this directory, and asserts the *shape*
the paper reports (who wins, how the gap moves).  Absolute milliseconds are
virtual-time outputs of the simulator, not 2003 wall clock.
"""

from __future__ import annotations

import os

from repro.bench import render_table, write_csv

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(fd, benchmark=None):
    """Print the table and persist the CSV for figure data *fd*."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    print()
    print(render_table(fd))
    write_csv(fd, os.path.join(RESULTS_DIR, f"{fd.figure}.csv"))
    return fd


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
