"""Communication-substrate microbenchmarks (§5.3 context).

Latency of the MPI subset's primitives on the simulated cLAN: round-trip
p2p, Bcast and Allreduce versus node count.  These are the building blocks
whose costs drive every ParADE translation decision.
"""

import pytest

from conftest import run_once
from repro.testing import build_cluster, build_comm, run_all


def _pingpong(iters=20, nbytes=8):
    cluster = build_cluster(2)
    _cts, comm = build_comm(cluster)

    def rank0(rc):
        for i in range(iters):
            yield from rc.send(b"x" * nbytes, 1, tag=i)
            yield from rc.recv(source=1, tag=i)

    def rank1(rc):
        for i in range(iters):
            v = yield from rc.recv(source=0, tag=i)
            yield from rc.send(v, 0, tag=i)

    run_all(cluster, [rank0(comm.rank(0)), rank1(comm.rank(1))])
    return cluster.sim.now / iters / 2  # one-way


def _collective_latency(kind, p, iters=10):
    cluster = build_cluster(p)
    _cts, comm = build_comm(cluster)

    def main(rc):
        for _ in range(iters):
            if kind == "bcast":
                yield from rc.bcast(1.0, root=0)
            else:
                yield from rc.allreduce(1.0)

    run_all(cluster, [main(comm.rank(r)) for r in range(p)])
    return cluster.sim.now / iters


def test_p2p_one_way_latency(benchmark):
    lat = run_once(benchmark, _pingpong)
    print(f"\none-way 8B latency: {lat*1e6:.2f} us (cLAN VIA)")
    # paper-era cLAN one-way small-message latency: ~10-20 us
    assert 5e-6 < lat < 40e-6


def test_collectives_scale_logarithmically(benchmark):
    def run():
        return {
            (k, p): _collective_latency(k, p)
            for k in ("bcast", "allreduce")
            for p in (2, 4, 8)
        }

    data = run_once(benchmark, run)
    print()
    for (k, p), v in sorted(data.items()):
        print(f"{k:10s} p={p}: {v*1e6:8.2f} us")
    for k in ("bcast", "allreduce"):
        # binomial tree: 3 levels at p=8 vs 1 at p=2 — cost grows with
        # log2(p), staying well below the 7x of a linear fan-out
        assert data[(k, 8)] < 4.0 * data[(k, 2)]
    # allreduce ~ reduce + bcast: costs more than bcast alone
    for p in (2, 4, 8):
        assert data[("allreduce", p)] > data[("bcast", p)]
