"""Figure 7: `single` directive overhead, ParADE vs KDSM, 1-8 nodes.

Paper shape: ParADE (earliest thread + Bcast, no inter-node lock, no
barrier) far below KDSM (lock + shared flag page + barrier); KDSM shows an
abnormally costly transition at 2 nodes caused by its busy-wait lock
client.
"""

from repro.bench import fig7_single
from conftest import emit, run_once

NODES = (1, 2, 4, 8)


def test_fig7_single_parade_vs_kdsm(benchmark):
    fd = run_once(benchmark, lambda: fig7_single(nodes=NODES, iters=40))
    emit(fd)
    parade = fd.by_label("parade").y
    kdsm = fd.by_label("kdsm").y
    for p, k in zip(parade, kdsm):
        assert p < k
    # ParADE single stays cheap (a Bcast): sub-linear growth in p
    assert parade[-1] < parade[0] + 40  # microseconds
    # KDSM's worst *relative* jump is the 1 -> 2 node transition (the
    # busy-wait anomaly the paper calls out)
    ratios = [b / a for a, b in zip(kdsm, kdsm[1:])]
    assert ratios[0] == max(ratios)
    assert kdsm[-1] / parade[-1] > 10
