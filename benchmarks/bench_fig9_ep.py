"""Figure 9: NAS EP execution time, three configurations x 1-8 nodes.

Paper shape: "there is little shared memory and communication between
nodes occurs at the end of the program just once. Hence, it is natural
that ParADE is highly scalable" — near-linear speedup in every
configuration; 2Thread-2CPU roughly halves 1Thread-2CPU.
"""

from repro.bench import fig9_ep
from conftest import emit, run_once

NODES = (1, 2, 4, 8)


def test_fig9_ep_scaling(benchmark):
    fd = run_once(benchmark, lambda: fig9_ep(klass="T", nodes=NODES))
    emit(fd)
    for series in fd.series:
        t = series.y
        # monotone decrease with node count
        assert all(b < a for a, b in zip(t, t[1:]))
        # near-linear: 8-node speedup at least 6x
        assert t[0] / t[-1] > 6.0
    one_t = fd.by_label("1Thread-2CPU").y
    two_t = fd.by_label("2Thread-2CPU").y
    # doubling compute threads nearly halves EP's time
    for a, b in zip(one_t, two_t):
        assert b < 0.62 * a
