"""Figure 10: Helmholtz execution time, three configurations x 1-8 nodes.

Paper shape: each node talks only to its neighbours and the competitive
termination-check update becomes an Allreduce, so "the overall performance
is nearly linear".  With migratory homes each node quickly owns its rows,
eliminating steady-state diff traffic.
"""

from repro.bench import fig10_helmholtz
from conftest import emit, run_once

NODES = (1, 2, 4, 8)


def test_fig10_helmholtz_scaling(benchmark):
    fd = run_once(
        benchmark, lambda: fig10_helmholtz(n=256, m=256, max_iters=25, nodes=NODES)
    )
    emit(fd)
    for series in fd.series:
        t = series.y
        # time decreases through 4 nodes
        assert t[1] < t[0]
        assert t[2] < t[1]
        # 4-node speedup: near-linear for the 1-thread configs; the
        # 2Thread-2CPU series starts from an already-halved baseline so its
        # relative node-scaling is flatter
        want = 1.7 if series.label == "2Thread-2CPU" else 2.3
        assert t[0] / t[2] > want, series.label
    one_one = fd.by_label("1Thread-1CPU").y
    one_two = fd.by_label("1Thread-2CPU").y
    # overlap matters most at the largest node count
    assert one_one[-1] > one_two[-1]
