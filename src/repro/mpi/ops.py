"""Reduction operations.

Besides the predefined MPI ops, ParADE needs *user-defined* reductions: the
translator merges multiple ``reduction`` clause variables into one
structure-type value reduced at once (§4.2).  ``user_op`` wraps an arbitrary
commutative-associative binary function for that purpose.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


class ReduceOp:
    """A named, commutative-associative binary reduction."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self.fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_all(self, values) -> Any:
        values = list(values)
        if not values:
            raise ValueError(f"reduce {self.name} over empty sequence")
        acc = values[0]
        for v in values[1:]:
            acc = self.fn(acc, v)
        return acc

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ReduceOp {self.name}>"


def _elementwise(scalar_fn, np_fn):
    """Build an op that works on scalars, numpy arrays, and tuples/lists."""

    def fn(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np_fn(np.asarray(a), np.asarray(b))
        if isinstance(a, (tuple, list)):
            if len(a) != len(b):
                raise ValueError("reduction of unequal-length sequences")
            out = [fn(x, y) for x, y in zip(a, b)]
            return tuple(out) if isinstance(a, tuple) else out
        if isinstance(a, dict):
            if set(a) != set(b):
                raise ValueError("reduction of dicts with different keys")
            return {k: fn(a[k], b[k]) for k in a}
        return scalar_fn(a, b)

    return fn


SUM = ReduceOp("SUM", _elementwise(lambda a, b: a + b, np.add))
PROD = ReduceOp("PROD", _elementwise(lambda a, b: a * b, np.multiply))
MAX = ReduceOp("MAX", _elementwise(lambda a, b: a if a >= b else b, np.maximum))
MIN = ReduceOp("MIN", _elementwise(lambda a, b: a if a <= b else b, np.minimum))
LAND = ReduceOp("LAND", _elementwise(lambda a, b: bool(a) and bool(b), np.logical_and))
LOR = ReduceOp("LOR", _elementwise(lambda a, b: bool(a) or bool(b), np.logical_or))

_BY_SYMBOL = {
    "+": SUM,
    "*": PROD,
    "max": MAX,
    "min": MIN,
    "&&": LAND,
    "||": LOR,
}


def op_for_symbol(symbol: str) -> ReduceOp:
    """Map an OpenMP reduction-clause operator to a ReduceOp."""
    try:
        return _BY_SYMBOL[symbol]
    except KeyError:
        raise KeyError(
            f"unsupported reduction operator {symbol!r}; known: {sorted(_BY_SYMBOL)}"
        ) from None


def user_op(fn: Callable[[Any, Any], Any], name: str = "USER") -> ReduceOp:
    """User-defined reduction (merged reduction-structure case, §4.2)."""
    return ReduceOp(name, fn)
