"""Per-node communication thread.

ParADE dedicates one thread per node to draining asynchronous incoming
messages (§5.3).  Ours is a simulation process that:

1. blocks on the node inbox,
2. charges the receiver-side CPU cost of the message (competing with the
   node's compute threads for a CPU — the crux of the paper's
   1Thread-1CPU vs 1Thread-2CPU comparison),
3. dispatches by channel to a registered handler (MPI matching, DSM page
   server, lock manager, barrier manager...).

Handlers are generator functions executed *inline* by the communication
thread, so protocol service on a node is serialised exactly like the real
single comm thread.
"""

from __future__ import annotations

from typing import Callable, Dict

#: sentinel payload that shuts the communication thread down
POISON = object()


class CommThread:
    """Dispatcher process draining one node's inbox."""

    #: grant protocol work ahead of queued compute bursts
    CPU_PRIORITY = -1

    def __init__(self, node, network):
        self.node = node
        self.network = network
        self.sim = node.sim
        self._handlers: Dict[str, Callable] = {}
        self.process = None
        self.messages_handled = 0
        self.service_time = 0.0

    def register(self, channel: str, handler) -> None:
        """Register generator-function *handler(msg)* for a tag channel.

        Message tags are tuples; ``tag[0]`` selects the channel.
        """
        if channel in self._handlers:
            raise ValueError(f"channel {channel!r} already registered on node {self.node.id}")
        self._handlers[channel] = handler

    def start(self) -> None:
        if self.process is not None:
            raise RuntimeError("comm thread already started")
        self.process = self.sim.process(self._loop(), label=f"comm[{self.node.id}]")

    def shutdown(self) -> None:
        """Deliver the poison pill (processed in FIFO order)."""
        self.node.inbox.put(POISON)

    def _loop(self):
        # one long-lived generator per node: hoist the per-message
        # attribute chains out of the drain loop
        sim = self.sim
        node = self.node
        inbox_get = node.inbox.get
        busy_cpu = node.busy_cpu
        recv_cpu_time = self.network.recv_cpu_time
        handlers = self._handlers
        priority = self.CPU_PRIORITY
        while True:
            msg = yield inbox_get()
            if msg is POISON:
                return
            ch = sim.chaos
            if ch is not None:
                # injected comm-thread stall: the service thread wedges
                # (page-out, interrupt storm ...) before touching the frame
                stall = ch.comm_stall(node.id)
                if stall > 0.0:
                    yield sim.timeout(stall)
            t0 = sim.now
            prof = sim.prof
            if prof is not None:
                from repro.profile.phases import PH_COMM_SERVICE

                # the whole drain (recv CPU cost + handler) is one service
                # phase; busy_cpu slices inside inherit the label as active
                prof.push(PH_COMM_SERVICE)
            try:
                yield from busy_cpu(recv_cpu_time(msg.nbytes), priority=priority)
                channel = msg.tag[0] if isinstance(msg.tag, tuple) else msg.tag
                handler = handlers.get(channel)
                if handler is None:
                    raise RuntimeError(
                        f"node {self.node.id}: no handler for channel {channel!r} (msg {msg!r})"
                    )
                yield from handler(msg)
            finally:
                if prof is not None:
                    prof.pop()
            self.messages_handled += 1
            self.service_time += sim.now - t0
            tr = sim.trace
            if tr is not None:
                # one span per drained message: recv CPU cost + handler run
                tr.span(
                    "mpi", "service", t0, node=self.node.id,
                    channel=str(channel), nbytes=msg.nbytes, src=msg.src,
                )
