"""Communicator: MPI subset over the simulated cluster.

One MPI process per node (rank == node id), matching ParADE's deployment.
All blocking calls are generators.  Collectives use binomial trees
(bcast/reduce) — the textbook algorithms MPI/Pro-era libraries used — and
are matched across ranks by per-rank call sequence numbers, so different
application threads of one process may issue collectives as long as the
per-process *order* of collective calls is consistent (ParADE guarantees
this with the pthread lock it holds across the collective, §4.2).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.mpi.datatypes import nbytes_of
from repro.mpi.matching import MatchQueue, ANY_SOURCE, ANY_TAG
from repro.mpi.ops import ReduceOp, SUM


class Communicator:
    """Cluster-wide communicator state; use :meth:`rank` for a bound view."""

    def __init__(self, cluster, comm_threads: List):
        """*comm_threads* — one started :class:`CommThread` per node; the
        communicator registers its match handler on each."""
        self.cluster = cluster
        self.sim = cluster.sim
        # Ids (and hence channel names, which appear in message tags and
        # traces) are per-cluster, not process-global: two identical runs
        # in one process must produce identical traces.
        self.id = cluster.__dict__.setdefault("_n_communicators", 0)
        cluster._n_communicators = self.id + 1
        self.size = cluster.n_nodes
        self._channel = f"mpi{self.id}"
        self._queues = [MatchQueue(self.sim, node=r) for r in range(self.size)]
        self._coll_seq = [0 for _ in range(self.size)]
        self._ranks = [RankComm(self, r) for r in range(self.size)]
        for node_id, ct in enumerate(comm_threads):
            ct.register(self._channel, self._make_handler(node_id))
        # statistics
        self.n_p2p = 0
        self.n_collectives = 0

    def _make_handler(self, node_id: int):
        queue = self._queues[node_id]

        def handler(msg):
            # tag on the wire: (channel, user_tag)
            queue.deliver(msg.src, msg.tag[1], msg.payload)
            return
            yield  # pragma: no cover - generator form for the dispatcher

        return handler

    def rank(self, r: int) -> "RankComm":
        return self._ranks[r]

    def __iter__(self):
        return iter(self._ranks)


class RankComm:
    """The communicator as seen from one rank (= one node's MPI process)."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank
        self.size = comm.size
        self._queue = comm._queues[rank]
        self._net = comm.cluster.network

    # -- point to point -------------------------------------------------
    # Sanitizer happens-before: each blocking send pushes the sender's
    # vector clock on a per-(src, dst, tag) FIFO; the matching recv pops
    # it.  Because collectives are trees of these sends/recvs, this one
    # edge gives every collective its synchronisation semantics for free.
    # (irecv is not instrumented: completion via a bare event has no
    # single hook point — none of the sanitized paths use it.)
    def _hb_key(self, src: int, dst: int, tag: Any) -> tuple:
        return (self.comm.id, src, dst, repr(tag))

    def send(self, value: Any, dest: int, tag: Any = 0):
        """Eager buffered send: returns once the frame left the NIC."""
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        self.comm.n_p2p += 1
        san = self.comm.sim.san
        if san is not None:
            san.on_msg_send(self._hb_key(self.rank, dest, tag))
        yield from self._net.send(
            self.rank, dest, nbytes_of(value), value, tag=(self.comm._channel, tag)
        )

    def recv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG):
        """Blocking receive; returns the payload."""
        src, t, payload = yield self._queue.post(source, tag)
        san = self.comm.sim.san
        if san is not None:
            san.on_msg_recv(self._hb_key(src, self.rank, t))
        return payload

    def recv_with_status(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG):
        """Blocking receive; returns (payload, source, tag)."""
        src, t, payload = yield self._queue.post(source, tag)
        san = self.comm.sim.san
        if san is not None:
            san.on_msg_recv(self._hb_key(src, self.rank, t))
        return payload, src, t

    def irecv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG):
        """Nonblocking receive: returns an event firing with
        (src, tag, payload); yield it later to complete."""
        return self._queue.post(source, tag)

    # -- collectives -----------------------------------------------------
    def _next_seq(self) -> int:
        seq = self.comm._coll_seq[self.rank]
        self.comm._coll_seq[self.rank] = seq + 1
        return seq

    def bcast(self, value: Any, root: int = 0):
        """MPI_Bcast via binomial tree; returns the broadcast value."""
        sim = self.comm.sim
        tr = sim.trace
        t0 = sim.now
        prof = sim.prof
        if prof is None:
            result = yield from self._bcast(value, root)
        else:
            from repro.profile.phases import PH_MPI_COLL

            prof.push(PH_MPI_COLL)
            try:
                result = yield from self._bcast(value, root)
            finally:
                prof.pop()
        if tr is not None:
            tr.span("mpi", "bcast", t0, node=self.rank, root=root)
        return result

    def _bcast(self, value: Any, root: int):
        self.comm.n_collectives += 1
        seq = self._next_seq()
        tag = ("coll", seq, "bc")
        p, rank = self.size, self.rank
        if p == 1:
            return value
        rel = (rank - root) % p
        mask = 1
        while mask < p:
            if rel & mask:
                src = (rank - mask) % p
                value = yield from self.recv(source=src, tag=tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < p:
                dst = (rank + mask) % p
                yield from self.send(value, dst, tag=tag)
            mask >>= 1
        return value

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0):
        """MPI_Reduce via binomial tree; root returns the reduction, others None."""
        sim = self.comm.sim
        tr = sim.trace
        t0 = sim.now
        prof = sim.prof
        if prof is None:
            result = yield from self._reduce(value, op, root)
        else:
            from repro.profile.phases import PH_MPI_COLL

            prof.push(PH_MPI_COLL)
            try:
                result = yield from self._reduce(value, op, root)
            finally:
                prof.pop()
        if tr is not None:
            tr.span("mpi", "reduce", t0, node=self.rank, root=root)
        return result

    def _reduce(self, value: Any, op: ReduceOp, root: int):
        self.comm.n_collectives += 1
        seq = self._next_seq()
        tag = ("coll", seq, "rd")
        p, rank = self.size, self.rank
        if p == 1:
            return value
        rel = (rank - root) % p
        acc = value
        mask = 1
        while mask < p:
            if rel & mask == 0:
                src_rel = rel | mask
                if src_rel < p:
                    src = (src_rel + root) % p
                    other = yield from self.recv(source=src, tag=tag)
                    acc = op(acc, other)
            else:
                dst = ((rel & ~mask) + root) % p
                yield from self.send(acc, dst, tag=tag)
                return None
            mask <<= 1
        return acc

    def allreduce(self, value: Any, op: ReduceOp = SUM):
        """MPI_Allreduce = binomial reduce to 0 + binomial bcast.

        Implies full inter-process synchronisation (every rank's return
        depends on every rank's contribution) — the property ParADE uses to
        drop explicit barriers (§5.2.1).
        """
        sim = self.comm.sim
        tr = sim.trace
        t0 = sim.now
        acc = yield from self.reduce(value, op=op, root=0)
        result = yield from self.bcast(acc, root=0)
        if tr is not None:
            tr.span("mpi", "allreduce", t0, node=self.rank)
        return result

    def barrier(self):
        """MPI_Barrier as a zero-payload allreduce."""
        yield from self.allreduce(0, op=SUM)

    def gather(self, value: Any, root: int = 0):
        """Root returns the list of per-rank values, others None."""
        self.comm.n_collectives += 1
        seq = self._next_seq()
        tag = ("coll", seq, "ga")
        if self.size == 1:
            return [value]
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = value
            for _ in range(self.size - 1):
                payload, src, _t = yield from self.recv_with_status(tag=tag)
                out[src] = payload
            return out
        yield from self.send(value, root, tag=tag)
        return None

    def allgather(self, value: Any):
        """All ranks return the list of per-rank values."""
        gathered = yield from self.gather(value, root=0)
        result = yield from self.bcast(gathered, root=0)
        return result

    def scatter(self, values: Optional[List[Any]], root: int = 0):
        """Root supplies one value per rank; every rank returns its own."""
        self.comm.n_collectives += 1
        seq = self._next_seq()
        tag = ("coll", seq, "sc")
        if self.size == 1:
            assert values is not None
            return values[0]
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError("scatter root needs one value per rank")
            for r in range(self.size):
                if r != root:
                    yield from self.send(values[r], r, tag=tag)
            return values[root]
        got = yield from self.recv(source=root, tag=tag)
        return got
