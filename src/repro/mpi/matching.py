"""MPI receive matching: posted receives vs unexpected-message queue."""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim import Event

ANY_SOURCE = -1
ANY_TAG = None


class _PostedRecv:
    __slots__ = ("source", "tag", "event")

    def __init__(self, source, tag, event):
        self.source = source
        self.tag = tag
        self.event = event

    def matches(self, src: int, tag: Any) -> bool:
        return (self.source == ANY_SOURCE or self.source == src) and (
            self.tag is ANY_TAG or self.tag == tag
        )


class MatchQueue:
    """Per-node matching state for one communicator."""

    def __init__(self, sim, node: int = -1):
        self.sim = sim
        self.node = node
        self._unexpected: deque = deque()  # (src, tag, payload)
        self._posted: deque = deque()
        self.n_unexpected = 0
        self.n_posted = 0

    def deliver(self, src: int, tag: Any, payload: Any) -> None:
        """Called by the comm thread when an MPI message arrives."""
        tr = self.sim.trace
        for i, post in enumerate(self._posted):
            if post.matches(src, tag):
                del self._posted[i]
                if tr is not None:
                    tr.instant(
                        "mpi", "match", node=self.node, src=src, tag=str(tag),
                        outcome="posted",
                    )
                post.event.succeed((src, tag, payload))
                return
        self.n_unexpected += 1
        if tr is not None:
            tr.instant(
                "mpi", "match", node=self.node, src=src, tag=str(tag),
                outcome="unexpected", depth=len(self._unexpected) + 1,
            )
        self._unexpected.append((src, tag, payload))

    def post(self, source: int, tag: Any) -> Event:
        """Post a receive; returns an event firing with (src, tag, payload)."""
        ev = Event(self.sim, name="mpi-recv")
        tr = self.sim.trace
        for i, (src, t, payload) in enumerate(self._unexpected):
            if (source == ANY_SOURCE or source == src) and (tag is ANY_TAG or tag == t):
                del self._unexpected[i]
                if tr is not None:
                    tr.instant(
                        "mpi", "recv-post", node=self.node, tag=str(tag),
                        outcome="drained",
                    )
                ev.succeed((src, t, payload))
                return ev
        self.n_posted += 1
        if tr is not None:
            tr.instant(
                "mpi", "recv-post", node=self.node, tag=str(tag), outcome="queued"
            )
        self._posted.append(_PostedRecv(source, tag, ev))
        return ev

    @property
    def pending_unexpected(self) -> int:
        return len(self._unexpected)

    @property
    def pending_posted(self) -> int:
        return len(self._posted)
