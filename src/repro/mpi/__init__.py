"""Thread-safe MPI subset on the simulated cluster network.

The paper (§5.3) uses exactly: point-to-point send/receive plus the two
collectives ``MPI_Bcast`` and ``MPI_Allreduce``, served by a dedicated
communication thread per node (most public MPI libraries of the era were not
thread-safe, so ParADE built a minimal thread-safe subset on VIA).  We
implement that subset — one MPI process per node, rank == node id — plus a
few convenience collectives (reduce, barrier, gather, allgather) built from
the same primitives.

Every blocking call is a generator (``yield from comm.send(...)``) so it
composes with the simulation kernel; receiver-side CPU costs are charged to
the node's :class:`CommThread`, which is what makes the paper's
1Thread-1CPU vs 1Thread-2CPU configurations behave differently.
"""

from repro.mpi.ops import ReduceOp, SUM, MAX, MIN, PROD, LAND, LOR, user_op
from repro.mpi.datatypes import nbytes_of
from repro.mpi.commthread import CommThread, POISON
from repro.mpi.matching import MatchQueue, ANY_SOURCE, ANY_TAG
from repro.mpi.communicator import Communicator, RankComm

__all__ = [
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
    "user_op",
    "nbytes_of",
    "CommThread",
    "POISON",
    "MatchQueue",
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "RankComm",
]
