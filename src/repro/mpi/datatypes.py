"""Wire-size estimation for payloads.

The simulator charges transmission time by byte count; this module maps
Python payloads to the byte count an equivalent C/MPI program would send
(raw data, not pickle framing).
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

_SCALAR_BYTES = 8  # double / long on the paper's 32-bit target with doubles


def nbytes_of(obj: Any) -> int:
    """Bytes an equivalent MPI program would put on the wire for *obj*."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float, complex)):
        return _SCALAR_BYTES * (2 if isinstance(obj, complex) else 1)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(nbytes_of(x) for x in obj)
    if isinstance(obj, dict):
        return sum(nbytes_of(k) + nbytes_of(v) for k, v in obj.items())
    # Structured payloads (protocol records): fall back to pickle size,
    # which over- rather than under-estimates.
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64
