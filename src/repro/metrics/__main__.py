"""Metrics CLI: scorecards, exposition formats, and the bench watchdog.

Usage::

    python -m repro.metrics run                      # helmholtz scorecard
    python -m repro.metrics run helmholtz cg --nodes 2
    python -m repro.metrics run cg --json cg.metrics.json
    python -m repro.metrics export cg.metrics.json               # Prometheus
    python -m repro.metrics export cg.metrics.json --csv cg.csv --chrome cg.trace.json
    python -m repro.metrics regress                  # BENCH_parade.json watchdog
    python -m repro.metrics regress --strict --wall-tol 0.2
    python -m repro.metrics smoke                    # CI gate (see below)

``run`` meters registered workloads and prints one scorecard row each;
``export`` re-emits a JSON dump as Prometheus text / CSV / Chrome
counters; ``regress`` diffs two sections of the perf report with
noise-aware tolerances and exits 1 on regression; ``smoke`` is the CI
gate — watchdog self-check, metered-vs-unmetered bit-identity, and an
export round-trip on a tiny workload, exit 2 on any failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.metrics import export as mexport
from repro.metrics import regress as mregress
from repro.metrics.scorecard import build_scorecard, meter_workload, render_scorecards

DEFAULT_REPORT = "BENCH_parade.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="live metrics: per-workload scorecards, Prometheus/JSON/"
        "CSV/Chrome exposition, and the noise-aware bench watchdog",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="meter registered workloads, print scorecards")
    p_run.add_argument("apps", nargs="*", default=[], help="workload names (default: helmholtz)")
    p_run.add_argument("--list", action="store_true", help="list registered workloads and exit")
    p_run.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    p_run.add_argument(
        "--mode", choices=("parade", "sdsm"), default="parade",
        help="hybrid ParADE translation or conventional SDSM (default parade)",
    )
    p_run.add_argument(
        "--period", type=float, default=1e-4,
        help="sampling grid spacing in virtual seconds (default 1e-4)",
    )
    p_run.add_argument(
        "--json", default=None,
        help="write the metrics dump (time-series + instruments) as JSON; "
        "single workload only",
    )

    p_exp = sub.add_parser("export", help="re-emit a JSON metrics dump")
    p_exp.add_argument("dump", help="metrics dump written by `run --json`")
    p_exp.add_argument("--prom", default=None, help="write Prometheus text here (default: stdout)")
    p_exp.add_argument("--csv", default=None, help="write series,time,value CSV")
    p_exp.add_argument("--chrome", default=None, help='write ph:"C" counter Chrome trace')
    p_exp.add_argument(
        "--check", action="store_true",
        help="verify the Prometheus output parses and the dump round-trips; exit 2 on failure",
    )

    p_reg = sub.add_parser("regress", help="noise-aware diff of two perf-report sections")
    p_reg.add_argument("report", nargs="?", default=DEFAULT_REPORT,
                       help=f"perf report path (default {DEFAULT_REPORT})")
    p_reg.add_argument("--base", default="baseline", help="section to compare from")
    p_reg.add_argument("--cur", default="current", help="section to compare to")
    p_reg.add_argument("--wall-tol", type=float, default=mregress.DEFAULT_WALL_TOL,
                       help="wall-time slowdown band (default 0.30 = +30%%)")
    p_reg.add_argument("--phase-tol", type=float, default=mregress.DEFAULT_PHASE_TOL,
                       help="max absolute phase-fraction drift (default 0.05)")
    p_reg.add_argument("--vt-tol", type=float, default=0.0,
                       help="virtual-time relative tolerance (default 0 = exact)")
    p_reg.add_argument("--wall-floor", type=float, default=mregress.DEFAULT_WALL_FLOOR,
                       help="wall times below this (s) are noise, never banded "
                       "(default 0.25)")
    p_reg.add_argument("--strict", action="store_true",
                       help="event/msg/byte count mismatches fail instead of warn")
    p_reg.add_argument("--selfcheck", action="store_true",
                       help="run the watchdog self-check instead of a comparison")

    p_smoke = sub.add_parser("smoke", help="CI gate: self-check + bit-identity + round-trip")
    p_smoke.add_argument("--nodes", type=int, default=2, help="cluster size (default 2)")
    p_smoke.add_argument(
        "--jobs", type=int, default=None,
        help="fleet worker processes for the act-2 runs (default: PARADE_JOBS "
        "env or cpu count); the verdict is bit-identical for any value",
    )
    return parser


def _cmd_run(args) -> int:
    from repro.bench.figures import registered_programs

    registry = registered_programs()
    if args.list:
        for name, entry in sorted(registry.items()):
            print(f"{name:<12} {entry['figure']:<6} {entry['note']}")
        return 0
    apps = args.apps or ["helmholtz"]
    unknown = [a for a in apps if a not in registry]
    if unknown:
        print(f"unknown app(s) {', '.join(unknown)}; registered: "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 1
    if args.json and len(apps) != 1:
        print("--json needs exactly one workload", file=sys.stderr)
        return 1

    import time

    cards = []
    for app in apps:
        entry = registry[app]
        t0 = time.perf_counter()
        result, mx = meter_workload(
            entry["factory"], entry["pool_bytes"],
            n_nodes=args.nodes, period=args.period, mode=args.mode,
        )
        wall = time.perf_counter() - t0
        cards.append(build_scorecard(app, result, mx, wall_s=wall))
        if args.json:
            dump = mx.dump(meta={"app": app, "nodes": args.nodes,
                                 "mode": args.mode, "wall_s": wall})
            mexport.write_dump(dump, args.json)
            print(f"json : {len(dump['series'])} series -> {args.json}")
    print(render_scorecards(cards), end="")
    return 0


def _cmd_export(args) -> int:
    try:
        dump = mexport.load_dump(args.dump)
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics dump {args.dump!r}: {exc}", file=sys.stderr)
        return 1
    prom = mexport.to_prometheus(dump)
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(prom)
        print(f"prom  : {len(prom.splitlines())} lines -> {args.prom}")
    if args.csv:
        csv = mexport.to_csv(dump)
        with open(args.csv, "w") as fh:
            fh.write(csv)
        print(f"csv   : {len(csv.splitlines()) - 1} rows -> {args.csv}")
    if args.chrome:
        n = mexport.write_chrome(dump, args.chrome)
        print(f"chrome: {n} records -> {args.chrome}")
    if args.check:
        problems = []
        try:
            parsed = mexport.parse_prometheus(prom)
            if not parsed:
                problems.append("Prometheus output parsed to zero samples")
        except ValueError as exc:
            problems.append(f"Prometheus output does not parse: {exc}")
        if json.loads(json.dumps(dump)) != dump:
            problems.append("dump does not round-trip through JSON")
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 2
        print(f"check : ok ({len(parsed)} exposition samples)")
    if not (args.prom or args.csv or args.chrome or args.check):
        print(prom, end="")
    return 0


def _cmd_regress(args) -> int:
    if args.selfcheck:
        fault = mregress.selfcheck(verbose=True)
        if fault:
            print(f"SELF-CHECK FAILED: {fault}", file=sys.stderr)
            return 2
        print("watchdog self-check: ok")
        return 0
    try:
        with open(args.report) as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read perf report {args.report!r}: {exc}", file=sys.stderr)
        return 1
    verdict = mregress.compare_sections(
        report, base_name=args.base, cur_name=args.cur,
        wall_tol=args.wall_tol, phase_tol=args.phase_tol,
        vt_tol=args.vt_tol, wall_floor=args.wall_floor, strict=args.strict,
    )
    print(verdict.render(), end="")
    return 0 if verdict.ok else 1


def _cmd_smoke(args) -> int:
    """The CI gate, in three acts (exit 2 on the first failure):

    1. watchdog self-check — identical synthetic sections pass, a seeded
       regression fails on every axis, meta mismatches are refused;
    2. bit-identity — the tiny workload metered and unmetered must agree
       on virtual time and every deterministic run statistic (the two
       runs are independent, so they fan out across ``--jobs`` fleet
       worker processes);
    3. export round-trip — the metered dump survives JSON write/load,
       its Prometheus rendering parses, CSV and Chrome are non-empty.
    """
    import os
    import tempfile

    from repro.fleet import RunSpec, run_many

    def fail(msg: str) -> int:
        print(f"SMOKE FAILED: {msg}", file=sys.stderr)
        return 2

    fault = mregress.selfcheck()
    if fault:
        return fail(f"watchdog self-check: {fault}")
    print("smoke 1/3: watchdog self-check ok")

    common = dict(
        factory=("repro.apps.helmholtz", "make_program"),
        factory_kwargs={"n": 24, "m": 24, "max_iters": 2},
        n_nodes=args.nodes,
        pool_bytes=1 << 21,
    )
    specs = [
        RunSpec(workload="helmholtz-plain", **common),
        # observe_timed: the metered run IS the measurement — its stats
        # must come from the run with the sampler attached, or the
        # comparison below would check an unmetered run against itself
        RunSpec(workload="helmholtz-metered", metrics=True, observe_timed=True,
                **common),
    ]
    fleet = run_many(specs, jobs=args.jobs)
    for rec in fleet.failures():
        return fail(f"{rec['workload']} crashed: {rec.get('error')}")
    plain, metered = fleet.records
    if plain["virtual_s"] != metered["virtual_s"]:
        return fail(f"virtual time moved under metering: "
                    f"{plain['virtual_s']!r} != {metered['virtual_s']!r}")
    for group in ("cluster_stats", "dsm_stats"):
        a, b = plain[group], metered[group]
        diff = {k for k in set(a) | set(b) if a.get(k) != b.get(k)}
        if diff:
            return fail(f"{group} moved under metering: {sorted(diff)}")
    n_samples = metered["metrics"]["n_samples"]
    if n_samples == 0:
        return fail("sampler took no samples on the smoke workload")
    print(f"smoke 2/3: bit-identity ok (vt {metered['virtual_s'] * 1e3:.3f} ms, "
          f"{n_samples} samples)")

    dump = dict(metered["metrics"]["dump"])
    dump["meta"] = {"app": "helmholtz-smoke", "nodes": args.nodes}
    prom = mexport.to_prometheus(dump)
    parsed = mexport.parse_prometheus(prom)
    if not parsed:
        return fail("Prometheus exposition parsed to zero samples")
    with tempfile.TemporaryDirectory(prefix="metrics-smoke-") as tmp:
        path = os.path.join(tmp, "dump.json")
        mexport.write_dump(dump, path)
        if mexport.load_dump(path) != json.loads(json.dumps(dump)):
            return fail("dump does not round-trip through write_dump/load_dump")
        chrome = os.path.join(tmp, "trace.json")
        n_chrome = mexport.write_chrome(dump, chrome)
    n_csv = len(mexport.to_csv(dump).splitlines()) - 1
    if n_chrome == 0 or n_csv == 0:
        return fail(f"empty export (chrome={n_chrome}, csv={n_csv})")
    print(f"smoke 3/3: export round-trip ok ({len(parsed)} prom samples, "
          f"{n_csv} csv rows, {n_chrome} chrome records)")
    print("metrics smoke: all gates passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return {
        "run": _cmd_run,
        "export": _cmd_export,
        "regress": _cmd_regress,
        "smoke": _cmd_smoke,
    }[args.cmd](args)


if __name__ == "__main__":
    sys.exit(main())
