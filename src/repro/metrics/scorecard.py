"""Per-workload scorecards: one row summarising a metered run.

A scorecard condenses one :class:`~repro.runtime.results.RunResult` plus
its attached :class:`~repro.metrics.sampler.Metrics` into the dozen
numbers that tell you where a run went: virtual time, event and message
volume, fault pressure, and the latency percentiles of the two
synchronisation hot spots the paper's evaluation revolves around (lock
wait, Fig. 7; barrier epoch latency, Figs. 8-11).

Rendering goes through the shared table/quantile helpers in
:mod:`repro.util.tables` — the same ones the profiler report uses, so
the two tools cannot disagree on what "p99" or a microsecond column
means.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.sampler import BARRIER_EPOCH, LOCK_WAIT, Metrics
from repro.util.tables import fmt_us, render_table

#: latency percentiles reported per scorecard
SCORE_PERCENTILES = (50, 90, 99)


def _series_peak(mx: Metrics, name: str) -> float:
    s = mx.series.get(name)
    return max(s[1]) if s and s[1] else 0.0


def build_scorecard(name: str, result, mx: Metrics, wall_s: Optional[float] = None) -> Dict:
    """One scorecard row (plain dict, JSON-serialisable)."""
    lock = mx.histogram_percentiles(LOCK_WAIT, SCORE_PERCENTILES)
    barrier = mx.histogram_percentiles(BARRIER_EPOCH, SCORE_PERCENTILES)
    card = {
        "workload": name,
        "virtual_s": result.elapsed,
        "events": int(result.cluster_stats.get("events_processed", 0)),
        "msgs": int(result.cluster_stats.get("total_messages", 0)),
        "bytes": int(result.cluster_stats.get("total_bytes", 0)),
        "faults": int(
            result.dsm_stats.get("read_faults", 0)
            + result.dsm_stats.get("write_faults", 0)
        ),
        "barriers": int(result.dsm_stats.get("barriers", 0)),
        "lock_wait": lock,
        "barrier_epoch": barrier,
        "peak_queue_depth": _series_peak(mx, "sim/queue_depth"),
        "peak_inflight_msgs": _series_peak(mx, "net/inflight_msgs"),
        "samples": mx.n_samples,
    }
    if wall_s is not None:
        card["wall_s"] = wall_s
    return card


def render_scorecards(cards: List[Dict]) -> str:
    """The ``python -m repro.metrics run`` table."""
    headers = [
        "workload", "vt(ms)", "events", "msgs", "faults",
        "lock p50(us)", "lock p99(us)", "bar p50(us)", "bar p99(us)",
        "peak q", "inflight", "samples",
    ]
    rows = []
    for c in cards:
        rows.append([
            c["workload"],
            f"{c['virtual_s'] * 1e3:.3f}",
            c["events"],
            c["msgs"],
            c["faults"],
            fmt_us(c["lock_wait"]["p50"]),
            fmt_us(c["lock_wait"]["p99"]),
            fmt_us(c["barrier_epoch"]["p50"]),
            fmt_us(c["barrier_epoch"]["p99"]),
            int(c["peak_queue_depth"]),
            int(c["peak_inflight_msgs"]),
            c["samples"],
        ])
    return "\n".join(render_table(headers, rows, align="<")) + "\n"


def meter_workload(
    factory,
    pool_bytes: int,
    n_nodes: int = 4,
    period: float = 1e-4,
    mode: str = "parade",
    **runtime_kwargs,
):
    """Run ``factory()`` under a metered runtime; returns
    ``(RunResult, Metrics)``.  The helper the CLI and the smoke gate
    share — metrics ride along, so virtual results are bit-identical to
    an unmetered run."""
    from repro.runtime import ParadeRuntime

    rt = ParadeRuntime(
        n_nodes=n_nodes,
        mode=mode,
        pool_bytes=pool_bytes,
        metrics=True,
        metrics_period=period,
        **runtime_kwargs,
    )
    result = rt.run(factory())
    return result, rt.metrics
