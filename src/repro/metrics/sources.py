"""Stock sampling sources: one snapshot function per stack layer.

Each source is a closure over live simulation objects returning a flat
``{name: number}`` dict; the sampler records every key as the
time-series ``<prefix>/<name>``.  Sources only *read* state — they run
inside the event loop, and writing anything (scheduling, CPU charges,
RNG draws) would perturb the schedule and break the bit-identical
guarantee of observed runs.

``install_default_sources`` wires the full set onto a
:class:`~repro.metrics.sampler.Metrics` for a
:class:`~repro.runtime.ParadeRuntime` (what ``ParadeRuntime(metrics=True)``
calls); the individual factories are exposed for custom drivers that
only have a cluster or a bare simulator.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.dsm.states import PageState

#: page states reported by the DSM census, in fixed order
_CENSUS_STATES = tuple(PageState)


def sim_source(sim) -> Callable[[], Dict[str, float]]:
    """Event-loop health: cumulative events + events per virtual second
    since the previous sample (the virtual-rate face of ``events/s``)."""
    last = {"t": 0.0, "events": 0}

    def snapshot() -> Dict[str, float]:
        now = sim.now
        events = sim.events_processed
        dt = now - last["t"]
        rate = (events - last["events"]) / dt if dt > 0.0 else 0.0
        last["t"] = now
        last["events"] = events
        return {"events_total": events, "events_per_vs": rate}

    return snapshot


def cluster_source(cluster) -> Callable[[], Dict[str, float]]:
    """Hardware occupancy: per-node CPU busy fraction (current holders
    over capacity, derated by the live ``speed_factor`` so a chaos
    slowdown window shows as lost effective capacity), NIC queue, inbox
    depth, and the cumulative wire totals."""

    def snapshot() -> Dict[str, float]:
        out: Dict[str, float] = {
            "msgs_total": cluster.network.total_messages,
            "bytes_total": cluster.network.total_bytes,
        }
        for node in cluster.nodes:
            nid = node.id
            out[f"node{nid}/cpu_busy"] = (
                len(node.cpus.users) / node.cpus.capacity * node.speed_factor
            )
            out[f"node{nid}/cpu_queue"] = node.cpus.queue_length
            out[f"node{nid}/nic_queue"] = node.nic_tx.queue_length
            out[f"node{nid}/inbox_depth"] = len(node.inbox)
            out[f"node{nid}/msgs_sent"] = node.msgs_sent
        return out

    return snapshot


def dsm_source(dsm) -> Callable[[], Dict[str, float]]:
    """Protocol state: cluster-wide page-state census (how many copies
    sit INVALID / READ_ONLY / DIRTY / in an update transient right now)
    plus the cumulative fault / fetch / diff / sync counters whose
    per-sample deltas are the live rates of Figures 6-10."""

    def snapshot() -> Dict[str, float]:
        census = {st: 0 for st in _CENSUS_STATES}
        for dn in dsm.nodes:
            for st in dn.state:
                census[st] += 1
        out: Dict[str, float] = {
            f"pages_{st.name.lower()}": n for st, n in census.items()
        }
        agg = dsm.stats()
        for key in (
            "read_faults", "write_faults", "pages_fetched", "fetch_bytes",
            "diffs_sent", "diff_bytes", "invalidations", "lock_acquires",
            "barriers", "notices_batched", "diffs_piggybacked",
            "updates_pushed", "updates_installed", "readahead_pages",
            "barrier_arrivals_rx", "home_migrations",
        ):
            out[key] = agg.get(key, 0)
        return out

    return snapshot


def mpi_source(comm) -> Callable[[], Dict[str, float]]:
    """Message-passing layer: cumulative point-to-point sends and
    collective calls."""

    def snapshot() -> Dict[str, float]:
        return {"p2p_total": comm.n_p2p, "collectives_total": comm.n_collectives}

    return snapshot


def runtime_source(runtime) -> Callable[[], Dict[str, float]]:
    """Fork-join engine: regions forked so far and virtual seconds spent
    inside parallel regions."""

    def snapshot() -> Dict[str, float]:
        return {
            "regions_total": runtime._region_seq,
            "region_time_s": runtime.region_time,
        }

    return snapshot


def chaos_source(engine) -> Callable[[], Dict[str, float]]:
    """Reliability layer: cumulative injection/recovery counters plus the
    two live depths — frames awaiting ack (retransmit exposure) and
    frames parked in resequencing buffers (reorder exposure)."""

    def snapshot() -> Dict[str, float]:
        s = engine.stats
        return {
            "drops_total": s.drops + s.flap_drops + s.corrupts,
            "retransmits_total": s.retransmits,
            "dup_suppressed_total": s.dup_suppressed,
            "outstanding_frames": engine.outstanding_frames,
            "resequencing_depth": sum(
                len(ls.rx_buf) for ls in engine._links.values()
            ),
        }

    return snapshot


def install_default_sources(mx, runtime) -> None:
    """Wire the full stock source set for one
    :class:`~repro.runtime.ParadeRuntime` (``sim`` / ``cluster`` / ``dsm``
    / ``mpi`` / ``runtime``, and ``chaos`` when the run has a fault plan).
    """
    mx.add_source("sim", sim_source(runtime.sim))
    mx.add_source("cluster", cluster_source(runtime.cluster))
    mx.add_source("dsm", dsm_source(runtime.dsm))
    mx.add_source("mpi", mpi_source(runtime.comm))
    mx.add_source("runtime", runtime_source(runtime))
    if runtime.chaos is not None:
        mx.add_source("chaos", chaos_source(runtime.chaos))
