"""Live metrics for the ParADE reproduction: registry, sampler, exports.

The subsystem attaches to a running simulation as ``sim.metrics`` with
the same zero-cost-when-detached contract as ``trace`` / ``san`` /
``prof`` / ``chaos``, samples every layer on a deterministic
virtual-time grid, and exposes the result as Prometheus text, JSON
time-series, CSV, or Chrome counter tracks.  ``python -m repro.metrics``
adds per-workload scorecards and the noise-aware bench watchdog.
See ``docs/METRICS.md`` for the guide.
"""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_lower,
    bucket_upper,
)
from repro.metrics.sampler import (
    BARRIER_EPOCH,
    LOCK_HOLD,
    LOCK_WAIT,
    NET_LATENCY,
    Metrics,
)
from repro.metrics.sources import install_default_sources
from repro.metrics.scorecard import build_scorecard, meter_workload, render_scorecards
from repro.metrics.regress import compare_sections, selfcheck

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Metrics",
    "bucket_index",
    "bucket_lower",
    "bucket_upper",
    "NET_LATENCY",
    "LOCK_WAIT",
    "LOCK_HOLD",
    "BARRIER_EPOCH",
    "install_default_sources",
    "build_scorecard",
    "meter_workload",
    "render_scorecards",
    "compare_sections",
    "selfcheck",
]
