"""Metrics exposition: Prometheus text, JSON time-series, CSV, Chrome.

Every exporter consumes the plain-dict *dump* produced by
:meth:`repro.metrics.sampler.Metrics.dump`, so the CLI can round-trip:
``run`` writes the JSON dump, ``export`` loads it and emits any other
format — and a loaded dump exports byte-identically to a live one.

* :func:`to_prometheus` — text exposition format: time-series collapse
  to their latest sample (a scrape reads "now"), registry counters and
  gauges render directly, histograms expand to cumulative ``_bucket``
  ``le`` lines plus ``_sum`` / ``_count``.  :func:`parse_prometheus`
  reads the format back for the round-trip check.
* :func:`write_dump` / :func:`load_dump` — the JSON time-series file.
* :func:`to_csv` — ``series,time,value`` rows of every sample.
* :func:`to_chrome_events` — ``ph: "C"`` counter samples reusing the
  trace layer's :class:`~repro.trace.events.TraceEvent`, so metrics
  series overlay protocol traces in one Perfetto view.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from repro.trace.events import TraceEvent, CAT_COUNTER
from repro.trace.export import write_chrome_json

#: every exposed metric name carries this prefix
PROM_PREFIX = "parade_"

_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]+")

#: ``name{labels} value`` — labels optional
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_PROM_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def prom_name(raw: str) -> str:
    """Prometheus-safe metric name for a series or instrument name."""
    cleaned = _SANITIZE_RE.sub("_", raw).strip("_")
    return PROM_PREFIX + cleaned


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    """Canonical value rendering: integers without a trailing ``.0`` so
    counter lines stay stable across int/float round trips."""
    if v == float("inf"):
        return "+Inf"
    f = float(v)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def to_prometheus(dump: Dict) -> str:
    """Render *dump* in the Prometheus text exposition format."""
    lines: List[str] = []
    for inst in dump.get("instruments", []):
        name = prom_name(inst["name"])
        labels = dict(inst.get("labels", {}))
        kind = inst["kind"]
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            acc = int(inst.get("zero_count", 0))
            if acc:
                lines.append(
                    f"{name}_bucket{_fmt_labels({**labels, 'le': '0'})} {acc}"
                )
            buckets = inst.get("buckets", {})
            for idx in sorted(int(k) for k in buckets):
                acc += int(buckets[str(idx)])
                le = _fmt_value(2.0 ** idx)
                lines.append(
                    f"{name}_bucket{_fmt_labels({**labels, 'le': le})} {acc}"
                )
            lines.append(
                f"{name}_bucket{_fmt_labels({**labels, 'le': '+Inf'})} "
                f"{int(inst.get('count', 0))}"
            )
            lines.append(
                f"{name}_sum{_fmt_labels(labels)} {_fmt_value(inst.get('sum', 0.0))}"
            )
            lines.append(
                f"{name}_count{_fmt_labels(labels)} {int(inst.get('count', 0))}"
            )
        else:
            lines.append(
                f"{name}{_fmt_labels(labels)} {_fmt_value(inst.get('value', 0))}"
            )
    series = dump.get("series", {})
    # sorted, not insertion, order: a dump loaded back from JSON must
    # export byte-identically to the live one
    for sname in sorted(series):
        values = series[sname]["v"]
        if not values:
            continue
        name = prom_name(sname)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt_value(values[-1])}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition text back to ``{(name, labels): value}``.

    Raises ``ValueError`` on any non-comment line that does not match the
    format — the round-trip check relies on this strictness.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _PROM_LINE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        labels = tuple(sorted(_PROM_LABEL_RE.findall(m.group("labels") or "")))
        raw = m.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        out[(m.group("name"), labels)] = value
    return out


# -- JSON time-series ---------------------------------------------------
def write_dump(dump: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(dump, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_dump(path: str) -> Dict:
    with open(path) as fh:
        dump = json.load(fh)
    if "series" not in dump or "instruments" not in dump:
        raise ValueError(f"{path} is not a repro.metrics dump (missing keys)")
    return dump


# -- CSV ----------------------------------------------------------------
def to_csv(dump: Dict) -> str:
    """``series,time,value`` rows, series in sorted-name order, samples
    in time order — trivially loadable by pandas/gnuplot."""
    lines = ["series,time,value"]
    series = dump.get("series", {})
    for sname in sorted(series):
        data = series[sname]
        for t, v in zip(data["t"], data["v"]):
            lines.append(f"{sname},{t!r},{_fmt_value(v)}")
    return "\n".join(lines) + "\n"


# -- Chrome counters ----------------------------------------------------
def to_chrome_events(dump: Dict) -> List[TraceEvent]:
    """One ``ph: "C"`` counter sample per recorded point, named
    ``metrics/<series>`` so the tracks group next to the trace layer's
    own counter series when merged into one Chrome/Perfetto file."""
    events: List[TraceEvent] = []
    for series, data in dump.get("series", {}).items():
        name = f"metrics/{series}"
        for t, v in zip(data["t"], data["v"]):
            events.append(
                TraceEvent(
                    ts=t, cat=CAT_COUNTER, name=name, node=-1,
                    tid="metrics", args={"value": v}, ph="C",
                )
            )
    events.sort(key=lambda ev: (ev.ts, ev.name))
    return events


def write_chrome(dump: Dict, path: str, label: str = "repro.metrics") -> int:
    """Write the counter series as a Chrome trace; returns record count."""
    return write_chrome_json(to_chrome_events(dump), path, label=label)
