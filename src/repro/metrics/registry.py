"""Metric instruments: counters, gauges, log-bucketed histograms.

The registry is the *live* half of :mod:`repro.metrics` — hooks across
the stack update instruments as the simulation runs, and the sampler
(:mod:`repro.metrics.sampler`) snapshots them into time-series on a
deterministic virtual-time grid.

Instruments are keyed by ``(name, labels)`` where labels are an ordered
tuple of ``(key, value)`` string pairs, mirroring the Prometheus data
model so the text exposition (:mod:`repro.metrics.export`) is a direct
rendering.

Histogram bucketing
-------------------

:class:`Histogram` uses power-of-two buckets: bucket *k* holds values in
the half-open-from-below interval ``(2**(k-1), 2**k]``.  The index comes
from :func:`math.frexp`, so boundaries are *exact* — a value equal to
``2**k`` lands in bucket *k*, never one over due to float log rounding.
Non-positive observations (a zero-wait lock acquire is common) go to a
dedicated zero bucket.  Buckets are sparse dictionaries, so two
histograms built on different nodes always share a bucket layout and
:meth:`Histogram.merge` is exact and associative (integer adds).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

#: label set rendered as an ordered tuple of (key, value) pairs
Labels = Tuple[Tuple[str, str], ...]


def make_labels(labels: Dict[str, object]) -> Labels:
    """Canonical label tuple: string keys/values, sorted by key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_index(value: float) -> Optional[int]:
    """Power-of-two bucket of *value*: the smallest k with value <= 2**k.

    Returns ``None`` for non-positive values (the zero bucket).  Exact at
    boundaries: ``bucket_index(2.0**k) == k`` for every representable k.
    """
    if value <= 0.0:
        return None
    m, e = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    return e - 1 if m == 0.5 else e


def bucket_upper(index: int) -> float:
    """Inclusive upper bound of bucket *index* (``2**index``)."""
    return math.ldexp(1.0, index)


def bucket_lower(index: int) -> float:
    """Exclusive lower bound of bucket *index* (``2**(index-1)``)."""
    return math.ldexp(1.0, index - 1)


class Counter:
    """Monotonically increasing count (events, bytes, frames)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """Point-in-time level (queue depth, in-flight bytes, busy fraction)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


class Histogram:
    """Log2-bucketed latency histogram, mergeable across nodes.

    Tracks exact ``count`` / ``sum`` / ``min`` / ``max`` next to the
    sparse bucket counts, so rates and means are exact while quantiles
    are bucket-resolution (within a factor of 2, see :meth:`quantile`).
    """

    __slots__ = ("name", "labels", "buckets", "zero_count", "count", "sum",
                 "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        #: bucket index -> observation count (sparse)
        self.buckets: Dict[int, int] = {}
        #: observations <= 0 (zero-wait acquires, loopback latencies)
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ------------------------------------------------------
    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        idx = bucket_index(value)
        if idx is None:
            self.zero_count += 1
        else:
            self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* in (exact: integer bucket adds; associative up to
        float addition order in ``sum``)."""
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        for attr, pick in (("min", min), ("max", max)):
            ov = getattr(other, attr)
            if ov is not None:
                sv = getattr(self, attr)
                setattr(self, attr, ov if sv is None else pick(sv, ov))
        return self

    # -- reading --------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Nearest-rank quantile at bucket resolution.

        Returns the inclusive upper bound of the bucket holding the rank,
        clamped to the exact observed ``max`` — so for any q the estimate
        ``e`` and the true order statistic ``t`` satisfy
        ``t <= e <= 2 * t`` (equality at bucket boundaries), and 0.0 when
        the rank falls in the zero bucket.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank <= seen:
                upper = bucket_upper(idx)
                return upper if self.max is None else min(upper, self.max)
        return self.max if self.max is not None else 0.0

    def percentiles(self, qs=(50, 90, 99)) -> Dict[str, float]:
        out = {f"p{q}": self.quantile(q) for q in qs}
        out["max"] = self.max if self.max is not None else 0.0
        return out

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ascending,
        ending with ``(inf, count)``.  The zero bucket folds into every
        ``le`` (its observations are <= any positive bound)."""
        out: List[Tuple[float, int]] = []
        acc = self.zero_count
        if self.zero_count:
            out.append((0.0, acc))
        for idx in sorted(self.buckets):
            acc += self.buckets[idx]
            out.append((bucket_upper(idx), acc))
        out.append((float("inf"), self.count))
        return out

    # -- serialisation --------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, name: str, labels: Labels, data: Dict) -> "Histogram":
        h = cls(name, labels)
        h.buckets = {int(k): int(v) for k, v in data.get("buckets", {}).items()}
        h.zero_count = int(data.get("zero_count", 0))
        h.count = int(data.get("count", 0))
        h.sum = float(data.get("sum", 0.0))
        h.min = data.get("min")
        h.max = data.get("max")
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram {self.name}{dict(self.labels)} n={self.count} "
            f"max={self.max}>"
        )


class MetricsRegistry:
    """Instruments keyed by ``(name, labels)``; one per metrics object.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create — hook
    sites call them unconditionally and the registry hands back the same
    instrument for the same key, so hot paths need no local caching to
    stay correct (they may cache the returned instrument for speed).
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object]):
        key = (name, make_labels(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- iteration ------------------------------------------------------
    def __iter__(self) -> Iterator:
        """Instruments in deterministic (name, labels) order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    def find(self, name: str) -> List:
        """Every instrument registered under *name* (any label set)."""
        return [inst for inst in self if inst.name == name]

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (cross-node aggregation): same-key
        counters and histograms add; gauges take the other's value (last
        writer wins, as with a scrape)."""
        for key, inst in sorted(other._instruments.items()):
            mine = self._instruments.get(key)
            if mine is None:
                self._instruments[key] = _copy_instrument(inst)
            elif isinstance(mine, Gauge):
                mine.set(inst.value)
            else:
                mine.merge(inst)
        return self


def _copy_instrument(inst):
    if isinstance(inst, Histogram):
        return Histogram.from_dict(inst.name, inst.labels, inst.as_dict())
    copy = type(inst)(inst.name, inst.labels)
    copy.value = inst.value
    return copy
