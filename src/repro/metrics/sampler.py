"""The live metrics object: registry + deterministic periodic sampler.

:class:`Metrics` attaches to a :class:`~repro.sim.Simulator` exactly the
way ``trace`` / ``san`` / ``prof`` / ``chaos`` do — a nullable attribute
(``sim.metrics``) guarded at every hook site, so a detached run pays one
attribute load and one compare per guarded site and nothing else.

Sampling is **passive**: the simulator calls :meth:`Metrics.on_step`
once per processed event (when attached), and the sampler snapshots its
sources whenever virtual time has crossed the next multiple of
``period``.  No timeout events are ever scheduled, no CPU is charged, no
sequence numbers are consumed — the event schedule of an observed run is
*bit-identical* to the unobserved run, which is what lets the goldens
pin virtual times with metrics on.  The cost of that passivity: samples
land on the first event *at or after* each grid point (exactly the grid
under any workload that processes events steadily), and a quiet tail
yields no samples until :meth:`finalize` takes the closing one.

Sources are ``(prefix, fn)`` pairs where ``fn() -> {name: number}``;
each key becomes the time-series ``prefix/name``.  The stock sources for
every layer live in :mod:`repro.metrics.sources`.

Hook sites additionally feed the registry's latency histograms directly
(lock wait/hold, barrier epoch latency, network delivery latency) and
maintain the in-flight per-link gauges — see the ``on_*`` methods.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.registry import Histogram, MetricsRegistry

#: series name of one sampled value stream
Series = Tuple[List[float], List[float]]

#: metric names the hooks maintain (export adds the ``parade_`` prefix)
NET_LATENCY = "net_latency_seconds"
LOCK_WAIT = "lock_wait_seconds"
LOCK_HOLD = "lock_hold_seconds"
BARRIER_EPOCH = "barrier_epoch_seconds"


class Metrics:
    """Live metrics for one simulator; installs itself as ``sim.metrics``.

    Parameters
    ----------
    sim : the :class:`~repro.sim.Simulator` whose virtual clock drives
        the sampling grid; ``sim.metrics`` is set unless ``attach=False``.
    period : virtual seconds between samples (the grid spacing).
    max_samples : per-series bound; once reached, further samples of that
        series are dropped (``n_dropped`` counts them) so memory stays
        bounded on arbitrarily long runs.
    """

    def __init__(
        self,
        sim,
        period: float = 1e-4,
        attach: bool = True,
        max_samples: int = 1 << 16,
    ):
        if period <= 0.0:
            raise ValueError(f"sampling period must be positive, got {period}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.sim = sim
        self.period = period
        self.max_samples = max_samples
        self.registry = MetricsRegistry()
        #: series name -> ([times], [values]); insertion-ordered
        self.series: Dict[str, Series] = {}
        self.sources: List[Tuple[str, Callable[[], Dict[str, float]]]] = []
        self.n_samples = 0
        self.n_dropped = 0
        self.finalized_at: Optional[float] = None
        self._next_due = period
        #: (src, dst) -> [msgs, bytes] currently in flight (sent, not yet
        #: delivered into the destination inbox)
        self.inflight: Dict[Tuple[int, int], List[int]] = {}
        self._inflight_msgs = 0
        self._inflight_bytes = 0
        self.add_source("net", self._net_source)
        if attach:
            self.attach()

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> "Metrics":
        """Install as ``sim.metrics`` so hooks and the step sampler find us."""
        self.sim.metrics = self
        return self

    def detach(self) -> "Metrics":
        if getattr(self.sim, "metrics", None) is self:
            self.sim.metrics = None
        return self

    def add_source(self, prefix: str, fn: Callable[[], Dict[str, float]]) -> None:
        """Register a snapshot source; its keys become ``prefix/name``
        series.  Sources must only *read* state — they run inside the
        event loop and anything else would perturb the schedule."""
        self.sources.append((prefix, fn))

    # -- sampling -------------------------------------------------------
    def on_step(self, now: float, queue_depth: int) -> None:
        """Called by the simulator once per processed event (attached
        runs only); samples when *now* has crossed the next grid point."""
        if now < self._next_due:
            return
        self.sample(now, queue_depth)
        self._next_due = self.period * (math.floor(now / self.period) + 1.0)

    def sample(self, now: float, queue_depth: Optional[int] = None) -> None:
        """Snapshot every source at virtual time *now*."""
        self.n_samples += 1
        if queue_depth is not None:
            self._record("sim/queue_depth", now, queue_depth)
        for prefix, fn in self.sources:
            for name, value in fn().items():
                self._record(f"{prefix}/{name}", now, value)

    def _record(self, name: str, t: float, v: float) -> None:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = ([], [])
        if len(s[0]) >= self.max_samples:
            self.n_dropped += 1
            return
        s[0].append(t)
        s[1].append(float(v))

    def finalize(self) -> "Metrics":
        """Take the closing sample at the current virtual time (idempotent
        at a given time) and stamp ``finalized_at``."""
        now = self.sim.now
        if self.finalized_at != now:
            self.sample(now)
            self.finalized_at = now
        return self

    def _net_source(self) -> Dict[str, float]:
        out = {
            "inflight_msgs": self._inflight_msgs,
            "inflight_bytes": self._inflight_bytes,
        }
        for (src, dst), (msgs, nbytes) in sorted(self.inflight.items()):
            out[f"link/{src}->{dst}/msgs_inflight"] = msgs
            out[f"link/{src}->{dst}/bytes_inflight"] = nbytes
        return out

    # -- network hooks ---------------------------------------------------
    def on_net_send(self, src: int, dst: int, nbytes: int) -> None:
        """A frame entered the network (loopback included)."""
        ent = self.inflight.get((src, dst))
        if ent is None:
            ent = self.inflight[(src, dst)] = [0, 0]
        ent[0] += 1
        ent[1] += nbytes
        self._inflight_msgs += 1
        self._inflight_bytes += nbytes
        self.registry.counter("net_frames_total", src=src, dst=dst).inc()
        self.registry.counter("net_bytes_total", src=src, dst=dst).inc(nbytes)

    def on_net_deliver(self, src: int, dst: int, nbytes: int, latency: float) -> None:
        """The frame reached the destination inbox *latency* virtual
        seconds after the send call started (queueing + wire + recovery)."""
        ent = self.inflight.get((src, dst))
        if ent is not None:
            ent[0] -= 1
            ent[1] -= nbytes
        self._inflight_msgs -= 1
        self._inflight_bytes -= nbytes
        self.registry.histogram(NET_LATENCY).observe(latency)

    # -- DSM hooks -------------------------------------------------------
    def on_lock_wait(self, lock_id: int, wait: float) -> None:
        """Request-to-grant latency of one distributed-lock acquire."""
        self.registry.histogram(LOCK_WAIT, lock=lock_id).observe(wait)

    def on_lock_hold(self, lock_id: int, hold: float) -> None:
        """Grant-to-release time of one critical section."""
        self.registry.histogram(LOCK_HOLD, lock=lock_id).observe(hold)

    def on_barrier_epoch(self, node: int, duration: float) -> None:
        """Arrival-to-departure latency of one barrier epoch on *node*."""
        self.registry.histogram(BARRIER_EPOCH, node=node).observe(duration)

    # -- convenience -----------------------------------------------------
    def histogram_percentiles(self, name: str, qs=(50, 90, 99)) -> Dict[str, float]:
        """Percentiles over the *merged* label sets of histogram *name*
        (e.g. lock wait across every lock) — empty histograms yield 0s."""
        merged: Optional[Histogram] = None
        for inst in self.registry.find(name):
            if isinstance(inst, Histogram):
                if merged is None:
                    merged = Histogram.from_dict(name, (), inst.as_dict())
                else:
                    merged.merge(inst)
        if merged is None:
            merged = Histogram(name)
        return merged.percentiles(qs)

    # -- serialisation ---------------------------------------------------
    def dump(self, meta: Optional[Dict] = None) -> Dict:
        """Plain-dict snapshot: the input of every exporter and of the
        ``export`` CLI round trip (see :mod:`repro.metrics.export`)."""
        instruments = []
        for inst in self.registry:
            ent = {
                "kind": inst.kind,
                "name": inst.name,
                "labels": {k: v for k, v in inst.labels},
            }
            if inst.kind == "histogram":
                ent.update(inst.as_dict())
            else:
                ent["value"] = inst.value
            instruments.append(ent)
        return {
            "schema": 1,
            "meta": dict(meta or {}),
            "period": self.period,
            "finalized_at": self.finalized_at,
            "n_samples": self.n_samples,
            "n_dropped": self.n_dropped,
            "series": {
                name: {"t": list(t), "v": list(v)}
                for name, (t, v) in self.series.items()
            },
            "instruments": instruments,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Metrics {len(self.series)} series, {self.n_samples} samples, "
            f"{len(self.registry)} instruments, period={self.period}>"
        )
