"""The noise-aware bench watchdog: diff two ``BENCH_parade.json`` runs.

``python -m repro.metrics regress`` compares two sections of the perf
report (default ``baseline`` vs ``current``) and exits non-zero with a
human-readable verdict when the trajectory regressed.  The comparison is
*noise-aware* — each quantity is judged by what can legitimately move:

* **virtual time** is a deterministic run invariant: any drift beyond
  ``--vt-tol`` (default 0 — exact match) is a real protocol change, not
  noise, and always a failure;
* **wall time** carries host noise: only a slowdown beyond the
  ``--wall-tol`` band (default +30%) fails; speedups never do;
* **phase fractions** (compute/stall/sync/comm shares recorded per
  workload) are deterministic but small drifts accompany legitimate
  changes, so only a shift beyond ``--phase-tol`` absolute (default
  0.05) fails;
* **event/message/byte counts** can change under pure host-speed
  rework (PR 2 restructured the event queue without moving virtual
  time), so mismatches are warnings unless ``--strict``.

Run metadata (schema 2 of :mod:`repro.bench.perf`) guards the whole
comparison: if both sections record incompatible environments — python
version, platform, node count, accelerator flags — the watchdog refuses
the apples-to-oranges diff outright.  Sections without metadata (schema
1 files) compare with a warning, so old baselines keep working.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

DEFAULT_WALL_TOL = 0.30
DEFAULT_PHASE_TOL = 0.05
#: wall times where scheduler jitter rivals the measurement itself;
#: below this, relative bands are meaningless and only noted
DEFAULT_WALL_FLOOR = 0.25

#: meta keys that must agree for the comparison to be apples-to-apples
META_KEYS = ("python", "platform", "machine", "nodes", "accel", "smoke")

#: deterministic run invariants checked exactly under ``--strict``
INVARIANT_KEYS = ("events", "msgs_sent", "bytes_sent")


class RegressionVerdict:
    """Outcome of one comparison: detail lines + problems + warnings."""

    def __init__(self, base_name: str, cur_name: str):
        self.base_name = base_name
        self.cur_name = cur_name
        self.lines: List[str] = []
        self.warnings: List[str] = []
        self.problems: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        out = [f"== regress: {self.base_name} vs {self.cur_name} =="]
        out.extend(f"  {line}" for line in self.lines)
        for w in self.warnings:
            out.append(f"  WARNING: {w}")
        for p in self.problems:
            out.append(f"  PROBLEM: {p}")
        out.append(
            "verdict: OK — no regression detected"
            if self.ok
            else f"verdict: FAIL — {len(self.problems)} problem(s)"
        )
        return "\n".join(out) + "\n"


def _meta_check(verdict: RegressionVerdict, base: Dict, cur: Dict) -> bool:
    """Apples-to-apples guard; returns False when comparison must stop."""
    bm, cm = base.get("meta"), cur.get("meta")
    if not bm or not cm:
        verdict.warnings.append(
            "run metadata missing on "
            + ("both sections" if not bm and not cm
               else (verdict.base_name if not bm else verdict.cur_name))
            + " (schema 1 record?) — environment compatibility not verified"
        )
        return True
    mismatched = [
        f"{k}: {bm[k]!r} vs {cm[k]!r}"
        for k in META_KEYS
        if k in bm and k in cm and bm[k] != cm[k]
    ]
    if mismatched:
        verdict.problems.append(
            "refusing apples-to-oranges comparison; run environments differ "
            "(" + "; ".join(mismatched) + ")"
        )
        return False
    verdict.lines.append("meta: environments match (" +
                         ", ".join(f"{k}={bm[k]}" for k in META_KEYS if k in bm) + ")")
    return True


def compare_sections(
    report: Dict,
    base_name: str = "baseline",
    cur_name: str = "current",
    wall_tol: float = DEFAULT_WALL_TOL,
    phase_tol: float = DEFAULT_PHASE_TOL,
    vt_tol: float = 0.0,
    wall_floor: float = DEFAULT_WALL_FLOOR,
    strict: bool = False,
) -> RegressionVerdict:
    """Compare two sections of a perf report; see the module docstring
    for what counts as a failure vs a warning."""
    verdict = RegressionVerdict(base_name, cur_name)
    base, cur = report.get(base_name), report.get(cur_name)
    for name, section in ((base_name, base), (cur_name, cur)):
        if not section or "results" not in section:
            verdict.problems.append(
                f"section {name!r} missing from the report (have: "
                + ", ".join(sorted(k for k in report if isinstance(report.get(k), dict)))
                + ")"
            )
    if not verdict.ok:
        return verdict
    if not _meta_check(verdict, base, cur):
        return verdict

    bres, cres = base["results"], cur["results"]
    for name in bres:
        if name not in cres:
            verdict.problems.append(f"workload {name!r} disappeared from {cur_name}")
    for name in cres:
        if name not in bres:
            verdict.warnings.append(f"workload {name!r} has no {base_name} record")

    for name in sorted(set(bres) & set(cres)):
        b, c = bres[name], cres[name]

        bv, cv = float(b["virtual_s"]), float(c["virtual_s"])
        drift = (cv - bv) / bv if bv else 0.0
        if abs(drift) > vt_tol:
            verdict.problems.append(
                f"{name}: virtual time drifted {drift:+.2%} "
                f"({bv:.6f} s -> {cv:.6f} s); virtual time is deterministic — "
                "this is a real protocol/runtime change, not noise"
            )
        else:
            verdict.lines.append(f"{name:<10} vt {cv * 1e3:9.3f} ms  exact match")

        for key in INVARIANT_KEYS:
            if key in b and key in c and b[key] != c[key]:
                msg = (f"{name}: {key} changed {b[key]} -> {c[key]} "
                       "(run-shape invariant)")
                (verdict.problems if strict else verdict.warnings).append(msg)

        bw, cw = b.get("wall_s"), c.get("wall_s")
        if bw and cw:
            ratio = float(cw) / float(bw)
            if max(float(bw), float(cw)) < wall_floor:
                verdict.lines.append(
                    f"{name:<10} wall {float(cw):8.3f} s  "
                    f"(below {wall_floor} s noise floor — not banded)"
                )
            elif ratio > 1.0 + wall_tol:
                verdict.problems.append(
                    f"{name}: wall time regressed {ratio - 1:+.1%} "
                    f"({float(bw):.3f} s -> {float(cw):.3f} s) beyond the "
                    f"+{wall_tol:.0%} noise band"
                )
            else:
                verdict.lines.append(
                    f"{name:<10} wall {float(cw):8.3f} s  "
                    f"({ratio - 1:+.1%}, band +{wall_tol:.0%})"
                )

        bp, cp = b.get("phases"), c.get("phases")
        if bp and cp:
            worst_g, worst = None, 0.0
            for g in set(bp) | set(cp):
                d = abs(float(cp.get(g, 0.0)) - float(bp.get(g, 0.0)))
                if d > worst:
                    worst_g, worst = g, d
            if worst > phase_tol:
                verdict.problems.append(
                    f"{name}: phase mix shifted — {worst_g} fraction moved "
                    f"{float(bp.get(worst_g, 0.0)):.3f} -> "
                    f"{float(cp.get(worst_g, 0.0)):.3f} "
                    f"(> {phase_tol} absolute)"
                )
            elif worst_g is not None:
                verdict.lines.append(
                    f"{name:<10} phases  max drift {worst:.4f} ({worst_g})"
                )
    return verdict


# -- synthetic self-check ------------------------------------------------
def synthetic_report(seed: int = 0) -> Dict:
    """A small self-contained perf report (baseline == current) used by
    the smoke gate and tests; *seed* varies the numbers, not the shape."""
    rng = random.Random(seed)
    results = {}
    for name in ("alpha", "beta"):
        vt = round(rng.uniform(0.01, 0.1), 9)
        results[name] = {
            "virtual_s": vt,
            "wall_s": round(rng.uniform(0.5, 2.0), 6),
            "events": rng.randrange(10_000, 90_000),
            "msgs_sent": rng.randrange(500, 5_000),
            "bytes_sent": rng.randrange(100_000, 900_000),
            "phases": {"compute": 0.55, "stall": 0.2, "sync": 0.2, "comm": 0.05},
        }
    meta = {
        "python": "3.12", "platform": "linux", "machine": "x86_64",
        "nodes": 4, "accel": False, "smoke": True,
    }
    section = {"timestamp": "synthetic", "meta": meta, "results": results}
    import copy

    return {
        "schema": 2,
        "baseline": section,
        "current": copy.deepcopy(section),
    }


def seeded_regression(report: Dict, seed: int = 0) -> Dict:
    """Perturb the ``current`` section of *report* into a regression the
    watchdog must catch: one workload's virtual time drifts, another's
    wall time blows past the noise band, and its phase mix shifts."""
    import copy

    rng = random.Random(seed ^ 0x5EED)
    bad = copy.deepcopy(report)
    names = sorted(bad["current"]["results"])
    vt_victim = names[rng.randrange(len(names))]
    wall_victim = names[(names.index(vt_victim) + 1) % len(names)]
    res = bad["current"]["results"]
    res[vt_victim]["virtual_s"] *= 1.0 + rng.uniform(0.02, 0.2)
    res[wall_victim]["wall_s"] *= 1.0 + DEFAULT_WALL_TOL + rng.uniform(0.1, 0.5)
    ph = res[wall_victim]["phases"]
    shift = DEFAULT_PHASE_TOL + 0.05
    ph["compute"] = max(0.0, ph["compute"] - shift)
    ph["sync"] = ph.get("sync", 0.0) + shift
    return bad


def selfcheck(seed: int = 0, verbose: bool = False) -> Optional[str]:
    """Watchdog self-check: an identical pair must pass, a seeded
    regression must fail on all three axes.  Returns None when healthy,
    else a description of what the watchdog missed."""
    clean = compare_sections(synthetic_report(seed))
    if verbose:
        print(clean.render())
    if not clean.ok:
        return "false positive: identical baseline/current flagged: " + \
            "; ".join(clean.problems)
    bad = compare_sections(seeded_regression(synthetic_report(seed), seed))
    if verbose:
        print(bad.render())
    if bad.ok:
        return "missed the seeded regression entirely"
    text = " ".join(bad.problems)
    for needle in ("virtual time drifted", "wall time regressed", "phase mix shifted"):
        if needle not in text:
            return f"seeded regression not detected on axis: {needle!r}"
    mixed = compare_sections(
        {**synthetic_report(seed),
         "current": {**synthetic_report(seed)["current"],
                     "meta": {**synthetic_report(seed)["current"]["meta"],
                              "python": "2.7"}}}
    )
    if mixed.ok or "apples-to-oranges" not in " ".join(mixed.problems):
        return "meta mismatch not refused"
    return None
