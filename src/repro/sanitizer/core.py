"""Happens-before sanitizer: data-race detector + live protocol checks.

The :class:`Sanitizer` attaches to a :class:`~repro.sim.Simulator` the same
way :class:`~repro.trace.TraceRecorder` does — instrumentation throughout
the stack guards on ``sim.san is None``, so a detached sanitizer costs one
attribute load per hook site and an attached one observes every DSM access
and synchronisation operation of the run.

Happens-before model
--------------------
Each simulation thread (process label) carries a sparse vector clock.
Edges come only from *semantic* synchronisation, never from simulator
event plumbing (a comm thread relaying two unrelated messages must not
order them):

* fork/join of parallel-region threads (``ParadeRuntime``);
* MPI point-to-point FIFO channels keyed ``(comm, src, dst, tag)`` —
  which covers every collective, since bcast/reduce/gather/scatter are
  trees of sends and receives;
* pthread :class:`~repro.sim.Mutex` acquire/release and the distributed
  DSM lock (lazy-release-consistency grant order);
* the team combining pattern: contributor -> leader at the gather,
  leader -> waiters at the gate;
* DSM barrier arrive/depart through a per-epoch clock bucket.

Shadow memory is page-indexed (matching the protocol's invalidation
granularity) but each record keeps its exact byte range, so false sharing
— distinct variables on one page — does not produce false positives: a
race additionally requires overlapping bytes with at least one write and
neither access ordered before the other.

Live protocol invariants (promoted from the offline
:mod:`repro.trace.checker`):

* Figure-5 page-state transition legality and per-page chain continuity;
* ``NoticeLog`` per-consumer cursor monotonicity at lock grants;
* lock-grant diff piggybacking (``DsmConfig.lock_piggyback``) only ships
  chains for pages the same grant delivers notices for — the grant's
  happens-before edge is what makes applying them sound;
* barrier-epoch agreement (consecutive per node, one arrival per node
  per epoch, epochs complete in order);
* the ``diff_gap > 0`` single-writer-per-interval precondition at homes.

When a global barrier completes (all nodes arrived), every application
thread is blocked at it, so the shadow memory is cleared — accesses in
different barrier intervals can never race.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.dsm.states import is_valid_transition
from repro.sanitizer.clocks import VectorClock, ordered_before, vc_copy, vc_join

#: shadow record list indices (records are mutable for range merging)
_LO, _HI, _TID, _EPOCH, _WRITE, _WHAT, _TIME, _NODE = range(8)


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnosis: a data race or an invariant violation."""

    kind: str  #: "data-race" or an invariant id ("epoch-order", ...)
    message: str
    time: float  #: virtual time of detection
    details: Tuple = ()

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.kind} @t={self.time:.6g}] {self.message}"


@dataclass
class AccessSite:
    """One side of a data race, named in the report."""

    tid: str
    node: int
    write: bool
    lo: int
    hi: int
    what: str
    time: float

    def describe(self) -> str:
        mode = "write" if self.write else "read"
        target = self.what or f"bytes [{self.lo:#x}, {self.hi:#x})"
        return f"{mode} of {target} by {self.tid} (node {self.node}, t={self.time:.6g})"


class Sanitizer:
    """Vector-clock happens-before checker over a running simulation.

    Parameters
    ----------
    sim : the simulator to attach to (``sim.san`` is set immediately)
    n_nodes : cluster size — needed to tell when a barrier epoch is
        complete (shadow memory resets there)
    page_size : shadow-memory bucket granularity (the DSM page size)
    max_records_per_page : cap per shadow bucket; oldest records are
        evicted beyond it (counted in :attr:`records_evicted`)
    """

    def __init__(self, sim, n_nodes: int, page_size: int, max_records_per_page: int = 512):
        self._sim = sim
        self.n_nodes = n_nodes
        self.page_size = page_size
        self.max_records_per_page = max_records_per_page

        #: tid -> vector clock
        self._vc: Dict[str, VectorClock] = {}
        #: lock key -> clock published at the last release
        self._lock_vc: Dict[Any, VectorClock] = {}
        #: combining-gather key -> accumulated contributor clocks
        self._gather_vc: Dict[Any, VectorClock] = {}
        #: gate key -> [opener clock, waiters remaining]
        self._gate_vc: Dict[Any, list] = {}
        #: message channel key -> FIFO of sender clocks
        self._chan: Dict[Any, deque] = {}
        #: barrier epoch -> {"vc": joined clock, "nodes": arrived set}
        self._bar: Dict[int, dict] = {}
        self._bar_completed = -1
        #: node -> last barrier epoch it arrived at
        self._node_epoch: Dict[int, int] = {}
        #: page index -> shadow records (see _LO.._NODE)
        self._shadow: Dict[int, List[list]] = {}
        #: (node, page) -> last page state seen (chain continuity)
        self._page_state: Dict[Tuple[int, int], Any] = {}
        #: (manager, lock, consumer) -> last grant end cursor
        self._cursors: Dict[Tuple[int, int, int], int] = {}
        self._seen: Set = set()

        self.findings: List[Finding] = []
        self.accesses_checked = 0
        self.sync_ops = 0
        self.records_evicted = 0
        self.barrier_resets = 0

        self.attach()

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> None:
        self._sim.san = self

    def detach(self) -> None:
        if self._sim.san is self:
            self._sim.san = None

    # -- report ---------------------------------------------------------
    @property
    def races(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "data-race"]

    @property
    def violations(self) -> List[Finding]:
        return [f for f in self.findings if f.kind != "data-race"]

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        head = "sanitizer: OK" if self.ok else (
            f"sanitizer: {len(self.races)} data race(s), "
            f"{len(self.violations)} invariant violation(s)"
        )
        return (
            f"{head} — {self.accesses_checked} accesses checked, "
            f"{self.sync_ops} sync ops, {self.barrier_resets} barrier epochs, "
            f"{self.records_evicted} shadow records evicted"
        )

    def format_report(self) -> str:
        lines = [self.summary()]
        for f in self.findings:
            lines.append(f"  [{f.kind} @t={f.time:.6g}] {f.message}")
        return "\n".join(lines)

    # -- internals ------------------------------------------------------
    def _tid(self) -> str:
        proc = self._sim.active_process
        if proc is not None and proc.label:
            return proc.label
        return "main"

    def _vc_of(self, tid: str) -> VectorClock:
        vc = self._vc.get(tid)
        if vc is None:
            vc = self._vc[tid] = {tid: 1}
        return vc

    def _violation(self, kind: str, message: str, dedup=None, details: Tuple = ()) -> None:
        if dedup is not None:
            key = (kind, dedup)
            if key in self._seen:
                return
            self._seen.add(key)
        self.findings.append(Finding(kind, message, self._sim.now, details))

    # ------------------------------------------------------------------
    # shadow memory: the race detector proper
    # ------------------------------------------------------------------
    def on_access(self, node: int, addr: int, nbytes: int, write: bool, what: str = "") -> None:
        """Record one DSM access (fast path or fault path) and check it
        against every unordered overlapping record of the touched pages."""
        if nbytes <= 0:
            return
        self.accesses_checked += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        epoch = vc[tid]
        now = self._sim.now
        ps = self.page_size
        end = addr + nbytes
        for page in range(addr // ps, (end - 1) // ps + 1):
            lo = addr if addr > page * ps else page * ps
            page_end = (page + 1) * ps
            hi = end if end < page_end else page_end
            bucket = self._shadow.get(page)
            if bucket is None:
                self._shadow[page] = [[lo, hi, tid, epoch, write, what, now, node]]
                continue
            merged = False
            for rec in bucket:
                if rec[_LO] < hi and lo < rec[_HI] and rec[_TID] != tid \
                        and (write or rec[_WRITE]) \
                        and not ordered_before(rec[_TID], rec[_EPOCH], vc):
                    self._report_race(page, rec, lo, hi, tid, write, what, now, node)
                if (not merged and rec[_TID] == tid and rec[_EPOCH] == epoch
                        and rec[_WRITE] == write and rec[_LO] <= hi and lo <= rec[_HI]):
                    # same thread, same epoch, same mode, touching range:
                    # extend in place instead of growing the bucket
                    if lo < rec[_LO]:
                        rec[_LO] = lo
                    if hi > rec[_HI]:
                        rec[_HI] = hi
                    rec[_TIME] = now
                    merged = True
            if not merged:
                if len(bucket) >= self.max_records_per_page:
                    bucket.pop(0)
                    self.records_evicted += 1
                bucket.append([lo, hi, tid, epoch, write, what, now, node])

    def _report_race(self, page: int, rec: list, lo: int, hi: int,
                     tid: str, write: bool, what: str, now: float, node: int) -> None:
        old = AccessSite(rec[_TID], rec[_NODE], rec[_WRITE],
                         rec[_LO], rec[_HI], rec[_WHAT], rec[_TIME])
        new = AccessSite(tid, node, write, lo, hi, what, now)
        dedup = (page, tuple(sorted([(old.tid, old.what, old.write),
                                     (new.tid, new.what, new.write)])))
        if ("data-race", dedup) in self._seen:
            return
        self._seen.add(("data-race", dedup))
        ov_lo = max(old.lo, new.lo)
        ov_hi = min(old.hi, new.hi)
        self.findings.append(Finding(
            "data-race",
            f"unordered conflicting accesses to page {page} "
            f"(bytes [{ov_lo:#x}, {ov_hi:#x})): "
            f"{new.describe()} races with earlier {old.describe()}",
            now,
            details=(old, new),
        ))

    # ------------------------------------------------------------------
    # happens-before edges
    # ------------------------------------------------------------------
    def on_fork(self, child_tids) -> None:
        """Parent forks children: each child starts from the parent's
        clock; the parent moves to a fresh epoch so its later accesses are
        not mistaken as ordered before the children's."""
        self.sync_ops += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        snap = vc_copy(vc)
        vc[tid] += 1
        for child in child_tids:
            cvc = vc_copy(snap)
            cvc[child] = snap.get(child, 0) + 1
            self._vc[child] = cvc

    def on_join(self, child_tids) -> None:
        """Parent joins children: absorbs their final clocks."""
        self.sync_ops += 1
        vc = self._vc_of(self._tid())
        for child in child_tids:
            cvc = self._vc.pop(child, None)
            if cvc is not None:
                vc_join(vc, cvc)

    def on_lock_acquire(self, key) -> None:
        self.sync_ops += 1
        rel = self._lock_vc.get(key)
        if rel is not None:
            vc_join(self._vc_of(self._tid()), rel)

    def on_lock_release(self, key) -> None:
        self.sync_ops += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        self._lock_vc[key] = vc_copy(vc)
        vc[tid] += 1

    def on_gather(self, key) -> None:
        """A thread contributes to a combining instance (release)."""
        self.sync_ops += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        acc = self._gather_vc.get(key)
        if acc is None:
            acc = self._gather_vc[key] = {}
        vc_join(acc, vc)
        vc[tid] += 1

    def on_gather_leader(self, key) -> None:
        """The last arriver absorbs every contribution (acquire)."""
        acc = self._gather_vc.pop(key, None)
        if acc is not None:
            vc_join(self._vc_of(self._tid()), acc)

    def on_gate_open(self, key, waiters: int) -> None:
        """Leader/winner publishes its clock for *waiters* gate waiters."""
        self.sync_ops += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        if waiters > 0:
            self._gate_vc[key] = [vc_copy(vc), waiters]
        vc[tid] += 1

    def on_gate_wait(self, key) -> None:
        entry = self._gate_vc.get(key)
        if entry is None:
            return
        vc_join(self._vc_of(self._tid()), entry[0])
        entry[1] -= 1
        if entry[1] <= 0:
            del self._gate_vc[key]

    def on_msg_send(self, key) -> None:
        """MPI p2p send: push the sender's clock on the channel FIFO."""
        self.sync_ops += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        q = self._chan.get(key)
        if q is None:
            q = self._chan[key] = deque()
        q.append(vc_copy(vc))
        vc[tid] += 1

    def on_msg_recv(self, key) -> None:
        q = self._chan.get(key)
        if q:
            vc_join(self._vc_of(self._tid()), q.popleft())
            if not q:
                del self._chan[key]

    # ------------------------------------------------------------------
    # DSM barrier: HB edges + epoch-agreement invariant + shadow reset
    # ------------------------------------------------------------------
    def on_barrier_arrive(self, node: int, epoch: int) -> None:
        self.sync_ops += 1
        tid = self._tid()
        vc = self._vc_of(tid)
        last = self._node_epoch.get(node)
        expected = 0 if last is None else last + 1
        if epoch != expected:
            self._violation(
                "epoch-order",
                f"node {node} arrived at barrier epoch {epoch}, expected {expected}",
                dedup=(node, epoch),
            )
        self._node_epoch[node] = epoch
        if epoch <= self._bar_completed:
            self._violation(
                "epoch-order",
                f"node {node} arrived at barrier epoch {epoch} after it completed",
                dedup=("late", node, epoch),
            )
        bucket = self._bar.get(epoch)
        if bucket is None:
            bucket = self._bar[epoch] = {"vc": {}, "nodes": set()}
        if node in bucket["nodes"]:
            self._violation(
                "epoch-membership",
                f"node {node} arrived twice at barrier epoch {epoch}",
                dedup=("dup", node, epoch),
            )
        bucket["nodes"].add(node)
        vc_join(bucket["vc"], vc)
        vc[tid] += 1
        if len(bucket["nodes"]) == self.n_nodes:
            if epoch != self._bar_completed + 1:
                self._violation(
                    "epoch-order",
                    f"barrier epoch {epoch} completed after epoch {self._bar_completed}",
                    dedup=("complete", epoch),
                )
            self._bar_completed = epoch
            self._bar.pop(epoch - 1, None)
            # every application thread is blocked at this barrier now, so
            # pre-barrier accesses can no longer race with anything
            self._shadow.clear()
            self.barrier_resets += 1

    def on_barrier_depart(self, node: int, epoch: int) -> None:
        del node
        tid = self._tid()
        vc = self._vc_of(tid)
        bucket = self._bar.get(epoch)
        if bucket is not None:
            vc_join(vc, bucket["vc"])
        vc[tid] += 1

    # ------------------------------------------------------------------
    # live protocol invariants
    # ------------------------------------------------------------------
    def on_page_state(self, node: int, page: int, src, dst, reason: str) -> None:
        """Called for every page-state transition, before it is applied."""
        if not is_valid_transition(src, dst, reason):
            self._violation(
                "illegal-transition",
                f"node {node} page {page}: {src.name} -> {dst.name} ({reason!r}) "
                f"is not a Figure-5 transition",
                dedup=(node, page, src, dst, reason),
            )
        prev = self._page_state.get((node, page))
        if prev is not None and prev != src:
            self._violation(
                "broken-chain",
                f"node {node} page {page}: transition starts at {src.name} but the "
                f"last observed state was {prev.name}",
                dedup=("chain", node, page, prev, src),
            )
        self._page_state[(node, page)] = dst

    def on_lock_grant(self, manager: int, lock_id: int, requester: int,
                      start: int, end: int, log_len: int) -> None:
        """NoticeLog cursor monotonicity: each consumer's cursor only
        moves forward and never beyond the log."""
        key = (manager, lock_id, requester)
        prev = self._cursors.get(key, 0)
        if start < prev:
            self._violation(
                "cursor-regression",
                f"lock {lock_id} manager {manager}: consumer {requester} cursor "
                f"moved back from {prev} to {start}",
                dedup=key + (start,),
            )
        if end < start or end > log_len:
            self._violation(
                "cursor-regression",
                f"lock {lock_id} manager {manager}: consumer {requester} cursor "
                f"advanced to {end} outside [{start}, {log_len}]",
                dedup=key + ("range", end),
            )
        self._cursors[key] = max(prev, end)

    def on_lock_piggyback(self, manager: int, lock_id: int, requester: int,
                          pages, notice_pages) -> None:
        """Piggybacked diff chains must be a subset of the pages the same
        grant delivers notices for: a diff for an un-noticed page would
        patch bytes the acquirer has no happens-before edge to (the grant
        edge of :meth:`on_lock_acquire` only covers noticed intervals)."""
        self.sync_ops += 1
        extra = set(pages) - set(notice_pages)
        if extra:
            self._violation(
                "piggyback-unnoticed",
                f"lock {lock_id} manager {manager}: grant to {requester} "
                f"piggybacked diffs for pages {sorted(extra)} without "
                f"matching write notices",
                dedup=(manager, lock_id, requester, tuple(sorted(extra))),
            )

    def on_gap_writers(self, node: int, page: int, writers) -> None:
        """The diff_gap > 0 precondition saw multiple same-interval
        writers of one page (no byte overlap yet — that case raises)."""
        ws = tuple(sorted(writers))
        self._violation(
            "diff-gap-multi-writer",
            f"home {node} merged diffs for page {page} from writers {list(ws)} "
            f"within one interval while diff_gap > 0 (documented single-writer "
            f"precondition of compute_diff)",
            dedup=(node, page, ws),
        )
