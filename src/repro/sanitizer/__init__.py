"""Happens-before sanitizer for the DSM runtime.

Attach a :class:`Sanitizer` to a simulator (or pass ``sanitize=True`` /
``DsmConfig(sanitize=True)`` to :class:`~repro.runtime.ParadeRuntime`) to
get vector-clock data-race detection over every DSM access plus live
protocol-invariant checking.  ``python -m repro.sanitizer <app>`` runs a
registered workload under the sanitizer; see ``docs/SANITIZER.md``.
"""

from repro.sanitizer.clocks import VectorClock, ordered_before, vc_copy, vc_join
from repro.sanitizer.core import AccessSite, Finding, Sanitizer

__all__ = [
    "AccessSite",
    "Finding",
    "Sanitizer",
    "VectorClock",
    "ordered_before",
    "vc_copy",
    "vc_join",
]
