"""Sanitizer CLI: run a registered app under the happens-before sanitizer.

Usage::

    python -m repro.sanitizer                       # helmholtz, 4 nodes
    python -m repro.sanitizer cg --nodes 8 --mode sdsm
    python -m repro.sanitizer --all                 # every clean app
    python -m repro.sanitizer racy-ww               # seeded-racy negative test
    python -m repro.sanitizer --list                # show workloads

Exit codes: 0 — clean; 2 — data races or invariant violations reported
(for the seeded ``racy-*`` workloads that is the expected outcome; pass
``--expect-races`` to invert the exit code for them).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="run a registered ParADE app under the vector-clock "
        "happens-before sanitizer and report data races / protocol "
        "invariant violations",
    )
    parser.add_argument(
        "app", nargs="?", default="helmholtz",
        help="registered workload name (see --list); default: helmholtz",
    )
    parser.add_argument("--list", action="store_true", help="list workloads and exit")
    parser.add_argument(
        "--all", action="store_true",
        help="run every registered clean app instead of a single one",
    )
    parser.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument(
        "--mode", choices=("parade", "sdsm"), default="parade",
        help="hybrid ParADE translation or conventional SDSM (default parade)",
    )
    parser.add_argument(
        "--exec", dest="exec_name", default="2Thread-2CPU",
        help="execution configuration: 1Thread-1CPU, 1Thread-2CPU or "
        "2Thread-2CPU (default)",
    )
    parser.add_argument(
        "--accel", action="store_true",
        help="run with the protocol accelerator on — the sanitizer must "
        "stay green with batched notices, piggybacked diffs, update "
        "pushes and read-ahead frames in flight",
    )
    parser.add_argument(
        "--hier", action="store_true",
        help="run with hierarchical synchronization on — the sanitizer "
        "must stay green with tree-barrier aggregate frames and sharded "
        "lock managers in flight (composes with --accel)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="fleet worker processes for --all (default: PARADE_JOBS env "
        "or cpu count); findings are bit-identical for any value",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the fleet run cache for --all (PARADE_CACHE=0 does "
        "the same)",
    )
    parser.add_argument(
        "--expect-races", action="store_true",
        help="invert the exit code: fail if NO race is found (for the "
        "seeded racy-* workloads)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print the full finding list even when long",
    )
    return parser


def _run_one(name: str, entry: dict, nodes: int, mode: str, exec_config,
             accel: bool = False, hier: bool = False) -> "object":
    from repro.runtime import ParadeRuntime

    rt = ParadeRuntime(
        n_nodes=nodes,
        exec_config=exec_config,
        mode=mode,
        pool_bytes=entry["pool_bytes"],
        protocol_accel=accel,
        hierarchical=hier,
        sanitize=True,
    )
    result = rt.run(entry["factory"]())
    san = rt.sanitizer
    label = f"{name}/{mode}/{nodes}n/{exec_config.name}"
    print(f"{label}: elapsed {result.elapsed * 1e3:.3f} ms (virtual)")
    print(san.summary())
    return san


def _run_all(args, clean: dict, exec_config) -> int:
    """The ``--all`` sweep, fleet-dispatched: every clean app is an
    independent deterministic run, so the sweep fans out across
    ``--jobs`` worker processes and memoises in the run cache.  The
    sanitizer verdict (summary + findings) rides inside each run record,
    so the output — and the exit code — is bit-identical for any job
    count.  Records cap the reported finding list at 50; re-run a single
    app for the full list."""
    from repro.fleet import RunSpec, default_cache, run_many

    targets = sorted(clean)
    specs = [
        RunSpec.from_entry(
            name,
            clean[name],
            n_nodes=args.nodes,
            mode=args.mode,
            exec_name=exec_config.name,
            accel=args.accel,
            hier=args.hier,
            sanitize=True,
        )
        for name in targets
    ]
    fleet = run_many(specs, jobs=args.jobs, cache=default_cache(args.no_cache))
    print(fleet.summary())
    for rec in fleet.failures():
        print(f"FAIL: {rec['workload']} crashed: {rec.get('error')}",
              file=sys.stderr)
    if fleet.failures():
        return 2

    any_findings = False
    for name, rec in zip(targets, fleet.records):
        san = rec["sanitizer"]
        label = f"{name}/{args.mode}/{args.nodes}n/{exec_config.name}"
        print(f"{label}: elapsed {rec['virtual_s'] * 1e3:.3f} ms (virtual)")
        print(san["summary"])
        if not san["ok"]:
            any_findings = True
            findings = san["findings"] if args.verbose else san["findings"][:10]
            for line in findings:
                print(f"  {line}")
            if san["n_findings"] > len(findings):
                print(f"  ... and {san['n_findings'] - len(findings)} more (use -v)")

    if args.expect_races:
        if any_findings:
            print("expected races: found — OK")
            return 0
        print("expected races but the run came back clean", file=sys.stderr)
        return 2
    return 2 if any_findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.apps.racy import racy_programs
    from repro.bench.figures import registered_programs
    from repro.runtime import ALL_EXEC_CONFIGS

    clean = registered_programs()
    racy = racy_programs()
    registry = {**clean, **racy}
    if args.list:
        for name, entry in sorted(registry.items()):
            kind = "racy " if name in racy else "clean"
            print(f"{name:<12} {kind} {entry['note']}")
        return 0

    exec_config = next((ec for ec in ALL_EXEC_CONFIGS if ec.name == args.exec_name), None)
    if exec_config is None:
        names = ", ".join(ec.name for ec in ALL_EXEC_CONFIGS)
        print(f"unknown exec config {args.exec_name!r}; use one of: {names}", file=sys.stderr)
        return 1
    if args.nodes < 1:
        print(f"--nodes must be >= 1, got {args.nodes}", file=sys.stderr)
        return 1

    if args.all:
        return _run_all(args, clean, exec_config)
    if args.app not in registry:
        print(
            f"unknown app {args.app!r}; registered: {', '.join(sorted(registry))}",
            file=sys.stderr,
        )
        return 1

    any_findings = False
    for name in [args.app]:
        san = _run_one(name, registry[name], args.nodes, args.mode, exec_config,
                       accel=args.accel, hier=args.hier)
        if not san.ok:
            any_findings = True
            findings = san.findings if args.verbose else san.findings[:10]
            for f in findings:
                print(f"  [{f.kind} @t={f.time:.6g}] {f.message}")
            if len(san.findings) > len(findings):
                print(f"  ... and {len(san.findings) - len(findings)} more (use -v)")

    if args.expect_races:
        if any_findings:
            print("expected races: found — OK")
            return 0
        print("expected races but the run came back clean", file=sys.stderr)
        return 2
    return 2 if any_findings else 0


if __name__ == "__main__":
    sys.exit(main())
