"""Vector clocks over dynamic thread identities.

Simulation threads are identified by their process labels (``master``,
``agent[2]``, ``omp[1.0]r3``, ``comm[0]`` ...), which are created and
retired as parallel regions come and go — so clocks are sparse dicts
rather than fixed-width arrays.  A clock maps ``tid -> epoch`` with the
usual component-wise partial order; absent components are zero.
"""

from __future__ import annotations

from typing import Dict

#: a vector clock: thread label -> last epoch of that thread known here
VectorClock = Dict[str, int]


def vc_join(into: VectorClock, other: VectorClock) -> None:
    """Component-wise max, in place (``into |= other``)."""
    for tid, c in other.items():
        if c > into.get(tid, 0):
            into[tid] = c


def vc_copy(vc: VectorClock) -> VectorClock:
    return dict(vc)


def vc_fmt(vc: VectorClock) -> str:
    """Compact ``{tid:epoch}`` rendering for reports."""
    items = ", ".join(f"{t}:{c}" for t, c in sorted(vc.items()))
    return "{" + items + "}"


def ordered_before(tid: str, epoch: int, observer: VectorClock) -> bool:
    """True iff the access ``(tid, epoch)`` happens-before the state
    summarised by *observer* (FastTrack's epoch-vs-clock test)."""
    return epoch <= observer.get(tid, 0)
