"""Fault plans: declarative descriptions of what chaos injects where.

A :class:`FaultPlan` is an immutable bundle of fault specifications the
:class:`~repro.chaos.engine.ChaosEngine` evaluates against every frame the
simulated network carries:

* :class:`LinkFault` — per-frame random faults (drop, duplicate, reorder,
  corrupt, latency spike) on a link / message-class selector;
* :class:`LinkFlap` — deterministic outage windows during which every
  frame (and ack) on the matching link is lost;
* :class:`NodeSlowdown` — a CPU-speed derating window for one node (the
  "one node started swapping" scenario of heterogeneous-cluster papers);
* :class:`CommStall` — random stalls of a node's communication thread
  before it services a frame (interrupt storms, page-outs).

All randomness is drawn from per-link / per-node streams seeded from the
engine seed (see :mod:`repro.chaos.engine`), so a plan plus a seed fully
determines every injected fault: chaos runs are bit-reproducible and
trace-diffable.

Selectors use ``-1`` (nodes) / ``""`` (channel) as wildcards.  ``channel``
matches the wire tag's channel component — ``"dsm"``, ``"bar"``, ``"lk"``
for the DSM protocol and ``"mpi0"``, ``"mpi1"``, ... for communicators —
so a plan can, say, drop only page traffic while leaving barriers alone.

The :data:`PLANS` registry names the stock plans the CLI and the sweep
use; :func:`plan_by_name` looks them up.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class LinkFault:
    """Per-frame random fault rates on a (src, dst, channel) selector.

    The first matching :class:`LinkFault` in the plan wins; rates are
    independent probabilities evaluated per frame in a fixed order
    (drop, corrupt, delay, reorder, duplicate) from the link's RNG stream.
    """

    src: int = -1          #: sending node, -1 = any
    dst: int = -1          #: receiving node, -1 = any
    channel: str = ""      #: wire-tag channel ("dsm", "bar", "lk", "mpi0"...), "" = any
    drop: float = 0.0      #: P(frame silently lost in the switch)
    corrupt: float = 0.0   #: P(payload mangled; receiver checksum discards it)
    delay: float = 0.0     #: P(latency spike of ``delay_s``)
    delay_s: float = 500e-6
    reorder: float = 0.0   #: P(frame held ``reorder_s`` so successors overtake it)
    reorder_s: float = 200e-6
    duplicate: float = 0.0  #: P(switch delivers the frame twice)
    ack_drop: float = 0.0   #: P(the reliability-layer ack frame is lost)

    def matches(self, src: int, dst: int, channel: str) -> bool:
        return (
            (self.src < 0 or self.src == src)
            and (self.dst < 0 or self.dst == dst)
            and (not self.channel or self.channel == channel)
        )


@dataclass(frozen=True)
class LinkFlap:
    """Deterministic outage window: all matching frames and acks are lost
    while ``t0 <= now < t1`` (virtual seconds)."""

    t0: float
    t1: float
    src: int = -1
    dst: int = -1

    def covers(self, src: int, dst: int, now: float) -> bool:
        return (
            (self.src < 0 or self.src == src)
            and (self.dst < 0 or self.dst == dst)
            and self.t0 <= now < self.t1
        )


@dataclass(frozen=True)
class NodeSlowdown:
    """Derate one node's CPUs by ``factor`` during [t0, t1)."""

    node: int
    factor: float = 2.0
    t0: float = 0.0
    t1: float = float("inf")


@dataclass(frozen=True)
class CommStall:
    """Random comm-thread stalls before servicing a frame on ``node``."""

    node: int = -1          #: -1 = every node
    prob: float = 0.0       #: P(stall before servicing one frame)
    stall_s: float = 200e-6  #: stall duration


@dataclass(frozen=True)
class ReliabilityConfig:
    """Tuning knobs of the ack/retransmit layer (see docs/RELIABILITY.md).

    The first retransmit timeout of a frame is
    ``max(min_rto, rto_rtts * ideal_rtt(frame))`` where the ideal RTT
    counts two wire latencies, serialisation, and the fixed CPU overheads;
    each further attempt multiplies by ``backoff`` and adds a seeded
    jitter draw of up to ``jitter`` of the interval (desynchronising
    retransmit storms after a link flap).
    """

    rto_rtts: float = 8.0      #: first RTO as a multiple of the frame's ideal RTT
    min_rto: float = 50e-6     #: RTO floor in virtual seconds
    backoff: float = 2.0       #: exponential backoff factor per attempt
    jitter: float = 0.25       #: max fractional jitter added per attempt
    max_retries: int = 12      #: attempts beyond the first before giving up
    dsm_rto_rtts: float = 96.0  #: DSM request re-issue timeout, in page RTTs
    dsm_max_reissues: int = 4  #: idempotent re-issues of one DSM request


@dataclass(frozen=True)
class FaultPlan:
    """One named, immutable injection scenario."""

    name: str
    description: str = ""
    faults: Tuple[LinkFault, ...] = ()
    flaps: Tuple[LinkFlap, ...] = ()
    slowdowns: Tuple[NodeSlowdown, ...] = ()
    stalls: Tuple[CommStall, ...] = ()
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)

    @property
    def is_clean(self) -> bool:
        """True when the plan injects nothing (reliability layer still runs)."""
        return not (self.faults or self.flaps or self.slowdowns or self.stalls)

    def fault_for(self, src: int, dst: int, channel: str) -> Optional[LinkFault]:
        """First matching per-frame fault rule, or None."""
        for f in self.faults:
            if f.matches(src, dst, channel):
                return f
        return None

    def flapped(self, src: int, dst: int, now: float) -> bool:
        """True when some outage window covers this link right now."""
        for fl in self.flaps:
            if fl.covers(src, dst, now):
                return True
        return False

    def stall_for(self, node: int) -> Optional[CommStall]:
        for s in self.stalls:
            if s.node < 0 or s.node == node:
                return s
        return None

    def replace(self, **kw) -> "FaultPlan":
        """Copy with replaced fields (dataclasses.replace convenience)."""
        return replace(self, **kw)


# ----------------------------------------------------------------------
# stock plans
# ----------------------------------------------------------------------
#: no injected faults; the ack/retransmit layer still runs end to end.
CLEAN = FaultPlan("clean", "reliability layer active, nothing injected")

DROP = FaultPlan(
    "drop", "5% of frames silently lost in the switch",
    faults=(LinkFault(drop=0.05),),
)

DUP = FaultPlan(
    "dup", "8% of frames delivered twice",
    faults=(LinkFault(duplicate=0.08),),
)

REORDER = FaultPlan(
    "reorder", "10% of frames held 200us so successors overtake them",
    faults=(LinkFault(reorder=0.10),),
)

CORRUPT = FaultPlan(
    "corrupt", "3% of frames arrive with a mangled payload (checksum drop)",
    faults=(LinkFault(corrupt=0.03),),
)

LATENCY_SPIKE = FaultPlan(
    "latency-spike", "10% of frames see a 1ms switch-latency spike",
    faults=(LinkFault(delay=0.10, delay_s=1e-3),),
)

FLAP = FaultPlan(
    "flap", "two full-network outages of 300us each",
    flaps=(LinkFlap(t0=0.3e-3, t1=0.6e-3), LinkFlap(t0=1.2e-3, t1=1.5e-3)),
)

SLOW_NODE = FaultPlan(
    "slow-node", "node 1 CPUs derated 3x from 0.5ms onward",
    slowdowns=(NodeSlowdown(node=1, factor=3.0, t0=0.5e-3),),
)

COMM_STALL = FaultPlan(
    "comm-stall", "5% of frame services preceded by a 200us comm-thread wedge",
    stalls=(CommStall(prob=0.05),),
)

LOSSY_MIX = FaultPlan(
    "lossy-mix", "drop+dup+reorder+spike+ack loss together (worst case)",
    faults=(
        LinkFault(drop=0.04, duplicate=0.04, reorder=0.06,
                  delay=0.06, delay_s=800e-6, ack_drop=0.05),
    ),
)

#: name -> plan; the CLI's --plan/--plans and the sweep draw from here.
PLANS: Dict[str, FaultPlan] = {
    p.name: p
    for p in (
        CLEAN, DROP, DUP, REORDER, CORRUPT, LATENCY_SPIKE,
        FLAP, SLOW_NODE, COMM_STALL, LOSSY_MIX,
    )
}

#: the default --sweep matrix (acceptance gate: results bit-identical to
#: the fault-free run under each of these)
SWEEP_PLAN_NAMES: Tuple[str, ...] = ("drop", "dup", "reorder", "latency-spike")


def plan_by_name(name: str) -> FaultPlan:
    """Look up a stock plan by (case-insensitive) name."""
    try:
        return PLANS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown fault plan {name!r}; choose from {sorted(PLANS)}"
        ) from None
