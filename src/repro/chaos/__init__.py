"""repro.chaos — seeded fault injection + reliability for the simulated cluster.

Attach a :class:`ChaosEngine` built from a :class:`FaultPlan` to a run and
the network starts losing, duplicating, reordering, delaying and mangling
frames — while an ack/retransmit layer recovers every one of them, so the
program's numerical results stay bit-identical to the fault-free run.
``python -m repro.chaos --sweep`` asserts exactly that over the registered
workloads.  See docs/RELIABILITY.md for the fault model and guarantees.
"""

from repro.chaos.plan import (
    CLEAN,
    COMM_STALL,
    CORRUPT,
    DROP,
    DUP,
    FLAP,
    LATENCY_SPIKE,
    LOSSY_MIX,
    PLANS,
    REORDER,
    SLOW_NODE,
    SWEEP_PLAN_NAMES,
    CommStall,
    FaultPlan,
    LinkFault,
    LinkFlap,
    NodeSlowdown,
    ReliabilityConfig,
    plan_by_name,
)
from repro.chaos.engine import ChaosDeliveryError, ChaosEngine, ChaosStats

__all__ = [
    "ChaosDeliveryError",
    "ChaosEngine",
    "ChaosStats",
    "CommStall",
    "FaultPlan",
    "LinkFault",
    "LinkFlap",
    "NodeSlowdown",
    "ReliabilityConfig",
    "PLANS",
    "SWEEP_PLAN_NAMES",
    "plan_by_name",
    "CLEAN",
    "DROP",
    "DUP",
    "REORDER",
    "CORRUPT",
    "LATENCY_SPIKE",
    "FLAP",
    "SLOW_NODE",
    "COMM_STALL",
    "LOSSY_MIX",
]
