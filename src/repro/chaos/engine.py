"""The chaos engine: seeded fault injection + the reliability layer.

Attaches to a :class:`~repro.sim.Simulator` the same zero-cost way
``sim.trace`` / ``sim.san`` / ``sim.prof`` do::

    engine = ChaosEngine(sim, plan_by_name("drop"), seed=7)  # sim.chaos set
    engine.install(cluster)      # bind network, arm slowdown windows
    ... run the program ...
    engine.stats.as_dict()       # injection + recovery counters

When attached, :meth:`Network.send <repro.cluster.network.Network.send>`
hands every remote frame to :meth:`transmit` instead of scheduling plain
switch propagation.  The engine then plays both sides of a lossy link:

**Injection** — per-frame fate draws (drop / corrupt / latency spike /
reorder hold / duplicate) from a per-link RNG stream, deterministic
outage windows (link flap), per-node CPU derating, and comm-thread
stalls.  Every stream is seeded from ``(seed, link)``, and the simulator
itself is deterministic, so one ``(plan, seed)`` pair fully determines
every fault of a run: two chaos runs are bit-identical and
trace-diffable.

**Recovery** — a go-back-none ARQ layer: frames carry per-(src, dst)
sequence numbers (``Message.rel_seq``); the receiving side acks each
arrival (selective ack, cumulative-free), suppresses duplicates, and
holds out-of-order frames in a resequencing buffer so the inbox sees the
exact per-link FIFO order the perfect network guarantees — the order the
MPI match queues and the sanitizer's happens-before channel edges rely
on.  The sending side retransmits on a per-frame timer with exponential
backoff and seeded jitter; a frame that exhausts ``max_retries`` raises
:class:`ChaosDeliveryError` (the bounded-retransmit guarantee the sweep
asserts).

Cost model: acks and retransmissions are NIC-offloaded control traffic —
they pay wire time but do not occupy the transmit engine or charge CPU
(VIA-style hardware reliable delivery).  Injected faults therefore
perturb *when* protocol frames arrive, never *what* they carry, which is
why numerical results must be bit-identical to the fault-free run.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.sim.events import SimulationError
from repro.chaos.plan import FaultPlan, ReliabilityConfig
from repro.trace.events import CAT_CHAOS

#: payload-byte estimate used for the DSM re-issue timeout (one page reply)
_DSM_REPLY_BYTES = 4096


class ChaosDeliveryError(SimulationError):
    """A frame exhausted its retransmit budget (link dead beyond repair)."""

    def __init__(self, msg, attempts: int):
        super().__init__(
            f"frame {msg!r} undeliverable after {attempts} attempts "
            f"(rel_seq {msg.rel_seq}, link {msg.src}->{msg.dst})"
        )
        self.msg = msg
        self.attempts = attempts


class ChaosStats:
    """Injection and recovery counters (see docs/RELIABILITY.md).

    ====================  =========================================================
    key                   meaning
    ====================  =========================================================
    frames                remote frames offered to the chaos pipeline
    drops                 frames lost to a random drop draw
    flap_drops            frames (and acks) lost to a link-flap outage window
    corrupts              frames delivered mangled, discarded by the checksum
    delays                frames that took a latency spike
    reorders              frames held so later frames overtook them
    dups_injected         switch-duplicated deliveries injected
    retransmits           sender-side retransmissions (timer fired, no ack)
    max_attempts          worst per-frame transmission count (1 = first try)
    acks_sent             reliability acks put on the wire
    ack_drops             acks lost (random draw or flap) — recovered by dup
                          suppression after the retransmit
    dup_suppressed        receiver-side duplicate frames discarded by rel_seq
    reorder_buffered      frames parked in the resequencing buffer
    dsm_reissues          DSM requests idempotently re-issued after a quiet RTO
    comm_stalls           injected comm-thread service stalls
    slowdown_windows      node CPU-derating windows entered
    ====================  =========================================================
    """

    __slots__ = (
        "frames", "drops", "flap_drops", "corrupts", "delays", "reorders",
        "dups_injected", "retransmits", "max_attempts", "acks_sent",
        "ack_drops", "dup_suppressed", "reorder_buffered", "dsm_reissues",
        "comm_stalls", "slowdown_windows",
    )

    def __init__(self):
        for k in self.__slots__:
            setattr(self, k, 0)

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = {k: v for k, v in self.as_dict().items() if v}
        return f"<ChaosStats {hot}>"


class _LinkState:
    """Reliability + fate state of one directed (src, dst) link."""

    __slots__ = ("rng", "tx_seq", "rx_next", "rx_buf", "outstanding")

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.tx_seq = 0
        self.rx_next = 0
        #: rel_seq -> buffered out-of-order Message
        self.rx_buf: Dict[int, Any] = {}
        #: rel_seq -> [msg, attempts_so_far, last_send_time]
        self.outstanding: Dict[int, list] = {}


class ChaosEngine:
    """Seeded fault injection + ack/retransmit recovery, bound to one sim.

    Parameters
    ----------
    sim : the simulator to attach to (``sim.chaos`` is set unless
        ``attach=False``)
    plan : the :class:`~repro.chaos.plan.FaultPlan` to execute
    seed : integer the per-link / per-node RNG streams derive from; the
        same (plan, seed) pair reproduces every fault bit-for-bit
    reliability : override of the plan's ack/retransmit tuning
    """

    def __init__(
        self,
        sim,
        plan: FaultPlan,
        seed: int = 0,
        reliability: Optional[ReliabilityConfig] = None,
        attach: bool = True,
    ):
        self.sim = sim
        self.plan = plan
        self.seed = int(seed)
        self.reliability = reliability or plan.reliability
        self.stats = ChaosStats()
        self.network = None
        self._links: Dict[Tuple[int, int], _LinkState] = {}
        self._stall_rngs: Dict[int, random.Random] = {}
        if attach:
            self.attach()

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> "ChaosEngine":
        """Install as ``sim.chaos`` so the network and comm threads find us."""
        self.sim.chaos = self
        return self

    def detach(self) -> "ChaosEngine":
        if getattr(self.sim, "chaos", None) is self:
            self.sim.chaos = None
        return self

    def install(self, cluster) -> "ChaosEngine":
        """Bind the cluster's network and arm node-slowdown windows."""
        self._bind(cluster.network)
        for sd in self.plan.slowdowns:
            if not (0 <= sd.node < len(cluster.nodes)):
                raise ValueError(
                    f"slowdown names node {sd.node} but the cluster has "
                    f"{len(cluster.nodes)} nodes"
                )
            node = cluster.nodes[sd.node]

            def begin(ev=None, node=node, sd=sd):
                node.speed_factor = node.speed_factor / sd.factor
                self.stats.slowdown_windows += 1
                tr = self.sim.trace
                if tr is not None:
                    tr.instant(CAT_CHAOS, "slowdown-begin", node=node.id,
                               tid="chaos", factor=sd.factor)

            if sd.t0 <= 0.0:
                # derate synchronously: a window open from t=0 must cover
                # the very first compute burst, which may be scheduled
                # ahead of any timer callback
                begin()
            else:
                self.sim.timeout(sd.t0).add_callback(begin)
            if sd.t1 != float("inf"):

                def end(ev, node=node, sd=sd):
                    node.speed_factor = node.speed_factor * sd.factor
                    tr = self.sim.trace
                    if tr is not None:
                        tr.instant(CAT_CHAOS, "slowdown-end", node=node.id,
                                   tid="chaos", factor=sd.factor)

                self.sim.timeout(sd.t1).add_callback(end)
        return self

    def _bind(self, network) -> None:
        if self.network is None:
            self.network = network
        elif self.network is not network:
            raise RuntimeError("one ChaosEngine cannot serve two networks")

    # -- RNG streams ----------------------------------------------------
    def _link(self, src: int, dst: int) -> _LinkState:
        ls = self._links.get((src, dst))
        if ls is None:
            # stable integer stream key: seeding must not depend on
            # process-randomised hashing or on link discovery order
            stream = (self.seed * 1_000_003 + src * 8191 + dst * 131) & 0xFFFFFFFF
            ls = _LinkState(random.Random(stream))
            self._links[(src, dst)] = ls
        return ls

    def _stall_rng(self, node: int) -> random.Random:
        rng = self._stall_rngs.get(node)
        if rng is None:
            rng = random.Random((self.seed * 1_000_003 + 0x57A11 + node * 977) & 0xFFFFFFFF)
            self._stall_rngs[node] = rng
        return rng

    # -- timeouts -------------------------------------------------------
    def _ideal_rtt(self, nbytes: int) -> float:
        ic = self.network.interconnect
        return (
            2.0 * ic.latency
            + nbytes / ic.bandwidth
            + ic.send_cpu_time(nbytes)
            + ic.recv_cpu_time(nbytes)
        )

    def _rto(self, ls: _LinkState, nbytes: int, attempt: int) -> float:
        rel = self.reliability
        rto = max(rel.min_rto, rel.rto_rtts * self._ideal_rtt(nbytes))
        rto *= rel.backoff ** attempt
        return rto * (1.0 + rel.jitter * ls.rng.random())

    def dsm_rto(self) -> float:
        """Quiet time after which a DSM requester idempotently re-issues
        (generous: comm-thread service and CPU contention sit inside it)."""
        rel = self.reliability
        return max(rel.min_rto, rel.dsm_rto_rtts * self._ideal_rtt(_DSM_REPLY_BYTES))

    # -- transmit path --------------------------------------------------
    def transmit(self, network, msg) -> None:
        """Take ownership of one remote frame after NIC serialisation.

        Called by :meth:`Network.send`; assigns the link sequence number,
        registers the frame for ack tracking, launches the first
        transmission attempt through the fault pipeline, and arms the
        retransmit timer.
        """
        self._bind(network)
        ls = self._link(msg.src, msg.dst)
        msg.rel_seq = ls.tx_seq
        ls.tx_seq += 1
        ls.outstanding[msg.rel_seq] = [msg, 1, self.sim.now]
        self.stats.frames += 1
        if self.stats.max_attempts < 1:
            self.stats.max_attempts = 1
        self._launch(ls, msg, attempt=0)
        self._arm_timer(ls, msg, attempt=0)

    def _channel_of(self, msg) -> str:
        tag = msg.tag
        return str(tag[0] if isinstance(tag, tuple) else tag)

    def _launch(self, ls: _LinkState, msg, attempt: int) -> None:
        """One transmission attempt: evaluate the frame's fate, then either
        lose it or schedule its arrival at the receiving link end."""
        sim = self.sim
        ic = self.network.interconnect
        tr = sim.trace
        if self.plan.flapped(msg.src, msg.dst, sim.now):
            self.stats.flap_drops += 1
            if tr is not None:
                tr.instant(CAT_CHAOS, "flap-drop", node=msg.src, tid="chaos",
                           dst=msg.dst, seq=msg.seq, rel_seq=msg.rel_seq)
                self._counters(tr)
            return  # the retransmit timer recovers

    # fate draws in a fixed order from the link stream; short-circuiting
    # after a drop is fine for determinism (same seed => same outcomes)
        delay = ic.latency
        if attempt > 0:
            # retransmits pay serialisation as wire time (NIC-offloaded)
            delay += msg.nbytes / ic.bandwidth
        corrupt = False
        f = self.plan.fault_for(msg.src, msg.dst, self._channel_of(msg))
        if f is not None:
            rng = ls.rng
            if f.drop and rng.random() < f.drop:
                self.stats.drops += 1
                if tr is not None:
                    tr.instant(CAT_CHAOS, "drop", node=msg.src, tid="chaos",
                               dst=msg.dst, seq=msg.seq, rel_seq=msg.rel_seq)
                    self._counters(tr)
                return
            if f.corrupt and rng.random() < f.corrupt:
                corrupt = True
                self.stats.corrupts += 1
            if f.delay and rng.random() < f.delay:
                delay += f.delay_s
                self.stats.delays += 1
                if tr is not None:
                    tr.instant(CAT_CHAOS, "delay", node=msg.src, tid="chaos",
                               dst=msg.dst, seq=msg.seq, spike=f.delay_s)
            if f.reorder and rng.random() < f.reorder:
                delay += f.reorder_s
                self.stats.reorders += 1
                if tr is not None:
                    tr.instant(CAT_CHAOS, "reorder-hold", node=msg.src, tid="chaos",
                               dst=msg.dst, seq=msg.seq, hold=f.reorder_s)
            if f.duplicate and rng.random() < f.duplicate:
                self.stats.dups_injected += 1
                if tr is not None:
                    tr.instant(CAT_CHAOS, "dup", node=msg.src, tid="chaos",
                               dst=msg.dst, seq=msg.seq, rel_seq=msg.rel_seq)
                t0 = sim.now
                dup = sim.timeout(delay + 0.5 * ic.latency)
                dup.add_callback(lambda ev: self._arrive(ls, msg, False, t0))
        flight_t0 = sim.now
        arrival = sim.timeout(delay)
        arrival.add_callback(lambda ev: self._arrive(ls, msg, corrupt, flight_t0))

    def _arrive(self, ls: _LinkState, msg, corrupt: bool, flight_t0: float) -> None:
        """Receiving link end: checksum, ack, dedup, resequence, deliver."""
        tr = self.sim.trace
        if corrupt:
            # checksum failure: indistinguishable from a drop to the
            # receiver's protocol layers; the sender's timer recovers
            if tr is not None:
                tr.instant(CAT_CHAOS, "corrupt-drop", node=msg.dst, tid="chaos",
                           src=msg.src, seq=msg.seq, rel_seq=msg.rel_seq)
                self._counters(tr)
            return
        seq = msg.rel_seq
        # selective ack for every intact arrival (duplicates re-ack: the
        # first ack may itself have been lost)
        self._send_ack(ls, msg)
        if seq < ls.rx_next or seq in ls.rx_buf:
            self.stats.dup_suppressed += 1
            if tr is not None:
                tr.instant(CAT_CHAOS, "dup-suppress", node=msg.dst, tid="chaos",
                           src=msg.src, seq=msg.seq, rel_seq=seq)
                self._counters(tr)
            return
        if seq > ls.rx_next:
            ls.rx_buf[seq] = (msg, flight_t0)
            self.stats.reorder_buffered += 1
            if tr is not None:
                tr.instant(CAT_CHAOS, "resequence-hold", node=msg.dst, tid="chaos",
                           src=msg.src, seq=msg.seq, rel_seq=seq, expected=ls.rx_next)
            return
        # in order: deliver, then drain the resequencing buffer
        self.network._deliver(msg, flight_t0=flight_t0)
        ls.rx_next += 1
        while ls.rx_next in ls.rx_buf:
            held, held_t0 = ls.rx_buf.pop(ls.rx_next)
            self.network._deliver(held, flight_t0=held_t0)
            ls.rx_next += 1

    # -- ack / retransmit ------------------------------------------------
    def _send_ack(self, ls: _LinkState, msg) -> None:
        """Wire-time-only control frame from ``msg.dst`` back to ``msg.src``."""
        sim = self.sim
        self.stats.acks_sent += 1
        lost = self.plan.flapped(msg.dst, msg.src, sim.now)
        if not lost:
            f = self.plan.fault_for(msg.src, msg.dst, self._channel_of(msg))
            if f is not None and f.ack_drop and ls.rng.random() < f.ack_drop:
                lost = True
        if lost:
            self.stats.ack_drops += 1
            tr = self.sim.trace
            if tr is not None:
                tr.instant(CAT_CHAOS, "ack-drop", node=msg.dst, tid="chaos",
                           src=msg.src, rel_seq=msg.rel_seq)
            return
        seq = msg.rel_seq
        back = sim.timeout(self.network.interconnect.latency)
        back.add_callback(lambda ev: ls.outstanding.pop(seq, None))

    def _arm_timer(self, ls: _LinkState, msg, attempt: int) -> None:
        sim = self.sim
        seq = msg.rel_seq
        timer = sim.timeout(self._rto(ls, msg.nbytes, attempt))

        def fire(ev):
            ent = ls.outstanding.get(seq)
            if ent is None or ent[1] != attempt + 1:
                return  # acked, or a newer attempt owns the timer
            if attempt + 1 > self.reliability.max_retries:
                raise ChaosDeliveryError(msg, ent[1])
            ent[1] += 1
            if ent[1] > self.stats.max_attempts:
                self.stats.max_attempts = ent[1]
            self.stats.retransmits += 1
            prof = sim.prof
            if prof is not None:
                # the wire sat dead from the last attempt to this timer
                prof.on_retransmit_wait(ent[2], sim.now)
            tr = sim.trace
            if tr is not None:
                tr.instant(CAT_CHAOS, "retransmit", node=msg.src, tid="chaos",
                           dst=msg.dst, seq=msg.seq, rel_seq=seq, attempt=ent[1])
                self._counters(tr)
            ent[2] = sim.now
            self._launch(ls, msg, attempt + 1)
            self._arm_timer(ls, msg, attempt + 1)

        timer.add_callback(fire)

    # -- comm-thread stalls ----------------------------------------------
    def comm_stall(self, node_id: int) -> float:
        """Seconds the comm thread should wedge before servicing the next
        frame (0.0 almost always); called once per drained message."""
        spec = self.plan.stall_for(node_id)
        if spec is None or spec.prob <= 0.0:
            return 0.0
        if self._stall_rng(node_id).random() >= spec.prob:
            return 0.0
        self.stats.comm_stalls += 1
        tr = self.sim.trace
        if tr is not None:
            tr.instant(CAT_CHAOS, "comm-stall", node=node_id, tid="chaos",
                       stall=spec.stall_s)
        return spec.stall_s

    # -- observability ----------------------------------------------------
    def _counters(self, tr) -> None:
        """One sample of the reliability counter series (``ph:"C"``)."""
        s = self.stats
        tr.counter(
            CAT_CHAOS, "reliability",
            drops=s.drops + s.flap_drops + s.corrupts,
            dups=s.dup_suppressed,
            retransmits=s.retransmits,
            outstanding=sum(len(ls.outstanding) for ls in self._links.values()),
        )

    @property
    def outstanding_frames(self) -> int:
        """Frames sent but not yet acked (drains to 0 as timers settle)."""
        return sum(len(ls.outstanding) for ls in self._links.values())

    def summary(self) -> str:
        s = self.stats
        lines = [f"chaos plan {self.plan.name!r} seed {self.seed}:"]
        for k, v in s.as_dict().items():
            if v:
                lines.append(f"  {k:<18}: {v:>8}")
        if len(lines) == 1:
            lines.append("  (nothing injected)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChaosEngine plan={self.plan.name!r} seed={self.seed} {self.stats!r}>"
