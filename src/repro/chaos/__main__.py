"""Chaos CLI: run registered apps under injected faults, verify recovery.

Usage::

    python -m repro.chaos                        # helmholtz under lossy-mix
    python -m repro.chaos cg --plan drop --nodes 8 --seed 3
    python -m repro.chaos --sweep                # the reliability gate
    python -m repro.chaos --sweep --apps helmholtz,ep --plans drop,dup
    python -m repro.chaos --list                 # show workloads
    python -m repro.chaos --list-plans           # show stock fault plans

``--sweep`` is the acceptance gate of docs/RELIABILITY.md: every selected
app runs fault-free once, then once per fault plan, asserting that

* the numerical result is **bit-identical** to the fault-free run's,
* every lost frame was recovered within the retransmit bound,
* the reliability layer left no frame unacknowledged, and
* (with ``--sanitize``) the happens-before sanitizer stays green —
  retransmission and resequencing preserve the FIFO channel order its
  edges rely on.

Exit codes: 0 — all runs recovered; 2 — a guarantee was violated.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="run registered ParADE apps under seeded fault injection "
        "and verify the reliability layer recovers them bit-identically",
    )
    parser.add_argument(
        "app", nargs="?", default="helmholtz",
        help="registered workload name (see --list); default: helmholtz",
    )
    parser.add_argument("--list", action="store_true", help="list workloads and exit")
    parser.add_argument(
        "--list-plans", action="store_true", help="list stock fault plans and exit",
    )
    parser.add_argument(
        "--plan", default="lossy-mix",
        help="fault plan for a single-app run (see --list-plans); "
        "default: lossy-mix",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="run every selected app under the fault-plan matrix and assert "
        "bit-identical recovery (the reliability acceptance gate)",
    )
    parser.add_argument(
        "--apps", default="",
        help="comma list of workloads for --sweep (default: all registered)",
    )
    parser.add_argument(
        "--plans", default="",
        help="comma list of plans for --sweep (default: the stock sweep "
        "matrix: drop, dup, reorder, latency-spike)",
    )
    parser.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="chaos seed; one (plan, seed) pair reproduces every fault "
        "bit-for-bit (default 0)",
    )
    parser.add_argument(
        "--mode", choices=("parade", "sdsm"), default="parade",
        help="hybrid ParADE translation or conventional SDSM (default parade)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="also attach the happens-before sanitizer to every chaos run "
        "and require it to stay green",
    )
    parser.add_argument(
        "--accel", action="store_true",
        help="run with the protocol accelerator on (batched notices, "
        "lock-grant piggybacking, adaptive migration + update push, "
        "fetch read-ahead) — fault-free baseline and chaos runs alike, "
        "so recovery must stay bit-identical with every optimisation "
        "message kind in flight",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="fleet worker processes for --sweep (default: PARADE_JOBS env "
        "or cpu count); results are bit-identical for any value",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the fleet run cache for --sweep (PARADE_CACHE=0 does "
        "the same)",
    )
    parser.add_argument(
        "--hier", action="store_true",
        help="run with hierarchical synchronization on (tree barrier + "
        "sharded lock managers) — recovery must stay bit-identical with "
        "relayed aggregate and forwarded lock frames in flight; composes "
        "with --accel",
    )
    return parser


def _value_digest(value) -> str:
    """Canonical digest of a program's numerical result (bit-exact)."""
    return json.dumps(value, sort_keys=True, default=repr)


def _run(entry: dict, nodes: int, mode: str, plan=None, seed: int = 0,
         sanitize: bool = False, accel: bool = False, hier: bool = False):
    from repro.runtime import ParadeRuntime

    rt = ParadeRuntime(
        n_nodes=nodes,
        mode=mode,
        pool_bytes=entry["pool_bytes"],
        protocol_accel=accel,
        hierarchical=hier,
        sanitize=True if sanitize else None,
        fault_plan=plan,
        chaos_seed=seed,
    )
    result = rt.run(entry["factory"]())
    return result, rt.sanitizer


def _check_run(result, sanitizer, base_digest: str, max_retries: int) -> List[str]:
    """Verify one chaos run's guarantees; returns failure descriptions."""
    failures = []
    if _value_digest(result.value) != base_digest:
        failures.append("numerical result differs from the fault-free run")
    cs = result.chaos_stats
    lost = cs.get("drops", 0) + cs.get("flap_drops", 0) + cs.get("corrupts", 0)
    if lost and not cs.get("retransmits", 0):
        failures.append(f"{lost} frames lost but zero retransmits recorded")
    if cs.get("max_attempts", 0) > max_retries + 1:
        failures.append(
            f"a frame took {cs['max_attempts']} attempts "
            f"(bound is {max_retries + 1})"
        )
    if sanitizer is not None and not sanitizer.ok:
        failures.append(
            f"sanitizer reported {len(sanitizer.findings)} finding(s) "
            f"under injected faults"
        )
    return failures


def _single(args, registry) -> int:
    from repro.chaos.plan import plan_by_name

    entry = registry[args.app]
    plan = plan_by_name(args.plan)
    base, _ = _run(entry, args.nodes, args.mode, accel=args.accel,
                   hier=args.hier)
    res, san = _run(entry, args.nodes, args.mode, plan=plan, seed=args.seed,
                    sanitize=args.sanitize, accel=args.accel, hier=args.hier)
    label = f"{args.app}/{args.mode}/{args.nodes}n"
    print(f"{label}: fault-free {base.elapsed * 1e3:.3f} ms -> "
          f"under {plan.name!r} {res.elapsed * 1e3:.3f} ms (virtual)")
    hot = {k: v for k, v in res.chaos_stats.items() if v}
    print(f"  chaos: {hot}")
    failures = _check_run(res, san, _value_digest(base.value),
                          plan.reliability.max_retries)
    if failures:
        for f in failures:
            print(f"  FAIL: {f}", file=sys.stderr)
        return 2
    print("  recovered bit-identically")
    return 0


def _check_record(record: dict, base_record: dict, max_retries: int) -> List[str]:
    """:func:`_check_run` over fleet records: same guarantees, checked on
    the serialized run records the sweep executor returns (the value
    comparison uses the records' SHA-256 value digests — equality of
    digests is equality of the canonical values)."""
    failures = []
    if record["value_digest"] != base_record["value_digest"]:
        failures.append("numerical result differs from the fault-free run")
    cs = record["chaos_stats"]
    lost = cs.get("drops", 0) + cs.get("flap_drops", 0) + cs.get("corrupts", 0)
    if lost and not cs.get("retransmits", 0):
        failures.append(f"{lost} frames lost but zero retransmits recorded")
    if cs.get("max_attempts", 0) > max_retries + 1:
        failures.append(
            f"a frame took {cs['max_attempts']} attempts "
            f"(bound is {max_retries + 1})"
        )
    san = record.get("sanitizer")
    if san is not None and not san["ok"]:
        failures.append(
            f"sanitizer reported {san['n_findings']} finding(s) "
            f"under injected faults"
        )
    return failures


def _sweep(args, registry) -> int:
    """The reliability gate, fleet-dispatched: the (app x plan) matrix —
    plus each app's fault-free baseline — is a basket of independent
    deterministic runs, so it fans out across ``--jobs`` worker
    processes and memoises in the run cache; results and verdicts are
    bit-identical for any job count."""
    from repro.chaos.plan import SWEEP_PLAN_NAMES, plan_by_name
    from repro.fleet import RunSpec, default_cache, run_many

    apps = [a for a in args.apps.split(",") if a] or sorted(registry)
    plan_names = [p for p in args.plans.split(",") if p] or list(SWEEP_PLAN_NAMES)
    for a in apps:
        if a not in registry:
            print(f"unknown app {a!r}; registered: {', '.join(sorted(registry))}",
                  file=sys.stderr)
            return 1
    plans = [plan_by_name(p) for p in plan_names]

    def spec(app: str, plan_name=None) -> RunSpec:
        return RunSpec.from_entry(
            app,
            registry[app],
            n_nodes=args.nodes,
            mode=args.mode,
            accel=args.accel,
            hier=args.hier,
            fault_plan=plan_name,
            chaos_seed=args.seed if plan_name else 0,
            sanitize=args.sanitize and plan_name is not None,
        )

    grid = [(app, None) for app in apps] + [
        (app, plan.name) for app in apps for plan in plans
    ]
    fleet = run_many(
        [spec(app, plan_name) for app, plan_name in grid],
        jobs=args.jobs,
        cache=default_cache(args.no_cache),
    )
    print(fleet.summary())
    records = dict(zip(grid, fleet.records))
    for rec in fleet.failures():
        print(f"FAIL: {rec['workload']} crashed: {rec.get('error')}",
              file=sys.stderr)
    if fleet.failures():
        return 2

    width = max(len(a) for a in apps)
    ok = True
    for app in apps:
        base = records[(app, None)]
        print(f"{app:<{width}}  fault-free: {base['virtual_s'] * 1e3:9.3f} ms  "
              f"({base['msgs_sent']} msgs)")
        for plan in plans:
            rec = records[(app, plan.name)]
            failures = _check_record(rec, base, plan.reliability.max_retries)
            cs = rec["chaos_stats"]
            lost = (cs.get("drops", 0) + cs.get("flap_drops", 0)
                    + cs.get("corrupts", 0))
            status = "ok" if not failures else "FAIL"
            print(f"{'':<{width}}  {plan.name:<14} {rec['virtual_s'] * 1e3:9.3f} ms  "
                  f"lost={lost:<3} retx={cs.get('retransmits', 0):<3} "
                  f"dup={cs.get('dup_suppressed', 0):<3} "
                  f"reseq={cs.get('reorder_buffered', 0):<3} {status}")
            for f in failures:
                ok = False
                print(f"{'':<{width}}    FAIL: {f}", file=sys.stderr)
    if ok:
        print("sweep: every run recovered bit-identically within the "
              "retransmit bound")
        return 0
    print("sweep: reliability guarantees violated", file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.chaos.plan import PLANS
    from repro.bench.figures import registered_programs

    registry = registered_programs()
    if args.list:
        for name, entry in sorted(registry.items()):
            print(f"{name:<12} {entry['note']}")
        return 0
    if args.list_plans:
        for name, plan in sorted(PLANS.items()):
            print(f"{name:<14} {plan.description}")
        return 0
    if args.nodes < 1:
        print(f"--nodes must be >= 1, got {args.nodes}", file=sys.stderr)
        return 1

    if args.sweep:
        return _sweep(args, registry)
    if args.app not in registry:
        print(f"unknown app {args.app!r}; registered: {', '.join(sorted(registry))}",
              file=sys.stderr)
        return 1
    try:
        return _single(args, registry)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
