"""Simulated SMP-cluster hardware substrate.

Models the paper's testbed: 8 dual-Pentium-III nodes (4×550 MHz + 4×600 MHz,
512 MB each) behind a 3Com Fast Ethernet switch and a Giganet cLAN VIA
switch.  Nodes expose CPUs as capacity-limited resources, NICs serialise
transmission, and interconnects are ``(latency, bandwidth, CPU overhead)``
cost models — the three knobs that produce every performance effect the
paper measures (lock round-trips, page-fetch latency, overlap of
communication with computation).
"""

from repro.cluster.interconnect import (
    Interconnect,
    GIGANET_VIA,
    FAST_ETHERNET_TCP,
    interconnect_by_name,
)
from repro.cluster.config import ClusterConfig, PAPER_CPU_MHZ
from repro.cluster.node import Node
from repro.cluster.network import Network, Message
from repro.cluster.cluster import Cluster

__all__ = [
    "Interconnect",
    "GIGANET_VIA",
    "FAST_ETHERNET_TCP",
    "interconnect_by_name",
    "ClusterConfig",
    "PAPER_CPU_MHZ",
    "Node",
    "Network",
    "Message",
    "Cluster",
]
