"""A simulated SMP node: CPUs, NIC, inbox."""

from __future__ import annotations

from repro.sim import Resource, Store, Timeout


class Node:
    """One SMP node of the cluster.

    * ``cpus`` — capacity-limited resource (capacity = cores);
    * ``nic_tx`` — transmit engine, capacity 1, serialises outgoing frames;
    * ``inbox`` — FIFO of delivered :class:`~repro.cluster.network.Message`
      objects, drained by the node's communication thread.
    """

    def __init__(self, sim, node_id: int, config):
        self.sim = sim
        self.id = node_id
        self.config = config
        self.cpus = Resource(sim, capacity=config.cpus_per_node, name=f"cpu[{node_id}]")
        self.nic_tx = Resource(sim, capacity=1, name=f"nic[{node_id}]")
        self.inbox = Store(sim, name=f"inbox[{node_id}]")
        self.speed_factor = config.speed_factor(node_id)
        # statistics
        self.msgs_sent = 0
        self.msgs_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.compute_time = 0.0
        self.overhead_time = 0.0

    # compute/busy_cpu are the two hottest generators in the simulator
    # (one per CPU burst); Resource.execute is inlined to save a
    # delegation frame per burst — the event sequence (request grant,
    # timeout, release) is identical.
    def compute(self, work_units: float, priority: int = 0):
        """Generator: occupy one CPU for *work_units* of application work."""
        # same float expression as config.compute_seconds, but through the
        # node's *live* speed, so a chaos NodeSlowdown window derates
        # compute bursts too (the cached factor equals the config's)
        seconds = work_units * self.config.seconds_per_work_unit / self.speed_factor
        self.compute_time += seconds
        req = self.cpus.request(priority=priority)
        prof = self.sim.prof
        if prof is None:
            yield req
            try:
                yield Timeout(self.sim, seconds)
            finally:
                self.cpus.release(req)
        else:
            from repro.profile.phases import PH_COMPUTE, PH_CPU_WAIT

            prof.push(PH_CPU_WAIT)
            try:
                yield req
            except BaseException:
                prof.pop()
                raise
            prof.replace(PH_COMPUTE, active=True)
            try:
                yield Timeout(self.sim, seconds)
            finally:
                prof.pop()
                self.cpus.release(req)

    def busy_cpu(self, seconds: float, priority: int = 0):
        """Generator: occupy one CPU for raw protocol-overhead *seconds*
        (already expressed in wall time; scaled by CPU speed)."""
        scaled = seconds / self.speed_factor
        self.overhead_time += scaled
        req = self.cpus.request(priority=priority)
        prof = self.sim.prof
        if prof is None:
            yield req
            try:
                yield Timeout(self.sim, scaled)
            finally:
                self.cpus.release(req)
        else:
            from repro.profile.phases import PH_CPU_WAIT

            # the burst itself is charged to the *enclosing* phase (diff
            # work under flush, spin under lock-wait ...), marked active
            prof.push(PH_CPU_WAIT)
            try:
                yield req
            except BaseException:
                prof.pop()
                raise
            prof.replace_busy()
            try:
                yield Timeout(self.sim, scaled)
            finally:
                prof.pop()
                self.cpus.release(req)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.id} ({self.config.cpu_mhz[self.id]} MHz x{self.config.cpus_per_node})>"
