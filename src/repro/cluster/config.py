"""Cluster configuration.

Defaults mirror the paper's testbed (§6): four dual-550 MHz and four
dual-600 MHz Pentium III nodes, 512 MB each, cLAN VIA interconnect,
Linux 2.4 SMP kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence, Tuple

from repro.cluster.interconnect import Interconnect, GIGANET_VIA

#: Paper testbed CPU speeds, node 0..7 (MHz).
PAPER_CPU_MHZ: Tuple[int, ...] = (550, 550, 550, 550, 600, 600, 600, 600)

#: Reference speed all workload cost models are expressed against.
REFERENCE_MHZ = 600


@dataclass(frozen=True)
class ClusterConfig:
    """Immutable description of a simulated cluster."""

    n_nodes: int = 8
    cpus_per_node: int = 2
    #: per-node CPU clock in MHz; padded/truncated from PAPER_CPU_MHZ
    cpu_mhz: Tuple[int, ...] = PAPER_CPU_MHZ
    interconnect: Interconnect = GIGANET_VIA
    memory_bytes: int = 512 * 1024 * 1024
    page_size: int = 4096
    #: virtual seconds per abstract "work unit" at REFERENCE_MHZ.  Workloads
    #: charge compute time in work units (≈ one double-precision flop with
    #: memory traffic folded in); 600 MHz P-III ≈ 100 Mflop/s sustained.
    seconds_per_work_unit: float = 1.0e-8
    #: fixed CPU cost of taking a page protection fault + entering the
    #: SIGSEGV handler (§5.1) — measured ~10 µs on Linux 2.4 / P-III.
    fault_overhead: float = 10e-6
    #: CPU cost of making a page twin (4 KB copy) (§5.2.1)
    twin_overhead: float = 6e-6
    #: CPU cost of computing a diff for one page (word compare)
    diff_overhead: float = 12e-6
    #: CPU cost of applying a diff at the home
    diff_apply_overhead: float = 4e-6
    #: CPU cost of an mprotect-style permission change
    mprotect_overhead: float = 2e-6

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cpus_per_node < 1:
            raise ValueError(f"cpus_per_node must be >= 1, got {self.cpus_per_node}")
        if self.page_size < 64 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page_size must be a power of two >= 64, got {self.page_size}")
        # Normalise cpu_mhz to exactly n_nodes entries.
        mhz = tuple(self.cpu_mhz)
        if len(mhz) < self.n_nodes:
            mhz = tuple(mhz[i % len(mhz)] for i in range(self.n_nodes))
        elif len(mhz) > self.n_nodes:
            mhz = mhz[: self.n_nodes]
        object.__setattr__(self, "cpu_mhz", mhz)

    def speed_factor(self, node_id: int) -> float:
        """CPU speed relative to the reference clock (<= 1 for 550 MHz)."""
        return self.cpu_mhz[node_id] / REFERENCE_MHZ

    def compute_seconds(self, work_units: float, node_id: int) -> float:
        """Virtual seconds for *work_units* of computation on *node_id*."""
        return work_units * self.seconds_per_work_unit / self.speed_factor(node_id)

    def _is_paper_cpu_pattern(self) -> bool:
        """Does ``cpu_mhz`` look like the paper testbed cycle, possibly
        truncated/padded by ``__post_init__``?  Such configs re-expand from
        the canonical 8-entry tuple on resize instead of cycling the
        truncated prefix (``with_nodes(4).with_nodes(16)`` must not turn
        the cluster into sixteen 550 MHz nodes)."""
        return self.cpu_mhz == tuple(
            PAPER_CPU_MHZ[i % len(PAPER_CPU_MHZ)] for i in range(self.n_nodes)
        )

    def with_nodes(self, n_nodes: int) -> "ClusterConfig":
        """Copy with a different node count (used by sweeps)."""
        mhz = PAPER_CPU_MHZ if self._is_paper_cpu_pattern() else self.cpu_mhz
        return replace(self, n_nodes=n_nodes, cpu_mhz=mhz)

    def with_cpus(self, cpus_per_node: int) -> "ClusterConfig":
        """Copy with a different CPU count per node (uniprocessor kernel)."""
        return replace(self, cpus_per_node=cpus_per_node)
