"""Switched network between nodes.

The switch is a full crossbar (the paper's 3Com / cLAN switches): the only
contention points are the per-node NIC transmit engines and the receiving
node's CPU.  Messages between distinct node pairs flow concurrently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(slots=True)
class Message:
    """A frame in flight (or delivered)."""

    src: int
    dst: int
    nbytes: int
    payload: Any
    tag: Any = None
    seq: int = -1
    send_time: float = 0.0
    deliver_time: float = 0.0
    #: reliability-layer per-(src, dst) sequence number; -1 outside chaos
    #: runs (the perfect network needs no ack/retransmit layer)
    rel_seq: int = -1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Msg #{self.seq} {self.src}->{self.dst} {self.nbytes}B tag={self.tag!r}>"


class Network:
    """Delivers messages between node inboxes with the configured cost model."""

    #: accounting floor: every message carries headers
    HEADER_BYTES = 42

    def __init__(self, sim, nodes: List, interconnect):
        self.sim = sim
        self.nodes = nodes
        self.interconnect = interconnect
        self._seq = itertools.count()
        # global statistics
        self.total_messages = 0
        self.total_bytes = 0
        #: per-channel accounting keyed by ``tag[0]`` (the protocol layer:
        #: "dsm", "lock", "barrier", "mpi", ...; ``None`` for untagged
        #: frames) — ``{channel: [messages, bytes]}``.  Feeds the perf
        #: harness's ``msgs_sent``/``bytes_sent`` columns and lets
        #: ``repro.trace diff`` deltas be attributed to one protocol.
        self.channel_stats: Dict[Any, List[int]] = {}

    def send(self, src: int, dst: int, nbytes: int, payload: Any, tag: Any = None):
        """Generator: transmit from the calling thread's context on *src*.

        Charges sender CPU overhead (the caller's thread stalls for it),
        serialises on the source NIC, and schedules delivery into the
        destination inbox after wire time.  Local sends bypass the NIC but
        still pay a small memcpy-scale cost.
        """
        node = self.nodes[src]
        nbytes = max(int(nbytes), 0) + self.HEADER_BYTES
        msg = Message(
            src=src,
            dst=dst,
            nbytes=nbytes,
            payload=payload,
            tag=tag,
            seq=next(self._seq),
            send_time=self.sim.now,
        )
        self.total_messages += 1
        self.total_bytes += nbytes
        chan = tag[0] if isinstance(tag, tuple) and tag else tag
        cs = self.channel_stats.get(chan)
        if cs is None:
            cs = self.channel_stats[chan] = [0, 0]
        cs[0] += 1
        cs[1] += nbytes
        node.msgs_sent += 1
        node.bytes_sent += nbytes
        tr = self.sim.trace
        if tr is not None:
            tr.instant(
                "net", "msg-send", node=src, dst=dst, nbytes=nbytes,
                tag=str(tag), seq=msg.seq,
            )
        mx = self.sim.metrics
        if mx is not None:
            mx.on_net_send(src, dst, nbytes)

        if src == dst:
            # Loopback: no NIC, just a copy cost, delivered immediately.
            # Never routed through the chaos engine — a frame that stays
            # on one node does not traverse the (faulty) interconnect.
            yield from node.busy_cpu(0.5e-6 + nbytes * 0.5e-9)
            msg.deliver_time = self.sim.now
            node.msgs_received += 1
            node.bytes_received += nbytes
            if tr is not None:
                tr.instant(
                    "net", "msg-deliver", node=dst, tid="wire",
                    src=src, nbytes=nbytes, tag=str(tag), seq=msg.seq,
                )
            if mx is not None:
                mx.on_net_deliver(src, dst, nbytes, self.sim.now - msg.send_time)
            node.inbox.put(msg)
            return msg

        ic = self.interconnect
        # Sender-side protocol processing on a CPU of the calling thread.
        yield from node.busy_cpu(ic.send_cpu_time(nbytes))
        # NIC serialisation: holds the transmit engine for nbytes/bandwidth.
        tx_time = nbytes / ic.bandwidth
        t0 = self.sim.now
        prof = self.sim.prof
        if prof is None:
            yield from node.nic_tx.execute(tx_time)
        else:
            from repro.profile.phases import PH_NET_TX

            # same event sequence as nic_tx.execute, with the engine-queue
            # wait and the transmit occupancy phased separately
            req = node.nic_tx.request()
            prof.push(PH_NET_TX)
            try:
                yield req
            except BaseException:
                prof.pop()
                raise
            prof.replace(PH_NET_TX, active=True)
            try:
                yield self.sim.timeout(tx_time)
            finally:
                prof.pop()
                node.nic_tx.release(req)
        if tr is not None:
            tr.span("net", "nic-tx", t0, node=src, dst=dst, nbytes=nbytes, seq=msg.seq)
        ch = self.sim.chaos
        if ch is not None:
            # Fault-injected path: the chaos engine owns propagation —
            # it may drop, duplicate, delay, or corrupt the frame, and its
            # ack/retransmit layer guarantees exactly-once in-order
            # delivery into the inbox via _deliver.
            ch.transmit(self, msg)
            return msg
        # Propagation through the switch: pure delay, then delivery.
        deliver = self.sim.timeout(ic.latency)
        deliver.add_callback(lambda ev: self._deliver(msg))
        return msg

    def _deliver(self, msg: Message, flight_t0: Optional[float] = None) -> None:
        """Terminal delivery into the destination inbox.

        Every remote frame — perfect-network or chaos-recovered — funnels
        through here, so receive accounting, the ``msg-deliver`` trace
        instant, and the profiler's flight interval cannot be skipped by
        any delivery path.  *flight_t0* is the virtual time the frame
        entered the switch; ``None`` means one nominal latency ago (the
        perfect-network case).
        """
        msg.deliver_time = self.sim.now
        node = self.nodes[msg.dst]
        node.msgs_received += 1
        node.bytes_received += msg.nbytes
        prof = self.sim.prof
        if prof is not None:
            # the switch-propagation leg, on the pseudo-thread "net"
            prof.on_net_flight(
                self.sim.now - self.interconnect.latency if flight_t0 is None
                else flight_t0,
                self.sim.now,
            )
        tr = self.sim.trace
        if tr is not None:
            tr.instant(
                "net", "msg-deliver", node=msg.dst, tid="wire",
                src=msg.src, nbytes=msg.nbytes, tag=str(msg.tag), seq=msg.seq,
            )
        mx = self.sim.metrics
        if mx is not None:
            mx.on_net_deliver(
                msg.src, msg.dst, msg.nbytes, self.sim.now - msg.send_time
            )
        node.inbox.put(msg)

    def recv_cpu_time(self, nbytes: int) -> float:
        """Receiver-side CPU cost for a message (charged by the comm thread)."""
        return self.interconnect.recv_cpu_time(nbytes)
