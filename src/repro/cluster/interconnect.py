"""Interconnect cost models.

A message of ``n`` bytes from A to B costs:

* ``o_send``  + ``c_byte_send * n``  CPU seconds on the sender (protocol
  processing, buffer copies — large for kernel TCP, small for user-level
  VIA);
* ``n / bandwidth`` seconds of NIC occupancy on the sender (serialisation);
* ``latency`` seconds of wire + switch time (no CPU);
* ``o_recv`` + ``c_byte_recv * n`` CPU seconds on the receiver, charged when
  the communication thread handles the message.

The numbers below are calibrated to published measurements of the paper-era
hardware: Giganet cLAN 1000 (1.25 Gb/s link, ~7.5 µs one-way user-level
latency) and switched 100 Mb/s Fast Ethernet under Linux 2.4 TCP
(~60 µs one-way latency, heavy per-byte copy cost).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """Cost model for one network technology."""

    name: str
    #: one-way wire + switch latency in seconds (no CPU involvement)
    latency: float
    #: link bandwidth in bytes/second (NIC serialisation)
    bandwidth: float
    #: fixed per-message sender CPU overhead (seconds)
    o_send: float
    #: fixed per-message receiver CPU overhead (seconds)
    o_recv: float
    #: per-byte sender CPU cost (seconds/byte) — TCP copy path
    c_byte_send: float = 0.0
    #: per-byte receiver CPU cost (seconds/byte)
    c_byte_recv: float = 0.0

    def wire_time(self, nbytes: int) -> float:
        """Serialisation + propagation time for *nbytes* (no CPU)."""
        return self.latency + nbytes / self.bandwidth

    def send_cpu_time(self, nbytes: int) -> float:
        return self.o_send + self.c_byte_send * nbytes

    def recv_cpu_time(self, nbytes: int) -> float:
        return self.o_recv + self.c_byte_recv * nbytes

    def half_round_trip(self, nbytes: int) -> float:
        """End-to-end one-way time assuming idle CPUs on both ends."""
        return self.send_cpu_time(nbytes) + self.wire_time(nbytes) + self.recv_cpu_time(nbytes)


#: Giganet cLAN 1000 VIA switch (user-level protocol: tiny CPU overheads).
GIGANET_VIA = Interconnect(
    name="cLAN-VIA",
    latency=7.5e-6,
    bandwidth=110e6,          # ~110 MB/s achievable of the 1.25 Gb/s link
    o_send=2.0e-6,
    o_recv=2.0e-6,
    c_byte_send=1.0e-9,
    c_byte_recv=1.0e-9,
)

#: 3Com switched Fast Ethernet with Linux 2.4 kernel TCP (MPI/Pro).
FAST_ETHERNET_TCP = Interconnect(
    name="FastEthernet-TCP",
    latency=60e-6,
    bandwidth=11.5e6,         # ~11.5 MB/s effective of 100 Mb/s
    o_send=30e-6,
    o_recv=30e-6,
    c_byte_send=15e-9,        # kernel copies: ~15 ns/byte on a P-III
    c_byte_recv=15e-9,
)

_REGISTRY = {
    "via": GIGANET_VIA,
    "clan": GIGANET_VIA,
    "clan-via": GIGANET_VIA,
    "tcp": FAST_ETHERNET_TCP,
    "ethernet": FAST_ETHERNET_TCP,
    "fastethernet-tcp": FAST_ETHERNET_TCP,
}


def interconnect_by_name(name: str) -> Interconnect:
    """Look up a preset interconnect by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown interconnect {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
