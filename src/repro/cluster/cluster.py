"""Top-level cluster object: simulator + nodes + network."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim import Simulator
from repro.cluster.config import ClusterConfig
from repro.cluster.network import Network
from repro.cluster.node import Node


class Cluster:
    """A simulated SMP cluster ready to host runtimes.

    >>> cluster = Cluster(ClusterConfig(n_nodes=4))
    >>> cluster.n_nodes
    4
    """

    def __init__(self, config: Optional[ClusterConfig] = None, sim: Optional[Simulator] = None):
        self.config = config or ClusterConfig()
        self.sim = sim or Simulator()
        self.nodes: List[Node] = [
            Node(self.sim, i, self.config) for i in range(self.config.n_nodes)
        ]
        self.network = Network(self.sim, self.nodes, self.config.interconnect)

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def now(self) -> float:
        return self.sim.now

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def stats(self) -> Dict[str, float]:
        """Aggregate hardware-level statistics."""
        return {
            "virtual_time": self.sim.now,
            "total_messages": self.network.total_messages,
            "total_bytes": self.network.total_bytes,
            "events_processed": self.sim.events_processed,
            "compute_time": sum(n.compute_time for n in self.nodes),
            "overhead_time": sum(n.overhead_time for n in self.nodes),
        }
