"""ParADE reproduction: an OpenMP programming environment for SMP clusters.

Reproduces Kee, Kim & Ha, "ParADE: An OpenMP Programming Environment for
SMP Cluster Systems" (SC 2003) on a deterministic discrete-event
co-simulation of the paper's testbed.

Top-level convenience imports::

    from repro import ParadeRuntime, TWO_THREAD_TWO_CPU, translate

Subpackages
-----------
``repro.sim``         discrete-event simulation kernel
``repro.cluster``     cluster hardware model (nodes, CPUs, interconnects)
``repro.mpi``         thread-safe MPI subset + communication threads
``repro.vm``          simulated virtual memory + atomic page update (§5.1)
``repro.dsm``         HLRC software DSM with migratory home (§5.2)
``repro.runtime``     the ParADE runtime: fork-join, directives, hybrid switch
``repro.translator``  OpenMP 1.0 C source-to-source translator (§4)
``repro.apps``        NAS EP/CG, Helmholtz, MD workloads
``repro.bench``       harness regenerating every evaluation figure
"""

__version__ = "0.1.0"

from repro.runtime import (
    ParadeRuntime,
    RunResult,
    ExecConfig,
    ONE_THREAD_ONE_CPU,
    ONE_THREAD_TWO_CPU,
    TWO_THREAD_TWO_CPU,
    ALL_EXEC_CONFIGS,
)
from repro.cluster import ClusterConfig, GIGANET_VIA, FAST_ETHERNET_TCP
from repro.dsm.config import DsmConfig, PARADE_DSM, KDSM_BASELINE
from repro.translator import translate

__all__ = [
    "__version__",
    "ParadeRuntime",
    "RunResult",
    "ExecConfig",
    "ONE_THREAD_ONE_CPU",
    "ONE_THREAD_TWO_CPU",
    "TWO_THREAD_TWO_CPU",
    "ALL_EXEC_CONFIGS",
    "ClusterConfig",
    "GIGANET_VIA",
    "FAST_ETHERNET_TCP",
    "DsmConfig",
    "PARADE_DSM",
    "KDSM_BASELINE",
    "translate",
]
