"""Molecular dynamics (Figure 11) — the openmp.org ``md.f`` sample.

Velocity-Verlet integration of *np* particles in a 3-D box with the
``sin²`` pair potential of md.f:

    V(d)  = sin²(min(d, π/2))
    dV(d) = 2 sin(min(d, π/2)) cos(min(d, π/2))

Forces are O(n²); per step the potential and kinetic energies are
``reduction(+: pot, kin)`` clauses.  Positions are read by every thread
(page fetches of remote blocks) while velocities/accelerations are written
only by their owner — "the amount of shared memory and inter-node
communication of MD is less than that of Helmholtz" (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.apps.nas_random import NasRandom
from repro.mpi.ops import SUM

ND = 3
BOX = 10.0
DEFAULT_DT = 1e-4
MASS = 1.0
PI2 = np.pi / 2.0

#: work units per particle pair per force evaluation
WORK_PER_PAIR = 14.0


@dataclass
class MdResult:
    pos: np.ndarray
    vel: np.ndarray
    potential: float
    kinetic: float
    steps: int

    @property
    def energy(self) -> float:
        return self.potential + self.kinetic


def initial_positions(n_particles: int, seed: int = 123456789) -> np.ndarray:
    """Deterministic initial positions in the box (NAS LCG stream)."""
    rng = NasRandom(seed)
    return (BOX * rng.generate(n_particles * ND)).reshape(n_particles, ND)


def compute_forces(
    pos: np.ndarray, vel: np.ndarray, lo: int = 0, hi: Optional[int] = None
) -> Tuple[np.ndarray, float, float]:
    """Forces + energy partials for particles [lo, hi) against all others.

    Returns (forces[hi-lo, 3], potential_partial, kinetic_partial) with
    md.f's convention pot = Σ_i Σ_{j≠i} 0.5 V(d_ij).
    """
    n = pos.shape[0]
    hi = n if hi is None else hi
    mine = pos[lo:hi]  # (k, 3)
    # pairwise displacement mine[i] - pos[j]
    rij = mine[:, None, :] - pos[None, :, :]  # (k, n, 3)
    d = np.sqrt((rij * rij).sum(axis=2))  # (k, n)
    # exclude self-interaction
    k = hi - lo
    d[np.arange(k), np.arange(lo, hi)] = np.inf
    dcap = np.minimum(d, PI2)
    sin_d = np.sin(dcap)
    pot = 0.5 * float((sin_d**2)[np.isfinite(d)].sum())
    # force magnitude: -dV/dd = -2 sin cos for d < pi/2, else 0
    dv = np.where(d < PI2, 2.0 * sin_d * np.cos(dcap), 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(np.isfinite(d) & (d > 0), dv / d, 0.0)
    forces = -(rij * scale[:, :, None]).sum(axis=1)
    kin = 0.5 * MASS * float((vel[lo:hi] ** 2).sum())
    return forces, pot, kin


def update(
    pos: np.ndarray, vel: np.ndarray, acc: np.ndarray, force: np.ndarray, dt: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """md.f velocity-Verlet update; returns new (pos, vel, acc)."""
    rmass = 1.0 / MASS
    new_pos = pos + vel * dt + 0.5 * dt * dt * acc
    new_vel = vel + 0.5 * dt * (force * rmass + acc)
    new_acc = force * rmass
    return new_pos, new_vel, new_acc


def md_reference(
    n_particles: int = 64, steps: int = 10, dt: float = DEFAULT_DT, seed: int = 123456789
) -> MdResult:
    """Sequential numpy MD."""
    pos = initial_positions(n_particles, seed)
    vel = np.zeros_like(pos)
    acc = np.zeros_like(pos)
    pot = kin = 0.0
    for _ in range(steps):
        force, pot, kin = compute_forces(pos, vel)
        pos, vel, acc = update(pos, vel, acc, force, dt)
    return MdResult(pos=pos, vel=vel, potential=pot, kinetic=kin, steps=steps)


def make_program(
    n_particles: int = 64, steps: int = 10, dt: float = DEFAULT_DT, seed: int = 123456789
):
    """Master program for the cluster runtime.

    Per step: parallel-for over owned particles computing forces (reads
    ALL positions → remote page fetches) with ``reduction(+: pot, kin)``,
    barrier, then the Verlet update of owned rows.
    """
    init = initial_positions(n_particles, seed)

    def program(ctx):
        pos_s = ctx.shared_array("md_pos", (n_particles, ND))
        vel_s = ctx.shared_array("md_vel", (n_particles, ND))
        acc_s = ctx.shared_array("md_acc", (n_particles, ND))
        state = {"pot": 0.0, "kin": 0.0}

        yield from ctx.array(pos_s).set(init)

        def body(tc, pos_s, vel_s, acc_s):
            pv, vv, av = tc.array(pos_s), tc.array(vel_s), tc.array(acc_s)
            lo, hi = tc.for_range(0, n_particles)
            k = hi - lo
            for _step in range(steps):
                pos_full = yield from pv.get()
                pos_full = np.asarray(pos_full).reshape(n_particles, ND)
                vel_mine = yield from vv.get(lo * ND, hi * ND)
                vel_mine = np.asarray(vel_mine).reshape(k, ND)
                # pad a full-shape vel for the helper's slicing convention
                force, pot_part, kin_part = compute_forces(
                    pos_full, _padded(vel_mine, lo, n_particles), lo, hi
                )
                yield from tc.compute(k * n_particles * WORK_PER_PAIR)
                pot = yield from tc.reduce_value(pot_part, SUM)
                kin = yield from tc.reduce_value(kin_part, SUM)
                # Verlet update of owned rows
                acc_mine = yield from av.get(lo * ND, hi * ND)
                acc_mine = np.asarray(acc_mine).reshape(k, ND)
                new_pos, new_vel, new_acc = update(
                    pos_full[lo:hi], vel_mine, acc_mine, force, dt
                )
                yield from pv.set(new_pos, start=lo * ND)
                yield from vv.set(new_vel, start=lo * ND)
                yield from av.set(new_acc, start=lo * ND)
                yield from tc.compute(k * 12.0)
                yield from tc.barrier()
                if tc.tid == 0:
                    state["pot"], state["kin"] = pot, kin

        yield from ctx.parallel(body, pos_s, vel_s, acc_s)
        pos = yield from ctx.array(pos_s).get()
        vel = yield from ctx.array(vel_s).get()
        return MdResult(
            pos=np.asarray(pos).reshape(n_particles, ND).copy(),
            vel=np.asarray(vel).reshape(n_particles, ND).copy(),
            potential=state["pot"],
            kinetic=state["kin"],
            steps=steps,
        )

    return program


def _padded(vel_mine: np.ndarray, lo: int, n: int) -> np.ndarray:
    """Embed owned velocity rows into a zero full-size array (the kinetic
    partial only reads rows [lo, hi))."""
    out = np.zeros((n, ND))
    out[lo : lo + vel_mine.shape[0]] = vel_mine
    return out
