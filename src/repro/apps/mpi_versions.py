"""Pure message-passing (MPI) versions of the workloads.

The paper's conclusion positions ParADE "between those of an SDSM
application and a pure MPI application"; these hand-written MPI programs
give the fast end of that bracket.  They run one rank per node directly on
the :mod:`repro.mpi` communicator — no DSM, no page traffic, explicit halo
exchanges and reductions only, exactly how an MPI programmer would write
them (and the extra effort §1 says programmers would rather avoid).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mpi.ops import SUM
from repro.apps import ep as ep_mod
from repro.apps import helmholtz as hh_mod
from repro.runtime.scheduler import static_chunk


def ep_rank_main(rc, cluster, klass: str = "T"):
    """Pure-MPI NAS EP for one rank: local tally + one Allreduce."""
    n_pairs = 1 << ep_mod.CLASSES[klass]
    lo, hi = static_chunk(0, n_pairs, rc.rank, rc.size)
    local = ep_mod.ep_segment(lo, hi - lo)
    yield from cluster.node(rc.rank).compute((hi - lo) * ep_mod.WORK_UNITS_PER_PAIR)
    merged = (local.sx, local.sy, tuple(local.counts.tolist()))
    total = yield from rc.allreduce(merged, op=SUM)
    return ep_mod.EpResult(
        sx=total[0], sy=total[1], counts=np.asarray(total[2]), n_pairs=n_pairs
    )


def helmholtz_rank_main(
    rc,
    cluster,
    n: int = 64,
    m: int = 64,
    alpha: float = hh_mod.DEFAULT_ALPHA,
    relax: float = hh_mod.DEFAULT_RELAX,
    tol: float = hh_mod.DEFAULT_TOL,
    max_iters: int = 100,
):
    """Pure-MPI Jacobi/Helmholtz for one rank.

    Row-block decomposition with explicit halo exchange (one send/recv
    pair per neighbour per iteration) and an Allreduce for the residual —
    the classic MPI stencil structure.
    """
    f, ax, ay, b = hh_mod._setup(n, m, alpha)
    lo, hi = static_chunk(1, n - 1, rc.rank, rc.size)  # interior rows
    # local block with one halo row on each side
    block = np.zeros((hi - lo + 2, m))
    up = rc.rank - 1 if rc.rank > 0 else None
    down = rc.rank + 1 if rc.rank < rc.size - 1 else None

    error = tol + 1.0
    k = 0
    while k < max_iters and error > tol:
        # halo exchange (boundary rows of the grid are fixed zeros)
        if up is not None:
            yield from rc.send(block[1].copy(), up, tag=("halo_up", k))
        if down is not None:
            yield from rc.send(block[-2].copy(), down, tag=("halo_dn", k))
        if down is not None:
            block[-1] = yield from rc.recv(source=down, tag=("halo_up", k))
        if up is not None:
            block[0] = yield from rc.recv(source=up, tag=("halo_dn", k))

        new_rows, sq = hh_mod._sweep_rows(block, f, lo, hi, ax, ay, b, relax)
        yield from cluster.node(rc.rank).compute((hi - lo) * m * hh_mod.WORK_PER_POINT)
        block[1:-1] = new_rows
        total_sq = yield from rc.allreduce(sq, op=SUM)
        error = np.sqrt(total_sq) / (n * m)
        k += 1

    # gather the solution at rank 0
    mine = block[1:-1].copy()
    parts = yield from rc.gather((lo, hi, mine), root=0)
    if rc.rank == 0:
        u = np.zeros((n, m))
        for plo, phi, rows in parts:
            u[plo:phi] = rows
        return hh_mod.HelmholtzResult(u=u, error=error, iterations=k)
    return hh_mod.HelmholtzResult(u=np.zeros((0, 0)), error=error, iterations=k)


def run_pure_mpi(rank_main_factory, n_nodes: int, cluster_config=None) -> Tuple[object, float]:
    """Run a pure-MPI program (one rank per node); returns
    (rank-0 result, elapsed virtual seconds)."""
    from repro.cluster import Cluster, ClusterConfig
    from repro.mpi import CommThread, Communicator

    cc = (cluster_config or ClusterConfig()).with_nodes(n_nodes)
    cluster = Cluster(cc)
    cts = [CommThread(node, cluster.network) for node in cluster.nodes]
    for ct in cts:
        ct.start()
    comm = Communicator(cluster, cts)
    procs = [
        cluster.sim.process(rank_main_factory(comm.rank(r), cluster), label=f"mpi[{r}]")
        for r in range(n_nodes)
    ]
    cluster.sim.run()
    for p in procs:
        if not p.ok:
            raise p.value
    elapsed = cluster.sim.now
    for ct in cts:
        ct.shutdown()
    cluster.sim.run()
    return procs[0].value, elapsed
