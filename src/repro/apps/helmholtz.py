"""Helmholtz solver (Figure 10) — the openmp.org ``jacobi.f`` sample.

Solves the Helmholtz equation  ``-u_xx - u_yy + alpha*u = f`` on an n×m
regular mesh with a Jacobi iteration and over-relaxation.  Every iteration
updates a shared error variable competitively; the ParADE translator turns
that into a reduction (one ``MPI_Allreduce``) which is why the paper's
Figure 10 is "nearly linear".

The right-hand side comes from the exact solution
``u*(x,y) = (1-x²)(1-y²)`` so convergence is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mpi.ops import SUM

#: defaults from jacobi.f
DEFAULT_ALPHA = 0.0543
DEFAULT_RELAX = 1.0
DEFAULT_TOL = 1e-10

#: work units per grid point per Jacobi sweep (5-pt stencil + error)
WORK_PER_POINT = 13.0


@dataclass
class HelmholtzResult:
    u: np.ndarray
    error: float
    iterations: int

    def solution_error(self) -> float:
        """Max-norm distance to the analytic solution."""
        n, m = self.u.shape
        x = np.linspace(-1.0, 1.0, n)[:, None]
        y = np.linspace(-1.0, 1.0, m)[None, :]
        exact = (1.0 - x * x) * (1.0 - y * y)
        return float(np.abs(self.u - exact).max())


def _setup(n: int, m: int, alpha: float):
    dx = 2.0 / (n - 1)
    dy = 2.0 / (m - 1)
    x = np.linspace(-1.0, 1.0, n)[:, None]
    y = np.linspace(-1.0, 1.0, m)[None, :]
    f = -alpha * (1.0 - x * x) * (1.0 - y * y) - 2.0 * (1.0 - x * x) - 2.0 * (1.0 - y * y)
    ax = 1.0 / (dx * dx)
    ay = 1.0 / (dy * dy)
    b = -2.0 * (ax + ay) - alpha
    return f, ax, ay, b


def _sweep_rows(u_old: np.ndarray, f: np.ndarray, lo: int, hi: int,
                ax: float, ay: float, b: float, omega: float) -> Tuple[np.ndarray, float]:
    """One Jacobi sweep restricted to interior rows [lo, hi).

    *u_old* must include rows lo-1 .. hi (the halo).  Returns the updated
    rows and the squared-residual partial sum.
    """
    # views relative to the block passed in: u_old[0] is global row lo-1
    c = u_old[1:-1, 1:-1]           # rows lo..hi-1, interior columns
    north = u_old[:-2, 1:-1]
    south = u_old[2:, 1:-1]
    west = u_old[1:-1, :-2]
    east = u_old[1:-1, 2:]
    resid = (ax * (north + south) + ay * (west + east) + b * c - f[lo:hi, 1:-1]) / b
    new_rows = u_old[1:-1].copy()
    new_rows[:, 1:-1] = c - omega * resid
    return new_rows, float((resid * resid).sum())


def helmholtz_reference(
    n: int = 64,
    m: int = 64,
    alpha: float = DEFAULT_ALPHA,
    relax: float = DEFAULT_RELAX,
    tol: float = DEFAULT_TOL,
    max_iters: int = 100,
) -> HelmholtzResult:
    """Sequential numpy Jacobi solver (jacobi.f semantics)."""
    f, ax, ay, b = _setup(n, m, alpha)
    u = np.zeros((n, m))
    error = tol + 1.0
    k = 0
    while k < max_iters and error > tol:
        uold = u.copy()
        rows, sq = _sweep_rows(uold[0:n], f, 1, n - 1, ax, ay, b, relax)
        u[1 : n - 1] = rows
        error = np.sqrt(sq) / (n * m)
        k += 1
    return HelmholtzResult(u=u, error=error, iterations=k)


def make_program(
    n: int = 64,
    m: int = 64,
    alpha: float = DEFAULT_ALPHA,
    relax: float = DEFAULT_RELAX,
    tol: float = DEFAULT_TOL,
    max_iters: int = 100,
):
    """Master program for the cluster runtime.

    OpenMP shape per iteration (jacobi.f): a parallel-for copying u→uold,
    then a parallel-for with ``reduction(+:error)`` computing the sweep.
    Interior rows are block-partitioned; each node fetches its halo rows
    from the adjacent nodes ("nodes communicate with only the adjacent
    nodes"), and the termination check uses the reduced error.
    """
    f, ax, ay, b = _setup(n, m, alpha)

    def program(ctx):
        us = ctx.shared_array("hh_u", (n, m))
        uolds = ctx.shared_array("hh_uold", (n, m))
        state = {"error": None, "iters": 0}

        def body(tc, us, uolds):
            uv = tc.array(us)
            ov = tc.array(uolds)
            lo, hi = tc.for_range(1, n - 1)  # interior rows
            error = tol + 1.0
            k = 0
            while k < max_iters and error > tol:
                # loop 1: uold = u (own rows incl. the halo rows we own)
                mine = yield from uv.get(lo * m, hi * m)
                yield from ov.set(np.asarray(mine), start=lo * m)
                yield from tc.compute((hi - lo) * m * 2.0)
                yield from tc.barrier()
                # loop 2: sweep own rows; halo rows lo-1 and hi fetched
                block = yield from ov.get((lo - 1) * m, (hi + 1) * m)
                block = np.asarray(block).reshape(hi - lo + 2, m)
                new_rows, sq = _sweep_rows(block, f, lo, hi, ax, ay, b, relax)
                yield from uv.set(new_rows, start=lo * m)
                yield from tc.compute((hi - lo) * m * WORK_PER_POINT)
                # the shared error check: reduction instead of competitive
                # critical updates (ParADE) / lock + barrier (conventional)
                total_sq = yield from tc.reduce_value(sq, SUM)
                yield from tc.barrier()
                error = np.sqrt(total_sq) / (n * m)
                k += 1
            if tc.tid == 0:
                state["error"] = error
                state["iters"] = k

        # boundary is zero already (pool starts zeroed); just run
        yield from ctx.parallel(body, us, uolds)
        final_u = yield from ctx.array(us).get()
        return HelmholtzResult(
            u=np.asarray(final_u).reshape(n, m).copy(),
            error=state["error"],
            iterations=state["iters"],
        )

    return program
