"""Benchmark applications (§6.2).

Python ports of the paper's four evaluation programs, each with a
sequential numpy reference implementation (for numerical validation) and an
OpenMP-API version that runs on the simulated cluster runtime:

* :mod:`repro.apps.ep`        — NAS EP kernel (NPB 2.3), embarrassingly parallel;
* :mod:`repro.apps.cg`        — NAS CG kernel (NPB 2.3), conjugate gradient on a
  random sparse SPD system (exact ``makea`` matrix generation);
* :mod:`repro.apps.helmholtz` — the openmp.org ``jacobi.f`` sample: Helmholtz
  equation on a regular mesh, Jacobi iteration with over-relaxation;
* :mod:`repro.apps.md`        — the openmp.org ``md.f`` sample: velocity-Verlet
  molecular dynamics with O(n²) forces.

:mod:`repro.apps.nas_random` is the NAS 46-bit linear-congruential stream
(``randlc``/``vranlc``) with vectorised block generation and O(log n)
jump-ahead, validated against the published EP reference sums.
"""

from repro.apps.nas_random import NasRandom, randlc, ipow46
from repro.apps import ep, cg, helmholtz, md

__all__ = ["NasRandom", "randlc", "ipow46", "ep", "cg", "helmholtz", "md"]
