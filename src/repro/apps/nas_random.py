"""The NAS parallel benchmarks pseudorandom stream.

NPB's ``randlc`` is the 46-bit linear congruential generator

    x_{k+1} = a * x_k  mod 2^46,      a = 5^13,  r_k = x_k * 2^-46

The reference implementation works in double-double arithmetic; we use
exact 64-bit integer arithmetic (a 46-bit modular product fits in uint64
after the usual 23-bit split) which is bit-identical.

Two idioms the benchmarks need:

* ``ipow46(a, k)`` — O(log k) jump-ahead, so thread *t* can seed itself at
  stream offset ``k`` without generating the prefix (how NPB parallelises
  EP);
* :meth:`NasRandom.generate` — vectorised block generation: seed a lane
  row of width *L* sequentially, then advance all lanes by ``a^L`` per
  step, giving the stream in order at numpy speed.

Validated against the published EP class S/W/A reference sums (see
``tests/apps/test_ep.py``).
"""

from __future__ import annotations

import numpy as np

#: multiplier 5^13
A = 1220703125
#: modulus 2^46
MOD = 1 << 46
_MASK46 = MOD - 1
_MASK23 = (1 << 23) - 1
#: default NPB seed
DEFAULT_SEED = 271828183
#: 2^-46 as float
R46 = 0.5 ** 46


def _modmul46_scalar(a: int, x: int) -> int:
    """Exact (a * x) mod 2^46 for Python ints."""
    return (a * x) & _MASK46


def randlc(x: int, a: int = A) -> tuple:
    """One step of the NAS LCG: returns (new_state, uniform double)."""
    x = _modmul46_scalar(a, x)
    return x, x * R46


def ipow46(a: int, exponent: int) -> int:
    """a^exponent mod 2^46 (jump-ahead multiplier)."""
    if exponent < 0:
        raise ValueError("negative exponent")
    return pow(a, exponent, MOD)


def _modmul46_vec(a: int, x: np.ndarray) -> np.ndarray:
    """Vectorised (a * x[i]) mod 2^46 on uint64 lanes.

    Split both operands at 23 bits; every partial product stays below
    2^47, so uint64 arithmetic is exact.
    """
    a = int(a)
    a1 = a >> 23
    a2 = a & _MASK23
    x1 = x >> np.uint64(23)
    x2 = x & np.uint64(_MASK23)
    t = (np.uint64(a1) * x2 + np.uint64(a2) * x1) & np.uint64(_MASK23)
    return ((t << np.uint64(23)) + np.uint64(a2) * x2) & np.uint64(_MASK46)


class NasRandom:
    """Stateful NAS stream with vectorised bulk generation.

    >>> rng = NasRandom()
    >>> u = rng.generate(4)          # the first four randlc outputs
    """

    #: lane width for block generation
    LANES = 4096

    def __init__(self, seed: int = DEFAULT_SEED, a: int = A):
        if not (0 < seed < MOD):
            raise ValueError(f"seed must be in (0, 2^46), got {seed}")
        self.a = int(a)
        self.state = int(seed)

    def skip(self, n: int) -> None:
        """Advance the stream by *n* outputs in O(log n)."""
        if n < 0:
            raise ValueError("cannot skip backwards")
        self.state = _modmul46_scalar(ipow46(self.a, n), self.state)

    def next(self) -> float:
        self.state, value = randlc(self.state, self.a)
        return value

    def generate(self, n: int) -> np.ndarray:
        """The next *n* uniform doubles in stream order (vectorised)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        if n == 0:
            return np.empty(0, dtype=np.float64)
        lanes = min(self.LANES, n)
        # Seed the first row x_1 .. x_lanes by jump-ahead doubling: once the
        # first m elements exist, the next m are a^m times them
        # (x_{j+m} = a^m x_j), so the row fills in O(log lanes) vector
        # steps — bit-identical to stepping sequentially, both are exact.
        row = np.empty(lanes, dtype=np.uint64)
        row[0] = _modmul46_scalar(self.a, self.state)
        m = 1
        while m < lanes:
            k = min(m, lanes - m)
            row[m : m + k] = _modmul46_vec(ipow46(self.a, m), row[:k])
            m += k
        rows = (n + lanes - 1) // lanes
        out = np.empty(rows * lanes, dtype=np.uint64)
        out[:lanes] = row
        step = ipow46(self.a, lanes)
        for r in range(1, rows):
            row = _modmul46_vec(step, row)
            out[r * lanes : (r + 1) * lanes] = row
        # new scalar state = x_n
        self.state = int(out[n - 1])
        return out[:n].astype(np.float64) * R46
