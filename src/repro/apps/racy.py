"""Seeded-racy programs: negative tests for :mod:`repro.sanitizer`.

Each program plants one deliberate, well-understood data race — the kind
of bug the DSM runtime silently tolerates (last writer wins at the home,
stale reads survive until the next consistency point) but that corrupts
results nondeterministically on a real cluster.  The sanitizer must flag
every one of them with both access sites named; ``python -m
repro.sanitizer --racy`` runs them as a self-check.

These programs are intentionally *non-conforming* OpenMP: they touch
shared data from multiple threads between barriers without ordering.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def make_write_write(n: int = 64):
    """Every thread writes the same leading elements of a shared array in
    the same interval — unordered write/write conflicts on one page."""

    def program(ctx):
        a = ctx.shared_array("racy_ww", (n,))

        def body(tc, arr):
            av = tc.array(arr)
            # all threads write [0, 8) with no synchronisation in between
            yield from av.set(np.full(8, float(tc.tid)), start=0)
            yield from tc.barrier()
            return tc.tid

        results = yield from ctx.parallel(body, a)
        return results

    return program


def make_read_write(n: int = 64):
    """Thread 0 writes a range other threads read in the same interval —
    unordered read/write conflicts (a stale-read bug on a real SDSM)."""

    def program(ctx):
        a = ctx.shared_array("racy_rw", (n,))

        def body(tc, arr):
            av = tc.array(arr)
            total = 0.0
            if tc.tid == 0:
                yield from av.set(np.ones(16), start=0)
            else:
                vals = yield from av.get(0, 16)
                total = float(vals.sum())
            yield from tc.barrier()
            return total

        results = yield from ctx.parallel(body, a)
        return results

    return program


def make_missing_barrier(n: int = 64):
    """A block-partitioned write phase followed by a full-array read phase
    with the separating barrier *omitted* — the classic dropped
    ``#pragma omp barrier`` bug."""

    def program(ctx):
        a = ctx.shared_array("racy_nb", (n,))

        def body(tc, arr):
            av = tc.array(arr)
            lo, hi = tc.for_range(0, n)
            yield from av.set(np.full(hi - lo, float(tc.tid + 1)), start=lo)
            # BUG: no tc.barrier() here
            vals = yield from av.get()
            yield from tc.barrier()
            return float(vals.sum())

        results = yield from ctx.parallel(body, a)
        return results

    return program


def racy_programs() -> Dict[str, dict]:
    """Registry of seeded-racy workloads (same shape as
    :func:`repro.bench.figures.registered_programs`)."""
    return {
        "racy-ww": {
            "factory": lambda: make_write_write(),
            "pool_bytes": 1 << 20,
            "figure": "-",
            "note": "seeded write/write race on one page",
        },
        "racy-rw": {
            "factory": lambda: make_read_write(),
            "pool_bytes": 1 << 20,
            "figure": "-",
            "note": "seeded read/write race (stale read)",
        },
        "racy-nobar": {
            "factory": lambda: make_missing_barrier(),
            "pool_bytes": 1 << 20,
            "figure": "-",
            "note": "missing barrier between write and read phases",
        },
    }
