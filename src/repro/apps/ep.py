"""NAS EP kernel (NPB 2.3) — "embarrassingly parallel" (Figure 9).

Generates 2^M pairs of uniform deviates with the NAS LCG, transforms the
accepted pairs to Gaussians by the Marsaglia polar method, and tallies the
sums and the annulus counts.  Each thread seeds its own stream segment by
jump-ahead, so the only inter-node communication is the final reduction —
the paper's archetype of a workload where ParADE is "highly scalable".

Verification constants are the published NPB reference sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.nas_random import NasRandom, DEFAULT_SEED
from repro.mpi.ops import SUM

#: NPB class name -> M (number of pairs = 2^M)
CLASSES: Dict[str, int] = {"T": 16, "S": 24, "W": 25, "A": 28, "B": 30}

#: published reference sums (sx, sy) per class
REFERENCE: Dict[str, Tuple[float, float]] = {
    "S": (-3.247834652034740e3, -6.958407078382297e3),
    "W": (-2.863319731645753e3, -6.320053679109499e3),
    "A": (-4.295875165629892e3, -1.580732573678431e4),
}

#: simulator cost model: work units charged per generated pair
WORK_UNITS_PER_PAIR = 60.0

#: vectorised chunk size (pairs) per compute burst
CHUNK_PAIRS = 1 << 16


@dataclass
class EpResult:
    sx: float
    sy: float
    counts: np.ndarray
    n_pairs: int

    def verify(self, klass: str, rtol: float = 1e-8) -> bool:
        """Check against the published NPB sums (classes S/W/A)."""
        if klass not in REFERENCE:
            raise KeyError(f"no reference sums for class {klass!r}")
        rx, ry = REFERENCE[klass]
        return (
            abs(self.sx - rx) <= rtol * abs(rx)
            and abs(self.sy - ry) <= rtol * abs(ry)
        )


def _tally(u: np.ndarray) -> Tuple[float, float, np.ndarray]:
    """Tally one chunk of the stream: u holds 2m uniforms (pairs interleaved)."""
    x = 2.0 * u[0::2] - 1.0
    y = 2.0 * u[1::2] - 1.0
    t = x * x + y * y
    acc = t <= 1.0
    tt = t[acc]
    f = np.sqrt(-2.0 * np.log(tt) / tt)
    gx = x[acc] * f
    gy = y[acc] * f
    ik = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    counts = np.bincount(ik, minlength=10)[:10].astype(np.float64)
    return float(gx.sum()), float(gy.sum()), counts


def ep_segment(first_pair: int, n_pairs: int, seed: int = DEFAULT_SEED) -> EpResult:
    """Tally pairs [first_pair, first_pair + n_pairs) of the global stream."""
    rng = NasRandom(seed)
    rng.skip(2 * first_pair)
    sx = sy = 0.0
    counts = np.zeros(10)
    remaining = n_pairs
    while remaining > 0:
        m = min(CHUNK_PAIRS, remaining)
        dx, dy, dc = _tally(rng.generate(2 * m))
        sx += dx
        sy += dy
        counts += dc
        remaining -= m
    return EpResult(sx, sy, counts, n_pairs)


def ep_reference(klass: str = "S", seed: int = DEFAULT_SEED) -> EpResult:
    """Sequential numpy reference for a whole class."""
    n = 1 << CLASSES[klass]
    return ep_segment(0, n, seed=seed)


# ----------------------------------------------------------------------
# OpenMP version for the simulated cluster
# ----------------------------------------------------------------------
def make_program(klass: str = "T", seed: int = DEFAULT_SEED):
    """Build the master program ``program(ctx) -> EpResult``.

    OpenMP shape: one ``parallel`` region; the per-thread tallies are
    ``reduction(+: sx, sy, q[0..9])`` — exactly the clause ParADE maps to a
    single merged ``MPI_Allreduce`` (§4.2: multiple reduction variables
    merged into a structure-type value).
    """
    n_pairs = 1 << CLASSES[klass]

    def program(ctx):
        sx = ctx.shared_scalar("ep_sx")
        sy = ctx.shared_scalar("ep_sy")
        q = ctx.shared_array("ep_q", (10,), force_object=(ctx.runtime.mode == "parade"))

        def body(tc, sx, sy, q):
            lo, hi = tc.for_range(0, n_pairs)
            local = ep_segment(lo, hi - lo, seed=seed)
            yield from tc.compute((hi - lo) * WORK_UNITS_PER_PAIR)
            if tc.runtime.mode == "parade":
                # merged reduction: (sx, sy, counts-tuple) in ONE collective
                merged = (local.sx, local.sy, tuple(local.counts.tolist()))

                def inter(part):
                    total = yield from tc.team.rank_comm.allreduce(part, op=SUM)
                    tc.scalar(sx).raw_set(total[0])
                    tc.scalar(sy).raw_set(total[1])
                    tc.array(q).raw()[:] = np.asarray(total[2])
                    return total

                yield from tc.team.combining(tc._key("ep_red"), merged, SUM, inter)
            else:
                # conventional translation: three lock-guarded accumulations
                yield from tc.reduce_into(sx, local.sx, SUM)
                yield from tc.reduce_into(sy, local.sy, SUM)
                qv = tc.array(q)
                lock_id = tc.runtime.lock_id_for("ep_q")
                yield from tc.dsm_node.lock_acquire(lock_id)
                try:
                    cur = yield from qv.get()
                    yield from qv.set(np.asarray(cur) + local.counts)
                finally:
                    yield from tc.dsm_node.lock_release(lock_id)
                yield from tc.barrier()

        yield from ctx.parallel(body, sx, sy, q)
        final_sx = yield from ctx.scalar(sx).get()
        final_sy = yield from ctx.scalar(sy).get()
        counts = yield from ctx.array(q).get()
        return EpResult(float(final_sx), float(final_sy), np.asarray(counts).copy(), n_pairs)

    return program
