"""CLI for the fleet executor.

``python -m repro.fleet --selfcheck``
    The fleet-smoke gate (see ``make fleet-smoke``): asserts the three
    core contracts on tiny workloads — (1) a spawned worker run is
    bit-identical to an in-process run, (2) a warm cache serves every
    spec with zero re-simulations, (3) a poisoned source digest misses.

``python -m repro.fleet --bench [--jobs N] [--out BENCH_parade.json]``
    Measures the smoke basket sequentially, in parallel, and warm-cache,
    and records the wall-clocks + speedups as the ``fleet`` section of
    the perf report (schema 2, with ``run_meta`` fingerprints).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import List

from .cache import RunCache
from .executor import resolve_jobs, run_many
from .spec import RunSpec, deterministic_view, merged_histograms

#: tiny but non-trivial basket exercising observers + both protocol modes
_CHECK_SPECS = [
    RunSpec(
        workload="helmholtz",
        factory=("repro.apps.helmholtz", "make_program"),
        factory_kwargs={"n": 16, "m": 16, "max_iters": 2},
        n_nodes=2,
        pool_bytes=1 << 20,
        profile=True,
        trace=True,
        metrics=True,
    ),
    RunSpec(
        workload="cg",
        factory=("repro.apps.cg", "make_program"),
        factory_kwargs={"klass": "T", "niter": 1},
        n_nodes=2,
        pool_bytes=1 << 22,
        accel=True,
        metrics=True,
    ),
]


def _selfcheck(jobs: int) -> int:
    from .spec import execute

    print(f"fleet selfcheck: {len(_CHECK_SPECS)} specs, jobs={jobs}")

    # 1. worker-vs-in-process bit identity
    seq = run_many(_CHECK_SPECS, jobs=1)
    par = run_many(_CHECK_SPECS, jobs=max(2, jobs))
    for a, b in zip(seq.records, par.records):
        va, vb = deterministic_view(a), deterministic_view(b)
        if va != vb:
            print(f"FAIL: {a['workload']}: worker record differs from in-process",
                  file=sys.stderr)
            return 1
    if merged_histograms(seq.records) != merged_histograms(par.records):
        print("FAIL: merged histograms differ across jobs", file=sys.stderr)
        return 1
    direct = deterministic_view(execute(_CHECK_SPECS[0]))
    if direct != deterministic_view(seq.records[0]):
        print("FAIL: run_many record differs from direct execute()",
              file=sys.stderr)
        return 1
    print("  worker == in-process: ok (records + merged histograms bit-identical)")

    # 2. warm cache serves everything, zero re-simulations
    with tempfile.TemporaryDirectory(prefix="parade-cache-") as tmp:
        cache = RunCache(root=tmp)
        cold = run_many(_CHECK_SPECS, jobs=1, cache=cache)
        warm = run_many(_CHECK_SPECS, jobs=1, cache=cache)
        if warm.n_executed != 0 or warm.n_hits != len(_CHECK_SPECS):
            print(f"FAIL: warm cache re-simulated ({warm.summary()})",
                  file=sys.stderr)
            return 1
        for a, b in zip(cold.records, warm.records):
            if deterministic_view(a) != deterministic_view(b):
                print(f"FAIL: {a['workload']}: cached record differs",
                      file=sys.stderr)
                return 1
        print(f"  warm cache: ok ({warm.summary()})")

        # 3. poisoned source digest must miss
        poisoned = RunCache(root=tmp, source="0" * 64)
        stale = run_many(_CHECK_SPECS, jobs=1, cache=poisoned)
        if stale.n_hits != 0:
            print("FAIL: poisoned source digest produced cache hits",
                  file=sys.stderr)
            return 1
        print("  poisoned digest: ok (all misses)")

    print("fleet selfcheck: all contracts hold")
    return 0


def _bench(jobs: int, out: str, no_cache: bool) -> int:
    """Record sequential / parallel / warm-cache wall-clocks for the
    smoke basket into the perf report's ``fleet`` section."""
    from repro.bench import perf

    specs: List[RunSpec] = [
        RunSpec.from_entry(name, entry, n_nodes=4)
        for name, entry in perf._smoke_basket().items()
    ]
    jobs = max(2, jobs)

    t0 = time.perf_counter()
    seq = run_many(specs, jobs=1)
    wall_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = run_many(specs, jobs=jobs)
    wall_par = time.perf_counter() - t0

    for a, b in zip(seq.records, par.records):
        assert deterministic_view(a) == deterministic_view(b), (
            f"{a['workload']}: jobs={jobs} diverged from jobs=1"
        )

    with tempfile.TemporaryDirectory(prefix="parade-cache-") as tmp:
        cache = RunCache(root=tmp)
        run_many(specs, jobs=1, cache=cache)
        t0 = time.perf_counter()
        warm = run_many(specs, jobs=1, cache=cache)
        wall_warm = time.perf_counter() - t0
        assert warm.n_executed == 0, "warm cache re-simulated"

    section = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "meta": perf.run_meta(4, smoke=True),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "n_specs": len(specs),
        "wall_seq_s": round(wall_seq, 4),
        "wall_par_s": round(wall_par, 4),
        "wall_warm_s": round(wall_warm, 4),
        "parallel_speedup": round(wall_seq / wall_par, 3) if wall_par else 0.0,
        "warm_cache_speedup": round(wall_seq / wall_warm, 1) if wall_warm else 0.0,
        "bit_identical": True,
    }
    report = perf.load_report(out) or {"schema": perf.SCHEMA, "label": "parade-bench"}
    report["schema"] = perf.SCHEMA
    report["fleet"] = section
    perf.write_report(out, report)
    print(json.dumps(section, indent=2))
    print(
        f"fleet bench: seq {wall_seq:.2f}s -> jobs={jobs} {wall_par:.2f}s "
        f"({section['parallel_speedup']}x, cpu_count={os.cpu_count()}) -> "
        f"warm cache {wall_warm * 1e3:.0f}ms ({section['warm_cache_speedup']}x); "
        f"virtual-time results bit-identical"
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="multiprocess sweep executor + content-addressed run cache",
    )
    ap.add_argument("--selfcheck", action="store_true",
                    help="assert worker-identity / warm-cache / poisoned-digest "
                         "contracts on tiny workloads")
    ap.add_argument("--bench", action="store_true",
                    help="measure seq/parallel/warm-cache walls for the smoke "
                         "basket and record the 'fleet' report section")
    ap.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: PARADE_JOBS or cpu count)")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the run cache")
    ap.add_argument("--out", default="BENCH_parade.json",
                    help="perf report path for --bench")
    args = ap.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    if args.selfcheck:
        return _selfcheck(jobs)
    if args.bench:
        return _bench(jobs, args.out, args.no_cache)
    ap.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
