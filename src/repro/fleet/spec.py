"""Run specifications: the serializable unit of work the fleet executes.

A :class:`RunSpec` is everything one simulation run depends on, written
down as plain JSON-serializable data: the workload factory (a dotted
``module:function`` reference plus keyword arguments — never a closure,
so a spec survives ``multiprocessing`` spawn pickling and hashing), the
cluster/runtime configuration, the protocol flags, the fault plan and
chaos seed, and which observers to attach.  Two properties follow:

* **spawn safety** — a worker process reconstructs the run from the spec
  alone, importing :mod:`repro` fresh; nothing leaks in from the parent
  except the spec, so a worker run is bit-identical to an in-process run
  (:func:`repro.fleet.executor.run_many` and the fleet self-check assert
  this, and `tests/test_fleet.py` pins it);
* **content addressing** — :meth:`RunSpec.canonical` is a deterministic
  serialization, which, hashed together with the source-tree digest,
  becomes the run-cache key (:mod:`repro.fleet.cache`).

:func:`execute` is the single simulation driver both sides share: the
in-process ``jobs=1`` path and the worker processes call the same
function, so there is exactly one definition of what a run measures.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: bump when the record layout changes incompatibly — part of the cache
#: key, so stale cache entries become misses instead of wrong shapes
RECORD_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """One deterministic simulation run, as data.

    ``factory`` names the program factory as ``(module, function)``;
    ``factory_kwargs`` are its keyword arguments (JSON scalars only).
    The observer flags (``profile`` / ``trace`` / ``metrics``) never
    change virtual-time results — the executor asserts as much by
    comparing the observed run against the timed runs (see
    :func:`execute`).
    """

    workload: str
    factory: Tuple[str, str]
    factory_kwargs: Dict[str, object] = field(default_factory=dict)
    n_nodes: int = 4
    pool_bytes: int = 1 << 22
    mode: str = "parade"
    exec_name: str = "2Thread-2CPU"
    #: protocol accelerator / hierarchical sync / happens-before sanitizer
    accel: bool = False
    hier: bool = False
    sanitize: bool = False
    #: fault injection: stock plan name (``repro.chaos.plan.PLANS``) + seed
    fault_plan: Optional[str] = None
    chaos_seed: int = 0
    #: timed runs (best-of wall clock); virtual results are asserted
    #: identical across repeats
    repeat: int = 1
    #: observers: virtual-time phase breakdown, trace digest, live metrics
    profile: bool = False
    trace: bool = False
    metrics: bool = False
    metrics_period: float = 1e-4
    #: attach observers to the timed run(s) instead of one extra untimed
    #: run — used where the observed run *is* the measurement (scale
    #: sweep points, the metrics smoke gate)
    observe_timed: bool = False

    def canonical(self) -> str:
        """Deterministic serialization — the cache-key material."""
        return json.dumps(asdict(self), sort_keys=True)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical form (without the source digest —
        see :meth:`repro.fleet.cache.RunCache.key` for the full key)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    @classmethod
    def from_dict(cls, d: Dict) -> "RunSpec":
        d = dict(d)
        d["factory"] = tuple(d["factory"])
        return cls(**d)

    @classmethod
    def from_entry(cls, name: str, entry: Dict, **kw) -> "RunSpec":
        """Build a spec from a workload-registry entry (the dicts of
        :func:`repro.bench.figures.registered_programs` and the perf
        baskets), which carry ``factory_ref`` / ``factory_kwargs`` /
        ``pool_bytes``."""
        kw.setdefault("pool_bytes", entry["pool_bytes"])
        return cls(
            workload=name,
            factory=tuple(entry["factory_ref"]),
            factory_kwargs=dict(entry["factory_kwargs"]),
            **kw,
        )


def resolve_factory(ref: Tuple[str, str], kwargs: Dict) -> Callable:
    """Import ``module:function`` and bind *kwargs*; returns a zero-arg
    program factory."""
    module = importlib.import_module(ref[0])
    fn = getattr(module, ref[1])
    return lambda: fn(**kwargs)


def build_runtime(spec: RunSpec, observe: bool = False):
    """Construct the :class:`~repro.runtime.ParadeRuntime` a spec
    describes (metrics attached only when *observe* asks for them)."""
    from repro.runtime import ALL_EXEC_CONFIGS, ParadeRuntime

    ec = next((e for e in ALL_EXEC_CONFIGS if e.name == spec.exec_name), None)
    if ec is None:
        names = ", ".join(e.name for e in ALL_EXEC_CONFIGS)
        raise ValueError(f"unknown exec config {spec.exec_name!r}; use one of: {names}")
    plan = None
    if spec.fault_plan is not None:
        from repro.chaos.plan import plan_by_name

        plan = plan_by_name(spec.fault_plan)
    return ParadeRuntime(
        n_nodes=spec.n_nodes,
        exec_config=ec,
        mode=spec.mode,
        pool_bytes=spec.pool_bytes,
        protocol_accel=spec.accel,
        hierarchical=spec.hier,
        sanitize=True if spec.sanitize else None,
        fault_plan=plan,
        chaos_seed=spec.chaos_seed,
        metrics=bool(observe and spec.metrics),
        metrics_period=spec.metrics_period,
    )


def value_digest(value) -> str:
    """SHA-256 over the canonical JSON form of a program result (the
    same canonicalisation the chaos gate and the scale sweep use, so
    digests are comparable across drivers)."""
    canon = json.dumps(value, sort_keys=True, default=repr)
    return hashlib.sha256(canon.encode()).hexdigest()


#: record keys that legitimately differ between two executions of the
#: same spec (host noise / cache bookkeeping); everything else is a
#: deterministic run invariant
NONDETERMINISTIC_KEYS = ("wall_s", "cached")


def deterministic_view(record: Dict) -> Dict:
    """A record with the host-noise keys stripped — two executions of
    the same spec (in-process, worker, parallel, cached) must agree on
    this view byte-for-byte."""
    return {k: v for k, v in record.items() if k not in NONDETERMINISTIC_KEYS}


def _trace_digest(events) -> str:
    h = hashlib.sha256()
    for ev in events:
        h.update(json.dumps(ev.as_dict(), sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()


def _single_run(spec: RunSpec, observe: bool) -> Dict:
    """One simulation run; returns the full record (observer sections
    included only when *observe*)."""
    rt = build_runtime(spec, observe=observe)
    rec = prof = None
    if observe and spec.trace:
        from repro.trace import TraceRecorder

        rec = TraceRecorder(rt.sim, capacity=1 << 18, queue_stride=64)
    if observe and spec.profile:
        from repro.profile import Profiler

        prof = Profiler(rt.sim, record_intervals=False)
    factory = resolve_factory(spec.factory, spec.factory_kwargs)
    t0 = time.perf_counter()
    res = rt.run(factory())
    wall = time.perf_counter() - t0

    out: Dict[str, object] = {
        "ok": True,
        "workload": spec.workload,
        "record_version": RECORD_VERSION,
        "wall_s": wall,
        "virtual_s": res.elapsed,
        "region_time": res.region_time,
        "events": int(res.cluster_stats.get("events_processed", 0)),
        "msgs_sent": int(res.cluster_stats.get("total_messages", 0)),
        "bytes_sent": int(res.cluster_stats.get("total_bytes", 0)),
        "faults": int(
            res.dsm_stats.get("read_faults", 0) + res.dsm_stats.get("write_faults", 0)
        ),
        "cluster_stats": res.cluster_stats,
        "dsm_stats": res.dsm_stats,
        "mpi_stats": res.mpi_stats,
        "chaos_stats": res.chaos_stats,
        "epochs": rt.dsm.nodes[0]._barrier_epoch,
        "master_stats": rt.dsm.nodes[0].stats.as_dict(),
        "value_digest": value_digest(res.value),
    }
    if spec.sanitize:
        san = rt.sanitizer
        out["sanitizer"] = {
            "ok": san.ok,
            "n_findings": len(san.findings),
            "summary": san.summary(),
            "findings": [
                f"[{f.kind} @t={f.time:.6g}] {f.message}" for f in san.findings[:50]
            ],
        }
    if prof is not None:
        from repro.profile.phases import PH_BARRIER, PH_LOCK_WAIT

        prof.finalize()
        totals = prof.totals()
        out["phases"] = prof.group_fractions(ndigits=4)
        out["thread_s"] = sum(totals.values())
        out["barrier_s"] = totals.get(PH_BARRIER, 0.0)
        out["lock_s"] = totals.get(PH_LOCK_WAIT, 0.0)
    if rec is not None:
        out["trace"] = {
            "n_events": rec.n_emitted,
            "digest": _trace_digest(rec.events),
        }
    if rt.metrics is not None:
        out["metrics"] = {
            "n_samples": rt.metrics.n_samples,
            "dump": rt.metrics.dump(),
        }
    return out


#: deterministic run invariants compared across repeats / observed runs
_REPEAT_INVARIANTS = ("virtual_s", "events", "msgs_sent", "bytes_sent", "value_digest")


def execute(spec: RunSpec) -> Dict:
    """Run one spec to completion; the function both the in-process path
    and the spawn workers share.

    Runs ``spec.repeat`` timed repeats (best-of wall clock) and asserts
    the virtual results are identical across them; when observers are
    requested and ``observe_timed`` is off, one extra *untimed* observed
    run collects phases / trace digest / metrics, and its virtual
    results are asserted identical to the timed runs' — the
    zero-perturbation contract of the observability stack, re-checked on
    every fleet run.
    """
    wants_observers = spec.profile or spec.trace or spec.metrics
    best: Optional[Dict] = None
    for _ in range(max(1, spec.repeat)):
        rec = _single_run(spec, observe=wants_observers and spec.observe_timed)
        if best is None:
            best = rec
        else:
            for key in _REPEAT_INVARIANTS:
                if rec[key] != best[key]:
                    raise AssertionError(
                        f"{spec.workload}: non-deterministic run — {key} "
                        f"{best[key]!r} vs {rec[key]!r} across repeats"
                    )
            if rec["wall_s"] < best["wall_s"]:
                best = rec
    assert best is not None
    if wants_observers and not spec.observe_timed:
        obs = _single_run(spec, observe=True)
        for key in _REPEAT_INVARIANTS:
            if obs[key] != best[key]:
                raise AssertionError(
                    f"{spec.workload}: observers perturbed the run — {key} "
                    f"{best[key]!r} timed vs {obs[key]!r} observed"
                )
        for key in ("phases", "thread_s", "barrier_s", "lock_s", "trace", "metrics"):
            if key in obs:
                best[key] = obs[key]
    return best


def execute_safely(spec: RunSpec) -> Dict:
    """:func:`execute` with per-spec failure isolation: an exception
    becomes an ``ok: False`` record instead of sinking the whole fleet."""
    try:
        return execute(spec)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        import traceback

        return {
            "ok": False,
            "workload": spec.workload,
            "record_version": RECORD_VERSION,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=20),
        }


def make_entry(ref: Tuple[str, str], kwargs: Dict, pool_bytes: int, note: str,
               **extra) -> Dict:
    """A workload-registry entry carrying both the serializable factory
    reference (for the fleet) and the bound ``factory`` callable (for
    in-process drivers).  Shared by the perf baskets and the figure
    registry so every registered workload is fleet-dispatchable."""
    mod, fn = ref
    entry = {
        "factory_ref": (mod, fn),
        "factory_kwargs": dict(kwargs),
        "factory": lambda m=mod, f=fn, kw=kwargs: resolve_factory((m, f), kw)(),
        "pool_bytes": pool_bytes,
        "note": note,
    }
    entry.update(extra)
    return entry


def merged_histograms(records: List[Dict]) -> Dict[str, Dict]:
    """Fold the metrics histograms of every record into one exact merged
    set, keyed ``name{label=value,...}`` in sorted order.

    Histogram merge is integer bucket addition (see
    :class:`repro.metrics.registry.Histogram`), and records arrive in
    spec order regardless of which worker ran them, so the merged result
    is bit-identical for any ``jobs`` value.
    """
    from repro.metrics.registry import Histogram, make_labels

    merged: Dict[str, Histogram] = {}
    for rec in records:
        m = rec.get("metrics") if rec.get("ok") else None
        if not m:
            continue
        for inst in m["dump"]["instruments"]:
            if inst.get("kind") != "histogram":
                continue
            labels = make_labels(inst.get("labels", {}))
            key = inst["name"] + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            h = Histogram.from_dict(inst["name"], labels, inst)
            if key in merged:
                merged[key].merge(h)
            else:
                merged[key] = h
    return {key: merged[key].as_dict() for key in sorted(merged)}
