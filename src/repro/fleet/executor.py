"""The multiprocess sweep executor.

:func:`run_many` takes a list of :class:`~repro.fleet.spec.RunSpec` and
returns one record per spec **in spec order**, regardless of how many
worker processes ran them or in what order they finished.  Records for
identical inputs are bit-identical whatever the ``jobs`` value, because:

* workers are *spawned* (never forked): each one imports :mod:`repro`
  fresh and reconstructs the run from the pickled spec alone, exactly
  like a new interpreter would — there is no parent state to inherit
  and therefore none to diverge on;
* both sides run the same driver, :func:`repro.fleet.spec.execute`;
* the merge is a plain reorder-by-index, and histogram merging
  (:func:`repro.fleet.spec.merged_histograms`) is exact integer bucket
  addition applied in spec order.

The only per-record fields allowed to differ between runs are the
wall-clock and cache-bookkeeping keys
(:data:`repro.fleet.spec.NONDETERMINISTIC_KEYS`); strip them with
:func:`repro.fleet.spec.deterministic_view` before comparing.

Failure isolation: a spec that raises becomes an ``ok: False`` record
carrying the error and traceback; the other specs complete normally.

Job-count resolution: explicit ``jobs=`` argument, else ``PARADE_JOBS``,
else ``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from .cache import RunCache
from .spec import RunSpec, execute_safely

__all__ = ["resolve_jobs", "run_many", "FleetReport"]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit > ``PARADE_JOBS`` env > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("PARADE_JOBS")
        if env:
            jobs = int(env)
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _worker_main(payload: Tuple[int, Dict]) -> Tuple[int, Dict]:
    """Top-level (spawn-picklable) worker: rebuild the spec, run it,
    return ``(index, record)`` so the parent can restore spec order."""
    index, spec_dict = payload
    spec = RunSpec.from_dict(spec_dict)
    return index, execute_safely(spec)


@dataclass
class FleetReport:
    """What a fleet run produced: records in spec order plus the
    bookkeeping every gate prints."""

    records: List[Dict]
    jobs: int
    wall_s: float
    n_hits: int = 0
    n_executed: int = 0
    n_failed: int = 0
    cache_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    def failures(self) -> List[Dict]:
        return [r for r in self.records if not r.get("ok")]

    def summary(self) -> str:
        """One line for gate logs — always includes the cache counters
        so cache poisoning is visible in CI output."""
        cc = self.cache_counters or {"hits": 0, "misses": 0, "stores": 0}
        return (
            f"fleet: {len(self.records)} specs, jobs={self.jobs}, "
            f"executed={self.n_executed}, failed={self.n_failed}, "
            f"cache hits={cc['hits']} misses={cc['misses']} "
            f"stores={cc['stores']}, wall={self.wall_s * 1e3:.1f} ms"
        )


def run_many(specs: List[RunSpec], jobs: Optional[int] = None,
             cache: Optional[RunCache] = None) -> FleetReport:
    """Execute *specs*, fanning cache misses across ``jobs`` spawned
    workers; returns a :class:`FleetReport` with records in spec order.

    With ``cache`` set, each spec is looked up first and only the misses
    are simulated (hits carry ``cached: True``); successful fresh
    records are stored back.  With ``jobs=1`` — or when at most one spec
    actually needs simulating — everything runs in-process, which is
    bit-identical to the worker path by construction (the fleet
    self-check re-asserts it, see ``python -m repro.fleet --selfcheck``).
    """
    jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()
    records: List[Optional[Dict]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec]] = []
    n_hits = 0

    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            records[i] = hit
            n_hits += 1
        else:
            pending.append((i, spec))

    if len(pending) <= 1 or jobs == 1:
        for i, spec in pending:
            records[i] = execute_safely(spec)
    else:
        ctx = multiprocessing.get_context("spawn")
        payloads = [(i, asdict(spec)) for i, spec in pending]
        with ctx.Pool(processes=min(jobs, len(pending))) as pool:
            for i, record in pool.imap_unordered(_worker_main, payloads):
                records[i] = record

    if cache is not None:
        by_index = dict(pending)
        for i, spec in by_index.items():
            rec = records[i]
            if rec is not None and rec.get("ok"):
                cache.put(spec, rec)

    done: List[Dict] = [r for r in records if r is not None]
    assert len(done) == len(specs)
    return FleetReport(
        records=done,
        jobs=jobs,
        wall_s=time.perf_counter() - t0,
        n_hits=n_hits,
        n_executed=len(pending),
        n_failed=sum(1 for r in done if not r.get("ok")),
        cache_counters=cache.counters() if cache is not None else {},
    )
