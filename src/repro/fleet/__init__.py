"""repro.fleet — multiprocess sweep executor + content-addressed run cache.

Every evaluation gate in this repo is a basket of independent
deterministic runs; the fleet fans them across worker processes
(:func:`run_many`) and memoises them on disk (:class:`RunCache`) keyed
by (run spec, source-tree digest), so sweeps use every core and
unchanged gates cost ~0 s on re-run — while every virtual-time number
stays bit-identical to a sequential in-process run.

See docs/FLEET.md for the executor model, the cache-key anatomy, and
the ``--jobs`` / ``PARADE_JOBS`` / ``PARADE_CACHE`` knobs.
"""

from .cache import RunCache, cache_enabled, default_cache, source_digest
from .executor import FleetReport, resolve_jobs, run_many
from .spec import (
    RunSpec,
    build_runtime,
    deterministic_view,
    execute,
    execute_safely,
    make_entry,
    merged_histograms,
    resolve_factory,
    value_digest,
)

__all__ = [
    "FleetReport",
    "RunCache",
    "RunSpec",
    "build_runtime",
    "cache_enabled",
    "default_cache",
    "deterministic_view",
    "execute",
    "execute_safely",
    "make_entry",
    "merged_histograms",
    "resolve_factory",
    "resolve_jobs",
    "run_many",
    "source_digest",
    "value_digest",
]
