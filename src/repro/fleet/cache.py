"""Content-addressed run cache.

Every fleet run is pure: the record is a function of the
:class:`~repro.fleet.spec.RunSpec` and of the simulator source code.
So the cache key is simply

    SHA-256( spec.canonical()  +  source-tree digest  +  record version )

where the source-tree digest hashes the contents of every ``*.py`` file
under the installed ``repro`` package in sorted path order.  Any edit to
any simulator module — protocol, runtime, apps, observers — changes the
digest, so every previously cached record silently becomes a miss:
there is no way to see a stale result after a code change, and no
invalidation logic to get wrong.

Entries live under ``.parade-cache/<key[:2]>/<key>.json`` (two-level
fan-out keeps directories small), written atomically via tmp+rename.
``PARADE_CACHE=0`` (or ``cache=None`` at the API level) disables the
cache; ``PARADE_CACHE_DIR`` moves it; ``PARADE_CACHE_CAP`` bounds the
entry count (oldest-mtime eviction past the cap, default 512).  Failed
runs are never cached.  Hit/miss/store counters are kept per
:class:`RunCache` instance and surfaced by every gate that uses one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from .spec import RECORD_VERSION, RunSpec

DEFAULT_CACHE_DIR = ".parade-cache"
DEFAULT_CAP = 512

_source_digest_memo: Optional[str] = None


def source_digest() -> str:
    """SHA-256 over the contents of every ``repro/**.py`` source file in
    sorted relative-path order (memoised per process — source files do
    not change under a running fleet)."""
    global _source_digest_memo
    if _source_digest_memo is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _source_digest_memo = h.hexdigest()
    return _source_digest_memo


def cache_enabled() -> bool:
    """False when ``PARADE_CACHE=0`` (the env escape hatch)."""
    return os.environ.get("PARADE_CACHE", "1") not in ("0", "false", "no")


class RunCache:
    """On-disk record store keyed by (spec, source digest).

    ``source`` is injectable for tests (a poisoned digest must miss);
    production callers leave it to :func:`source_digest`.
    """

    def __init__(self, root: Optional[str] = None, cap: Optional[int] = None,
                 source: Optional[str] = None):
        if root is None:
            root = os.environ.get("PARADE_CACHE_DIR", DEFAULT_CACHE_DIR)
        if cap is None:
            cap = int(os.environ.get("PARADE_CACHE_CAP", DEFAULT_CAP))
        self.root = Path(root)
        self.cap = cap
        self.source = source if source is not None else source_digest()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, spec: RunSpec) -> str:
        h = hashlib.sha256()
        h.update(spec.canonical().encode())
        h.update(b"\0")
        h.update(self.source.encode())
        h.update(b"\0")
        h.update(str(RECORD_VERSION).encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[Dict]:
        """The cached record for *spec*, or ``None`` (counts the
        hit/miss either way).  A hit is marked ``cached: True``."""
        path = self._path(self.key(spec))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if record.get("record_version") != RECORD_VERSION or not record.get("ok"):
            self.misses += 1
            return None
        self.hits += 1
        record["cached"] = True
        # freshen mtime so hot entries survive eviction
        try:
            os.utime(path, None)
        except OSError:
            pass
        return record

    def put(self, spec: RunSpec, record: Dict) -> None:
        """Store a successful record (failures are never cached —
        re-running them is the only way to see them resolve)."""
        if not record.get("ok"):
            return
        to_store = {k: v for k, v in record.items() if k != "cached"}
        path = self._path(self.key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(to_store, fh, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1
        self._evict()

    def _evict(self) -> None:
        """Drop oldest-mtime entries beyond the cap."""
        entries = sorted(
            self.root.glob("??/*.json"), key=lambda p: p.stat().st_mtime
        )
        for path in entries[: max(0, len(entries) - self.cap)]:
            try:
                path.unlink()
            except OSError:
                pass

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RunCache {self.root} cap={self.cap} hits={self.hits} "
            f"misses={self.misses} stores={self.stores}>"
        )


def default_cache(no_cache: bool = False) -> Optional[RunCache]:
    """The cache a gate should use: a :class:`RunCache` unless disabled
    by the ``--no-cache`` flag or ``PARADE_CACHE=0``."""
    if no_cache or not cache_enabled():
        return None
    return RunCache()
