"""The ParADE OpenMP translator (§4).

A source-to-source translator for a C subset with OpenMP 1.0 pragmas,
mirroring the paper's Omni-derived design: lex → parse into an AST that
carries the OpenMP directives → analyse (variable scoping, shared-data
footprint, lexical analyzability of critical sections) → reconstruct C
with the directives replaced by runtime API calls.

Two backends implement the comparison of Figures 2 and 3:

* :class:`ParadeBackend` — the hybrid translation: pthread locks for
  intra-node exclusion and collectives (``parade_allreduce`` /
  ``parade_bcast``) for inter-node synchronisation; analyzable critical
  sections with a small shared footprint avoid SDSM locks entirely;
* :class:`SdsmBackend`  — the conventional translation: every
  synchronisation directive becomes a distributed SDSM lock
  (``km_lock``/``km_unlock``) plus barriers.
"""

from repro.translator.tokens import Token, TokenType
from repro.translator.lexer import Lexer, tokenize, LexError
from repro.translator import c_ast
from repro.translator.parser import Parser, parse, ParseError
from repro.translator.analysis import (
    analyze_region,
    body_is_lexically_analyzable,
    shared_footprint_bytes,
    find_update_statement,
    sizeof_type,
)
from repro.translator.codegen import CWriter
from repro.translator.backends import ParadeBackend, SdsmBackend, translate

__all__ = [
    "Token",
    "TokenType",
    "Lexer",
    "tokenize",
    "LexError",
    "c_ast",
    "Parser",
    "parse",
    "ParseError",
    "analyze_region",
    "body_is_lexically_analyzable",
    "shared_footprint_bytes",
    "find_update_statement",
    "sizeof_type",
    "CWriter",
    "ParadeBackend",
    "SdsmBackend",
    "translate",
]
