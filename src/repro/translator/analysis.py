"""Static analyses driving the hybrid translation (§4.2, §5.2.1, §7).

The translator switches a synchronisation directive to message passing
when the guarded block is **lexically analyzable** (no function calls — a
call could touch arbitrary shared state) and the total size of the shared
data it touches is **at or below the hybrid threshold** (256 bytes on the
paper's cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.translator import c_ast as A

#: §5.2.1 threshold in bytes
HYBRID_THRESHOLD = 256

#: sizeof table for the paper's 32-bit Linux/x86 target
_SIZEOF: Dict[str, int] = {
    "void": 1,
    "char": 1,
    "signed char": 1,
    "unsigned char": 1,
    "short": 2,
    "short int": 2,
    "unsigned short": 2,
    "int": 4,
    "signed": 4,
    "signed int": 4,
    "unsigned": 4,
    "unsigned int": 4,
    "long": 4,
    "long int": 4,
    "unsigned long": 4,
    "float": 4,
    "double": 8,
    "long double": 12,
    "long long": 8,
    "unsigned long long": 8,
}

#: OpenMP 1.0 reduction operators -> identity / runtime op name
REDUCTION_OPS = {
    "+": "PARADE_SUM",
    "*": "PARADE_PROD",
    "-": "PARADE_SUM",   # OpenMP: '-' reduces with + on negated updates
    "&": "PARADE_BAND",
    "|": "PARADE_BOR",
    "^": "PARADE_BXOR",
    "&&": "PARADE_LAND",
    "||": "PARADE_LOR",
}


def sizeof_type(ts: A.TypeSpec) -> int:
    """Size of a scalar of this type (pointers are 4 on the target)."""
    if ts.pointers > 0:
        return 4
    base = ts.base
    if base.startswith(("struct", "union", "enum")):
        return 4  # unknown aggregate: conservative word
    return _SIZEOF.get(base, 4)


@dataclass
class VarInfo:
    name: str
    type: A.TypeSpec
    array_elems: Optional[int] = None  # None = scalar

    @property
    def nbytes(self) -> int:
        n = sizeof_type(self.type)
        return n * (self.array_elems or 1)


class SymbolTable:
    """Flat per-function symbol table (the subset has no shadowing needs
    beyond block-local decls, which we register as they appear)."""

    def __init__(self) -> None:
        self.vars: Dict[str, VarInfo] = {}

    def add_decl(self, decl: A.Decl) -> None:
        for d in decl.declarators:
            elems: Optional[int] = None
            if d.array_dims:
                elems = 1
                for dim in d.array_dims:
                    if isinstance(dim, A.Num):
                        elems *= int(dim.value, 0)
                    else:
                        elems = 1 << 20  # unknown dim: force "large"
            ts = A.TypeSpec(decl.type.base, decl.type.pointers + d.pointers, decl.type.qualifiers)
            self.vars[d.name] = VarInfo(d.name, ts, elems)

    def add_param(self, p: A.Param) -> None:
        if p.name:
            elems = 1 << 20 if p.array or p.type.pointers else None
            self.vars[p.name] = VarInfo(p.name, p.type, elems)

    def lookup(self, name: str) -> Optional[VarInfo]:
        return self.vars.get(name)


def build_symbols(fn: A.FunctionDef) -> SymbolTable:
    table = SymbolTable()
    for p in fn.params:
        table.add_param(p)
    for node in fn.body.walk():
        if isinstance(node, A.Decl):
            table.add_decl(node)
    return table


# ----------------------------------------------------------------------
# lexical analyzability + footprint
# ----------------------------------------------------------------------
def body_is_lexically_analyzable(body: A.Node) -> bool:
    """True iff the block contains no function calls (§4.2: "it is highly
    recommended to write a lexically analyzable code block")."""
    return not any(isinstance(n, A.Call) for n in body.walk())


def identifiers_read_or_written(body: A.Node) -> Set[str]:
    return {n.name for n in body.walk() if isinstance(n, A.Ident)}


def written_identifiers(body: A.Node) -> Set[str]:
    """Names assigned (or ++/--) anywhere in the block."""
    out: Set[str] = set()
    for n in body.walk():
        if isinstance(n, A.Assign):
            out |= _target_names(n.target)
        elif isinstance(n, A.UnOp) and n.op in ("++", "--"):
            out |= _target_names(n.operand)
    return out


def _target_names(expr: A.Expr) -> Set[str]:
    if isinstance(expr, A.Ident):
        return {expr.name}
    if isinstance(expr, A.Index):
        return _target_names(expr.base)
    if isinstance(expr, A.Member):
        return _target_names(expr.base)
    if isinstance(expr, A.UnOp) and expr.op == "*":
        return _target_names(expr.operand)
    return set()


def shared_footprint_bytes(
    body: A.Node, table: SymbolTable, shared_names: Set[str]
) -> int:
    """Total size of the *shared* variables the block touches.

    Unknown identifiers are treated as shared scalars of word size
    (conservative in count, optimistic in size — matching what a
    declaration-driven translator can actually prove)."""
    total = 0
    for name in identifiers_read_or_written(body):
        if name not in shared_names:
            continue
        info = table.lookup(name)
        total += info.nbytes if info else 4
    return total


# ----------------------------------------------------------------------
# update-statement pattern (critical/atomic rewrite)
# ----------------------------------------------------------------------
@dataclass
class UpdatePattern:
    """``x = x op expr`` / ``x op= expr`` / ``x++`` recognised in a block."""

    var: str
    op: str          # '+', '*', ...
    delta: Optional[A.Expr]  # None means the literal 1 (++/--)


def find_update_statement(stmt: A.Node) -> Optional[UpdatePattern]:
    """Recognise the reduction-style update the translator can map to a
    collective.  Accepts a bare expression statement or a one-statement
    compound."""
    if isinstance(stmt, A.Compound):
        real = [s for s in stmt.items if not (isinstance(s, A.ExprStmt) and s.expr is None)]
        if len(real) != 1:
            return None
        stmt = real[0]
    if not isinstance(stmt, A.ExprStmt) or stmt.expr is None:
        return None
    e = stmt.expr
    if isinstance(e, A.UnOp) and e.op in ("++", "--") and isinstance(e.operand, A.Ident):
        return UpdatePattern(e.operand.name, "+" if e.op == "++" else "-", None)
    if isinstance(e, A.Assign) and isinstance(e.target, A.Ident):
        name = e.target.name
        if e.op != "=":
            op = e.op[:-1]  # '+=' -> '+'
            if op in REDUCTION_OPS:
                return UpdatePattern(name, op, e.value)
            return None
        # x = x op expr   or   x = expr op x
        v = e.value
        if isinstance(v, A.BinOp) and v.op in REDUCTION_OPS:
            if isinstance(v.left, A.Ident) and v.left.name == name:
                return UpdatePattern(name, v.op, v.right)
            if isinstance(v.right, A.Ident) and v.right.name == name and v.op in ("+", "*"):
                return UpdatePattern(name, v.op, v.left)
    return None


# ----------------------------------------------------------------------
# region-level analysis
# ----------------------------------------------------------------------
@dataclass
class RegionInfo:
    """Scoping decision for one parallel region."""

    shared: Set[str] = field(default_factory=set)
    private: Set[str] = field(default_factory=set)
    firstprivate: Set[str] = field(default_factory=set)
    lastprivate: Set[str] = field(default_factory=set)
    reductions: List[Tuple[str, List[str]]] = field(default_factory=list)

    def all_private(self) -> Set[str]:
        return self.private | self.firstprivate | self.lastprivate


def analyze_region(region: A.OmpParallel, fn: A.FunctionDef) -> RegionInfo:
    """Resolve the scope of every variable used inside a parallel region.

    OpenMP 1.0 default is ``shared`` (§4.1 notes this is hostile to MP
    targets, hence the §7 guideline to annotate explicitly); clause
    annotations and block-local declarations override it."""
    table = build_symbols(fn)
    info = RegionInfo()
    cl = region.clauses
    info.private |= set(cl.private)
    info.firstprivate |= set(cl.firstprivate)
    info.lastprivate |= set(cl.lastprivate)
    info.reductions = list(cl.reductions)
    explicit = (
        set(cl.shared)
        | info.all_private()
        | set(cl.reduction_vars())
    )
    # variables declared inside the region are automatics (private)
    local = set()
    for node in region.body.walk():
        if isinstance(node, A.Decl):
            for d in node.declarators:
                local.add(d.name)
    # loop control variables of omp-for loops are private per the standard
    for node in region.body.walk():
        if isinstance(node, A.OmpFor):
            ivar = _loop_var(node.loop)
            if ivar:
                local.add(ivar)
    if isinstance(region.body, A.OmpFor):
        ivar = _loop_var(region.body.loop)
        if ivar:
            local.add(ivar)

    used = identifiers_read_or_written(region.body)
    for name in used:
        if name in local:
            continue
        if name in explicit:
            continue
        if table.lookup(name) is None:
            continue  # function names, enum constants...
        if cl.default == "none":
            raise ValueError(
                f"default(none): variable {name!r} used but not scoped"
            )
        info.shared.add(name)
    info.shared |= set(cl.shared)
    return info


def _loop_var(loop: A.For) -> Optional[str]:
    init = loop.init
    if isinstance(init, A.Decl) and init.declarators:
        return init.declarators[0].name
    if isinstance(init, A.ExprStmt) and isinstance(init.expr, A.Assign):
        t = init.expr.target
        if isinstance(t, A.Ident):
            return t.name
    return None


@dataclass
class LoopBounds:
    """Extracted ``for`` bounds for the static scheduler (§4.3)."""

    var: str
    lo: A.Expr
    hi: A.Expr
    #: True for '<=' (inclusive upper bound)
    inclusive: bool
    step: Optional[A.Expr]
    increasing: bool = True


def extract_loop_bounds(loop: A.For) -> Optional[LoopBounds]:
    """Recognise the canonical OpenMP loop form
    ``for (i = lo; i < hi; i++/i += step)``."""
    var = _loop_var(loop)
    if var is None:
        return None
    # lower bound
    if isinstance(loop.init, A.Decl):
        d = loop.init.declarators[0]
        lo = d.init
    elif isinstance(loop.init, A.ExprStmt) and isinstance(loop.init.expr, A.Assign):
        lo = loop.init.expr.value
    else:
        return None
    if lo is None:
        return None
    # condition
    cond = loop.cond
    if not isinstance(cond, A.BinOp) or not isinstance(cond.left, A.Ident) or cond.left.name != var:
        return None
    if cond.op not in ("<", "<=", ">", ">="):
        return None
    increasing = cond.op in ("<", "<=")
    inclusive = cond.op in ("<=", ">=")
    hi = cond.right
    # step
    step = None
    st = loop.step
    if isinstance(st, A.UnOp) and st.op in ("++", "--"):
        pass
    elif isinstance(st, A.Assign) and st.op in ("+=", "-="):
        step = st.value
    else:
        return None
    return LoopBounds(var, lo, hi, inclusive, step, increasing)
