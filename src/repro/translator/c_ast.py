"""AST for the C subset + OpenMP directive nodes.

Nodes are lightweight dataclass-style objects with ``children()`` for
generic walks.  OpenMP directives are first-class statements wrapping
their structured block, which is what makes the §4 rewrites local tree
transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Node:
    """Base AST node."""

    def children(self) -> List["Node"]:
        out = []
        for value in self.__dict__.values():
            if isinstance(value, Node):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, Node))
        return out

    def walk(self):
        yield self
        for c in self.children():
            yield from c.walk()


# ----------------------------------------------------------------------
# types and declarations
# ----------------------------------------------------------------------
@dataclass
class TypeSpec(Node):
    """A (simplified) C type: base keywords + pointer depth."""

    base: str                    # e.g. "int", "double", "unsigned long"
    pointers: int = 0
    qualifiers: Tuple[str, ...] = ()

    def __str__(self) -> str:
        q = " ".join(self.qualifiers)
        return (q + " " if q else "") + self.base + "*" * self.pointers


@dataclass
class Declarator(Node):
    name: str
    array_dims: List[Optional["Expr"]] = field(default_factory=list)
    init: Optional["Expr"] = None
    pointers: int = 0


@dataclass
class Decl(Node):
    type: TypeSpec
    declarators: List[Declarator]
    storage: Optional[str] = None  # static/extern/...


@dataclass
class Param(Node):
    type: TypeSpec
    name: Optional[str]
    array: bool = False


@dataclass
class FunctionDef(Node):
    return_type: TypeSpec
    name: str
    params: List[Param]
    body: "Compound"


@dataclass
class FunctionDecl(Node):
    """A prototype: declaration without a body."""

    return_type: TypeSpec
    name: str
    params: List[Param]


@dataclass
class TranslationUnit(Node):
    items: List[Node]  # Decl | FunctionDef


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr(Node):
    pass


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Num(Expr):
    value: str


@dataclass
class Str(Expr):
    value: str


@dataclass
class CharLit(Expr):
    value: str


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    op: str
    operand: Expr
    postfix: bool = False  # i++ vs ++i


@dataclass
class Assign(Expr):
    op: str  # '=', '+=', ...
    target: Expr
    value: Expr


@dataclass
class Cond(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool = False


@dataclass
class Cast(Expr):
    type: TypeSpec
    operand: Expr


@dataclass
class SizeofType(Expr):
    type: TypeSpec


@dataclass
class CommaExpr(Expr):
    parts: List[Expr]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt(Node):
    pass


@dataclass
class Compound(Stmt):
    items: List[Node]  # Stmt | Decl


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]  # None = empty statement


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Node]  # Decl | ExprStmt
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Raw(Stmt):
    """Verbatim text injected by a backend (never produced by the parser)."""

    text: str


# ----------------------------------------------------------------------
# OpenMP directive nodes
# ----------------------------------------------------------------------
@dataclass
class OmpClauses(Node):
    shared: List[str] = field(default_factory=list)
    private: List[str] = field(default_factory=list)
    firstprivate: List[str] = field(default_factory=list)
    lastprivate: List[str] = field(default_factory=list)
    #: list of (op, [vars])
    reductions: List[Tuple[str, List[str]]] = field(default_factory=list)
    schedule: Optional[Tuple[str, Optional[str]]] = None
    num_threads: Optional[str] = None
    default: Optional[str] = None
    nowait: bool = False
    if_expr: Optional[str] = None

    def reduction_vars(self) -> List[str]:
        out: List[str] = []
        for _op, names in self.reductions:
            out.extend(names)
        return out


@dataclass
class OmpParallel(Stmt):
    clauses: OmpClauses
    body: Stmt
    #: set when this is a combined 'parallel for'
    for_loop: bool = False


@dataclass
class OmpFor(Stmt):
    clauses: OmpClauses
    loop: For


@dataclass
class OmpCritical(Stmt):
    name: Optional[str]
    body: Stmt


@dataclass
class OmpAtomic(Stmt):
    stmt: ExprStmt


@dataclass
class OmpSingle(Stmt):
    clauses: OmpClauses
    body: Stmt


@dataclass
class OmpMaster(Stmt):
    body: Stmt


@dataclass
class OmpBarrier(Stmt):
    pass


@dataclass
class OmpSections(Stmt):
    clauses: OmpClauses
    sections: List[Stmt]


@dataclass
class OmpFlush(Stmt):
    vars: List[str] = field(default_factory=list)
