"""Translation backends: ParADE hybrid vs conventional SDSM (§4, Figs 2-3).

Both backends share the Omni-style region outlining: each ``parallel``
region becomes a generated thread function taking a struct of pointers to
its shared variables; the region statement becomes a fork call.  They
differ in how synchronisation directives inside the region are lowered:

========================  ==============================  =========================
directive                 ParadeBackend                   SdsmBackend
========================  ==============================  =========================
critical (analyzable,     pthread lock +                  km_lock / body /
small footprint)          parade_allreduce of the delta   km_unlock
critical (general)        parade_sdsm_lock / body /       km_lock / body /
                          unlock                          km_unlock
atomic                    pthread lock + allreduce        km_lock / body / km_unlock
reduction clause          private partial +               private partial + km_lock
                          parade_allreduce (no barrier)   accumulate + km_barrier
single (small)            earliest thread + parade_bcast  km_lock + done-flag page +
                          (no barrier)                    km_barrier
for                       static chunking +               static chunking +
                          parade_barrier unless replaced  km_barrier
barrier                   parade_barrier()                km_barrier()
========================  ==============================  =========================
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

from repro.translator import c_ast as A
from repro.translator.analysis import (
    HYBRID_THRESHOLD,
    REDUCTION_OPS,
    analyze_region,
    body_is_lexically_analyzable,
    build_symbols,
    extract_loop_bounds,
    find_update_statement,
    shared_footprint_bytes,
    sizeof_type,
    written_identifiers,
    SymbolTable,
    RegionInfo,
)
from repro.translator.codegen import CWriter
from repro.translator.parser import parse


class _Rewriter:
    """Replaces identifier uses of shared scalars with pointer derefs."""

    def __init__(self, pointer_names: Dict[str, str], rename: Optional[Dict[str, str]] = None):
        self.pointer_names = pointer_names
        self.rename = rename or {}

    def rewrite(self, node: A.Node) -> A.Node:
        if isinstance(node, A.Ident):
            if node.name in self.rename:
                return A.Ident(self.rename[node.name])
            if node.name in self.pointer_names:
                return A.UnOp("*", A.Ident(self.pointer_names[node.name]))
            return node
        clone = copy.copy(node)
        for key, value in list(clone.__dict__.items()):
            if isinstance(value, A.Node):
                setattr(clone, key, self.rewrite(value))
            elif isinstance(value, list):
                setattr(
                    clone,
                    key,
                    [self.rewrite(v) if isinstance(v, A.Node) else v for v in value],
                )
        return clone


class _BackendBase:
    """Shared outlining machinery."""

    name = "abstract"
    runtime_header = "parade.h"

    def __init__(self, hybrid_threshold: int = HYBRID_THRESHOLD):
        self.hybrid_threshold = hybrid_threshold
        self._region_counter = 0
        self._sync_counter = 0
        self._emitted_functions: List[str] = []
        self._globals: List[str] = []

    # -- entry ---------------------------------------------------------
    def translate_unit(self, unit: A.TranslationUnit) -> str:
        chunks: List[str] = [f'#include "{self.runtime_header}"', ""]
        body_writer = CWriter()
        for item in unit.items:
            if isinstance(item, A.FunctionDef):
                new_fn = self._translate_function(item)
                body_writer.write_function(new_fn)
                body_writer._line()
            else:
                body_writer.write_stmt(item)
        if self._globals:
            chunks.extend(self._globals)
            chunks.append("")
        chunks.extend(self._emitted_functions)
        chunks.append(body_writer.text())
        return "\n".join(chunks)

    def _translate_function(self, fn: A.FunctionDef) -> A.FunctionDef:
        table = build_symbols(fn)
        new_body = self._transform_stmt(fn.body, fn, table, in_region=False, region_info=None)
        return A.FunctionDef(fn.return_type, fn.name, fn.params, new_body)

    # -- generic statement transform --------------------------------------
    def _transform_stmt(self, node, fn, table, in_region: bool, region_info) -> A.Node:
        if isinstance(node, A.OmpParallel):
            return self._emit_parallel(node, fn, table)
        if isinstance(node, A.OmpFor):
            if not in_region:
                raise ValueError("omp for outside a parallel region (orphaned directives unsupported)")
            return self._emit_for(node, fn, table, region_info)
        if isinstance(node, A.OmpCritical):
            return self._emit_critical(node, fn, table, region_info)
        if isinstance(node, A.OmpAtomic):
            return self._emit_atomic(node, fn, table, region_info)
        if isinstance(node, A.OmpSingle):
            return self._emit_single(node, fn, table, region_info)
        if isinstance(node, A.OmpMaster):
            inner = self._transform_stmt(node.body, fn, table, in_region, region_info)
            return A.If(
                A.BinOp("==", A.Call(A.Ident(self.api("thread_id")), []), A.Num("0")),
                _as_compound(inner),
            )
        if isinstance(node, A.OmpBarrier):
            return A.Raw(f"{self.api('barrier')}();")
        if isinstance(node, A.OmpFlush):
            return A.Raw(f"{self.api('flush')}();")
        if isinstance(node, A.OmpSections):
            return self._emit_sections(node, fn, table, region_info)
        if isinstance(node, A.Compound):
            return A.Compound(
                [self._transform_stmt(c, fn, table, in_region, region_info) for c in node.items]
            )
        if isinstance(node, A.If):
            return A.If(
                node.cond,
                self._transform_stmt(node.then, fn, table, in_region, region_info),
                self._transform_stmt(node.other, fn, table, in_region, region_info)
                if node.other
                else None,
            )
        if isinstance(node, A.While):
            return A.While(node.cond, self._transform_stmt(node.body, fn, table, in_region, region_info))
        if isinstance(node, A.DoWhile):
            return A.DoWhile(self._transform_stmt(node.body, fn, table, in_region, region_info), node.cond)
        if isinstance(node, A.For):
            return A.For(
                node.init, node.cond, node.step,
                self._transform_stmt(node.body, fn, table, in_region, region_info),
            )
        return node

    # -- parallel region outlining -------------------------------------------
    def _emit_parallel(self, region: A.OmpParallel, fn: A.FunctionDef, table: SymbolTable) -> A.Node:
        self._region_counter += 1
        rid = self._region_counter
        info = analyze_region(region, fn)

        shared_ptrs: Dict[str, str] = {}
        struct_fields: List[str] = []
        pack_lines: List[str] = []
        unpack_lines: List[str] = []
        for name in sorted(info.shared | set(region.clauses.reduction_vars()) | set(info.firstprivate)):
            vi = table.lookup(name)
            if vi is None:
                continue
            ctype = str(vi.type)
            if vi.array_elems is not None:
                # arrays decay to pointers; element indexing unchanged
                struct_fields.append(f"{ctype} *{name};")
                pack_lines.append(f"__args_{rid}.{name} = {name};")
                unpack_lines.append(f"{ctype} *{name} = __args->{name};")
            else:
                struct_fields.append(f"{ctype} *{name};")
                pack_lines.append(f"__args_{rid}.{name} = &{name};")
                unpack_lines.append(f"{ctype} *__p_{name} = __args->{name};")
                if name in info.shared or name in region.clauses.reduction_vars():
                    shared_ptrs[name] = f"__p_{name}"

        # private copies inside the thread function
        private_decls: List[str] = []
        for name in sorted(info.all_private()):
            vi = table.lookup(name)
            ctype = str(vi.type) if vi else "int"
            if name in info.firstprivate:
                private_decls.append(f"{ctype} {name} = *__p_{name};")
                shared_ptrs.pop(name, None)
            else:
                private_decls.append(f"{ctype} {name};")

        region_info = _RegionCtx(info, shared_ptrs, table)
        # region-level reduction clause (on 'parallel' itself): establish the
        # private-partial renames BEFORE lowering the body so every nested
        # construct accumulates into __red_<name>, not the shared pointer
        red_prologue, red_epilogue = self._reduction_code(region.clauses, table, region_info)
        region_info.region_renames = dict(region_info.reduction_renames)
        region_info.reduction_renames.clear()
        body = self._transform_stmt(region.body, fn, table, True, region_info)
        body = _Rewriter(shared_ptrs, dict(region_info.region_renames)).rewrite(body)

        w = CWriter()
        w._line(f"static void __{self.prefix}_region_{rid}(struct __{self.prefix}_args_{rid} *__args)")
        w._line("{")
        w.level += 1
        for ln in unpack_lines + private_decls + red_prologue:
            w._line(ln)
        w.write_stmt(_as_compound(body))
        for ln in red_epilogue:
            w._line(ln)
        w.level -= 1
        w._line("}")

        struct_def = "\n".join(
            [f"struct __{self.prefix}_args_{rid} {{"]
            + ["    " + f for f in struct_fields]
            + ["};"]
        )
        self._globals.append(struct_def)
        self._emitted_functions.append(w.text())

        call = CWriter()
        call._line("{")
        call.level += 1
        call._line(f"struct __{self.prefix}_args_{rid} __args_{rid};")
        for ln in pack_lines:
            call._line(ln)
        nt = region.clauses.num_threads or "0"
        call._line(
            f"{self.api('parallel')}((void (*)(void *))__{self.prefix}_region_{rid}, "
            f"&__args_{rid}, {nt});"
        )
        call.level -= 1
        call._line("}")
        return A.Raw(call.text().rstrip("\n"))

    # -- reduction helpers -------------------------------------------------
    def _reduction_code(self, clauses: A.OmpClauses, table: SymbolTable, ctx) -> tuple:
        prologue: List[str] = []
        epilogue: List[str] = []
        for op, names in clauses.reductions:
            for name in names:
                vi = table.lookup(name)
                ctype = str(vi.type) if vi else "double"
                ident = _identity_for(op)
                prologue.append(f"{ctype} __red_{name} = {ident};")
                ctx.reduction_renames[name] = f"__red_{name}"
                epilogue.extend(self.reduction_finalize(name, op, ctype, ctx))
        return prologue, epilogue

    def api(self, op: str) -> str:
        raise NotImplementedError

    @property
    def prefix(self) -> str:
        raise NotImplementedError

    def reduction_finalize(self, name, op, ctype, ctx) -> List[str]:
        raise NotImplementedError

    def _next_sync_id(self) -> int:
        self._sync_counter += 1
        return self._sync_counter

    @staticmethod
    def _apply_ctx(node: A.Node, ctx) -> A.Node:
        """Rewrite shared-scalar uses to pointer derefs inside emitters
        that stringify their block early (the outer region rewriter cannot
        see into Raw nodes)."""
        if ctx is None or (not ctx.shared_ptrs and not ctx.region_renames):
            return node
        return _Rewriter(ctx.shared_ptrs, dict(ctx.region_renames)).rewrite(node)

    # -- omp for -------------------------------------------------------------
    def _emit_for(self, node: A.OmpFor, fn, table, ctx) -> A.Node:
        bounds = extract_loop_bounds(node.loop)
        if bounds is None:
            raise ValueError("omp for loop is not in canonical form")
        w = CWriter()
        body = self._transform_stmt(node.loop.body, fn, table, True, ctx)
        # reduction clause on the for: rename accumulator uses to the private
        # partial FIRST, then rewrite remaining shared scalars to pointers
        prologue, epilogue = self._reduction_code(node.clauses, table, ctx)
        if ctx is not None and ctx.reduction_renames:
            body = _Rewriter({}, dict(ctx.reduction_renames)).rewrite(body)
        body = self._apply_ctx(body, ctx)
        lo = CWriter().fmt_expr(bounds.lo)
        hi = CWriter().fmt_expr(bounds.hi)
        if bounds.inclusive:
            hi = f"({hi}) + 1"
        sched_kind = node.clauses.schedule[0] if node.clauses.schedule else "static"
        chunk = (node.clauses.schedule[1] or "1") if node.clauses.schedule else "1"
        w._line("{")
        w.level += 1
        w._line("long __lb, __ub;")
        for ln in prologue:
            w._line(ln)
        if sched_kind in ("dynamic", "guided"):
            self.emit_dynamic_for(w, bounds, lo, hi, chunk, sched_kind, body)
        else:
            w._line(f"{self.api('loop_static')}({lo}, {hi}, &__lb, &__ub);")
            w._line(f"for ({bounds.var} = __lb; {bounds.var} < __ub; {bounds.var}++)")
            inner = CWriter()
            inner.level = w.level
            inner.write_stmt(_as_compound(body))
            w.buf.write(inner.text())
        for ln in epilogue:
            w._line(ln)
        # the implicit barrier of a work-sharing construct
        if not node.clauses.nowait:
            if not (node.clauses.reductions and self.collective_replaces_barrier):
                w._line(f"{self.api('barrier')}();")
            else:
                w._line(f"/* barrier elided: allreduce above synchronises (§5.2.1) */")
        w.level -= 1
        w._line("}")
        if ctx is not None:
            ctx.reduction_renames.clear()
        return A.Raw(w.text().rstrip("\n"))

    def _emit_sections(self, node: A.OmpSections, fn, table, ctx) -> A.Node:
        parts: List[A.Node] = []
        n = len(node.sections)
        for k, sec in enumerate(node.sections):
            inner = self._transform_stmt(sec, fn, table, True, ctx)
            cond = A.BinOp(
                "==",
                A.BinOp("%", A.Num(str(k)), A.Call(A.Ident(self.api("num_threads")), [])),
                A.BinOp("%", A.Call(A.Ident(self.api("thread_id")), []),
                        A.Call(A.Ident(self.api("num_threads")), [])),
            )
            parts.append(A.If(cond, _as_compound(inner)))
        if not node.clauses.nowait:
            parts.append(A.Raw(f"{self.api('barrier')}();"))
        return A.Compound(parts)

    # subclasses implement these
    collective_replaces_barrier = False

    def emit_dynamic_for(self, w, bounds, lo, hi, chunk, kind, body) -> None:
        raise NotImplementedError

    def _emit_critical(self, node, fn, table, ctx):
        raise NotImplementedError

    def _emit_atomic(self, node, fn, table, ctx):
        raise NotImplementedError

    def _emit_single(self, node, fn, table, ctx):
        raise NotImplementedError


class _RegionCtx:
    def __init__(self, info: RegionInfo, shared_ptrs: Dict[str, str], table: SymbolTable):
        self.info = info
        self.shared_ptrs = shared_ptrs
        self.table = table
        #: loop-level (omp for) reduction renames — cleared per loop
        self.reduction_renames: Dict[str, str] = {}
        #: region-level (omp parallel) reduction renames — live for the region
        self.region_renames: Dict[str, str] = {}


def _as_compound(node: A.Node) -> A.Compound:
    return node if isinstance(node, A.Compound) else A.Compound([node])


def _identity_for(op: str) -> str:
    return {"+": "0", "-": "0", "*": "1", "&": "~0", "|": "0", "^": "0",
            "&&": "1", "||": "0"}.get(op, "0")


# ----------------------------------------------------------------------
class ParadeBackend(_BackendBase):
    """The hybrid translation (Figures 2 and 3, right-hand side)."""

    name = "parade"
    runtime_header = "parade.h"
    collective_replaces_barrier = True

    @property
    def prefix(self) -> str:
        return "parade"

    _API = {
        "parallel": "parade_parallel",
        "barrier": "parade_barrier",
        "loop_static": "parade_loop_static",
        "thread_id": "parade_thread_id",
        "num_threads": "parade_num_threads",
        "flush": "parade_flush",
    }

    def api(self, op: str) -> str:
        return self._API[op]

    def reduction_finalize(self, name, op, ctype, ctx) -> List[str]:
        mpi_op = REDUCTION_OPS.get(op, "PARADE_SUM")
        target = f"*__p_{name}" if ctx and name in ctx.shared_ptrs else name
        return [
            f"parade_allreduce(&__red_{name}, 1, PARADE_DOUBLE, {mpi_op});",
            f"{target} = {target} {op if op not in ('&&', '||') else op} __red_{name};"
            if op not in ("&&", "||")
            else f"{target} = {target} {op} __red_{name};",
        ]

    def emit_dynamic_for(self, w, bounds, lo, hi, chunk, kind, body) -> None:
        """schedule(dynamic/guided): chunk dispenser on the master node
        (the §8 loop-scheduling extension implemented by the runtime)."""
        sid = self._next_sync_id()
        mode = "PARADE_SCHED_GUIDED" if kind == "guided" else "PARADE_SCHED_DYNAMIC"
        w._line(f"parade_dynloop_t __dloop_{sid};")
        w._line(f"parade_dynloop_init(&__dloop_{sid}, {lo}, {hi}, {chunk}, {mode});")
        w._line(f"while (parade_dynloop_next(&__dloop_{sid}, &__lb, &__ub)) {{")
        w.level += 1
        w._line(f"for ({bounds.var} = __lb; {bounds.var} < __ub; {bounds.var}++)")
        inner = CWriter()
        inner.level = w.level
        inner.write_stmt(_as_compound(body))
        w.buf.write(inner.text())
        w.level -= 1
        w._line("}")

    def _hybrid_eligible(self, body: A.Node, ctx) -> bool:
        if ctx is None:
            return False
        if not body_is_lexically_analyzable(body):
            return False
        shared = ctx.info.shared | set(ctx.shared_ptrs)
        return shared_footprint_bytes(body, ctx.table, shared) <= self.hybrid_threshold

    def _emit_critical(self, node: A.OmpCritical, fn, table, ctx) -> A.Node:
        pat = find_update_statement(node.body)
        if pat is not None and self._hybrid_eligible(node.body, ctx):
            # Figure 2, right: pthread lock + collective update, no SDSM lock
            sid = self._next_sync_id()
            mpi_op = REDUCTION_OPS.get(pat.op, "PARADE_SUM")
            delta_expr = self._apply_ctx(pat.delta, ctx) if pat.delta is not None else None
            delta = CWriter().fmt_expr(delta_expr) if delta_expr is not None else "1"
            target = f"(*__p_{pat.var})" if ctx and pat.var in ctx.shared_ptrs else pat.var
            w = CWriter()
            w._line(f"parade_pthread_lock(&__parade_lock_{sid});")
            w._line("{")
            w.level += 1
            w._line(f"double __delta = {delta};")
            w._line(f"parade_allreduce(&__delta, 1, PARADE_DOUBLE, {mpi_op});")
            w._line(f"{target} = {target} {pat.op} __delta;")
            w.level -= 1
            w._line("}")
            w._line(f"parade_pthread_unlock(&__parade_lock_{sid});")
            self._globals.append(f"static parade_pthread_mutex_t __parade_lock_{sid};")
            return A.Raw(w.text().rstrip("\n"))
        # general critical: fall back to the SDSM lock (§7)
        sid = self._next_sync_id()
        body = self._apply_ctx(self._transform_stmt(node.body, fn, table, True, ctx), ctx)
        w = CWriter()
        w._line(f"parade_sdsm_lock({sid});")
        w.write_stmt(_as_compound(body))
        w._line(f"parade_sdsm_unlock({sid});")
        return A.Raw(w.text().rstrip("\n"))

    def _emit_atomic(self, node: A.OmpAtomic, fn, table, ctx) -> A.Node:
        pat = find_update_statement(node.stmt)
        if pat is None:
            raise ValueError("omp atomic statement is not an atomic update form")
        return self._emit_critical(A.OmpCritical(None, node.stmt), fn, table, ctx)

    def _emit_single(self, node: A.OmpSingle, fn, table, ctx) -> A.Node:
        sid = self._next_sync_id()
        body = self._apply_ctx(self._transform_stmt(node.body, fn, table, True, ctx), ctx)
        small = self._hybrid_eligible(node.body, ctx)
        w = CWriter()
        if small:
            # Figure 3, right: earliest thread executes; bcast the result;
            # pthread gate locally; no inter-node lock, no barrier.
            written = sorted(
                name for name in written_identifiers(node.body)
                if ctx and (name in ctx.info.shared or name in ctx.shared_ptrs)
            )
            w._line(f"if (parade_single_begin(&__parade_single_{sid})) {{")
            w.level += 1
            inner = CWriter()
            inner.level = w.level
            inner.write_stmt(_as_compound(body))
            w.buf.write(inner.text())
            for name in written:
                vi = ctx.table.lookup(name)
                ref = f"__p_{name}" if name in ctx.shared_ptrs else f"&{name}"
                size = f"sizeof({vi.type})" if vi else "sizeof(double)"
                w._line(f"parade_bcast({ref}, {size}, 0);")
            w._line(f"parade_single_end(&__parade_single_{sid});")
            w.level -= 1
            w._line("}")
            self._globals.append(f"static parade_single_t __parade_single_{sid};")
            if not node.clauses.nowait:
                w._line("/* barrier elided: bcast above synchronises (§5.2.1) */")
        else:
            w._line(f"parade_sdsm_lock({sid});")
            w._line(f"if (__parade_done_{sid} == 0) {{")
            w.level += 1
            inner = CWriter()
            inner.level = w.level
            inner.write_stmt(_as_compound(body))
            w.buf.write(inner.text())
            w._line(f"__parade_done_{sid} = 1;")
            w.level -= 1
            w._line("}")
            w._line(f"parade_sdsm_unlock({sid});")
            if not node.clauses.nowait:
                w._line("parade_barrier();")
            self._globals.append(f"static int __parade_done_{sid};")
        return A.Raw(w.text().rstrip("\n"))


# ----------------------------------------------------------------------
class SdsmBackend(_BackendBase):
    """The conventional translation (Figures 2 and 3, left-hand side)."""

    name = "sdsm"
    runtime_header = "kdsm.h"
    collective_replaces_barrier = False

    @property
    def prefix(self) -> str:
        return "km"

    _API = {
        "parallel": "km_parallel",
        "barrier": "km_barrier",
        "loop_static": "km_loop_static",
        "thread_id": "km_thread_id",
        "num_threads": "km_num_threads",
        "flush": "km_flush",
    }

    def api(self, op: str) -> str:
        return self._API[op]

    def reduction_finalize(self, name, op, ctype, ctx) -> List[str]:
        sid = self._next_sync_id()
        target = f"*__p_{name}" if ctx and name in ctx.shared_ptrs else name
        return [
            f"km_lock({sid});",
            f"{target} = {target} {op} __red_{name};",
            f"km_unlock({sid});",
        ]

    def emit_dynamic_for(self, w, bounds, lo, hi, chunk, kind, body) -> None:
        """Conventional dynamic scheduling: self-scheduling off a shared
        counter guarded by the SDSM lock — every chunk grab is a lock
        round-trip plus counter-page traffic."""
        sid = self._next_sync_id()
        self._globals.append(
            f"static long __km_loop_next_{sid}; /* in SDSM shared memory */"
        )
        w._line(f"while (1) {{")
        w.level += 1
        w._line(f"km_lock({sid});")
        w._line(f"__lb = __km_loop_next_{sid} + ({lo});")
        w._line(f"__km_loop_next_{sid} = __km_loop_next_{sid} + {chunk};")
        w._line(f"km_unlock({sid});")
        w._line(f"if (__lb >= {hi}) break;")
        w._line(f"__ub = __lb + {chunk} < ({hi}) ? __lb + {chunk} : ({hi});")
        w._line(f"for ({bounds.var} = __lb; {bounds.var} < __ub; {bounds.var}++)")
        inner = CWriter()
        inner.level = w.level
        inner.write_stmt(_as_compound(body))
        w.buf.write(inner.text())
        w.level -= 1
        w._line("}")

    def _emit_critical(self, node: A.OmpCritical, fn, table, ctx) -> A.Node:
        # Figure 2, left: the SDSM lock covers intra- and inter-node exclusion
        sid = self._next_sync_id()
        body = self._apply_ctx(self._transform_stmt(node.body, fn, table, True, ctx), ctx)
        w = CWriter()
        w._line(f"km_lock({sid});")
        w.write_stmt(_as_compound(body))
        w._line(f"km_unlock({sid});")
        return A.Raw(w.text().rstrip("\n"))

    def _emit_atomic(self, node: A.OmpAtomic, fn, table, ctx) -> A.Node:
        return self._emit_critical(A.OmpCritical(None, node.stmt), fn, table, ctx)

    def _emit_single(self, node: A.OmpSingle, fn, table, ctx) -> A.Node:
        # Figure 3, left: lock + shared done flag + implicit barrier
        sid = self._next_sync_id()
        body = self._apply_ctx(self._transform_stmt(node.body, fn, table, True, ctx), ctx)
        w = CWriter()
        w._line(f"km_lock({sid});")
        w._line(f"if (__km_done_{sid} == 0) {{")
        w.level += 1
        inner = CWriter()
        inner.level = w.level
        inner.write_stmt(_as_compound(body))
        w.buf.write(inner.text())
        w._line(f"__km_done_{sid} = 1;")
        w.level -= 1
        w._line("}")
        w._line(f"km_unlock({sid});")
        if not node.clauses.nowait:
            w._line("km_barrier();")
        self._globals.append(f"static int __km_done_{sid}; /* in SDSM shared memory */")
        return A.Raw(w.text().rstrip("\n"))


def translate(source: str, backend: str = "parade", hybrid_threshold: int = HYBRID_THRESHOLD) -> str:
    """Translate OpenMP-C *source* for the given backend ('parade'/'sdsm')."""
    unit = parse(source)
    be = {"parade": ParadeBackend, "sdsm": SdsmBackend}[backend](hybrid_threshold)
    return be.translate_unit(unit)
