"""Recursive-descent parser for the C subset + OpenMP 1.0 pragmas."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.translator.tokens import Token, TokenType
from repro.translator.lexer import tokenize
from repro.translator import c_ast as A


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.value!r})")
        self.token = token


_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "struct", "union", "enum",
}
_QUALIFIERS = {"const", "volatile"}
_STORAGE = {"static", "extern", "register", "auto", "typedef"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: binary operator precedence (higher binds tighter)
_BINARY_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.i = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, off: int = 0) -> Token:
        return self.toks[min(self.i + off, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.i]
        if tok.type != TokenType.EOF:
            self.i += 1
        return tok

    def expect_punct(self, value: str) -> Token:
        tok = self.next()
        if not tok.is_punct(value):
            raise ParseError(f"expected {value!r}", tok)
        return tok

    def accept_punct(self, value: str) -> bool:
        if self.peek().is_punct(value):
            self.next()
            return True
        return False

    def at_type(self, off: int = 0) -> bool:
        tok = self.peek(off)
        return tok.type == TokenType.KEYWORD and (
            tok.value in _TYPE_KEYWORDS or tok.value in _QUALIFIERS or tok.value in _STORAGE
        )

    # -- top level --------------------------------------------------------
    def parse_translation_unit(self) -> A.TranslationUnit:
        items: List[A.Node] = []
        while self.peek().type != TokenType.EOF:
            if self.peek().type == TokenType.PRAGMA_OMP:
                raise ParseError("OpenMP pragma outside any function", self.peek())
            items.append(self._external_decl())
        return A.TranslationUnit(items)

    def _external_decl(self) -> A.Node:
        storage, type_spec = self._decl_specifiers()
        # function definition?  type ident ( params ) { ... }
        ptrs = 0
        save = self.i
        while self.accept_punct("*"):
            ptrs += 1
        tok = self.peek()
        if tok.type == TokenType.IDENT and self.peek(1).is_punct("("):
            name = self.next().value
            params = self._param_list()
            if self.peek().is_punct("{"):
                rt = A.TypeSpec(type_spec.base, type_spec.pointers + ptrs, type_spec.qualifiers)
                body = self._compound()
                return A.FunctionDef(rt, name, params, body)
            # function prototype
            self.expect_punct(";")
            rt = A.TypeSpec(type_spec.base, type_spec.pointers + ptrs, type_spec.qualifiers)
            return A.FunctionDecl(rt, name, params)
        self.i = save
        return self._declaration(storage, type_spec)

    def _decl_specifiers(self) -> Tuple[Optional[str], A.TypeSpec]:
        storage = None
        quals: List[str] = []
        base_words: List[str] = []
        while True:
            tok = self.peek()
            if tok.type != TokenType.KEYWORD:
                break
            if tok.value in _STORAGE:
                storage = self.next().value
            elif tok.value in _QUALIFIERS:
                quals.append(self.next().value)
            elif tok.value in _TYPE_KEYWORDS:
                word = self.next().value
                if word in ("struct", "union", "enum"):
                    tag = self.next()
                    if tag.type != TokenType.IDENT:
                        raise ParseError("expected struct/union/enum tag", tag)
                    word = f"{word} {tag.value}"
                base_words.append(word)
            else:
                break
        if not base_words:
            raise ParseError("expected type specifier", self.peek())
        return storage, A.TypeSpec(" ".join(base_words), 0, tuple(quals))

    def _declaration(self, storage, type_spec) -> A.Decl:
        declarators = [self._declarator()]
        while self.accept_punct(","):
            declarators.append(self._declarator())
        self.expect_punct(";")
        return A.Decl(type_spec, declarators, storage)

    def _declarator(self) -> A.Declarator:
        ptrs = 0
        while self.accept_punct("*"):
            ptrs += 1
        tok = self.next()
        if tok.type != TokenType.IDENT:
            raise ParseError("expected declarator name", tok)
        dims: List[Optional[A.Expr]] = []
        while self.accept_punct("["):
            if self.peek().is_punct("]"):
                dims.append(None)
            else:
                dims.append(self._expr())
            self.expect_punct("]")
        init = None
        if self.accept_punct("="):
            init = self._assignment()
        return A.Declarator(tok.value, dims, init, ptrs)

    def _param_list(self) -> List[A.Param]:
        self.expect_punct("(")
        params: List[A.Param] = []
        if self.accept_punct(")"):
            return params
        if self.peek().is_keyword("void") and self.peek(1).is_punct(")"):
            self.next()
            self.expect_punct(")")
            return params
        while True:
            _st, ts = self._decl_specifiers()
            ptrs = 0
            while self.accept_punct("*"):
                ptrs += 1
            name = None
            if self.peek().type == TokenType.IDENT:
                name = self.next().value
            arr = False
            while self.accept_punct("["):
                arr = True
                if not self.peek().is_punct("]"):
                    self._expr()
                self.expect_punct("]")
            params.append(A.Param(A.TypeSpec(ts.base, ts.pointers + ptrs, ts.qualifiers), name, arr))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return params

    # -- statements -------------------------------------------------------
    def _compound(self) -> A.Compound:
        self.expect_punct("{")
        items: List[A.Node] = []
        while not self.peek().is_punct("}"):
            if self.peek().type == TokenType.EOF:
                raise ParseError("unterminated compound statement", self.peek())
            items.append(self._block_item())
        self.expect_punct("}")
        return A.Compound(items)

    def _block_item(self) -> A.Node:
        if self.at_type():
            storage, ts = self._decl_specifiers()
            return self._declaration(storage, ts)
        return self._statement()

    def _statement(self) -> A.Stmt:
        tok = self.peek()
        if tok.type == TokenType.PRAGMA_OMP:
            return self._omp_directive()
        if tok.is_punct("{"):
            return self._compound()
        if tok.is_punct(";"):
            self.next()
            return A.ExprStmt(None)
        if tok.is_keyword("if"):
            self.next()
            self.expect_punct("(")
            cond = self._expr()
            self.expect_punct(")")
            then = self._statement()
            other = None
            if self.peek().is_keyword("else"):
                self.next()
                other = self._statement()
            return A.If(cond, then, other)
        if tok.is_keyword("while"):
            self.next()
            self.expect_punct("(")
            cond = self._expr()
            self.expect_punct(")")
            return A.While(cond, self._statement())
        if tok.is_keyword("do"):
            self.next()
            body = self._statement()
            if not self.peek().is_keyword("while"):
                raise ParseError("expected 'while' after do-body", self.peek())
            self.next()
            self.expect_punct("(")
            cond = self._expr()
            self.expect_punct(")")
            self.expect_punct(";")
            return A.DoWhile(body, cond)
        if tok.is_keyword("for"):
            self.next()
            self.expect_punct("(")
            init: Optional[A.Node] = None
            if not self.peek().is_punct(";"):
                if self.at_type():
                    storage, ts = self._decl_specifiers()
                    init = self._declaration(storage, ts)  # consumes ';'
                else:
                    init = A.ExprStmt(self._expr())
                    self.expect_punct(";")
            else:
                self.next()
            cond = None
            if not self.peek().is_punct(";"):
                cond = self._expr()
            self.expect_punct(";")
            step = None
            if not self.peek().is_punct(")"):
                step = self._expr()
            self.expect_punct(")")
            return A.For(init, cond, step, self._statement())
        if tok.is_keyword("return"):
            self.next()
            value = None if self.peek().is_punct(";") else self._expr()
            self.expect_punct(";")
            return A.Return(value)
        if tok.is_keyword("break"):
            self.next()
            self.expect_punct(";")
            return A.Break()
        if tok.is_keyword("continue"):
            self.next()
            self.expect_punct(";")
            return A.Continue()
        expr = self._expr()
        self.expect_punct(";")
        return A.ExprStmt(expr)

    # -- OpenMP pragmas -----------------------------------------------------
    def _omp_directive(self) -> A.Stmt:
        tok = self.next()
        text = tok.value.strip()
        words = text.split()
        if not words:
            raise ParseError("empty omp pragma", tok)
        head = words[0]
        if head == "parallel" and len(words) > 1 and words[1] == "for":
            clauses = _parse_clauses(re.sub(r"^\s*parallel\s+for", "", text), tok)
            loop = self._statement()
            if not isinstance(loop, A.For):
                raise ParseError("'parallel for' must be followed by a for loop", tok)
            return A.OmpParallel(clauses, A.OmpFor(clauses, loop), for_loop=True)
        if head == "parallel":
            clauses = _parse_clauses(text[len("parallel"):], tok)
            return A.OmpParallel(clauses, self._statement())
        if head == "for":
            clauses = _parse_clauses(text[len("for"):], tok)
            loop = self._statement()
            if not isinstance(loop, A.For):
                raise ParseError("'omp for' must be followed by a for loop", tok)
            return A.OmpFor(clauses, loop)
        if head == "critical":
            m = re.match(r"critical\s*(\(\s*(\w+)\s*\))?\s*$", text)
            if not m:
                raise ParseError("malformed critical directive", tok)
            return A.OmpCritical(m.group(2), self._statement())
        if head == "atomic":
            stmt = self._statement()
            if not isinstance(stmt, A.ExprStmt) or stmt.expr is None:
                raise ParseError("'omp atomic' must guard an expression statement", tok)
            return A.OmpAtomic(stmt)
        if head == "single":
            clauses = _parse_clauses(text[len("single"):], tok)
            return A.OmpSingle(clauses, self._statement())
        if head == "master":
            return A.OmpMaster(self._statement())
        if head == "barrier":
            return A.OmpBarrier()
        if head == "flush":
            m = re.match(r"flush\s*(\((.*)\))?\s*$", text)
            names = [s.strip() for s in (m.group(2) or "").split(",") if s.strip()] if m else []
            return A.OmpFlush(names)
        if head == "sections":
            clauses = _parse_clauses(text[len("sections"):], tok)
            block = self._statement()
            if not isinstance(block, A.Compound):
                raise ParseError("'omp sections' needs a compound block", tok)
            secs: List[A.Stmt] = []
            for item in block.items:
                secs.append(item)
            return A.OmpSections(clauses, secs)
        if head == "section":
            # a bare section: return its block (handled inside sections)
            return self._statement()
        raise ParseError(f"unsupported omp directive {head!r}", tok)

    # -- expressions ------------------------------------------------------
    def _expr(self) -> A.Expr:
        first = self._assignment()
        if self.peek().is_punct(","):
            parts = [first]
            while self.accept_punct(","):
                parts.append(self._assignment())
            return A.CommaExpr(parts)
        return first

    def _assignment(self) -> A.Expr:
        left = self._conditional()
        tok = self.peek()
        if tok.type == TokenType.PUNCT and tok.value in _ASSIGN_OPS:
            op = self.next().value
            value = self._assignment()
            return A.Assign(op, left, value)
        return left

    def _conditional(self) -> A.Expr:
        cond = self._binary(0)
        if self.accept_punct("?"):
            then = self._expr()
            self.expect_punct(":")
            other = self._conditional()
            return A.Cond(cond, then, other)
        return cond

    def _binary(self, min_prec: int) -> A.Expr:
        left = self._unary()
        while True:
            tok = self.peek()
            if tok.type != TokenType.PUNCT:
                break
            prec = _BINARY_PREC.get(tok.value)
            if prec is None or prec < min_prec:
                break
            op = self.next().value
            right = self._binary(prec + 1)
            left = A.BinOp(op, left, right)
        return left

    def _unary(self) -> A.Expr:
        tok = self.peek()
        if tok.type == TokenType.PUNCT and tok.value in ("+", "-", "!", "~", "*", "&"):
            self.next()
            return A.UnOp(tok.value, self._unary())
        if tok.type == TokenType.PUNCT and tok.value in ("++", "--"):
            self.next()
            return A.UnOp(tok.value, self._unary())
        if tok.is_keyword("sizeof"):
            self.next()
            if self.peek().is_punct("(") and self.at_type(1):
                self.expect_punct("(")
                _st, ts = self._decl_specifiers()
                ptrs = 0
                while self.accept_punct("*"):
                    ptrs += 1
                self.expect_punct(")")
                return A.SizeofType(A.TypeSpec(ts.base, ts.pointers + ptrs, ts.qualifiers))
            return A.UnOp("sizeof", self._unary())
        # cast: ( type ) unary
        if tok.is_punct("(") and self.at_type(1):
            self.expect_punct("(")
            _st, ts = self._decl_specifiers()
            ptrs = 0
            while self.accept_punct("*"):
                ptrs += 1
            self.expect_punct(")")
            return A.Cast(A.TypeSpec(ts.base, ts.pointers + ptrs, ts.qualifiers), self._unary())
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while True:
            tok = self.peek()
            if tok.is_punct("("):
                self.next()
                args: List[A.Expr] = []
                if not self.peek().is_punct(")"):
                    args.append(self._assignment())
                    while self.accept_punct(","):
                        args.append(self._assignment())
                self.expect_punct(")")
                expr = A.Call(expr, args)
            elif tok.is_punct("["):
                self.next()
                idx = self._expr()
                self.expect_punct("]")
                expr = A.Index(expr, idx)
            elif tok.is_punct("."):
                self.next()
                name = self.next()
                expr = A.Member(expr, name.value, arrow=False)
            elif tok.is_punct("->"):
                self.next()
                name = self.next()
                expr = A.Member(expr, name.value, arrow=True)
            elif tok.type == TokenType.PUNCT and tok.value in ("++", "--"):
                self.next()
                expr = A.UnOp(tok.value, expr, postfix=True)
            else:
                return expr

    def _primary(self) -> A.Expr:
        tok = self.next()
        if tok.type == TokenType.IDENT:
            return A.Ident(tok.value)
        if tok.type == TokenType.NUMBER:
            return A.Num(tok.value)
        if tok.type == TokenType.STRING:
            return A.Str(tok.value)
        if tok.type == TokenType.CHAR:
            return A.CharLit(tok.value)
        if tok.is_punct("("):
            expr = self._expr()
            self.expect_punct(")")
            return expr
        raise ParseError("expected expression", tok)


# ----------------------------------------------------------------------
# clause parsing (over the pragma text)
# ----------------------------------------------------------------------
_CLAUSE_RE = re.compile(
    r"(shared|private|firstprivate|lastprivate|reduction|schedule|"
    r"num_threads|default|if|copyin)\s*\(([^()]*)\)|\b(nowait)\b"
)


def _parse_clauses(text: str, tok: Token) -> A.OmpClauses:
    clauses = A.OmpClauses()
    consumed = _CLAUSE_RE.sub("", text).strip()
    if consumed:
        raise ParseError(f"unrecognised clause text {consumed!r}", tok)
    for m in _CLAUSE_RE.finditer(text):
        if m.group(3) == "nowait":
            clauses.nowait = True
            continue
        name, body = m.group(1), m.group(2)
        names = [s.strip() for s in body.split(",") if s.strip()]
        if name == "shared":
            clauses.shared.extend(names)
        elif name == "private":
            clauses.private.extend(names)
        elif name == "firstprivate":
            clauses.firstprivate.extend(names)
        elif name == "lastprivate":
            clauses.lastprivate.extend(names)
        elif name == "reduction":
            if ":" not in body:
                raise ParseError("reduction clause needs 'op : vars'", tok)
            op, vars_text = body.split(":", 1)
            vars_ = [s.strip() for s in vars_text.split(",") if s.strip()]
            clauses.reductions.append((op.strip(), vars_))
        elif name == "schedule":
            parts = [s.strip() for s in body.split(",")]
            clauses.schedule = (parts[0], parts[1] if len(parts) > 1 else None)
        elif name == "num_threads":
            clauses.num_threads = body.strip()
        elif name == "default":
            clauses.default = body.strip()
        elif name == "if":
            clauses.if_expr = body.strip()
        # copyin accepted and ignored (threadprivate unsupported)
    return clauses


def parse(source: str) -> A.TranslationUnit:
    """Parse C source text into a translation unit."""
    return Parser(tokenize(source)).parse_translation_unit()
