"""Lexer for the C subset.

Comments are stripped; ``#pragma omp`` lines (with ``\\`` continuations)
become single :class:`TokenType.PRAGMA_OMP` tokens carrying the directive
text; other preprocessor lines are skipped (the real translator runs after
the preprocessor, §4).
"""

from __future__ import annotations

from typing import List

from repro.translator.tokens import Token, TokenType, KEYWORDS, PUNCTUATORS


class LexError(Exception):
    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}, col {col}: {message}")
        self.line = line
        self.col = col


class Lexer:
    def __init__(self, source: str):
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: List[Token] = []

    # -- helpers -----------------------------------------------------------
    def _peek(self, off: int = 0) -> str:
        i = self.pos + off
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n: int = 1) -> str:
        out = self.src[self.pos : self.pos + n]
        for ch in out:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return out

    def _emit(self, type_: TokenType, value: str, line: int, col: int) -> None:
        self.tokens.append(Token(type_, value, line, col))

    # -- main --------------------------------------------------------------
    def run(self) -> List[Token]:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._block_comment()
            elif ch == "#":
                self._preprocessor()
            elif ch.isalpha() or ch == "_":
                self._ident()
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._number()
            elif ch == '"':
                self._string()
            elif ch == "'":
                self._char()
            else:
                self._punct()
        self._emit(TokenType.EOF, "", self.line, self.col)
        return self.tokens

    def _block_comment(self) -> None:
        line, col = self.line, self.col
        self._advance(2)
        while self.pos < len(self.src):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", line, col)

    def _preprocessor(self) -> None:
        line, col = self.line, self.col
        chars = []
        while self.pos < len(self.src):
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                chars.append(" ")
                continue
            if self._peek() == "\n":
                break
            chars.append(self._advance())
        text = "".join(chars).strip()
        body = text[1:].strip()  # drop '#'
        if body.startswith("pragma"):
            rest = body[len("pragma"):].strip()
            if rest.startswith("omp"):
                self._emit(TokenType.PRAGMA_OMP, rest[len("omp"):].strip(), line, col)
        # other preprocessor lines: already expanded in the real pipeline

    def _ident(self) -> None:
        line, col = self.line, self.col
        chars = []
        while self.pos < len(self.src) and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        word = "".join(chars)
        t = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
        self._emit(t, word, line, col)

    def _number(self) -> None:
        line, col = self.line, self.col
        chars = []
        seen_dot = seen_exp = False
        if self._peek() == "0" and self._peek(1) in "xX":
            chars.append(self._advance(2))
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                chars.append(self._advance())
        else:
            while True:
                c = self._peek()
                if c.isdigit():
                    chars.append(self._advance())
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    chars.append(self._advance())
                elif c in "eE" and not seen_exp and self._peek(1) and (
                    self._peek(1).isdigit() or self._peek(1) in "+-"
                ):
                    seen_exp = True
                    chars.append(self._advance())
                    if self._peek() in "+-":
                        chars.append(self._advance())
                else:
                    break
        while self._peek() in "uUlLfF" and self._peek():
            chars.append(self._advance())
        self._emit(TokenType.NUMBER, "".join(chars), line, col)

    def _string(self) -> None:
        line, col = self.line, self.col
        chars = [self._advance()]  # opening quote
        while self.pos < len(self.src):
            c = self._peek()
            if c == "\\":
                chars.append(self._advance(2))
                continue
            chars.append(self._advance())
            if c == '"':
                self._emit(TokenType.STRING, "".join(chars), line, col)
                return
            if c == "\n":
                break
        raise LexError("unterminated string literal", line, col)

    def _char(self) -> None:
        line, col = self.line, self.col
        chars = [self._advance()]
        while self.pos < len(self.src):
            c = self._peek()
            if c == "\\":
                chars.append(self._advance(2))
                continue
            chars.append(self._advance())
            if c == "'":
                self._emit(TokenType.CHAR, "".join(chars), line, col)
                return
            if c == "\n":
                break
        raise LexError("unterminated character literal", line, col)

    def _punct(self) -> None:
        line, col = self.line, self.col
        for p in PUNCTUATORS:
            if self.src.startswith(p, self.pos):
                self._advance(len(p))
                self._emit(TokenType.PUNCT, p, line, col)
                return
        raise LexError(f"unexpected character {self._peek()!r}", line, col)


def tokenize(source: str) -> List[Token]:
    """Tokenize C source; returns tokens ending with EOF."""
    return Lexer(source).run()
