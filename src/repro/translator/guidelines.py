"""Automated §7 programming guidelines: a linter for ParADE OpenMP code.

The paper closes with guidelines for getting performance out of OpenMP on
a cluster; this module turns them into static diagnostics over the
translator's AST:

* **G1 — annotate scopes explicitly.**  "the default scope of variables in
  a parallel block is shared ... careless development of applications
  increases network traffic": flag every variable that falls to the
  implicit shared default.
* **G2 — prefer reduction/atomic over critical.**  "the programmers are
  guided to use the reduction clause or the atomic directive instead of
  the critical directive": flag analyzable criticals that could be
  atomic/reduction.
* **G3 — keep critical sections lexically analyzable.**  "it is highly
  recommended to write a lexically analyzable code block": flag criticals
  containing calls (they fall back to the SDSM lock).
* **G4 — small sync data under the threshold.**  flag
  critical/single blocks whose shared footprint exceeds the hybrid
  threshold (they stay on the slow page path).
* **G5 — privatise temporaries.**  "declaring the arrays used temporarily
  to store intermediate values as local variables within a parallel
  block" reduces shared pages: flag shared arrays that are written before
  ever being read inside the region (pure scratch).
* **O1 — partitioned-array locality (§8).**  The paper's future-work
  translator "can analyze locality of arrays. If arrays are partitioned
  across nodes, then the synchronization for the arrays is not required":
  report shared arrays that are only ever indexed by the enclosing
  omp-for loop variable — each thread touches a disjoint block, so their
  pages never need invalidation between iterations (an optimisation
  opportunity, not a violation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.translator import c_ast as A
from repro.translator.analysis import (
    HYBRID_THRESHOLD,
    analyze_region,
    body_is_lexically_analyzable,
    build_symbols,
    find_update_statement,
    shared_footprint_bytes,
)
from repro.translator.parser import parse


@dataclass(frozen=True)
class Diagnostic:
    rule: str          # G1..G5
    message: str
    function: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.rule}] {self.function}: {self.message}"


def _first_accesses(body: A.Node) -> dict:
    """name -> 'read'/'write' for the first access of each identifier,
    walking in (approximate) program order."""
    first: dict = {}

    def note(name, kind):
        if name not in first:
            first[name] = kind

    def visit(node):
        if isinstance(node, A.Assign):
            visit(node.value)
            t = node.target
            if isinstance(t, A.Index) and isinstance(t.base, A.Ident):
                if node.op != "=":
                    note(t.base.name, "read")
                visit(t.index)
                note(t.base.name, "write")
                return
            if isinstance(t, A.Ident):
                if node.op != "=":
                    note(t.name, "read")
                note(t.name, "write")
                return
            visit(t)
            return
        if isinstance(node, A.Ident):
            note(node.name, "read")
            return
        for c in node.children():
            visit(c)

    visit(body)
    return first


def lint(source: str, hybrid_threshold: int = HYBRID_THRESHOLD) -> List[Diagnostic]:
    """Run all §7 guideline checks on OpenMP-C *source*."""
    unit = parse(source)
    out: List[Diagnostic] = []
    for item in unit.items:
        if isinstance(item, A.FunctionDef):
            out.extend(_lint_function(item, hybrid_threshold))
    return out


def _lint_function(fn: A.FunctionDef, threshold: int) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    table = build_symbols(fn)
    for node in fn.body.walk():
        if not isinstance(node, A.OmpParallel):
            continue
        info = analyze_region(node, fn)
        explicit = (
            set(node.clauses.shared)
            | set(node.clauses.private)
            | set(node.clauses.firstprivate)
            | set(node.clauses.lastprivate)
            | set(node.clauses.reduction_vars())
        )
        # G1: implicitly shared variables
        for name in sorted(info.shared - explicit):
            diags.append(
                Diagnostic(
                    "G1",
                    f"variable '{name}' is implicitly shared; annotate its scope "
                    "explicitly to avoid accidental inter-node traffic (§7)",
                    fn.name,
                )
            )
        # G5: shared arrays used as scratch (first access is a write)
        first = _first_accesses(node.body)
        for name in sorted(info.shared):
            vi = table.lookup(name)
            if vi is None or vi.array_elems is None:
                continue
            if first.get(name) == "write":
                diags.append(
                    Diagnostic(
                        "G5",
                        f"shared array '{name}' is written before being read in the "
                        "region; if it only holds intermediate values, declare it "
                        "inside the parallel block to cut shared pages (§7)",
                        fn.name,
                    )
                )
        shared_names = info.shared | set(node.clauses.reduction_vars())
        for inner in node.body.walk():
            if isinstance(inner, A.OmpCritical):
                analyzable = body_is_lexically_analyzable(inner.body)
                if not analyzable:
                    diags.append(
                        Diagnostic(
                            "G3",
                            "critical section contains a function call: it is not "
                            "lexically analyzable and falls back to the SDSM lock (§7)",
                            fn.name,
                        )
                    )
                    continue
                fp = shared_footprint_bytes(inner.body, table, shared_names)
                if fp > threshold:
                    diags.append(
                        Diagnostic(
                            "G4",
                            f"critical section touches {fp} shared bytes "
                            f"(> {threshold} B threshold): it stays on the page "
                            "protocol; shrink the guarded data (§5.2.1)",
                            fn.name,
                        )
                    )
                    continue
                if find_update_statement(inner.body) is not None:
                    diags.append(
                        Diagnostic(
                            "G2",
                            "critical section is a simple update: prefer "
                            "'#pragma omp atomic' or a reduction clause — they map "
                            "directly to a collective (§7)",
                            fn.name,
                        )
                    )
            elif isinstance(inner, A.OmpFor):
                diags.extend(_check_partitioned_arrays(inner, info, table, fn.name))
            elif isinstance(inner, A.OmpSingle):
                fp = shared_footprint_bytes(inner.body, table, shared_names)
                if fp > threshold:
                    diags.append(
                        Diagnostic(
                            "G4",
                            f"single block touches {fp} shared bytes "
                            f"(> {threshold} B threshold): its result cannot be "
                            "broadcast; it falls back to lock + flag + barrier",
                            fn.name,
                        )
                    )
    return diags


def _check_partitioned_arrays(ompfor: A.OmpFor, info, table, fn_name: str) -> List[Diagnostic]:
    """O1: shared arrays indexed *only* by the loop variable inside an
    omp-for are block-partitioned across threads — candidates for skipping
    inter-node synchronisation (§8)."""
    from repro.translator.analysis import _loop_var

    ivar = _loop_var(ompfor.loop)
    if ivar is None:
        return []
    indexed_by: dict = {}
    for node in ompfor.loop.body.walk():
        if isinstance(node, A.Index) and isinstance(node.base, A.Ident):
            name = node.base.name
            simple = isinstance(node.index, A.Ident) and node.index.name == ivar
            indexed_by.setdefault(name, set()).add("ivar" if simple else "other")
    out: List[Diagnostic] = []
    for name in sorted(indexed_by):
        vi = table.lookup(name)
        if vi is None or vi.array_elems is None or name not in info.shared:
            continue
        if indexed_by[name] == {"ivar"}:
            out.append(
                Diagnostic(
                    "O1",
                    f"shared array '{name}' is only indexed by the loop variable "
                    f"'{ivar}': its access is partitioned across threads, so its "
                    "pages need no inter-node synchronisation (§8 locality analysis)",
                    fn_name,
                )
            )
    return out


def report(source: str, hybrid_threshold: int = HYBRID_THRESHOLD) -> str:
    """Human-readable guideline report."""
    diags = lint(source, hybrid_threshold)
    if not diags:
        return "no guideline violations found"
    lines = [f"{len(diags)} guideline finding(s):"]
    for d in diags:
        lines.append(f"  [{d.rule}] {d.function}: {d.message}")
    return "\n".join(lines)
