"""Token definitions for the C-subset lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    CHAR = "CHAR"
    PUNCT = "PUNCT"
    PRAGMA_OMP = "PRAGMA_OMP"   # one token per '#pragma omp ...' line
    EOF = "EOF"


#: C keywords the subset understands (types + control flow)
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "int", "long", "register", "return", "short", "signed",
        "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while",
    }
)

#: multi-character punctuators, longest first
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ";", ",", ".", "?", ":",
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    col: int

    def is_punct(self, value: str) -> bool:
        return self.type == TokenType.PUNCT and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.type.value}, {self.value!r}, L{self.line})"
