"""Command-line OpenMP translator.

Usage::

    python -m repro.translator input.c [--backend parade|sdsm|both]
                                       [--lint] [--threshold BYTES]
                                       [-o OUTPUT]

Mirrors the paper's tool flow: C with OpenMP 1.0 pragmas in, runtime-API C
out; ``--lint`` additionally prints the §7 guideline report.
"""

from __future__ import annotations

import argparse
import sys

from repro.translator import translate
from repro.translator.analysis import HYBRID_THRESHOLD
from repro.translator.guidelines import report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.translator",
        description="ParADE OpenMP-to-hybrid source translator",
    )
    ap.add_argument("input", help="C source file with OpenMP pragmas ('-' for stdin)")
    ap.add_argument(
        "--backend",
        choices=("parade", "sdsm", "both"),
        default="parade",
        help="translation to emit (default: parade)",
    )
    ap.add_argument("--lint", action="store_true", help="print the §7 guideline report")
    ap.add_argument(
        "--threshold",
        type=int,
        default=HYBRID_THRESHOLD,
        help=f"hybrid message-passing threshold in bytes (default {HYBRID_THRESHOLD})",
    )
    ap.add_argument("-o", "--output", default=None, help="write output here instead of stdout")
    args = ap.parse_args(argv)

    if args.input == "-":
        source = sys.stdin.read()
    else:
        with open(args.input) as f:
            source = f.read()

    chunks = []
    if args.lint:
        chunks.append("/* " + report(source, args.threshold).replace("\n", "\n   ") + " */")
    backends = ("parade", "sdsm") if args.backend == "both" else (args.backend,)
    for be in backends:
        if len(backends) > 1:
            chunks.append(f"/* ===== {be} translation ===== */")
        chunks.append(translate(source, be, hybrid_threshold=args.threshold))
    text = "\n".join(chunks)

    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
