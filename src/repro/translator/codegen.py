"""C code reconstruction from the AST (the reverse C-front of §4)."""

from __future__ import annotations

import io
from typing import Optional

from repro.translator import c_ast as A


class CWriter:
    """Pretty-printer turning AST nodes back into C text."""

    INDENT = "    "

    def __init__(self) -> None:
        self.buf = io.StringIO()
        self.level = 0

    # -- plumbing ---------------------------------------------------------
    def text(self) -> str:
        return self.buf.getvalue()

    def _line(self, s: str = "") -> None:
        self.buf.write(self.INDENT * self.level + s + "\n")

    # -- top level --------------------------------------------------------
    def write_unit(self, unit: A.TranslationUnit) -> str:
        for item in unit.items:
            if isinstance(item, A.FunctionDef):
                self.write_function(item)
                self._line()
            else:
                self.write_stmt(item)
        return self.text()

    def write_function(self, fn: A.FunctionDef) -> None:
        params = ", ".join(self.fmt_param(p) for p in fn.params) or "void"
        self._line(f"{fn.return_type} {fn.name}({params})")
        self.write_stmt(fn.body)

    def fmt_param(self, p: A.Param) -> str:
        s = f"{p.type}"
        if p.name:
            s += f" {p.name}"
        if p.array:
            s += "[]"
        return s

    # -- statements -------------------------------------------------------
    def write_stmt(self, node: A.Node) -> None:
        if isinstance(node, A.Compound):
            self._line("{")
            self.level += 1
            for item in node.items:
                self.write_stmt(item)
            self.level -= 1
            self._line("}")
        elif isinstance(node, A.Decl):
            self._line(self.fmt_decl(node))
        elif isinstance(node, A.FunctionDecl):
            params = ", ".join(self.fmt_param(p) for p in node.params) or "void"
            self._line(f"{node.return_type} {node.name}({params});")
        elif isinstance(node, A.ExprStmt):
            self._line((self.fmt_expr(node.expr) if node.expr else "") + ";")
        elif isinstance(node, A.If):
            self._line(f"if ({self.fmt_expr(node.cond)})")
            self._write_block_or_stmt(node.then)
            if node.other is not None:
                self._line("else")
                self._write_block_or_stmt(node.other)
        elif isinstance(node, A.While):
            self._line(f"while ({self.fmt_expr(node.cond)})")
            self._write_block_or_stmt(node.body)
        elif isinstance(node, A.DoWhile):
            self._line("do")
            self._write_block_or_stmt(node.body)
            self._line(f"while ({self.fmt_expr(node.cond)});")
        elif isinstance(node, A.For):
            init = ""
            if isinstance(node.init, A.Decl):
                init = self.fmt_decl(node.init).rstrip(";")
            elif isinstance(node.init, A.ExprStmt) and node.init.expr is not None:
                init = self.fmt_expr(node.init.expr)
            cond = self.fmt_expr(node.cond) if node.cond is not None else ""
            step = self.fmt_expr(node.step) if node.step is not None else ""
            self._line(f"for ({init}; {cond}; {step})")
            self._write_block_or_stmt(node.body)
        elif isinstance(node, A.Return):
            if node.value is None:
                self._line("return;")
            else:
                self._line(f"return {self.fmt_expr(node.value)};")
        elif isinstance(node, A.Break):
            self._line("break;")
        elif isinstance(node, A.Continue):
            self._line("continue;")
        elif isinstance(node, A.Raw):
            for ln in node.text.splitlines():
                self._line(ln)
        elif isinstance(node, (A.OmpParallel, A.OmpFor, A.OmpCritical, A.OmpAtomic,
                               A.OmpSingle, A.OmpMaster, A.OmpBarrier, A.OmpSections,
                               A.OmpFlush)):
            # Untranslated directive: re-emit as a pragma (identity backend).
            self._write_pragma(node)
        else:  # pragma: no cover - future node kinds
            raise TypeError(f"cannot emit {type(node).__name__}")

    def _write_block_or_stmt(self, node: A.Node) -> None:
        if isinstance(node, A.Compound):
            self.write_stmt(node)
        else:
            self.level += 1
            self.write_stmt(node)
            self.level -= 1

    def _write_pragma(self, node: A.Node) -> None:
        if isinstance(node, A.OmpParallel):
            if node.for_loop and isinstance(node.body, A.OmpFor):
                self._line(f"#pragma omp parallel for{self.fmt_clauses(node.clauses)}")
                self.write_stmt(node.body.loop)
            else:
                self._line(f"#pragma omp parallel{self.fmt_clauses(node.clauses)}")
                self.write_stmt(node.body)
        elif isinstance(node, A.OmpFor):
            self._line(f"#pragma omp for{self.fmt_clauses(node.clauses)}")
            self.write_stmt(node.loop)
        elif isinstance(node, A.OmpCritical):
            name = f" ({node.name})" if node.name else ""
            self._line(f"#pragma omp critical{name}")
            self.write_stmt(node.body)
        elif isinstance(node, A.OmpAtomic):
            self._line("#pragma omp atomic")
            self.write_stmt(node.stmt)
        elif isinstance(node, A.OmpSingle):
            self._line(f"#pragma omp single{self.fmt_clauses(node.clauses)}")
            self.write_stmt(node.body)
        elif isinstance(node, A.OmpMaster):
            self._line("#pragma omp master")
            self.write_stmt(node.body)
        elif isinstance(node, A.OmpBarrier):
            self._line("#pragma omp barrier")
        elif isinstance(node, A.OmpFlush):
            vars_ = f" ({', '.join(node.vars)})" if node.vars else ""
            self._line(f"#pragma omp flush{vars_}")
        elif isinstance(node, A.OmpSections):
            self._line(f"#pragma omp sections{self.fmt_clauses(node.clauses)}")
            self._line("{")
            self.level += 1
            for s in node.sections:
                self._line("#pragma omp section")
                self.write_stmt(s)
            self.level -= 1
            self._line("}")

    def fmt_clauses(self, cl: A.OmpClauses) -> str:
        parts = []
        if cl.shared:
            parts.append(f"shared({', '.join(cl.shared)})")
        if cl.private:
            parts.append(f"private({', '.join(cl.private)})")
        if cl.firstprivate:
            parts.append(f"firstprivate({', '.join(cl.firstprivate)})")
        if cl.lastprivate:
            parts.append(f"lastprivate({', '.join(cl.lastprivate)})")
        for op, names in cl.reductions:
            parts.append(f"reduction({op}: {', '.join(names)})")
        if cl.schedule:
            kind, chunk = cl.schedule
            parts.append(f"schedule({kind}{', ' + chunk if chunk else ''})")
        if cl.num_threads:
            parts.append(f"num_threads({cl.num_threads})")
        if cl.default:
            parts.append(f"default({cl.default})")
        if cl.nowait:
            parts.append("nowait")
        return (" " + " ".join(parts)) if parts else ""

    # -- declarations -------------------------------------------------------
    def fmt_decl(self, decl: A.Decl) -> str:
        parts = []
        for d in decl.declarators:
            s = "*" * d.pointers + d.name
            for dim in d.array_dims:
                s += f"[{self.fmt_expr(dim) if dim is not None else ''}]"
            if d.init is not None:
                s += f" = {self.fmt_expr(d.init)}"
            parts.append(s)
        storage = (decl.storage + " ") if decl.storage else ""
        return f"{storage}{decl.type} {', '.join(parts)};"

    # -- expressions ---------------------------------------------------------
    def fmt_expr(self, e: Optional[A.Expr]) -> str:
        if e is None:
            return ""
        if isinstance(e, A.Ident):
            return e.name
        if isinstance(e, (A.Num, A.Str, A.CharLit)):
            return e.value
        if isinstance(e, A.BinOp):
            return f"({self.fmt_expr(e.left)} {e.op} {self.fmt_expr(e.right)})"
        if isinstance(e, A.UnOp):
            if e.op == "sizeof":
                return f"sizeof({self.fmt_expr(e.operand)})"
            if e.postfix:
                return f"{self.fmt_expr(e.operand)}{e.op}"
            return f"{e.op}{self.fmt_expr(e.operand)}"
        if isinstance(e, A.Assign):
            return f"{self.fmt_expr(e.target)} {e.op} {self.fmt_expr(e.value)}"
        if isinstance(e, A.Cond):
            return f"({self.fmt_expr(e.cond)} ? {self.fmt_expr(e.then)} : {self.fmt_expr(e.other)})"
        if isinstance(e, A.Call):
            args = ", ".join(self.fmt_expr(a) for a in e.args)
            return f"{self.fmt_expr(e.func)}({args})"
        if isinstance(e, A.Index):
            return f"{self.fmt_expr(e.base)}[{self.fmt_expr(e.index)}]"
        if isinstance(e, A.Member):
            sep = "->" if e.arrow else "."
            return f"{self.fmt_expr(e.base)}{sep}{e.name}"
        if isinstance(e, A.Cast):
            return f"(({e.type}){self.fmt_expr(e.operand)})"
        if isinstance(e, A.SizeofType):
            return f"sizeof({e.type})"
        if isinstance(e, A.CommaExpr):
            return ", ".join(self.fmt_expr(p) for p in e.parts)
        raise TypeError(f"cannot format {type(e).__name__}")  # pragma: no cover
