"""Simulated virtual-memory subsystem.

Conventional SDSM systems live on ``mprotect`` + SIGSEGV.  A Python
interpreter cannot take real protection faults, so this package simulates
the mechanism: physical frames, per-address-space page tables with
protections, and :class:`ProtectionFault` delivery on privileged access —
enough to express the paper's *atomic page update problem* (§5.1, Figure 4)
and its four solutions (file mapping, System V shared memory, the custom
``mdup()`` syscall, and fork-child page-table copying), plus the racy naive
approach they all replace.
"""

from repro.vm.memory import PhysicalMemory
from repro.vm.addrspace import (
    AddressSpace,
    ProtectionFault,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    PROT_RW,
)
from repro.vm.strategies import (
    UpdateStrategy,
    NaiveInPlaceStrategy,
    FileMappingStrategy,
    SysVShmStrategy,
    MdupStrategy,
    ForkChildStrategy,
    OSProfile,
    LINUX_24,
    AIX_433,
    strategy_by_name,
    STRATEGY_NAMES,
)

__all__ = [
    "PhysicalMemory",
    "AddressSpace",
    "ProtectionFault",
    "PROT_NONE",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_RW",
    "UpdateStrategy",
    "NaiveInPlaceStrategy",
    "FileMappingStrategy",
    "SysVShmStrategy",
    "MdupStrategy",
    "ForkChildStrategy",
    "OSProfile",
    "LINUX_24",
    "AIX_433",
    "strategy_by_name",
    "STRATEGY_NAMES",
]
