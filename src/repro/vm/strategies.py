"""Atomic page update strategies (§5.1, Figure 4).

When a page-based SDSM services a fault it must write the incoming page
into memory the faulting application must not yet see.  Making the
*application* mapping writable opens a race window: another thread can read
the half-updated page without faulting.  The paper's solutions all create a
**second access path** (a system mapping) to the same physical frame so the
application mapping can stay protected until the update commits:

* file mapping (``mmap`` the same file twice),
* System V shared memory (``shmat`` twice),
* a custom ``mdup()`` syscall duplicating page-table entries,
* a forked child process sharing the frames.

``NaiveInPlaceStrategy`` is the broken baseline that flips the application
protection to read-write for the duration of the update.

Strategies charge per-update CPU costs from an :class:`OSProfile`; the
paper observes all four solutions cost about the same on Linux while file
mapping is pathologically slow on AIX 4.3.3 (IBM SP Night Hawk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.vm.addrspace import AddressSpace, PROT_NONE, PROT_RW


@dataclass(frozen=True)
class OSProfile:
    """Per-OS cost table: strategy name -> (setup_cost, per_update_cost) in
    seconds, on top of the raw page copy."""

    name: str
    costs: Dict[str, tuple]
    #: seconds to copy one byte during the page update (memcpy speed)
    copy_per_byte: float = 6e-10

    def setup_cost(self, strategy: str) -> float:
        return self.costs[strategy][0]

    def update_cost(self, strategy: str) -> float:
        return self.costs[strategy][1]


#: Redhat 8.0 / Linux 2.4.18 SMP (the paper's cluster): all methods comparable.
LINUX_24 = OSProfile(
    name="linux-2.4",
    costs={
        "naive": (0.0, 2.0e-6),
        "file-mapping": (15e-6, 3.0e-6),
        "sysv-shm": (12e-6, 3.0e-6),
        "mdup": (8e-6, 2.5e-6),
        "fork-child": (120e-6, 3.5e-6),
    },
)

#: IBM SP Night Hawk, AIX 4.3.3 PSSP 3.2: file mapping performs poorly (§5.1).
AIX_433 = OSProfile(
    name="aix-4.3.3",
    costs={
        "naive": (0.0, 2.5e-6),
        "file-mapping": (40e-6, 85e-6),
        "sysv-shm": (15e-6, 4.0e-6),
        "mdup": (10e-6, 3.0e-6),
        "fork-child": (300e-6, 4.5e-6),
    },
)


class SimpleExecutor:
    """Minimal cost-charging context for standalone VM tests: charges time
    as plain simulation delay (no CPU contention)."""

    def __init__(self, sim):
        self.sim = sim

    def busy(self, seconds: float):
        yield self.sim.timeout(seconds)


class UpdateStrategy:
    """Base class; subclasses set :attr:`name` and may override mechanics."""

    name = "abstract"
    #: True if a concurrent application access during the update can slip
    #: through without faulting (the §5.1 race)
    racy = False

    def __init__(self, profile: OSProfile = LINUX_24):
        self.profile = profile
        self.setup_done = False
        self.n_updates = 0

    def setup(self, ex):
        """One-time setup (create the file / shm segment / child)."""
        if not self.setup_done:
            yield from ex.busy(self.profile.setup_cost(self.name))
            self.setup_done = True

    def update_page(self, ex, app_space: AddressSpace, vpage: int, data, final_prot: int):
        """Generator: atomically replace *vpage*'s contents with *data* and
        set the application protection to *final_prot*.

        The default implementation writes through the system path (direct
        frame access) in two halves with a context-switch opportunity in
        between — the application mapping stays protected throughout, so
        the race of Figure 4 cannot bite.
        """
        yield from self.setup(ex)
        self.n_updates += 1
        page_size = app_space.page_size
        cost = self.profile.update_cost(self.name) + page_size * self.profile.copy_per_byte
        frame = app_space.frame_of(vpage)
        view = app_space.phys.frame_view(frame)
        buf = self._as_bytes(data, page_size)

        half = page_size // 2
        yield from ex.busy(cost / 2)
        view[:half] = np.frombuffer(buf[:half], dtype=np.uint8)
        # Deliberate interleaving point: other threads may run here.  With a
        # separate system path the app mapping is still protected, so any
        # concurrent access faults and blocks (TRANSIENT/BLOCKED states).
        yield from ex.busy(cost / 2)
        view[half:] = np.frombuffer(buf[half:], dtype=np.uint8)
        app_space.protect(vpage, final_prot)

    @staticmethod
    def _as_bytes(data, page_size: int) -> bytes:
        buf = bytes(data)
        if len(buf) != page_size:
            raise ValueError(f"page update of {len(buf)} bytes != page size {page_size}")
        return buf


class NaiveInPlaceStrategy(UpdateStrategy):
    """The broken approach: make the *application* mapping writable, copy
    in place, then re-protect.  Between the two protection changes another
    application thread can read torn data without faulting."""

    name = "naive"
    racy = True

    def update_page(self, ex, app_space, vpage, data, final_prot):
        yield from self.setup(ex)
        self.n_updates += 1
        page_size = app_space.page_size
        cost = self.profile.update_cost(self.name) + page_size * self.profile.copy_per_byte
        buf = self._as_bytes(data, page_size)
        frame = app_space.frame_of(vpage)
        view = app_space.phys.frame_view(frame)

        # Open the race window: app mapping becomes writable (and readable).
        app_space.protect(vpage, PROT_RW)
        half = page_size // 2
        yield from ex.busy(cost / 2)
        view[:half] = np.frombuffer(buf[:half], dtype=np.uint8)
        yield from ex.busy(cost / 2)  # <-- torn-read window (T1 in Figure 4)
        view[half:] = np.frombuffer(buf[half:], dtype=np.uint8)
        app_space.protect(vpage, final_prot)


class FileMappingStrategy(UpdateStrategy):
    """mmap() the backing file a second time for the system path."""

    name = "file-mapping"


class SysVShmStrategy(UpdateStrategy):
    """shmget()/shmat() the segment twice; each attach gets its own vaddr."""

    name = "sysv-shm"


class MdupStrategy(UpdateStrategy):
    """The paper's custom ``mdup()`` syscall: duplicate the page-table
    entries of an anonymous region into a detour mapping."""

    name = "mdup"


class ForkChildStrategy(UpdateStrategy):
    """Fork a child sharing the frames (no COW on shared memory); the child
    provides the second access path."""

    name = "fork-child"


_STRATEGIES = {
    cls.name: cls
    for cls in (
        NaiveInPlaceStrategy,
        FileMappingStrategy,
        SysVShmStrategy,
        MdupStrategy,
        ForkChildStrategy,
    )
}

STRATEGY_NAMES = tuple(sorted(_STRATEGIES))


def strategy_by_name(name: str, profile: OSProfile = LINUX_24) -> UpdateStrategy:
    try:
        return _STRATEGIES[name](profile=profile)
    except KeyError:
        raise KeyError(f"unknown strategy {name!r}; choose from {STRATEGY_NAMES}") from None
