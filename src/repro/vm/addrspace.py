"""Address spaces: per-process page tables with protections.

Access checks emulate the MMU: a read or write whose protection bits do not
permit it raises :class:`ProtectionFault` — the simulation's SIGSEGV.  The
DSM fault handler catches it, services the page, and retries, exactly like
the user-level signal-handler loop of a page-based SDSM (§5.2.3).

The page table is stored as two dense numpy arrays (``_prot`` and
``_frames``, indexed by virtual page; frame ``-1`` means unmapped) instead
of a dict of PTE objects, so range checks, contiguity checks and bulk
copies over identity-mapped pools are O(1) numpy operations rather than
per-page Python loops.  ``version`` increments on every mapping or
protection change; callers (the DSM fast path) use it to invalidate
cached "this range is accessible" decisions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.vm.memory import PhysicalMemory

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_RW = PROT_READ | PROT_WRITE


class ProtectionFault(Exception):
    """SIGSEGV: privileged access violated the page protection."""

    def __init__(self, vpage: int, addr: int, is_write: bool):
        kind = "write" if is_write else "read"
        super().__init__(f"{kind} fault at addr {addr:#x} (vpage {vpage})")
        self.vpage = vpage
        self.addr = addr
        self.is_write = is_write


class AddressSpace:
    """One virtual address space mapping pages onto physical frames."""

    def __init__(self, phys: PhysicalMemory, page_size: Optional[int] = None, name: str = "as"):
        self.phys = phys
        self.page_size = page_size or phys.frame_size
        if self.page_size != phys.frame_size:
            raise ValueError("page size must equal frame size")
        self.name = name
        self._prot = np.zeros(0, dtype=np.int64)
        self._frames = np.full(0, -1, dtype=np.int64)
        #: bumped on every map/unmap/protect; lets the DSM fast path cache
        #: positive access checks and invalidate them precisely
        self.version = 0
        self.n_faults = 0

    # -- mapping ---------------------------------------------------------
    def _ensure(self, n_pages: int) -> None:
        """Grow the page-table arrays to cover at least *n_pages* pages."""
        if n_pages <= len(self._frames):
            return
        cap = max(n_pages, 2 * len(self._frames), 16)
        prot = np.zeros(cap, dtype=np.int64)
        frames = np.full(cap, -1, dtype=np.int64)
        prot[: len(self._prot)] = self._prot
        frames[: len(self._frames)] = self._frames
        self._prot = prot
        self._frames = frames

    def map(self, vpage: int, frame: int, prot: int = PROT_READ) -> None:
        self.phys._check(frame)
        self._ensure(vpage + 1)
        self._frames[vpage] = frame
        self._prot[vpage] = prot
        self.version += 1

    def map_identity(self, n_pages: int, prot: int = PROT_NONE) -> None:
        """Map vpage i -> frame i for i in [0, n_pages)."""
        if n_pages > 0:
            self.phys._check(n_pages - 1)
        self._ensure(n_pages)
        self._frames[:n_pages] = np.arange(n_pages, dtype=np.int64)
        self._prot[:n_pages] = prot
        self.version += 1

    def unmap(self, vpage: int) -> None:
        if vpage < len(self._frames) and self._frames[vpage] >= 0:
            self._frames[vpage] = -1
            self._prot[vpage] = PROT_NONE
            self.version += 1

    def protect(self, vpage: int, prot: int) -> None:
        """mprotect(2) analogue for a single page."""
        if vpage >= len(self._frames) or self._frames[vpage] < 0:
            raise KeyError(f"vpage {vpage} not mapped in {self.name}")
        self._prot[vpage] = prot
        self.version += 1

    def protection(self, vpage: int) -> int:
        if vpage >= len(self._prot):
            return PROT_NONE
        return int(self._prot[vpage])

    def is_mapped(self, vpage: int) -> bool:
        return vpage < len(self._frames) and self._frames[vpage] >= 0

    def frame_of(self, vpage: int) -> int:
        if vpage >= len(self._frames) or self._frames[vpage] < 0:
            raise KeyError(f"vpage {vpage} not mapped in {self.name}")
        return int(self._frames[vpage])

    # -- checked access ----------------------------------------------------
    def check_range(self, addr: int, size: int, write: bool) -> None:
        """Raise ProtectionFault at the first offending page in the range."""
        if size <= 0:
            return
        need = PROT_WRITE if write else PROT_READ
        ps = self.page_size
        first = addr // ps
        last = (addr + size - 1) // ps
        prot = self._prot
        if last < len(prot):
            if last - first < 4:
                # scalar probes; numpy's slice+reduce costs ~6us of fixed
                # overhead, an order of magnitude over a couple of indexed
                # reads — and 1-2 page ranges are the common case
                for vp in range(first, last + 1):
                    if not (prot[vp] & need):
                        break
                else:
                    return
            elif (prot[first : last + 1] & need).all():
                return
        # fault: locate the first offending page for the handler
        for vp in range(first, last + 1):
            p = prot[vp] if vp < len(prot) else PROT_NONE
            if not (p & need):
                self.n_faults += 1
                fault_addr = max(addr, vp * ps)
                raise ProtectionFault(vp, fault_addr, write)

    def can_access(self, addr: int, size: int, write: bool) -> bool:
        """:meth:`check_range` as a predicate: True iff the whole range is
        accessible.  Never raises and never counts a fault — this is the
        probe the DSM fast path uses before deciding to take the slow
        (generator) fault-service route."""
        if size <= 0:
            return True
        need = PROT_WRITE if write else PROT_READ
        ps = self.page_size
        first = addr // ps
        last = (addr + size - 1) // ps
        prot = self._prot
        if last >= len(prot):
            return False
        if last - first < 4:  # scalar probes, as in check_range
            for vp in range(first, last + 1):
                if not (prot[vp] & need):
                    return False
            return True
        return bool((prot[first : last + 1] & need).all())

    def read(self, addr: int, size: int) -> bytes:
        """Protection-checked read of raw bytes."""
        self.check_range(addr, size, write=False)
        return self._copy_out(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Protection-checked write of raw bytes."""
        data = bytes(data)
        self.check_range(addr, len(data), write=True)
        self._copy_in(addr, data)

    def view(self, addr: int, size: int) -> np.ndarray:
        """Zero-copy uint8 view (valid only for ranges within one contiguity
        run of frames; identity mappings always qualify)."""
        start = self._contig_start(addr, size)
        if start is None:
            # distinguish "unmapped" from "mapped but scattered"
            ps = self.page_size
            first = addr // ps
            last = (addr + size - 1) // ps
            for vp in range(first, last + 1):
                if not self.is_mapped(vp):
                    raise KeyError(f"vpage {vp} not mapped in {self.name}")
            raise ValueError(
                f"view [{addr:#x}, +{size}) spans non-contiguous frames in {self.name}"
            )
        return self.phys.buffer[start : start + size]

    # -- unchecked plumbing ------------------------------------------------
    def _contig_start(self, addr: int, size: int) -> Optional[int]:
        """Physical offset of *addr* if [addr, addr+size) lies on one run of
        consecutive frames; None if any page is unmapped or scattered."""
        ps = self.page_size
        first = addr // ps
        last = (addr + size - 1) // ps
        frames = self._frames
        if last >= len(frames):
            return None
        base = frames[first]
        if base < 0:
            return None
        if last != first:
            seg = frames[first : last + 1]
            if not (np.diff(seg) == 1).all():
                return None
        return int(base) * ps + (addr % ps)

    def _copy_out(self, addr: int, size: int) -> bytes:
        start = self._contig_start(addr, size)
        if start is not None:
            return self.phys.buffer[start : start + size].tobytes()
        out = bytearray()
        pos = addr
        remaining = size
        while remaining > 0:
            vp = pos // self.page_size
            off = pos % self.page_size
            n = min(remaining, self.page_size - off)
            view = self.phys.frame_view(self.frame_of(vp))
            out += view[off : off + n].tobytes()
            pos += n
            remaining -= n
        return bytes(out)

    def _copy_in(self, addr: int, data: bytes) -> None:
        start = self._contig_start(addr, len(data))
        if start is not None:
            self.phys.buffer[start : start + len(data)] = np.frombuffer(
                data, dtype=np.uint8
            )
            return
        pos = addr
        i = 0
        while i < len(data):
            vp = pos // self.page_size
            off = pos % self.page_size
            n = min(len(data) - i, self.page_size - off)
            view = self.phys.frame_view(self.frame_of(vp))
            view[off : off + n] = np.frombuffer(data[i : i + n], dtype=np.uint8)
            pos += n
            i += n
