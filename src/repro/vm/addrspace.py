"""Address spaces: per-process page tables with protections.

Access checks emulate the MMU: a read or write whose protection bits do not
permit it raises :class:`ProtectionFault` — the simulation's SIGSEGV.  The
DSM fault handler catches it, services the page, and retries, exactly like
the user-level signal-handler loop of a page-based SDSM (§5.2.3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.vm.memory import PhysicalMemory

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_RW = PROT_READ | PROT_WRITE


class ProtectionFault(Exception):
    """SIGSEGV: privileged access violated the page protection."""

    def __init__(self, vpage: int, addr: int, is_write: bool):
        kind = "write" if is_write else "read"
        super().__init__(f"{kind} fault at addr {addr:#x} (vpage {vpage})")
        self.vpage = vpage
        self.addr = addr
        self.is_write = is_write


class _PTE:
    __slots__ = ("frame", "prot")

    def __init__(self, frame: int, prot: int):
        self.frame = frame
        self.prot = prot


class AddressSpace:
    """One virtual address space mapping pages onto physical frames."""

    def __init__(self, phys: PhysicalMemory, page_size: Optional[int] = None, name: str = "as"):
        self.phys = phys
        self.page_size = page_size or phys.frame_size
        if self.page_size != phys.frame_size:
            raise ValueError("page size must equal frame size")
        self.name = name
        self._pt: Dict[int, _PTE] = {}
        self.n_faults = 0

    # -- mapping ---------------------------------------------------------
    def map(self, vpage: int, frame: int, prot: int = PROT_READ) -> None:
        self.phys._check(frame)
        self._pt[vpage] = _PTE(frame, prot)

    def map_identity(self, n_pages: int, prot: int = PROT_NONE) -> None:
        """Map vpage i -> frame i for i in [0, n_pages)."""
        for i in range(n_pages):
            self.map(i, i, prot)

    def unmap(self, vpage: int) -> None:
        self._pt.pop(vpage, None)

    def protect(self, vpage: int, prot: int) -> None:
        """mprotect(2) analogue for a single page."""
        pte = self._pt.get(vpage)
        if pte is None:
            raise KeyError(f"vpage {vpage} not mapped in {self.name}")
        pte.prot = prot

    def protection(self, vpage: int) -> int:
        pte = self._pt.get(vpage)
        return PROT_NONE if pte is None else pte.prot

    def is_mapped(self, vpage: int) -> bool:
        return vpage in self._pt

    def frame_of(self, vpage: int) -> int:
        return self._pt[vpage].frame

    # -- checked access ----------------------------------------------------
    def check_range(self, addr: int, size: int, write: bool) -> None:
        """Raise ProtectionFault at the first offending page in the range."""
        if size <= 0:
            return
        need = PROT_WRITE if write else PROT_READ
        first = addr // self.page_size
        last = (addr + size - 1) // self.page_size
        for vp in range(first, last + 1):
            pte = self._pt.get(vp)
            if pte is None or not (pte.prot & need):
                self.n_faults += 1
                fault_addr = max(addr, vp * self.page_size)
                raise ProtectionFault(vp, fault_addr, write)

    def read(self, addr: int, size: int) -> bytes:
        """Protection-checked read of raw bytes."""
        self.check_range(addr, size, write=False)
        return self._copy_out(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Protection-checked write of raw bytes."""
        data = bytes(data)
        self.check_range(addr, len(data), write=True)
        self._copy_in(addr, data)

    def view(self, addr: int, size: int) -> np.ndarray:
        """Zero-copy uint8 view (valid only for ranges within one contiguity
        run of frames; identity mappings always qualify)."""
        first = addr // self.page_size
        last = (addr + size - 1) // self.page_size
        base_frame = self._pt[first].frame
        for vp in range(first, last + 1):
            if self._pt[vp].frame != base_frame + (vp - first):
                raise ValueError("view spans non-contiguous frames")
        start = base_frame * self.page_size + (addr % self.page_size)
        return self.phys.buffer[start : start + size]

    # -- unchecked plumbing ------------------------------------------------
    def _copy_out(self, addr: int, size: int) -> bytes:
        out = bytearray()
        pos = addr
        remaining = size
        while remaining > 0:
            vp = pos // self.page_size
            off = pos % self.page_size
            n = min(remaining, self.page_size - off)
            frame = self._pt[vp].frame
            view = self.phys.frame_view(frame)
            out += view[off : off + n].tobytes()
            pos += n
            remaining -= n
        return bytes(out)

    def _copy_in(self, addr: int, data: bytes) -> None:
        pos = addr
        i = 0
        while i < len(data):
            vp = pos // self.page_size
            off = pos % self.page_size
            n = min(len(data) - i, self.page_size - off)
            frame = self._pt[vp].frame
            view = self.phys.frame_view(frame)
            view[off : off + n] = np.frombuffer(data[i : i + n], dtype=np.uint8)
            pos += n
            i += n
