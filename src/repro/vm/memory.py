"""Physical memory: a flat array of fixed-size frames per node."""

from __future__ import annotations

import numpy as np


class PhysicalMemory:
    """Frame-granular physical memory backed by one numpy buffer.

    Frame *i* occupies bytes ``[i*frame_size, (i+1)*frame_size)`` of
    :attr:`buffer`.  Views are zero-copy numpy slices, so DSM "pages" handed
    to applications alias this storage directly.
    """

    def __init__(self, n_frames: int, frame_size: int):
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        if frame_size < 1:
            raise ValueError(f"frame_size must be >= 1, got {frame_size}")
        self.n_frames = n_frames
        self.frame_size = frame_size
        self.buffer = np.zeros(n_frames * frame_size, dtype=np.uint8)

    def frame_view(self, frame: int) -> np.ndarray:
        """Zero-copy view of one frame."""
        self._check(frame)
        off = frame * self.frame_size
        return self.buffer[off : off + self.frame_size]

    def read_frame(self, frame: int) -> bytes:
        return self.frame_view(frame).tobytes()

    def write_frame(self, frame: int, data) -> None:
        view = self.frame_view(frame)
        arr = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data
        if arr.size != self.frame_size:
            raise ValueError(
                f"frame write size {arr.size} != frame size {self.frame_size}"
            )
        view[:] = arr

    def _check(self, frame: int) -> None:
        if not (0 <= frame < self.n_frames):
            raise IndexError(f"frame {frame} out of range [0, {self.n_frames})")
