"""Trace CLI: run a registered app with tracing on and export the trace.

Usage::

    python -m repro.trace                      # helmholtz, 4 nodes, parade
    python -m repro.trace cg --nodes 8 --mode sdsm -o cg.trace.json
    python -m repro.trace helmholtz --csv hh.csv --cats dsm.page,dsm.barrier
    python -m repro.trace helmholtz --jsonl hh.jsonl   # diff-able event log
    python -m repro.trace diff A.jsonl B.jsonl # align two runs, report deltas
    python -m repro.trace --list               # show registered workloads

The JSON output loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: each cluster node is a process, each simulation
thread (OpenMP threads, the communication thread, node agents) is a
track.  Unless ``--no-check`` is given, the run's recorded page-state
transitions and barrier epochs are replayed against the protocol
specification and violations fail the command (exit code 2).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.trace.events import ALL_CATEGORIES
from repro.trace.recorder import TraceRecorder
from repro.trace.export import write_chrome_json, write_csv_events
from repro.trace.checker import check_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="run a registered ParADE app with event tracing and "
        "export a Chrome trace (Perfetto-loadable) plus optional CSV",
    )
    parser.add_argument(
        "app", nargs="?", default="helmholtz",
        help="registered workload name (see --list); default: helmholtz",
    )
    parser.add_argument("--list", action="store_true", help="list registered workloads and exit")
    parser.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument(
        "--mode", choices=("parade", "sdsm"), default="parade",
        help="hybrid ParADE translation or conventional SDSM (default parade)",
    )
    parser.add_argument(
        "--exec", dest="exec_name", default="2Thread-2CPU",
        help="execution configuration: 1Thread-1CPU, 1Thread-2CPU or "
        "2Thread-2CPU (default)",
    )
    parser.add_argument(
        "-o", "--out", default="trace.json",
        help="Chrome trace-event JSON output path (default trace.json)",
    )
    parser.add_argument("--csv", default=None, help="also write a flat CSV of events")
    parser.add_argument(
        "--jsonl", default=None,
        help="also write one JSON object per event (input of the diff subcommand)",
    )
    parser.add_argument(
        "--ring", type=int, default=1 << 18,
        help="trace ring capacity in events (default 262144); oldest evicted",
    )
    parser.add_argument(
        "--cats", default=None,
        help="comma-separated categories to record (default: all except 'sim'); "
        f"known: {','.join(sorted(ALL_CATEGORIES))}",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="skip the protocol replay check of the recorded trace",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] == "diff":
        from repro.trace.diff import main_diff

        return main_diff(raw[1:])
    args = _build_parser().parse_args(raw)

    # imported here so `--help` stays fast and dependency-light
    from repro.bench.figures import registered_programs
    from repro.runtime import ParadeRuntime, ALL_EXEC_CONFIGS

    registry = registered_programs()
    if args.list:
        for name, entry in sorted(registry.items()):
            print(f"{name:<12} {entry['figure']:<6} {entry['note']}")
        return 0

    entry = registry.get(args.app)
    if entry is None:
        print(
            f"unknown app {args.app!r}; registered: {', '.join(sorted(registry))}",
            file=sys.stderr,
        )
        return 1
    exec_config = next((ec for ec in ALL_EXEC_CONFIGS if ec.name == args.exec_name), None)
    if exec_config is None:
        names = ", ".join(ec.name for ec in ALL_EXEC_CONFIGS)
        print(f"unknown exec config {args.exec_name!r}; use one of: {names}", file=sys.stderr)
        return 1
    if args.ring <= 0:
        print(f"--ring must be positive, got {args.ring}", file=sys.stderr)
        return 1
    if args.nodes < 1:
        print(f"--nodes must be >= 1, got {args.nodes}", file=sys.stderr)
        return 1
    categories = None
    if args.cats:
        categories = frozenset(c.strip() for c in args.cats.split(",") if c.strip())
        unknown = categories - ALL_CATEGORIES
        if unknown:
            print(f"unknown categories: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 1

    rt = ParadeRuntime(
        n_nodes=args.nodes,
        exec_config=exec_config,
        mode=args.mode,
        pool_bytes=entry["pool_bytes"],
    )
    recorder = TraceRecorder(rt.sim, capacity=args.ring, categories=categories)
    result = rt.run(entry["factory"]())

    events = recorder.events
    label = f"{args.app}/{args.mode}/{args.nodes}n/{exec_config.name}"
    n_records = write_chrome_json(events, args.out, label=label)
    print(f"{label}: elapsed {result.elapsed * 1e3:.3f} ms (virtual)")
    print(
        f"trace: {len(events)} events ({recorder.n_dropped} evicted, "
        f"ring {recorder.capacity}) -> {args.out} ({n_records} records)"
    )
    for cat, n in sorted(recorder.counts_by_category().items()):
        print(f"  {cat:<12} {n}")
    if args.csv:
        n_rows = write_csv_events(events, args.csv)
        print(f"csv  : {n_rows} rows -> {args.csv}")
    if args.jsonl:
        from repro.trace.export import write_jsonl

        n_lines = write_jsonl(events, args.jsonl)
        print(f"jsonl: {n_lines} events -> {args.jsonl}")

    if not args.no_check:
        report = check_trace(events)
        print(report.summary())
        if not report.ok:
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
