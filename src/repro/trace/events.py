"""Trace event type and category vocabulary.

One :class:`TraceEvent` is either an *instant* (``dur is None``) or a
*span* (``dur`` in virtual seconds).  Events carry:

``ts``
    virtual time of the event (span start), in seconds;
``cat``
    one of the category constants below — the unit of filtering;
``name``
    the event kind within its category (e.g. ``page-state``, ``fetch``);
``node``
    cluster node id, or ``-1`` for simulator-kernel events that have no
    node (they export under the pseudo-process :data:`SIM_PID`);
``tid``
    the emitting track — by default the label of the simulation process
    that was running (``omp[2.1]r3``, ``comm[0]``, ``master`` ...), which
    is exactly the paper's thread structure;
``args``
    flat dict of event-specific detail (page, epoch, bytes, reason ...).

Categories
----------

========================  ====================================================
:data:`CAT_SIM`           kernel scheduling: process resume/block/end
:data:`CAT_NET`           message send/deliver, NIC transmit occupancy
:data:`CAT_PAGE`          page-state transitions, faults, fetches, twins,
                          diffs, home migration
:data:`CAT_LOCK`          distributed lock acquire/release/grant
:data:`CAT_BARRIER`       barrier arrive/release spans, epoch bookkeeping
:data:`CAT_MPI`           comm-thread message service, receive matching,
                          collectives
:data:`CAT_RUNTIME`       parallel-region and OpenMP-barrier spans
:data:`CAT_COUNTER`       sampled counter series (``ph: "C"`` in the Chrome
                          export): event-queue depth, per-node page-state
                          census at barriers
:data:`CAT_CHAOS`         fault injection and recovery: injected
                          drops/dups/delays/corruptions, retransmissions,
                          duplicate suppression, plus the ``reliability``
                          counter series (retransmit/duplicate/drop depth)
========================  ====================================================

:data:`DEFAULT_CATEGORIES` is everything except :data:`CAT_SIM`: kernel
scheduling events fire on every process resume and would dominate the
ring; opt in with ``categories=ALL_CATEGORIES``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

CAT_SIM = "sim"
CAT_NET = "net"
CAT_PAGE = "dsm.page"
CAT_LOCK = "dsm.lock"
CAT_BARRIER = "dsm.barrier"
CAT_MPI = "mpi"
CAT_RUNTIME = "runtime"
CAT_COUNTER = "counter"
CAT_CHAOS = "chaos"

ALL_CATEGORIES = frozenset(
    {CAT_SIM, CAT_NET, CAT_PAGE, CAT_LOCK, CAT_BARRIER, CAT_MPI, CAT_RUNTIME,
     CAT_COUNTER, CAT_CHAOS}
)
DEFAULT_CATEGORIES = ALL_CATEGORIES - {CAT_SIM}

#: exported Chrome pid for node == -1 (simulator-kernel) events
SIM_PID = 999


class TraceEvent:
    """One recorded instant, span, or counter sample; see module docstring.

    ``ph`` is ``None`` for instants/spans (the exporter derives the Chrome
    phase from ``dur``) and ``"C"`` for counter samples, whose ``args`` are
    the numeric series values at ``ts``.
    """

    __slots__ = ("ts", "dur", "cat", "name", "node", "tid", "args", "ph")

    def __init__(
        self,
        ts: float,
        cat: str,
        name: str,
        node: int = -1,
        tid: str = "main",
        dur: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
        ph: Optional[str] = None,
    ):
        self.ts = ts
        self.dur = dur
        self.cat = cat
        self.name = name
        self.node = node
        self.tid = tid
        self.args = args
        self.ph = ph

    @property
    def is_span(self) -> bool:
        return self.dur is not None

    @property
    def is_counter(self) -> bool:
        return self.ph == "C"

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "ts": self.ts,
            "dur": self.dur,
            "cat": self.cat,
            "name": self.name,
            "node": self.node,
            "tid": self.tid,
            "args": dict(self.args) if self.args else {},
        }
        if self.ph is not None:
            out["ph"] = self.ph
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"span dur={self.dur:.3e}" if self.is_span else "instant"
        return (
            f"<TraceEvent {self.cat}/{self.name} t={self.ts:.6e} "
            f"node={self.node} tid={self.tid!r} {kind} {self.args or {}}>"
        )
