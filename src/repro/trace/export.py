"""Trace exporters: Chrome trace-event JSON and flat CSV.

The Chrome format is the `trace-event` JSON that Perfetto and
``chrome://tracing`` load: a ``traceEvents`` array of records with
``ph`` (phase), ``ts``/``dur`` (microseconds), ``pid``, ``tid``,
``name``, ``cat`` and ``args``.  The mapping chosen here mirrors the
paper's deployment:

* **process (pid)** = cluster node (``node0`` .. ``nodeN-1``); simulator
  kernel events (node ``-1``) appear under a ``simulator`` pseudo-process;
* **thread (tid)** = the simulation process that emitted the event —
  OpenMP threads (``omp[n.t]rK``), the per-node communication thread
  (``comm[n]``), node agents and the master program each get a track;
* spans are ``ph: "X"`` complete events, instants are ``ph: "i"`` with
  thread scope;
* each cross-node message becomes a **flow** (``ph: "s"`` at the
  ``net/msg-send`` instant, ``ph: "f"`` at the matching
  ``net/msg-deliver``), keyed by the message's wire ``seq`` — Perfetto
  draws these as arrows from the sending track to the delivering track.
  Loopback sends have no deliver event and get no flow.

String track names are assigned stable numeric tids per process and
published via ``thread_name`` metadata records, as the format requires.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Iterable, List

from repro.trace.events import TraceEvent, SIM_PID

_S_TO_US = 1e6


def _pid(node: int) -> int:
    return node if node >= 0 else SIM_PID


def to_chrome(events: Iterable[TraceEvent], label: str = "repro") -> Dict[str, Any]:
    """Build the Chrome trace-event dict for *events*.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ns", ...}``;
    serialise with :func:`write_chrome_json`.
    """
    events = list(events)
    trace_events: List[Dict[str, Any]] = []
    # (pid, tid-string) -> numeric tid; names published as metadata.
    tid_map: Dict[tuple, int] = {}

    # First pass: wire seqs that have BOTH ends recorded.  Loopback
    # messages emit msg-send only; an unmatched flow start would dangle
    # (Perfetto renders it as an arrow to nowhere), so those get none.
    sent, delivered = set(), set()
    for ev in events:
        if ev.cat == "net" and ev.args:
            seq = ev.args.get("seq")
            if seq is not None:
                if ev.name == "msg-send":
                    sent.add(seq)
                elif ev.name == "msg-deliver":
                    delivered.add(seq)
    flow_seqs = sent & delivered

    def tid_of(pid: int, tid: str) -> int:
        key = (pid, tid)
        num = tid_map.get(key)
        if num is None:
            num = len([1 for (p, _t) in tid_map if p == pid]) + 1
            tid_map[key] = num
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": num,
                    "args": {"name": tid},
                }
            )
        return num

    pids_seen = set()
    for ev in events:
        pid = _pid(ev.node)
        if pid not in pids_seen:
            pids_seen.add(pid)
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "args": {"name": f"node{ev.node}" if ev.node >= 0 else "simulator"},
                }
            )
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_sort_index",
                    "pid": pid,
                    "args": {"sort_index": pid},
                }
            )
        record: Dict[str, Any] = {
            "name": ev.name,
            "cat": ev.cat,
            "ts": ev.ts * _S_TO_US,
            "pid": pid,
            "tid": tid_of(pid, ev.tid),
            "args": dict(ev.args) if ev.args else {},
        }
        if ev.is_counter:
            # Counter series: args are the stacked numeric values.  Chrome
            # keys counter tracks by (pid, name); tid is carried but unused.
            record["ph"] = "C"
        elif ev.is_span:
            record["ph"] = "X"
            record["dur"] = ev.dur * _S_TO_US
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)

        if ev.cat == "net" and ev.args and ev.args.get("seq") in flow_seqs:
            if ev.name == "msg-send":
                flow_ph = "s"
            elif ev.name == "msg-deliver":
                flow_ph = "f"
            else:
                continue
            flow: Dict[str, Any] = {
                "ph": flow_ph,
                "name": "msg",
                "cat": "net.flow",
                "id": int(ev.args["seq"]),
                "ts": record["ts"],
                "pid": pid,
                "tid": record["tid"],
            }
            if flow_ph == "f":
                # bind to the enclosing slice's end so the arrow lands on
                # the deliver instant rather than the next slice
                flow["bp"] = "e"
            trace_events.append(flow)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.trace", "label": label, "clock": "virtual"},
    }


def write_chrome_json(events: Iterable[TraceEvent], path: str, label: str = "repro") -> int:
    """Write the Chrome trace JSON to *path*; returns the event count."""
    doc = to_chrome(events, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
    return len(doc["traceEvents"])


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """One JSON object per line (:meth:`TraceEvent.as_dict`); the input
    format of ``python -m repro.trace diff``.  Returns the line count."""
    n = 0
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev.as_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load events written by :func:`write_jsonl`."""
    out: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            out.append(
                TraceEvent(
                    ts=d["ts"],
                    cat=d["cat"],
                    name=d["name"],
                    node=d.get("node", -1),
                    tid=d.get("tid", "main"),
                    dur=d.get("dur"),
                    args=d.get("args") or None,
                    ph=d.get("ph"),
                )
            )
    return out


def write_csv_events(events: Iterable[TraceEvent], path: str) -> int:
    """Flat CSV export (one row per event; args as JSON); returns row count."""
    n = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["ts", "dur", "cat", "name", "node", "tid", "args"])
        for ev in events:
            writer.writerow(
                [
                    repr(ev.ts),
                    "" if ev.dur is None else repr(ev.dur),
                    ev.cat,
                    ev.name,
                    ev.node,
                    ev.tid,
                    json.dumps(ev.args or {}, sort_keys=True),
                ]
            )
            n += 1
    return n
