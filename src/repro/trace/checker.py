"""Trace replay checker: protocol correctness from recorded events.

A trace is more than a visualisation — it is a transcript of the DSM
protocol.  :func:`check_trace` replays that transcript against the
specification and reports violations:

* **page-state machine** — every ``dsm.page/page-state`` event must be a
  legal Figure-5 transition (:data:`repro.dsm.states.VALID_TRANSITIONS`),
  and per ``(node, page)`` the transitions must chain (each event's
  ``src`` state equals the previous event's ``dst``);
* **barrier epochs** — per node, ``dsm.barrier/barrier`` spans must carry
  consecutive epochs (no node skips or repeats a barrier; the chain may
  start above 0 when the ring evicted the head of the run), and every
  epoch in the cross-node overlap window must be reached by every
  participating node exactly once (a mismatch means a node missed a
  barrier the others took; eviction may truncate each node's prefix at
  a different epoch, so epochs before the latest first-seen one are not
  compared).

Run it over any traced run (the ``python -m repro.trace`` CLI does so by
default); an empty violation list is a protocol-correctness pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.dsm.states import PageState, VALID_TRANSITIONS
from repro.trace.events import TraceEvent, CAT_PAGE, CAT_BARRIER


@dataclass
class Violation:
    """One protocol violation found in a trace."""

    kind: str  #: ``illegal-transition`` | ``broken-chain`` | ``epoch-order`` | ``epoch-membership``
    node: int
    ts: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] node {self.node} @ t={self.ts:.6e}: {self.detail}"


@dataclass
class CheckReport:
    """Outcome of :func:`check_trace`."""

    violations: List[Violation] = field(default_factory=list)
    n_transitions: int = 0
    n_barriers: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [
            f"protocol check: {status}",
            f"  page-state transitions checked : {self.n_transitions}",
            f"  barrier spans checked          : {self.n_barriers}",
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _parse_state(name: str) -> PageState:
    return PageState[name]


def check_trace(events: Iterable[TraceEvent]) -> CheckReport:
    """Validate page-state transitions and barrier epochs; see module doc."""
    report = CheckReport()
    # (node, page) -> last known state (chain continuity)
    last_state: Dict[Tuple[int, int], PageState] = {}
    # node -> ordered list of barrier epochs
    epochs_by_node: Dict[int, List[int]] = {}

    for ev in sorted(events, key=lambda e: e.ts):
        if ev.cat == CAT_PAGE and ev.name == "page-state":
            report.n_transitions += 1
            args = ev.args or {}
            page = args.get("page", -1)
            try:
                src = _parse_state(args["src"])
                dst = _parse_state(args["dst"])
            except (KeyError, Exception):
                report.violations.append(
                    Violation(
                        "illegal-transition",
                        ev.node,
                        ev.ts,
                        f"page {page}: malformed page-state event args {args!r}",
                    )
                )
                continue
            reason = args.get("reason", "")
            if (src, dst, reason) not in VALID_TRANSITIONS:
                report.violations.append(
                    Violation(
                        "illegal-transition",
                        ev.node,
                        ev.ts,
                        f"page {page}: {src.name} -> {dst.name} ({reason!r}) "
                        "is not a Figure-5 transition",
                    )
                )
            key = (ev.node, page)
            prev = last_state.get(key)
            if prev is not None and prev is not src:
                report.violations.append(
                    Violation(
                        "broken-chain",
                        ev.node,
                        ev.ts,
                        f"page {page}: transition departs from {src.name} but the "
                        f"previous recorded state was {prev.name}",
                    )
                )
            last_state[key] = dst
        elif ev.cat == CAT_BARRIER and ev.name == "barrier":
            report.n_barriers += 1
            epoch = (ev.args or {}).get("epoch", -1)
            epochs_by_node.setdefault(ev.node, []).append(epoch)

    # Per-node barrier epochs must be consecutive: no gap, no repeat.
    for node, epochs in sorted(epochs_by_node.items()):
        for i, epoch in enumerate(epochs):
            expected = epochs[0] + i
            if epoch != expected:
                report.violations.append(
                    Violation(
                        "epoch-order",
                        node,
                        0.0,
                        f"barrier #{i} on node {node} carries epoch {epoch} "
                        f"(expected {expected})",
                    )
                )
                break
    # All participating nodes must reach the same epochs.  Ring eviction
    # truncates each node's prefix at a different point, so only the
    # overlap window — epochs from the latest first-seen epoch onward —
    # is comparable; a node missing an epoch *inside* that window missed
    # a barrier the others took.
    if epochs_by_node:
        window_start = max(ep[0] for ep in epochs_by_node.values() if ep)
        reference = None
        for node, epochs in sorted(epochs_by_node.items()):
            eset = {e for e in epochs if e >= window_start}
            if reference is None:
                reference = (node, eset)
                continue
            ref_node, ref_set = reference
            if eset != ref_set:
                missing = sorted(ref_set - eset)
                extra = sorted(eset - ref_set)
                report.violations.append(
                    Violation(
                        "epoch-membership",
                        node,
                        0.0,
                        f"node {node} barrier epochs differ from node {ref_node}'s: "
                        f"missing {missing}, extra {extra}",
                    )
                )
    return report
