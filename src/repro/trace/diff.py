"""Trace diff: align two recorded runs and report where they diverge.

The ROADMAP's trace follow-up: compare, event by event, two JSONL traces
(written with ``python -m repro.trace <app> --jsonl run.jsonl``) — e.g.
the parade and sdsm translations of one program, or two runs that should
be deterministic replicas.  The report has two parts:

* **first divergence** — the earliest index at which the event streams
  disagree (category, name, node, tid, virtual time, payload bytes), with
  both events printed; identical prefixes are the strongest determinism
  evidence short of full-file equality;
* **per-event-type deltas** — for every ``(cat, name)`` pair, the count
  in each run and the total payload bytes (summed over numeric ``nbytes``
  args), so a protocol-level regression ("sdsm sends 40 more diffs and
  2.1x the fetch bytes") is quantified even when the streams diverge on
  the second event.

Comparison ignores event *order differences beyond the first divergence*
by design: after streams fork, positional alignment is meaningless, so
aggregate deltas carry the signal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.events import TraceEvent

#: event fields compared for the first-divergence scan, in report order
_COMPARE_FIELDS = ("ts", "cat", "name", "node", "tid", "dur", "args")


def _event_key(ev: TraceEvent) -> tuple:
    return (
        ev.ts,
        ev.cat,
        ev.name,
        ev.node,
        ev.tid,
        ev.dur,
        repr(sorted(ev.args.items())) if ev.args else "",
    )


def _payload_bytes(ev: TraceEvent) -> int:
    if not ev.args:
        return 0
    nb = ev.args.get("nbytes")
    return int(nb) if isinstance(nb, (int, float)) else 0


class TraceDiff:
    """Result of :func:`diff_traces`."""

    def __init__(self, n_a: int, n_b: int):
        self.n_a = n_a
        self.n_b = n_b
        #: index of the first mismatching event, or None if the common
        #: prefix is clean (streams may still differ in length)
        self.first_divergence: Optional[int] = None
        self.divergent_fields: List[str] = []
        self.event_a: Optional[TraceEvent] = None
        self.event_b: Optional[TraceEvent] = None
        #: (cat, name) -> (count_a, count_b, bytes_a, bytes_b)
        self.type_deltas: Dict[Tuple[str, str], Tuple[int, int, int, int]] = {}

    @property
    def identical(self) -> bool:
        return self.first_divergence is None and self.n_a == self.n_b

    def summary(self, label_a: str = "A", label_b: str = "B") -> str:
        lines = [f"trace diff: {label_a} ({self.n_a} events) vs {label_b} ({self.n_b} events)"]
        if self.identical:
            lines.append("  identical event streams")
        elif self.first_divergence is None:
            shorter = label_a if self.n_a < self.n_b else label_b
            lines.append(
                f"  common prefix of {min(self.n_a, self.n_b)} events is "
                f"identical; {shorter} ends early"
            )
        else:
            i = self.first_divergence
            lines.append(
                f"  first divergence at event {i} "
                f"(fields: {', '.join(self.divergent_fields)})"
            )
            lines.append(f"    {label_a}[{i}]: {self._fmt(self.event_a)}")
            lines.append(f"    {label_b}[{i}]: {self._fmt(self.event_b)}")
        changed = {
            k: v for k, v in self.type_deltas.items()
            if v[0] != v[1] or v[2] != v[3]
        }
        if changed:
            lines.append("  per-event-type deltas (count / payload bytes):")
            lines.append(
                f"    {'cat/name':<28} {label_a + ' n':>9} {label_b + ' n':>9} "
                f"{'dn':>7} {label_a + ' B':>12} {label_b + ' B':>12} {'dB':>10}"
            )
            for (cat, name), (ca, cb, ba, bb) in sorted(changed.items()):
                lines.append(
                    f"    {cat + '/' + name:<28} {ca:>9} {cb:>9} {cb - ca:>+7} "
                    f"{ba:>12} {bb:>12} {bb - ba:>+10}"
                )
        elif not self.identical:
            lines.append("  per-event-type counts and bytes match")
        return "\n".join(lines)

    @staticmethod
    def _fmt(ev: Optional[TraceEvent]) -> str:
        if ev is None:
            return "<no event: stream ended>"
        dur = "" if ev.dur is None else f" dur={ev.dur:.3e}"
        return (
            f"t={ev.ts:.6e} {ev.cat}/{ev.name} node={ev.node} "
            f"tid={ev.tid}{dur} args={ev.args or {}}"
        )


def diff_traces(a: List[TraceEvent], b: List[TraceEvent]) -> TraceDiff:
    """Compare two event streams; see the module docstring for semantics."""
    result = TraceDiff(len(a), len(b))
    for i in range(min(len(a), len(b))):
        if _event_key(a[i]) != _event_key(b[i]):
            result.first_divergence = i
            result.event_a, result.event_b = a[i], b[i]
            result.divergent_fields = [
                f for f in _COMPARE_FIELDS
                if getattr(a[i], f) != getattr(b[i], f)
            ]
            break

    def tally(events: List[TraceEvent], slot: int) -> None:
        for ev in events:
            key = (ev.cat, ev.name)
            ca, cb, ba, bb = result.type_deltas.get(key, (0, 0, 0, 0))
            if slot == 0:
                ca += 1
                ba += _payload_bytes(ev)
            else:
                cb += 1
                bb += _payload_bytes(ev)
            result.type_deltas[key] = (ca, cb, ba, bb)

    tally(a, 0)
    tally(b, 1)
    return result


def main_diff(argv: List[str]) -> int:
    """Entry point for ``python -m repro.trace diff A.jsonl B.jsonl``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.trace diff",
        description="align two JSONL traces event-by-event: report the first "
        "divergence and per-event-type count/byte deltas",
    )
    parser.add_argument("a", help="first trace (JSONL, from --jsonl)")
    parser.add_argument("b", help="second trace (JSONL)")
    args = parser.parse_args(argv)

    from repro.trace.export import read_jsonl

    ev_a = read_jsonl(args.a)
    ev_b = read_jsonl(args.b)
    result = diff_traces(ev_a, ev_b)
    print(result.summary(label_a=args.a, label_b=args.b))
    return 0 if result.identical else 1
