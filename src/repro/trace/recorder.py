"""The bounded trace recorder.

Lifecycle::

    rec = TraceRecorder(sim, capacity=1 << 16)   # attaches to sim.trace
    ... run the program ...
    events = rec.drain()                          # or iterate rec.events

Instrumentation sites follow one pattern and are zero-cost when no
recorder is attached (``sim.trace is None`` — one load and one compare,
no allocation)::

    tr = self.sim.trace
    if tr is not None:
        tr.instant(CAT_PAGE, "twin", node=self.id, page=page)

Spans capture their own start time so the site needs no recorder state::

    tr = self.sim.trace
    t0 = self.sim.now
    ...  # yield from the work being measured
    if tr is not None:
        tr.span(CAT_PAGE, "fetch", t0, node=self.id, page=page)

The ring is a ``deque(maxlen=capacity)``: when full, the *oldest* events
are evicted (``n_dropped`` counts them), so memory is bounded by the
configured capacity regardless of run length, and the tail of the run —
usually what you are debugging — is what survives.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from repro.trace.events import TraceEvent, DEFAULT_CATEGORIES, CAT_COUNTER


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent`, bound to one simulator.

    Parameters
    ----------
    sim : the :class:`~repro.sim.Simulator` whose clock stamps events;
        the recorder installs itself as ``sim.trace`` unless
        ``attach=False``.
    capacity : ring size in events; oldest events are evicted when full.
    categories : set of category constants to record;
        ``None`` means :data:`~repro.trace.events.DEFAULT_CATEGORIES`
        (everything except the noisy kernel-scheduler category).
    queue_stride : sample the simulator event-queue depth as a counter
        series every this-many processed events (0 disables sampling).
        The simulator calls :meth:`on_step` once per processed event when
        a recorder is attached.
    """

    __slots__ = (
        "sim", "capacity", "categories", "enabled", "n_emitted", "_ring",
        "queue_stride", "_step_count",
    )

    def __init__(
        self,
        sim,
        capacity: int = 1 << 16,
        categories: Optional[Iterable[str]] = None,
        attach: bool = True,
        queue_stride: int = 64,
    ):
        if capacity <= 0:
            raise ValueError(f"trace ring capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.categories: FrozenSet[str] = (
            DEFAULT_CATEGORIES if categories is None else frozenset(categories)
        )
        #: master switch; ``False`` makes emit calls record nothing
        self.enabled = True
        #: events offered and accepted (before eviction)
        self.n_emitted = 0
        self._ring: deque = deque(maxlen=capacity)
        if queue_stride < 0:
            raise ValueError(f"queue_stride must be >= 0, got {queue_stride}")
        self.queue_stride = queue_stride
        self._step_count = 0
        if attach:
            self.attach()

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> "TraceRecorder":
        """Install as ``sim.trace`` so instrumentation sites find us."""
        self.sim.trace = self
        return self

    def detach(self) -> "TraceRecorder":
        """Stop recording by unhooking from the simulator."""
        if getattr(self.sim, "trace", None) is self:
            self.sim.trace = None
        return self

    # -- emission -------------------------------------------------------
    def _tid(self) -> str:
        proc = self.sim.active_process
        return proc.label if proc is not None else "main"

    def instant(
        self, cat: str, name: str, node: int = -1, tid: Optional[str] = None, **args: Any
    ) -> None:
        """Record a point event at the current virtual time."""
        if not self.enabled or cat not in self.categories:
            return
        self.n_emitted += 1
        self._ring.append(
            TraceEvent(
                self.sim.now, cat, name, node=node, tid=tid or self._tid(), args=args or None
            )
        )

    def span(
        self,
        cat: str,
        name: str,
        t0: float,
        node: int = -1,
        tid: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a completed span that started at virtual time *t0*."""
        if not self.enabled or cat not in self.categories:
            return
        self.n_emitted += 1
        self._ring.append(
            TraceEvent(
                t0,
                cat,
                name,
                node=node,
                tid=tid or self._tid(),
                dur=max(0.0, self.sim.now - t0),
                args=args or None,
            )
        )

    def counter(
        self, cat: str, name: str, node: int = -1, tid: str = "counters", **values: Any
    ) -> None:
        """Record one sample of a counter series (``ph:"C"`` on export).

        *values* are the numeric series values at the current virtual time;
        Chrome/Perfetto stack multiple keys of one counter name.
        """
        if not self.enabled or cat not in self.categories:
            return
        self.n_emitted += 1
        self._ring.append(
            TraceEvent(self.sim.now, cat, name, node=node, tid=tid, args=values, ph="C")
        )

    def on_step(self, queue_depth: int) -> None:
        """Called by the simulator once per processed event; samples the
        pending-event count every :attr:`queue_stride` events."""
        stride = self.queue_stride
        if not stride:
            return
        self._step_count += 1
        if self._step_count % stride == 0:
            self.counter(CAT_COUNTER, "queue-depth", depth=queue_depth)

    # -- inspection -----------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the ring, oldest first (spans ordered by start)."""
        return sorted(self._ring, key=lambda e: e.ts)

    @property
    def n_dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.n_emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def drain(self) -> List[TraceEvent]:
        """Return all buffered events (oldest first) and clear the ring."""
        out = self.events
        self._ring.clear()
        return out

    def counts_by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self._ring:
            out[ev.cat] = out.get(ev.cat, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceRecorder {len(self._ring)}/{self.capacity} events, "
            f"{self.n_dropped} dropped, cats={sorted(self.categories)}>"
        )
