"""Structured event tracing for the simulated ParADE stack.

The paper's argument (§5–§7) is about *where time goes* — page faults,
twin/diff creation, write notices, barrier fan-in, lock hops, and the CPU
contention between compute threads and the communication thread.  The
end-of-run aggregates in :class:`repro.runtime.results.RunResult` say how
much; this package says *when* and *why*:

* :class:`TraceRecorder` — a bounded ring buffer of typed
  :class:`TraceEvent` records stamped with virtual time, node, and the
  simulation process (thread) that emitted them.  Opt-in: a recorder is
  attached to one :class:`~repro.sim.Simulator`; every instrumentation
  site in ``sim``/``cluster``/``dsm``/``mpi``/``runtime`` guards on
  ``sim.trace is None``, so an untraced run costs one attribute load per
  site and allocates nothing.
* :mod:`repro.trace.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``; nodes become processes, simulation
  threads become tracks) and flat CSV.
* :mod:`repro.trace.checker` — replays a recorded trace against the DSM
  page-state machine (:data:`repro.dsm.states.VALID_TRANSITIONS`) and the
  barrier-epoch protocol, turning any traced run into a protocol
  correctness test.
* ``python -m repro.trace`` — run any registered app with tracing on and
  write the exports (see :mod:`repro.trace.__main__`).

Recording never yields to the simulator and never reads anything but
``sim.now``, so enabling tracing cannot perturb virtual time: a traced
run and an untraced run of the same program are event-for-event
identical.  See ``docs/TRACING.md`` for the schema and a worked example.
"""

from repro.trace.events import (
    TraceEvent,
    CAT_SIM,
    CAT_NET,
    CAT_PAGE,
    CAT_LOCK,
    CAT_BARRIER,
    CAT_MPI,
    CAT_RUNTIME,
    CAT_COUNTER,
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.export import to_chrome, write_chrome_json, write_csv_events
from repro.trace.checker import Violation, CheckReport, check_trace

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "CAT_SIM",
    "CAT_NET",
    "CAT_PAGE",
    "CAT_LOCK",
    "CAT_BARRIER",
    "CAT_MPI",
    "CAT_RUNTIME",
    "CAT_COUNTER",
    "ALL_CATEGORIES",
    "DEFAULT_CATEGORIES",
    "to_chrome",
    "write_chrome_json",
    "write_csv_events",
    "Violation",
    "CheckReport",
    "check_trace",
]
