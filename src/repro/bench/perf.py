"""Wall-clock performance harness: the repo's perf trajectory recorder.

Unlike the figure benchmarks (which report *virtual* seconds — the paper's
metric), this harness measures how fast the *simulator itself* runs on the
host: wall-clock seconds, simulator events per second, and page faults per
second over a fixed workload basket (helmholtz, cg, ep, md).  Results are
written to ``BENCH_parade.json`` at the repo root so each PR has a measured
before/after trajectory.

Usage::

    python -m repro.bench.perf --baseline   # record the pre-change baseline
    ... optimise ...
    python -m repro.bench.perf              # record 'current' + speedup

    python -m repro.bench.perf --smoke      # tiny basket (CI regression run)

    python -m repro.bench.perf --accel      # basket with the protocol
                                            # accelerator on -> 'accel'
                                            # section + virtual-time deltas
    python -m repro.bench.perf --gate       # bench gate: accel basket must
                                            # stay within 5% aggregate
                                            # virtual time of the checked-in
                                            # 'accel' baseline (exit 1 if not)

The simulator is deterministic, so ``events``, ``virtual_s``, ``msgs_sent``
and ``bytes_sent`` are exact run invariants (the harness asserts this across
repeats); only ``wall_s`` carries host noise, which ``--repeat`` (best-of)
suppresses.

See ``docs/PERFORMANCE.md`` for how to read the output file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional

#: output schema version
SCHEMA = 1

#: default output files (written into the current working directory,
#: normally the repo root)
DEFAULT_OUT = "BENCH_parade.json"
SMOKE_OUT = "BENCH_smoke.json"


def _full_basket() -> Dict[str, dict]:
    """The fixed measurement basket.

    Sizes are chosen so the simulation engine (not host numpy throughput
    of the application kernels) dominates, and a full run stays under a
    few seconds per workload.
    """
    from repro.apps import cg, ep, helmholtz, md

    return {
        "helmholtz": {
            "factory": lambda: helmholtz.make_program(n=160, m=160, max_iters=10),
            "pool_bytes": 1 << 23,
            "note": "Helmholtz/Jacobi 160x160, 10 iterations",
        },
        "cg": {
            "factory": lambda: cg.make_program("S", niter=1),
            "pool_bytes": 1 << 23,
            "note": "NAS CG class S, 1 outer iteration",
        },
        "ep": {
            "factory": lambda: ep.make_program("T"),
            "pool_bytes": 1 << 20,
            "note": "NAS EP class T",
        },
        "md": {
            "factory": lambda: md.make_program(n_particles=128, steps=6),
            "pool_bytes": 1 << 22,
            "note": "MD 128 particles, 6 steps",
        },
    }


def _smoke_basket() -> Dict[str, dict]:
    """Tiny basket exercising every workload; for CI regression runs."""
    from repro.apps import cg, ep, helmholtz, md

    return {
        "helmholtz": {
            "factory": lambda: helmholtz.make_program(n=24, m=24, max_iters=2),
            "pool_bytes": 1 << 20,
            "note": "smoke: Helmholtz 24x24, 2 iterations",
        },
        "cg": {
            "factory": lambda: cg.make_program("T", niter=1),
            "pool_bytes": 1 << 21,
            "note": "smoke: NAS CG class T, 1 iteration",
        },
        "ep": {
            "factory": lambda: ep.make_program("T"),
            "pool_bytes": 1 << 20,
            "note": "smoke: NAS EP class T",
        },
        "md": {
            "factory": lambda: md.make_program(n_particles=24, steps=1),
            "pool_bytes": 1 << 20,
            "note": "smoke: MD 24 particles, 1 step",
        },
    }


def basket(smoke: bool = False) -> Dict[str, dict]:
    return _smoke_basket() if smoke else _full_basket()


def phase_breakdown(spec: dict, n_nodes: int = 4, accel: bool = False) -> Dict[str, float]:
    """Virtual-time phase-group fractions for one workload.

    Runs the workload once more with the :mod:`repro.profile` profiler
    attached (kept out of the timed loop so the wall numbers measure the
    unobserved simulator) and returns ``{group: fraction}`` over all
    thread time — compute / cpu / stall / sync / comm / idle.  The
    simulator is deterministic, so this characterises the timed runs too.
    """
    from repro.profile import Profiler
    from repro.runtime import ParadeRuntime

    rt = ParadeRuntime(
        n_nodes=n_nodes, pool_bytes=spec["pool_bytes"], protocol_accel=accel
    )
    prof = Profiler(rt.sim, record_intervals=False)
    rt.run(spec["factory"]())
    prof.finalize()
    return prof.group_fractions(ndigits=4)


def measure_workload(
    spec: dict,
    n_nodes: int = 4,
    repeat: int = 2,
    phases: bool = True,
    accel: bool = False,
) -> Dict[str, object]:
    """Run one workload *repeat* times; report best-of wall clock.

    Returns wall_s / virtual_s / events / events_per_s / faults /
    faults_per_s / msgs_sent / bytes_sent, plus (unless ``phases=False``)
    a ``phases`` dict of virtual-time group fractions from a separate,
    untimed profiled run.  ``msgs_sent``/``bytes_sent`` are the network
    totals over the whole run (every frame funnels through
    :meth:`~repro.cluster.network.Network.send`, so the protocol
    accelerator's message-count savings show up here directly).  Virtual
    results must be identical across repeats (the simulator is
    deterministic) — a mismatch raises.  *accel* turns the protocol
    accelerator on (``protocol_accel=True``).
    """
    from repro.runtime import ParadeRuntime

    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeat)):
        rt = ParadeRuntime(
            n_nodes=n_nodes, pool_bytes=spec["pool_bytes"], protocol_accel=accel
        )
        t0 = time.perf_counter()
        res = rt.run(spec["factory"]())
        wall = time.perf_counter() - t0
        events = rt.sim.events_processed
        faults = res.dsm_stats.get("read_faults", 0) + res.dsm_stats.get(
            "write_faults", 0
        )
        net = rt.cluster.network
        rec = {
            "wall_s": wall,
            "virtual_s": res.elapsed,
            "events": events,
            "events_per_s": events / wall if wall > 0 else 0.0,
            "faults": faults,
            "faults_per_s": faults / wall if wall > 0 else 0.0,
            "msgs_sent": net.total_messages,
            "bytes_sent": net.total_bytes,
        }
        if best is not None and (
            rec["events"] != best["events"]
            or rec["virtual_s"] != best["virtual_s"]
            or rec["msgs_sent"] != best["msgs_sent"]
            or rec["bytes_sent"] != best["bytes_sent"]
        ):
            raise AssertionError(
                f"non-deterministic run: {rec['events']} events / "
                f"{rec['virtual_s']} s / {rec['msgs_sent']} msgs vs "
                f"{best['events']} / {best['virtual_s']} / {best['msgs_sent']}"
            )
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    assert best is not None
    if phases:
        best["phases"] = phase_breakdown(spec, n_nodes=n_nodes, accel=accel)
    return best


def run_basket(
    smoke: bool = False,
    n_nodes: int = 4,
    repeat: int = 2,
    workloads: Optional[List[str]] = None,
    verbose: bool = True,
    accel: bool = False,
) -> Dict[str, Dict[str, object]]:
    """Measure every workload of the basket; returns {name: metrics}."""
    bk = basket(smoke)
    names = workloads or list(bk)
    unknown = [n for n in names if n not in bk]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; choose from {sorted(bk)}")
    results: Dict[str, Dict[str, object]] = {}
    for name in names:
        rec = measure_workload(bk[name], n_nodes=n_nodes, repeat=repeat, accel=accel)
        results[name] = rec
        if verbose:
            ph = rec.get("phases") or {}
            ph_str = " ".join(
                f"{g}={ph[g]:.0%}"
                for g in ("compute", "stall", "sync", "comm")
                if g in ph
            )
            print(
                f"  {name:<10} wall={rec['wall_s']:7.3f}s "
                f"events={rec['events']:>8} "
                f"ev/s={rec['events_per_s']:>11,.0f} "
                f"msgs={rec['msgs_sent']:>6} "
                f"faults/s={rec['faults_per_s']:>9,.0f}  {ph_str}"
            )
    return results


def aggregate_virtual_s(results: Dict[str, Dict[str, object]]) -> float:
    """Basket virtual time: sum of per-workload virtual seconds."""
    return sum(float(r["virtual_s"]) for r in results.values())


def accel_deltas(
    baseline: Dict[str, Dict[str, object]], accel: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    """Protocol-accelerator effect: virtual-time / message / byte reduction
    of the accel basket vs the flags-off baseline, per workload and for the
    whole basket.  Fractions are reductions (0.19 = 19% less)."""
    per: Dict[str, Dict[str, float]] = {}
    for name, acc in accel.items():
        base = baseline.get(name)
        if not base:
            continue
        ent: Dict[str, float] = {}
        if float(base["virtual_s"]) > 0:
            ent["virtual_time_reduction"] = 1.0 - float(acc["virtual_s"]) / float(
                base["virtual_s"]
            )
        for key, label in (("msgs_sent", "msgs_delta"), ("bytes_sent", "bytes_delta")):
            if key in base and key in acc:
                ent[label] = int(acc[key]) - int(base[key])
        per[name] = ent
    out: Dict[str, object] = {"per_workload": per}
    base_vt = aggregate_virtual_s({k: v for k, v in baseline.items() if k in accel})
    if base_vt > 0:
        out["aggregate_virtual_time_reduction"] = (
            1.0 - aggregate_virtual_s(accel) / base_vt
        )
    return out


def aggregate_events_per_s(results: Dict[str, Dict[str, float]]) -> float:
    """Basket throughput: total simulator events over total wall seconds."""
    wall = sum(r["wall_s"] for r in results.values())
    events = sum(r["events"] for r in results.values())
    return events / wall if wall > 0 else 0.0


def compute_speedup(
    baseline: Dict[str, Dict[str, float]], current: Dict[str, Dict[str, float]]
) -> Dict[str, object]:
    """Events/sec speedup of *current* over *baseline*, per workload and
    for the whole basket (total events / total wall)."""
    per: Dict[str, float] = {}
    for name, cur in current.items():
        base = baseline.get(name)
        if base and base.get("events_per_s"):
            per[name] = cur["events_per_s"] / base["events_per_s"]
    out: Dict[str, object] = {"per_workload": per}
    base_agg = aggregate_events_per_s(
        {k: v for k, v in baseline.items() if k in current}
    )
    cur_agg = aggregate_events_per_s(current)
    if base_agg:
        out["aggregate_events_per_s"] = cur_agg / base_agg
    return out


#: bench-gate tolerance: the accel basket may regress aggregate virtual
#: time by at most this fraction vs the checked-in 'accel' baseline
GATE_TOLERANCE = 0.05


def run_gate(path: str = DEFAULT_OUT, n_nodes: Optional[int] = None) -> int:
    """Bench gate (``make bench-gate``): fail on virtual-time regression.

    Runs the full basket with the protocol accelerator on and compares
    aggregate virtual time against the checked-in ``accel`` section of
    *path*.  Virtual time is deterministic, so one repeat suffices and
    host noise cannot flake the gate: any delta is a real protocol
    change.  Returns 0 if within :data:`GATE_TOLERANCE`, 1 otherwise.
    """
    report = load_report(path)
    ref = report.get("accel", {}).get("results")
    if not ref:
        print(f"bench-gate: no 'accel' baseline in {path}; "
              "run `python -m repro.bench.perf --accel` first")
        return 1
    nodes = n_nodes or int(report.get("nodes", 4))
    bk = _full_basket()
    cur: Dict[str, Dict[str, object]] = {}
    for name in ref:
        if name not in bk:
            print(f"bench-gate: baseline workload {name!r} missing from basket")
            return 1
        cur[name] = measure_workload(
            bk[name], n_nodes=nodes, repeat=1, phases=False, accel=True
        )
    base_vt = aggregate_virtual_s(ref)
    cur_vt = aggregate_virtual_s(cur)
    ratio = cur_vt / base_vt if base_vt > 0 else float("inf")
    for name in ref:
        b, c = float(ref[name]["virtual_s"]), float(cur[name]["virtual_s"])
        mark = "" if c <= b * (1 + GATE_TOLERANCE) else "   <-- regressed"
        print(f"  {name:<10} baseline={b * 1e3:9.3f} ms  current={c * 1e3:9.3f} ms"
              f"  ({(c / b - 1) * 100:+6.2f}%){mark}")
    print(f"  aggregate  baseline={base_vt * 1e3:9.3f} ms  "
          f"current={cur_vt * 1e3:9.3f} ms  ({(ratio - 1) * 100:+6.2f}%)")
    if ratio > 1 + GATE_TOLERANCE:
        print(f"bench-gate: FAIL — aggregate virtual time regressed "
              f"{(ratio - 1) * 100:.2f}% (> {GATE_TOLERANCE:.0%} tolerance)")
        return 1
    print(f"bench-gate: OK (within {GATE_TOLERANCE:.0%} of baseline)")
    return 0


def load_report(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {}


def write_report(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__.split("\n\n")[0]
    )
    ap.add_argument(
        "--baseline",
        action="store_true",
        help="record results into the 'baseline' section (pre-change run)",
    )
    ap.add_argument(
        "--smoke", action="store_true", help="tiny basket; CI regression mode"
    )
    ap.add_argument(
        "--accel",
        action="store_true",
        help="run with the protocol accelerator on; record into the 'accel' "
        "section and report virtual-time / message deltas vs the baseline",
    )
    ap.add_argument(
        "--gate",
        action="store_true",
        help="bench gate: run the accel basket and exit 1 if aggregate "
        "virtual time regressed more than 5%% vs the checked-in 'accel' "
        "baseline (no report rewrite)",
    )
    ap.add_argument("--out", default=None, help="output JSON path")
    ap.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    ap.add_argument(
        "--repeat", type=int, default=2, help="runs per workload, best-of (default 2)"
    )
    ap.add_argument(
        "--workloads",
        default=None,
        help="comma-separated subset of the basket (default: all)",
    )
    args = ap.parse_args(argv)

    out = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    if args.gate:
        return run_gate(out, n_nodes=args.nodes if args.nodes != 4 else None)
    names = args.workloads.split(",") if args.workloads else None
    section = "accel" if args.accel else ("baseline" if args.baseline else "current")
    print(f"perf basket ({'smoke' if args.smoke else 'full'}"
          f"{', protocol accel' if args.accel else ''}) -> {out} [{section}]")

    results = run_basket(
        smoke=args.smoke, n_nodes=args.nodes, repeat=args.repeat, workloads=names,
        accel=args.accel,
    )

    report = load_report(out)
    report["schema"] = SCHEMA
    report["label"] = "parade-perf-basket" + ("-smoke" if args.smoke else "")
    report["nodes"] = args.nodes
    report["workloads"] = {k: v["note"] for k, v in basket(args.smoke).items()}
    report[section] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
    }
    if args.accel:
        # protocol effect vs the flags-off run (prefer the freshest section)
        ref = report.get("current") or report.get("baseline")
        if ref:
            report["accel_effect"] = accel_deltas(ref["results"], results)
            agg = report["accel_effect"].get("aggregate_virtual_time_reduction")
            if agg is not None:
                print(f"  accelerator: {agg:.1%} less aggregate virtual time")
    elif args.baseline:
        # a fresh baseline invalidates any previous comparison
        report.pop("current", None)
        report.pop("speedup", None)
    elif "baseline" in report:
        report["speedup"] = compute_speedup(report["baseline"]["results"], results)
        agg = report["speedup"].get("aggregate_events_per_s")
        if agg:
            print(f"  basket speedup (events/s): {agg:.2f}x vs baseline")
    write_report(out, report)
    print(f"  aggregate: {aggregate_events_per_s(results):,.0f} events/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
