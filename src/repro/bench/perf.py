"""Wall-clock performance harness: the repo's perf trajectory recorder.

Unlike the figure benchmarks (which report *virtual* seconds — the paper's
metric), this harness measures how fast the *simulator itself* runs on the
host: wall-clock seconds, simulator events per second, and page faults per
second over a fixed workload basket (helmholtz, cg, ep, md).  Results are
written to ``BENCH_parade.json`` at the repo root so each PR has a measured
before/after trajectory.

Usage::

    python -m repro.bench.perf --baseline   # record the pre-change baseline
    ... optimise ...
    python -m repro.bench.perf              # record 'current' + speedup

    python -m repro.bench.perf --smoke      # tiny basket (CI regression run)

The simulator is deterministic, so ``events`` and ``virtual_s`` are exact
run invariants (the harness asserts this across repeats); only ``wall_s``
carries host noise, which ``--repeat`` (best-of) suppresses.

See ``docs/PERFORMANCE.md`` for how to read the output file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional

#: output schema version
SCHEMA = 1

#: default output files (written into the current working directory,
#: normally the repo root)
DEFAULT_OUT = "BENCH_parade.json"
SMOKE_OUT = "BENCH_smoke.json"


def _full_basket() -> Dict[str, dict]:
    """The fixed measurement basket.

    Sizes are chosen so the simulation engine (not host numpy throughput
    of the application kernels) dominates, and a full run stays under a
    few seconds per workload.
    """
    from repro.apps import cg, ep, helmholtz, md

    return {
        "helmholtz": {
            "factory": lambda: helmholtz.make_program(n=160, m=160, max_iters=10),
            "pool_bytes": 1 << 23,
            "note": "Helmholtz/Jacobi 160x160, 10 iterations",
        },
        "cg": {
            "factory": lambda: cg.make_program("S", niter=1),
            "pool_bytes": 1 << 23,
            "note": "NAS CG class S, 1 outer iteration",
        },
        "ep": {
            "factory": lambda: ep.make_program("T"),
            "pool_bytes": 1 << 20,
            "note": "NAS EP class T",
        },
        "md": {
            "factory": lambda: md.make_program(n_particles=128, steps=6),
            "pool_bytes": 1 << 22,
            "note": "MD 128 particles, 6 steps",
        },
    }


def _smoke_basket() -> Dict[str, dict]:
    """Tiny basket exercising every workload; for CI regression runs."""
    from repro.apps import cg, ep, helmholtz, md

    return {
        "helmholtz": {
            "factory": lambda: helmholtz.make_program(n=24, m=24, max_iters=2),
            "pool_bytes": 1 << 20,
            "note": "smoke: Helmholtz 24x24, 2 iterations",
        },
        "cg": {
            "factory": lambda: cg.make_program("T", niter=1),
            "pool_bytes": 1 << 21,
            "note": "smoke: NAS CG class T, 1 iteration",
        },
        "ep": {
            "factory": lambda: ep.make_program("T"),
            "pool_bytes": 1 << 20,
            "note": "smoke: NAS EP class T",
        },
        "md": {
            "factory": lambda: md.make_program(n_particles=24, steps=1),
            "pool_bytes": 1 << 20,
            "note": "smoke: MD 24 particles, 1 step",
        },
    }


def basket(smoke: bool = False) -> Dict[str, dict]:
    return _smoke_basket() if smoke else _full_basket()


def phase_breakdown(spec: dict, n_nodes: int = 4) -> Dict[str, float]:
    """Virtual-time phase-group fractions for one workload.

    Runs the workload once more with the :mod:`repro.profile` profiler
    attached (kept out of the timed loop so the wall numbers measure the
    unobserved simulator) and returns ``{group: fraction}`` over all
    thread time — compute / cpu / stall / sync / comm / idle.  The
    simulator is deterministic, so this characterises the timed runs too.
    """
    from repro.profile import Profiler
    from repro.runtime import ParadeRuntime

    rt = ParadeRuntime(n_nodes=n_nodes, pool_bytes=spec["pool_bytes"])
    prof = Profiler(rt.sim, record_intervals=False)
    rt.run(spec["factory"]())
    prof.finalize()
    return prof.group_fractions(ndigits=4)


def measure_workload(
    spec: dict, n_nodes: int = 4, repeat: int = 2, phases: bool = True
) -> Dict[str, object]:
    """Run one workload *repeat* times; report best-of wall clock.

    Returns wall_s / virtual_s / events / events_per_s / faults /
    faults_per_s, plus (unless ``phases=False``) a ``phases`` dict of
    virtual-time group fractions from a separate, untimed profiled run.
    Virtual results must be identical across repeats (the simulator is
    deterministic) — a mismatch raises.
    """
    from repro.runtime import ParadeRuntime

    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeat)):
        rt = ParadeRuntime(n_nodes=n_nodes, pool_bytes=spec["pool_bytes"])
        t0 = time.perf_counter()
        res = rt.run(spec["factory"]())
        wall = time.perf_counter() - t0
        events = rt.sim.events_processed
        faults = res.dsm_stats.get("read_faults", 0) + res.dsm_stats.get(
            "write_faults", 0
        )
        rec = {
            "wall_s": wall,
            "virtual_s": res.elapsed,
            "events": events,
            "events_per_s": events / wall if wall > 0 else 0.0,
            "faults": faults,
            "faults_per_s": faults / wall if wall > 0 else 0.0,
        }
        if best is not None and (
            rec["events"] != best["events"] or rec["virtual_s"] != best["virtual_s"]
        ):
            raise AssertionError(
                f"non-deterministic run: {rec['events']} events / "
                f"{rec['virtual_s']} s vs {best['events']} / {best['virtual_s']}"
            )
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    assert best is not None
    if phases:
        best["phases"] = phase_breakdown(spec, n_nodes=n_nodes)
    return best


def run_basket(
    smoke: bool = False,
    n_nodes: int = 4,
    repeat: int = 2,
    workloads: Optional[List[str]] = None,
    verbose: bool = True,
) -> Dict[str, Dict[str, object]]:
    """Measure every workload of the basket; returns {name: metrics}."""
    bk = basket(smoke)
    names = workloads or list(bk)
    unknown = [n for n in names if n not in bk]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; choose from {sorted(bk)}")
    results: Dict[str, Dict[str, object]] = {}
    for name in names:
        rec = measure_workload(bk[name], n_nodes=n_nodes, repeat=repeat)
        results[name] = rec
        if verbose:
            ph = rec.get("phases") or {}
            ph_str = " ".join(
                f"{g}={ph[g]:.0%}"
                for g in ("compute", "stall", "sync", "comm")
                if g in ph
            )
            print(
                f"  {name:<10} wall={rec['wall_s']:7.3f}s "
                f"events={rec['events']:>8} "
                f"ev/s={rec['events_per_s']:>11,.0f} "
                f"faults/s={rec['faults_per_s']:>9,.0f}  {ph_str}"
            )
    return results


def aggregate_events_per_s(results: Dict[str, Dict[str, float]]) -> float:
    """Basket throughput: total simulator events over total wall seconds."""
    wall = sum(r["wall_s"] for r in results.values())
    events = sum(r["events"] for r in results.values())
    return events / wall if wall > 0 else 0.0


def compute_speedup(
    baseline: Dict[str, Dict[str, float]], current: Dict[str, Dict[str, float]]
) -> Dict[str, object]:
    """Events/sec speedup of *current* over *baseline*, per workload and
    for the whole basket (total events / total wall)."""
    per: Dict[str, float] = {}
    for name, cur in current.items():
        base = baseline.get(name)
        if base and base.get("events_per_s"):
            per[name] = cur["events_per_s"] / base["events_per_s"]
    out: Dict[str, object] = {"per_workload": per}
    base_agg = aggregate_events_per_s(
        {k: v for k, v in baseline.items() if k in current}
    )
    cur_agg = aggregate_events_per_s(current)
    if base_agg:
        out["aggregate_events_per_s"] = cur_agg / base_agg
    return out


def load_report(path: str) -> dict:
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {}


def write_report(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__.split("\n\n")[0]
    )
    ap.add_argument(
        "--baseline",
        action="store_true",
        help="record results into the 'baseline' section (pre-change run)",
    )
    ap.add_argument(
        "--smoke", action="store_true", help="tiny basket; CI regression mode"
    )
    ap.add_argument("--out", default=None, help="output JSON path")
    ap.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    ap.add_argument(
        "--repeat", type=int, default=2, help="runs per workload, best-of (default 2)"
    )
    ap.add_argument(
        "--workloads",
        default=None,
        help="comma-separated subset of the basket (default: all)",
    )
    args = ap.parse_args(argv)

    out = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    names = args.workloads.split(",") if args.workloads else None
    section = "baseline" if args.baseline else "current"
    print(f"perf basket ({'smoke' if args.smoke else 'full'}) -> {out} [{section}]")

    results = run_basket(
        smoke=args.smoke, n_nodes=args.nodes, repeat=args.repeat, workloads=names
    )

    report = load_report(out)
    report["schema"] = SCHEMA
    report["label"] = "parade-perf-basket" + ("-smoke" if args.smoke else "")
    report["nodes"] = args.nodes
    report["workloads"] = {k: v["note"] for k, v in basket(args.smoke).items()}
    report[section] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
    }
    if args.baseline:
        # a fresh baseline invalidates any previous comparison
        report.pop("current", None)
        report.pop("speedup", None)
    elif "baseline" in report:
        report["speedup"] = compute_speedup(report["baseline"]["results"], results)
        agg = report["speedup"].get("aggregate_events_per_s")
        if agg:
            print(f"  basket speedup (events/s): {agg:.2f}x vs baseline")
    write_report(out, report)
    print(f"  aggregate: {aggregate_events_per_s(results):,.0f} events/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
