"""Wall-clock performance harness: the repo's perf trajectory recorder.

Unlike the figure benchmarks (which report *virtual* seconds — the paper's
metric), this harness measures how fast the *simulator itself* runs on the
host: wall-clock seconds, simulator events per second, and page faults per
second over a fixed workload basket (helmholtz, cg, ep, md).  Results are
written to ``BENCH_parade.json`` at the repo root so each PR has a measured
before/after trajectory.

Usage::

    python -m repro.bench.perf --baseline   # record the pre-change baseline
    ... optimise ...
    python -m repro.bench.perf              # record 'current' + speedup

    python -m repro.bench.perf --smoke      # tiny basket (CI regression run)

    python -m repro.bench.perf --accel      # basket with the protocol
                                            # accelerator on -> 'accel'
                                            # section + virtual-time deltas
    python -m repro.bench.perf --gate       # bench gate: accel basket must
                                            # stay within 5% aggregate
                                            # virtual time of the checked-in
                                            # 'accel' baseline (exit 1 if not)

    python -m repro.bench.perf --scale      # scale-out sweep: run the scale
                                            # basket at 4/8/16/32 nodes, flat
                                            # vs hierarchical sync, recording
                                            # virtual time, message counts and
                                            # barrier/lock phase fractions per
                                            # point into the 'scale' section
                                            # (values must be bit-identical
                                            # between the two topologies)

The simulator is deterministic, so ``events``, ``virtual_s``, ``msgs_sent``
and ``bytes_sent`` are exact run invariants (the harness asserts this across
repeats); only ``wall_s`` carries host noise, which ``--repeat`` (best-of)
suppresses.

Every mode fans its independent runs across ``--jobs`` fleet worker
processes (``PARADE_JOBS`` env, default cpu count; see
:mod:`repro.fleet` and docs/FLEET.md) — worker runs are bit-identical
to in-process runs, so results never depend on the job count.  The
gate modes additionally memoise runs in the content-addressed run
cache under ``.parade-cache/`` (disable with ``--no-cache`` /
``PARADE_CACHE=0``): a re-run over an unchanged source tree replays
from cache with zero re-simulations, and the hit/miss counters are
printed with the gate output.

See ``docs/PERFORMANCE.md`` for how to read the output file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

#: output schema version.  2 added per-section run metadata (``meta``:
#: python/platform/machine/nodes/flags) so the metrics watchdog
#: (``python -m repro.metrics regress``) can refuse apples-to-oranges
#: comparisons; schema-1 files load fine, their sections just carry no
#: ``meta`` and the watchdog downgrades the environment check to a warning.
SCHEMA = 2

#: default output files (written into the current working directory,
#: normally the repo root)
DEFAULT_OUT = "BENCH_parade.json"
SMOKE_OUT = "BENCH_smoke.json"


def run_meta(n_nodes, accel: bool = False, smoke: bool = False) -> Dict[str, object]:
    """Environment fingerprint stored next to each recorded section.

    The keys mirror ``repro.metrics.regress.META_KEYS``: two sections
    whose fingerprints differ on any of them were not measured under
    comparable conditions, and the watchdog refuses to band their wall
    times against each other.  *n_nodes* is an int for basket sections
    and the node-count list for the scale sweep.
    """
    import platform as _platform

    return {
        "python": _platform.python_version(),
        "platform": sys.platform,
        "machine": _platform.machine(),
        "nodes": n_nodes,
        "accel": accel,
        "smoke": smoke,
    }


def _full_basket() -> Dict[str, dict]:
    """The fixed measurement basket.

    Sizes are chosen so the simulation engine (not host numpy throughput
    of the application kernels) dominates, and a full run stays under a
    few seconds per workload.  Entries carry both the in-process
    ``factory`` callable and the serializable ``factory_ref`` /
    ``factory_kwargs`` pair the fleet executor ships to worker processes
    (see :func:`repro.fleet.spec.make_entry`).
    """
    from repro.fleet.spec import make_entry

    return {
        "helmholtz": make_entry(
            ("repro.apps.helmholtz", "make_program"),
            {"n": 160, "m": 160, "max_iters": 10},
            pool_bytes=1 << 23,
            note="Helmholtz/Jacobi 160x160, 10 iterations",
        ),
        "cg": make_entry(
            ("repro.apps.cg", "make_program"),
            {"klass": "S", "niter": 1},
            pool_bytes=1 << 23,
            note="NAS CG class S, 1 outer iteration",
        ),
        "ep": make_entry(
            ("repro.apps.ep", "make_program"),
            {"klass": "T"},
            pool_bytes=1 << 20,
            note="NAS EP class T",
        ),
        "md": make_entry(
            ("repro.apps.md", "make_program"),
            {"n_particles": 128, "steps": 6},
            pool_bytes=1 << 22,
            note="MD 128 particles, 6 steps",
        ),
    }


def _smoke_basket() -> Dict[str, dict]:
    """Tiny basket exercising every workload; for CI regression runs."""
    from repro.fleet.spec import make_entry

    return {
        "helmholtz": make_entry(
            ("repro.apps.helmholtz", "make_program"),
            {"n": 24, "m": 24, "max_iters": 2},
            pool_bytes=1 << 20,
            note="smoke: Helmholtz 24x24, 2 iterations",
        ),
        "cg": make_entry(
            ("repro.apps.cg", "make_program"),
            {"klass": "T", "niter": 1},
            pool_bytes=1 << 21,
            note="smoke: NAS CG class T, 1 iteration",
        ),
        "ep": make_entry(
            ("repro.apps.ep", "make_program"),
            {"klass": "T"},
            pool_bytes=1 << 20,
            note="smoke: NAS EP class T",
        ),
        "md": make_entry(
            ("repro.apps.md", "make_program"),
            {"n_particles": 24, "steps": 1},
            pool_bytes=1 << 20,
            note="smoke: MD 24 particles, 1 step",
        ),
    }


def basket(smoke: bool = False) -> Dict[str, dict]:
    return _smoke_basket() if smoke else _full_basket()


#: node counts of the scale-out sweep (``--scale``); the paper's testbed
#: stops at 8 — 16 and 32 are the ROADMAP's production-scale extrapolation
SCALE_NODES = (4, 8, 16, 32)

#: the 16-node point doubles as the CI gate (``make scale-smoke``)
SCALE_GATE_NODES = 16


def _scale_basket(smoke: bool = False) -> Dict[str, dict]:
    """Workloads of the scale-out sweep: one barrier-dominated stencil and
    one lock/reduction-heavy solver, sized so the 32-node point still runs
    in seconds.  ep/md are omitted — their sync behaviour adds nothing the
    two cover."""
    from repro.fleet.spec import make_entry

    if smoke:
        return {
            "helmholtz": make_entry(
                ("repro.apps.helmholtz", "make_program"),
                {"n": 48, "m": 48, "max_iters": 3},
                pool_bytes=1 << 21,
                note="scale smoke: Helmholtz 48x48, 3 iterations",
            ),
            "cg": make_entry(
                ("repro.apps.cg", "make_program"),
                {"klass": "T", "niter": 1},
                pool_bytes=1 << 21,
                note="scale smoke: NAS CG class T, 1 iteration",
            ),
        }
    return {
        "helmholtz": make_entry(
            ("repro.apps.helmholtz", "make_program"),
            {"n": 96, "m": 96, "max_iters": 6},
            pool_bytes=1 << 23,
            note="scale: Helmholtz 96x96, 6 iterations",
        ),
        "cg": make_entry(
            ("repro.apps.cg", "make_program"),
            {"klass": "S", "niter": 1},
            pool_bytes=1 << 23,
            note="scale: NAS CG class S, 1 iteration",
        ),
    }


def _scale_value_digest(value) -> str:
    """Short bit-exact digest of a program result (same canonicalisation
    as the chaos CLI's recovery check, hashed down for the report)."""
    import hashlib

    canon = json.dumps(value, sort_keys=True, default=repr)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _scale_spec(name: str, entry: dict, n_nodes: int, hier: bool):
    """Fleet spec for one (workload, node count, topology) scale point —
    profiler attached to the timed run, as the sweep always measured."""
    from repro.fleet.spec import RunSpec

    return RunSpec.from_entry(
        name, entry, n_nodes=n_nodes, hier=hier, profile=True, observe_timed=True
    )


def _scale_point_record(rec: Dict[str, object]) -> Dict[str, object]:
    """Map one fleet record onto the scale-point shape the report and the
    scale gate consume (same fields :func:`measure_scale_point` always
    reported; the hierarchical-sync counters come out of the summed
    ``dsm_stats`` and the master node's stats)."""
    thread_s = float(rec["thread_s"])
    barrier_s = float(rec["barrier_s"])
    lock_s = float(rec["lock_s"])
    epochs = int(rec["epochs"])
    master = rec["master_stats"]
    dsm = rec["dsm_stats"]
    return {
        "wall_s": rec["wall_s"],
        "virtual_s": rec["virtual_s"],
        "msgs_sent": rec["msgs_sent"],
        "bytes_sent": rec["bytes_sent"],
        "barrier_s": barrier_s,
        "lock_s": lock_s,
        "barrier_frac": barrier_s / thread_s if thread_s else 0.0,
        "lock_frac": lock_s / thread_s if thread_s else 0.0,
        "epochs": epochs,
        "master_arrivals_rx": master["barrier_arrivals_rx"],
        "master_arrivals_per_epoch": (
            master["barrier_arrivals_rx"] / epochs if epochs else 0.0
        ),
        "barrier_relays": dsm["barrier_relays"],
        "notices_merged": dsm["notices_merged"],
        "lock_grants": dsm["lock_grants"],
        "lock_remote_grants": dsm["lock_remote_grants"],
        "value_sha": str(rec["value_digest"])[:16],
    }


def measure_scale_point(
    spec: dict, n_nodes: int, hier: bool
) -> Dict[str, object]:
    """One (workload, node count, topology) run with the profiler attached.

    Reports virtual time, message counts, the barrier / lock-wait phase
    shares of total thread time, and the hierarchical-sync counters —
    including the barrier arrival frames the master received per epoch,
    the number the tree topology is there to cap at the fan-in.  Runs
    through the shared fleet driver (:func:`repro.fleet.spec.execute`),
    so the same measurement is cacheable and worker-dispatchable.
    """
    from repro.fleet.spec import execute

    rec = execute(_scale_spec(spec.get("note", "workload"), spec, n_nodes, hier))
    return _scale_point_record(rec)


def _scale_aggregate(per_workload: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Sum one scale point's per-workload records into the point record."""
    agg: Dict[str, object] = {"per_workload": per_workload}
    for key in (
        "virtual_s", "barrier_s", "lock_s", "msgs_sent", "bytes_sent",
        "epochs", "master_arrivals_rx", "barrier_relays", "notices_merged",
        "lock_grants", "lock_remote_grants",
    ):
        agg[key] = sum(r[key] for r in per_workload.values())
    agg["master_arrivals_per_epoch"] = (
        agg["master_arrivals_rx"] / agg["epochs"] if agg["epochs"] else 0.0
    )
    return agg


def run_scale(
    smoke: bool = False,
    nodes: Optional[List[int]] = None,
    verbose: bool = True,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[str, object]:
    """The ``--scale`` sweep: flat vs hierarchical sync at each node count.

    Asserts that the two topologies compute bit-identical values at every
    point (hierarchical sync moves messages and timing, never data), then
    records both sides so the curves in docs/PERFORMANCE.md "Scaling" are
    reproducible from the checked-in report.

    All (workload x node count x topology) points are independent runs,
    so they fan out across ``jobs`` fleet workers and memoise in *cache*
    — the records come back in sweep order and every virtual-time number
    is bit-identical to a sequential run.
    """
    from repro.dsm.config import PARADE_HIER
    from repro.fleet import run_many

    node_counts = list(nodes or SCALE_NODES)
    bk = _scale_basket(smoke)
    grid = [
        (n, name, hier)
        for n in node_counts
        for name in bk
        for hier in (False, True)
    ]
    specs = [_scale_spec(name, bk[name], n, hier) for n, name, hier in grid]
    fleet = run_many(specs, jobs=jobs, cache=cache)
    if verbose and (fleet.jobs > 1 or cache is not None):
        print(f"  {fleet.summary()}")
    for rec in fleet.failures():
        raise AssertionError(
            f"scale sweep: {rec['workload']} failed: {rec.get('error')}"
        )
    by_point = {
        key: _scale_point_record(rec) for key, rec in zip(grid, fleet.records)
    }
    points: Dict[str, Dict[str, object]] = {}
    for n in node_counts:
        per: Dict[str, Dict[str, Dict[str, object]]] = {"flat": {}, "hier": {}}
        for name in bk:
            flat = by_point[(n, name, False)]
            hier = by_point[(n, name, True)]
            if flat["value_sha"] != hier["value_sha"]:
                raise AssertionError(
                    f"{name}@{n} nodes: hierarchical sync changed the "
                    "computed value — it must only move messages and timing"
                )
            per["flat"][name] = flat
            per["hier"][name] = hier
        point = {
            "flat": _scale_aggregate(per["flat"]),
            "hier": _scale_aggregate(per["hier"]),
        }
        points[str(n)] = point
        if verbose:
            f, h = point["flat"], point["hier"]
            print(
                f"  n={n:<3} flat: vt={f['virtual_s'] * 1e3:8.3f} ms "
                f"barrier={f['barrier_s'] * 1e3:9.3f} ms "
                f"msgs={f['msgs_sent']:>6} "
                f"arr/epoch={f['master_arrivals_per_epoch']:5.1f}"
            )
            print(
                f"  {'':<5} hier: vt={h['virtual_s'] * 1e3:8.3f} ms "
                f"barrier={h['barrier_s'] * 1e3:9.3f} ms "
                f"msgs={h['msgs_sent']:>6} "
                f"arr/epoch={h['master_arrivals_per_epoch']:5.1f} "
                f"relays={h['barrier_relays']:>4} "
                f"merged={h['notices_merged']:>5}"
            )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # schema-2 environment fingerprint: without it the metrics
        # watchdog can't guard this section (satellite of ISSUE 10 —
        # scale-smoke used to write schema-1 reports)
        "meta": run_meta(node_counts, smoke=smoke),
        "smoke": smoke,
        "fanin": PARADE_HIER.barrier_fanin,
        "lock_shard": PARADE_HIER.lock_shard,
        "nodes": node_counts,
        "workloads": {k: v["note"] for k, v in bk.items()},
        "points": points,
    }


def phase_breakdown(spec: dict, n_nodes: int = 4, accel: bool = False) -> Dict[str, float]:
    """Virtual-time phase-group fractions for one workload.

    Runs the workload once more with the :mod:`repro.profile` profiler
    attached (kept out of the timed loop so the wall numbers measure the
    unobserved simulator) and returns ``{group: fraction}`` over all
    thread time — compute / cpu / stall / sync / comm / idle.  The
    simulator is deterministic, so this characterises the timed runs too.
    """
    from repro.profile import Profiler
    from repro.runtime import ParadeRuntime

    rt = ParadeRuntime(
        n_nodes=n_nodes, pool_bytes=spec["pool_bytes"], protocol_accel=accel
    )
    prof = Profiler(rt.sim, record_intervals=False)
    rt.run(spec["factory"]())
    prof.finalize()
    return prof.group_fractions(ndigits=4)


def measure_workload(
    spec: dict,
    n_nodes: int = 4,
    repeat: int = 2,
    phases: bool = True,
    accel: bool = False,
) -> Dict[str, object]:
    """Run one workload *repeat* times; report best-of wall clock.

    Returns wall_s / virtual_s / events / events_per_s / faults /
    faults_per_s / msgs_sent / bytes_sent, plus (unless ``phases=False``)
    a ``phases`` dict of virtual-time group fractions from a separate,
    untimed profiled run.  ``msgs_sent``/``bytes_sent`` are the network
    totals over the whole run (every frame funnels through
    :meth:`~repro.cluster.network.Network.send`, so the protocol
    accelerator's message-count savings show up here directly).  Virtual
    results must be identical across repeats (the simulator is
    deterministic) — a mismatch raises.  *accel* turns the protocol
    accelerator on (``protocol_accel=True``).
    """
    from repro.runtime import ParadeRuntime

    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeat)):
        rt = ParadeRuntime(
            n_nodes=n_nodes, pool_bytes=spec["pool_bytes"], protocol_accel=accel
        )
        t0 = time.perf_counter()
        res = rt.run(spec["factory"]())
        wall = time.perf_counter() - t0
        events = rt.sim.events_processed
        faults = res.dsm_stats.get("read_faults", 0) + res.dsm_stats.get(
            "write_faults", 0
        )
        net = rt.cluster.network
        rec = {
            "wall_s": wall,
            "virtual_s": res.elapsed,
            "events": events,
            "events_per_s": events / wall if wall > 0 else 0.0,
            "faults": faults,
            "faults_per_s": faults / wall if wall > 0 else 0.0,
            "msgs_sent": net.total_messages,
            "bytes_sent": net.total_bytes,
        }
        if best is not None and (
            rec["events"] != best["events"]
            or rec["virtual_s"] != best["virtual_s"]
            or rec["msgs_sent"] != best["msgs_sent"]
            or rec["bytes_sent"] != best["bytes_sent"]
        ):
            raise AssertionError(
                f"non-deterministic run: {rec['events']} events / "
                f"{rec['virtual_s']} s / {rec['msgs_sent']} msgs vs "
                f"{best['events']} / {best['virtual_s']} / {best['msgs_sent']}"
            )
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    assert best is not None
    if phases:
        best["phases"] = phase_breakdown(spec, n_nodes=n_nodes, accel=accel)
    return best


def _basket_record(rec: Dict[str, object]) -> Dict[str, object]:
    """Map one fleet record onto the basket-record shape the report, the
    speedup math and the bench gate consume."""
    wall = float(rec["wall_s"])
    out = {
        "wall_s": wall,
        "virtual_s": rec["virtual_s"],
        "events": rec["events"],
        "events_per_s": rec["events"] / wall if wall > 0 else 0.0,
        "faults": rec["faults"],
        "faults_per_s": rec["faults"] / wall if wall > 0 else 0.0,
        "msgs_sent": rec["msgs_sent"],
        "bytes_sent": rec["bytes_sent"],
    }
    if "phases" in rec:
        out["phases"] = rec["phases"]
    return out


def run_basket(
    smoke: bool = False,
    n_nodes: int = 4,
    repeat: int = 2,
    workloads: Optional[List[str]] = None,
    verbose: bool = True,
    accel: bool = False,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[str, Dict[str, object]]:
    """Measure every workload of the basket; returns {name: metrics}.

    The basket fans out across ``jobs`` fleet worker processes (default:
    in-process when 1).  Worker runs are bit-identical to in-process
    runs, so every virtual-time number is independent of ``jobs``; only
    ``wall_s`` (and the rates derived from it) carries host noise.
    """
    from repro.fleet import run_many
    from repro.fleet.spec import RunSpec

    bk = basket(smoke)
    names = workloads or list(bk)
    unknown = [n for n in names if n not in bk]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; choose from {sorted(bk)}")
    specs = [
        RunSpec.from_entry(
            name, bk[name], n_nodes=n_nodes, repeat=repeat, accel=accel, profile=True
        )
        for name in names
    ]
    fleet = run_many(specs, jobs=jobs, cache=cache)
    if verbose and (fleet.jobs > 1 or cache is not None):
        print(f"  {fleet.summary()}")
    results: Dict[str, Dict[str, object]] = {}
    for name, frec in zip(names, fleet.records):
        if not frec.get("ok"):
            raise AssertionError(
                f"perf basket: {name} failed: {frec.get('error')}\n"
                f"{frec.get('traceback', '')}"
            )
        rec = _basket_record(frec)
        results[name] = rec
        if verbose:
            ph = rec.get("phases") or {}
            ph_str = " ".join(
                f"{g}={ph[g]:.0%}"
                for g in ("compute", "stall", "sync", "comm")
                if g in ph
            )
            print(
                f"  {name:<10} wall={rec['wall_s']:7.3f}s "
                f"events={rec['events']:>8} "
                f"ev/s={rec['events_per_s']:>11,.0f} "
                f"msgs={rec['msgs_sent']:>6} "
                f"faults/s={rec['faults_per_s']:>9,.0f}  {ph_str}"
            )
    return results


def aggregate_virtual_s(results: Dict[str, Dict[str, object]]) -> float:
    """Basket virtual time: sum of per-workload virtual seconds."""
    return sum(float(r["virtual_s"]) for r in results.values())


def accel_deltas(
    baseline: Dict[str, Dict[str, object]], accel: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    """Protocol-accelerator effect: virtual-time / message / byte reduction
    of the accel basket vs the flags-off baseline, per workload and for the
    whole basket.  Fractions are reductions (0.19 = 19% less)."""
    per: Dict[str, Dict[str, float]] = {}
    for name, acc in accel.items():
        base = baseline.get(name)
        if not base:
            continue
        ent: Dict[str, float] = {}
        if float(base["virtual_s"]) > 0:
            ent["virtual_time_reduction"] = 1.0 - float(acc["virtual_s"]) / float(
                base["virtual_s"]
            )
        for key, label in (("msgs_sent", "msgs_delta"), ("bytes_sent", "bytes_delta")):
            if key in base and key in acc:
                ent[label] = int(acc[key]) - int(base[key])
        per[name] = ent
    out: Dict[str, object] = {"per_workload": per}
    base_vt = aggregate_virtual_s({k: v for k, v in baseline.items() if k in accel})
    if base_vt > 0:
        out["aggregate_virtual_time_reduction"] = (
            1.0 - aggregate_virtual_s(accel) / base_vt
        )
    return out


def aggregate_events_per_s(results: Dict[str, Dict[str, float]]) -> float:
    """Basket throughput: total simulator events over total wall seconds."""
    wall = sum(r["wall_s"] for r in results.values())
    events = sum(r["events"] for r in results.values())
    return events / wall if wall > 0 else 0.0


def compute_speedup(
    baseline: Dict[str, Dict[str, float]], current: Dict[str, Dict[str, float]]
) -> Dict[str, object]:
    """Events/sec speedup of *current* over *baseline*, per workload and
    for the whole basket (total events / total wall)."""
    per: Dict[str, float] = {}
    for name, cur in current.items():
        base = baseline.get(name)
        if base and base.get("events_per_s"):
            per[name] = cur["events_per_s"] / base["events_per_s"]
    out: Dict[str, object] = {"per_workload": per}
    base_agg = aggregate_events_per_s(
        {k: v for k, v in baseline.items() if k in current}
    )
    cur_agg = aggregate_events_per_s(current)
    if base_agg:
        out["aggregate_events_per_s"] = cur_agg / base_agg
    return out


#: bench-gate tolerance: the accel basket may regress aggregate virtual
#: time by at most this fraction vs the checked-in 'accel' baseline
GATE_TOLERANCE = 0.05


def run_gate(
    path: str = DEFAULT_OUT,
    n_nodes: Optional[int] = None,
    jobs: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    """Bench gate (``make bench-gate``): fail on virtual-time regression.

    Runs the full basket with the protocol accelerator on and compares
    aggregate virtual time against the checked-in ``accel`` section of
    *path*.  Virtual time is deterministic, so one repeat suffices and
    host noise cannot flake the gate: any delta is a real protocol
    change.  Returns 0 if within :data:`GATE_TOLERANCE`, 1 otherwise.

    The gate compares only deterministic virtual-time numbers, so its
    runs are fleet-cached (keyed by spec + source-tree digest): an
    unchanged tree re-runs the gate from cache with zero re-simulations.
    The hit/miss counters are printed so cache poisoning would be
    visible in CI logs; ``--no-cache`` / ``PARADE_CACHE=0`` bypasses.
    """
    from repro.fleet import default_cache, run_many
    from repro.fleet.spec import RunSpec

    report = load_report(path)
    ref = report.get("accel", {}).get("results")
    if not ref:
        print(f"bench-gate: no 'accel' baseline in {path}; "
              "run `python -m repro.bench.perf --accel` first")
        return 1
    nodes = n_nodes or int(report.get("nodes", 4))
    bk = _full_basket()
    missing = [name for name in ref if name not in bk]
    if missing:
        print(f"bench-gate: baseline workload(s) {missing} missing from basket")
        return 1
    cache = default_cache(no_cache)
    gate_names = list(ref)
    specs = [
        RunSpec.from_entry(name, bk[name], n_nodes=nodes, accel=True)
        for name in gate_names
    ]
    fleet = run_many(specs, jobs=jobs, cache=cache)
    print(f"  {fleet.summary()}")
    for frec in fleet.failures():
        print(f"bench-gate: {frec['workload']} failed: {frec.get('error')}")
        return 1
    cur = {
        name: _basket_record(frec)
        for name, frec in zip(gate_names, fleet.records)
    }
    base_vt = aggregate_virtual_s(ref)
    cur_vt = aggregate_virtual_s(cur)
    ratio = cur_vt / base_vt if base_vt > 0 else float("inf")
    for name in ref:
        b, c = float(ref[name]["virtual_s"]), float(cur[name]["virtual_s"])
        mark = "" if c <= b * (1 + GATE_TOLERANCE) else "   <-- regressed"
        print(f"  {name:<10} baseline={b * 1e3:9.3f} ms  current={c * 1e3:9.3f} ms"
              f"  ({(c / b - 1) * 100:+6.2f}%){mark}")
    print(f"  aggregate  baseline={base_vt * 1e3:9.3f} ms  "
          f"current={cur_vt * 1e3:9.3f} ms  ({(ratio - 1) * 100:+6.2f}%)")
    if ratio > 1 + GATE_TOLERANCE:
        print(f"bench-gate: FAIL — aggregate virtual time regressed "
              f"{(ratio - 1) * 100:.2f}% (> {GATE_TOLERANCE:.0%} tolerance)")
        return 1
    scale_rc = run_scale_gate(report, jobs=jobs, cache=cache)
    if scale_rc:
        return scale_rc
    print(f"bench-gate: OK (within {GATE_TOLERANCE:.0%} of baseline)")
    return 0


def run_scale_gate(report: dict, jobs: Optional[int] = None, cache=None) -> int:
    """Barrier-path regression gate on the checked-in 16-node scale point.

    If the report carries a ``scale`` section with the
    :data:`SCALE_GATE_NODES` point, re-run that point with hierarchical
    sync on and compare end-to-end virtual time *and* barrier-phase
    virtual time against the baseline — a change that slows only the
    barrier path (relay costs, merge work, departure fan-out) moves the
    second number long before it moves the first.  Virtual time is
    deterministic, so any drift beyond :data:`GATE_TOLERANCE` is a real
    protocol change.  Returns 0 when absent or within tolerance.
    """
    scale = report.get("scale")
    if not scale:
        return 0
    point = scale.get("points", {}).get(str(SCALE_GATE_NODES), {}).get("hier")
    if not point:
        return 0
    bk = _scale_basket(smoke=bool(scale.get("smoke")))
    gate_names = list(point.get("per_workload", {}))
    missing = [name for name in gate_names if name not in bk]
    if missing:
        print(f"scale-gate: baseline workload(s) {missing} missing from basket")
        return 1
    if not gate_names:
        return 0
    from repro.fleet import run_many

    specs = [
        _scale_spec(name, bk[name], SCALE_GATE_NODES, hier=True)
        for name in gate_names
    ]
    fleet = run_many(specs, jobs=jobs, cache=cache)
    print(f"  {fleet.summary()}")
    for frec in fleet.failures():
        print(f"scale-gate: {frec['workload']} failed: {frec.get('error')}")
        return 1
    per = {
        name: _scale_point_record(frec)
        for name, frec in zip(gate_names, fleet.records)
    }
    cur = _scale_aggregate(per)
    for metric, label in (("virtual_s", "virtual time"),
                          ("barrier_s", "barrier-phase virtual time")):
        b, c = float(point[metric]), float(cur[metric])
        ratio = c / b if b > 0 else float("inf")
        print(f"  scale@{SCALE_GATE_NODES}n {label:<27} "
              f"baseline={b * 1e3:9.3f} ms  current={c * 1e3:9.3f} ms  "
              f"({(ratio - 1) * 100:+6.2f}%)")
        if ratio > 1 + GATE_TOLERANCE:
            print(f"bench-gate: FAIL — {label} at {SCALE_GATE_NODES} nodes "
                  f"regressed {(ratio - 1) * 100:.2f}% "
                  f"(> {GATE_TOLERANCE:.0%} tolerance)")
            return 1
    return 0


def load_report(path: str) -> dict:
    """Load a perf report of any schema version.

    Schema-1 files (no per-section ``meta``) load unchanged — consumers
    must treat ``meta`` as optional.  A missing file yields an empty
    report, ready to receive its first section.
    """
    if os.path.exists(path):
        with open(path) as fh:
            report = json.load(fh)
        report.setdefault("schema", 1)
        return report
    return {}


def write_report(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.perf", description=__doc__.split("\n\n")[0]
    )
    ap.add_argument(
        "--baseline",
        action="store_true",
        help="record results into the 'baseline' section (pre-change run)",
    )
    ap.add_argument(
        "--smoke", action="store_true", help="tiny basket; CI regression mode"
    )
    ap.add_argument(
        "--accel",
        action="store_true",
        help="run with the protocol accelerator on; record into the 'accel' "
        "section and report virtual-time / message deltas vs the baseline",
    )
    ap.add_argument(
        "--gate",
        action="store_true",
        help="bench gate: run the accel basket and exit 1 if aggregate "
        "virtual time regressed more than 5%% vs the checked-in 'accel' "
        "baseline (no report rewrite)",
    )
    ap.add_argument(
        "--scale",
        action="store_true",
        help="scale-out sweep: run the scale basket at each --scale-nodes "
        "count, flat vs hierarchical sync, and record the per-point curves "
        "into the 'scale' section (the 16-node point becomes the "
        "scale-gate baseline)",
    )
    ap.add_argument(
        "--scale-nodes",
        default=None,
        help="comma-separated node counts for --scale "
        f"(default: {','.join(str(n) for n in SCALE_NODES)})",
    )
    ap.add_argument("--out", default=None, help="output JSON path")
    ap.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    ap.add_argument(
        "--repeat", type=int, default=2, help="runs per workload, best-of (default 2)"
    )
    ap.add_argument(
        "--workloads",
        default=None,
        help="comma-separated subset of the basket (default: all)",
    )
    ap.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fleet worker processes (default: PARADE_JOBS env or cpu count); "
        "virtual-time results are bit-identical for any value",
    )
    ap.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the fleet run cache (gate/scale modes; PARADE_CACHE=0 "
        "does the same)",
    )
    args = ap.parse_args(argv)

    out = args.out or (SMOKE_OUT if args.smoke else DEFAULT_OUT)
    if args.gate:
        return run_gate(
            out,
            n_nodes=args.nodes if args.nodes != 4 else None,
            jobs=args.jobs,
            no_cache=args.no_cache,
        )
    if args.scale:
        from repro.fleet import default_cache

        counts = (
            [int(x) for x in args.scale_nodes.split(",") if x]
            if args.scale_nodes else None
        )
        print(f"scale sweep ({'smoke' if args.smoke else 'full'} basket, "
              f"flat vs hierarchical) -> {out} [scale]")
        section = run_scale(
            smoke=args.smoke,
            nodes=counts,
            jobs=args.jobs,
            cache=default_cache(args.no_cache),
        )
        report = load_report(out)
        report["schema"] = SCHEMA
        report["scale"] = section
        write_report(out, report)
        return 0
    names = args.workloads.split(",") if args.workloads else None
    section = "accel" if args.accel else ("baseline" if args.baseline else "current")
    print(f"perf basket ({'smoke' if args.smoke else 'full'}"
          f"{', protocol accel' if args.accel else ''}) -> {out} [{section}]")

    # recording modes never use the run cache: wall-clock freshness is the
    # point of a recorded section, and a cached wall time would lie
    results = run_basket(
        smoke=args.smoke, n_nodes=args.nodes, repeat=args.repeat, workloads=names,
        accel=args.accel, jobs=args.jobs,
    )

    report = load_report(out)
    report["schema"] = SCHEMA
    report["label"] = "parade-perf-basket" + ("-smoke" if args.smoke else "")
    report["nodes"] = args.nodes
    report["workloads"] = {k: v["note"] for k, v in basket(args.smoke).items()}
    report[section] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "meta": run_meta(args.nodes, accel=args.accel, smoke=args.smoke),
        "results": results,
    }
    if args.accel:
        # protocol effect vs the flags-off run (prefer the freshest section)
        ref = report.get("current") or report.get("baseline")
        if ref:
            report["accel_effect"] = accel_deltas(ref["results"], results)
            agg = report["accel_effect"].get("aggregate_virtual_time_reduction")
            if agg is not None:
                print(f"  accelerator: {agg:.1%} less aggregate virtual time")
    elif args.baseline:
        # a fresh baseline invalidates any previous comparison
        report.pop("current", None)
        report.pop("speedup", None)
    elif "baseline" in report:
        report["speedup"] = compute_speedup(report["baseline"]["results"], results)
        agg = report["speedup"].get("aggregate_events_per_s")
        if agg:
            print(f"  basket speedup (events/s): {agg:.2f}x vs baseline")
    write_report(out, report)
    print(f"  aggregate: {aggregate_events_per_s(results):,.0f} events/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
