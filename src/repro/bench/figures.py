"""Figure-by-figure series builders.

Each ``figN_*`` function regenerates the data behind one figure of the
paper's evaluation and returns a :class:`FigureData` whose series can be
printed (see :mod:`repro.bench.report`) and shape-checked by the pytest
benchmarks in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.runtime import (
    ParadeRuntime,
    ExecConfig,
    ONE_THREAD_ONE_CPU,
    ONE_THREAD_TWO_CPU,
    TWO_THREAD_TWO_CPU,
    ALL_EXEC_CONFIGS,
)
from repro.bench.microbench import sweep_directive
from repro.apps import ep, cg, helmholtz, md

DEFAULT_NODES = (1, 2, 4, 8)


def registered_programs() -> Dict[str, dict]:
    """Registry of runnable figure workloads, by name.

    Each entry maps to ``{"factory": () -> program, "factory_ref":
    (module, function), "factory_kwargs": dict, "pool_bytes": int,
    "figure": str, "note": str}`` with scaled-down default sizes suitable
    for interactive runs.  ``factory`` is the in-process callable;
    ``factory_ref`` + ``factory_kwargs`` are the serializable form the
    fleet executor ships to worker processes
    (:meth:`repro.fleet.RunSpec.from_entry`).  Consumed by the tracing
    CLI (``python -m repro.trace``), the chaos sweep, the sanitizer
    sweep, and the fleet; the full-size figure sweeps remain the
    ``figN_*`` functions above.
    """
    from repro.fleet.spec import make_entry

    return {
        "helmholtz": make_entry(
            ("repro.apps.helmholtz", "make_program"),
            {"n": 48, "m": 48, "max_iters": 3},
            pool_bytes=1 << 21,
            note="Helmholtz/Jacobi 48x48, 3 iterations",
            figure="fig10",
        ),
        "ep": make_entry(
            ("repro.apps.ep", "make_program"),
            {"klass": "T"},
            pool_bytes=1 << 20,
            note="NAS EP class T",
            figure="fig9",
        ),
        "cg": make_entry(
            ("repro.apps.cg", "make_program"),
            {"klass": "S", "niter": 1},
            pool_bytes=1 << 23,
            note="NAS CG class S, 1 outer iteration",
            figure="fig8",
        ),
        "md": make_entry(
            ("repro.apps.md", "make_program"),
            {"n_particles": 48, "steps": 2},
            pool_bytes=1 << 21,
            note="MD 48 particles, 2 steps",
            figure="fig11",
        ),
    }


@dataclass
class Series:
    label: str
    x: List[float]
    y: List[float]


@dataclass
class FigureData:
    figure: str
    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)

    def by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure}")


# ----------------------------------------------------------------------
# Figures 6 and 7: microbenchmarks
# ----------------------------------------------------------------------
def fig6_critical(
    nodes: Sequence[int] = DEFAULT_NODES, iters: int = 50, cluster_config=None
) -> FigureData:
    data = sweep_directive(
        "critical", nodes=list(nodes), iters=iters, cluster_config=cluster_config
    )
    fd = FigureData(
        figure="fig6",
        title="critical directive: ParADE vs KDSM",
        xlabel="nodes",
        ylabel="time per critical (us)",
    )
    for system, ys in data.items():
        fd.series.append(Series(system, list(nodes), [y * 1e6 for y in ys]))
    return fd


def fig7_single(
    nodes: Sequence[int] = DEFAULT_NODES, iters: int = 50, cluster_config=None
) -> FigureData:
    data = sweep_directive(
        "single", nodes=list(nodes), iters=iters, cluster_config=cluster_config
    )
    fd = FigureData(
        figure="fig7",
        title="single directive: ParADE vs KDSM",
        xlabel="nodes",
        ylabel="time per single (us)",
    )
    for system, ys in data.items():
        fd.series.append(Series(system, list(nodes), [y * 1e6 for y in ys]))
    return fd


# ----------------------------------------------------------------------
# Figures 8-11: application execution time, 3 configurations x nodes
# ----------------------------------------------------------------------
def run_app_over_configs(
    program_factory: Callable[[], Callable],
    nodes: Sequence[int] = DEFAULT_NODES,
    exec_configs: Sequence[ExecConfig] = ALL_EXEC_CONFIGS,
    pool_bytes: int = 1 << 22,
    cluster_config=None,
) -> Dict[str, List[float]]:
    """Run one app for every (exec config, node count); returns execution
    times {config name: [seconds per node count]}.

    *program_factory* is called once per run so programs may not be
    shared between runtimes.
    """
    out: Dict[str, List[float]] = {}
    for ec in exec_configs:
        ys = []
        for n in nodes:
            rt = ParadeRuntime(
                n_nodes=n,
                exec_config=ec,
                mode="parade",
                pool_bytes=pool_bytes,
                cluster_config=cluster_config,
            )
            res = rt.run(program_factory())
            ys.append(res.elapsed)
        out[ec.name] = ys
    return out


def _app_figure(
    figure: str,
    title: str,
    program_factory: Callable[[], Callable],
    nodes: Sequence[int],
    pool_bytes: int,
    cluster_config=None,
) -> FigureData:
    data = run_app_over_configs(
        program_factory, nodes=nodes, pool_bytes=pool_bytes, cluster_config=cluster_config
    )
    fd = FigureData(
        figure=figure, title=title, xlabel="nodes", ylabel="execution time (ms, virtual)"
    )
    for name, ys in data.items():
        fd.series.append(Series(name, list(nodes), [y * 1e3 for y in ys]))
    return fd


def fig8_cg(
    klass: str = "S",
    niter: int = 3,
    nodes: Sequence[int] = DEFAULT_NODES,
    cluster_config=None,
) -> FigureData:
    matrix = cg.make_matrix(klass)
    return _app_figure(
        "fig8",
        f"NAS CG class {klass} on cLAN",
        lambda: cg.make_program(klass, a=matrix, niter=niter),
        nodes,
        pool_bytes=1 << 23,
        cluster_config=cluster_config,
    )


def fig9_ep(
    klass: str = "T", nodes: Sequence[int] = DEFAULT_NODES, cluster_config=None
) -> FigureData:
    return _app_figure(
        "fig9",
        f"NAS EP class {klass} on cLAN",
        lambda: ep.make_program(klass),
        nodes,
        pool_bytes=1 << 20,
        cluster_config=cluster_config,
    )


def fig10_helmholtz(
    n: int = 256,
    m: int = 256,
    max_iters: int = 25,
    nodes: Sequence[int] = DEFAULT_NODES,
    cluster_config=None,
) -> FigureData:
    return _app_figure(
        "fig10",
        f"Helmholtz {n}x{m} on cLAN",
        lambda: helmholtz.make_program(n=n, m=m, max_iters=max_iters),
        nodes,
        pool_bytes=1 << 22,
        cluster_config=cluster_config,
    )


def fig11_md(
    n_particles: int = 256,
    steps: int = 5,
    nodes: Sequence[int] = DEFAULT_NODES,
    cluster_config=None,
) -> FigureData:
    return _app_figure(
        "fig11",
        f"MD n={n_particles} on cLAN",
        lambda: md.make_program(n_particles=n_particles, steps=steps),
        nodes,
        pool_bytes=1 << 21,
        cluster_config=cluster_config,
    )


# ----------------------------------------------------------------------
# §5.1: atomic page update strategies
# ----------------------------------------------------------------------
def atomic_update_comparison(
    n_updates: int = 200, os_profiles: Sequence[str] = ("linux-2.4", "aix-4.3.3")
) -> FigureData:
    """Mean page-update cost per strategy per OS profile (§5.1's finding:
    all comparable on Linux; file mapping poor on AIX)."""
    import numpy as np

    from repro.sim import Simulator
    from repro.vm import (
        PhysicalMemory,
        AddressSpace,
        PROT_NONE,
        PROT_READ,
        strategy_by_name,
        STRATEGY_NAMES,
        LINUX_24,
        AIX_433,
    )
    from repro.vm.strategies import SimpleExecutor

    profiles = {"linux-2.4": LINUX_24, "aix-4.3.3": AIX_433}
    fd = FigureData(
        figure="sec5.1",
        title="atomic page update strategies",
        xlabel="strategy",
        ylabel="us per page update",
    )
    page = bytes(range(256)) * 16  # 4096 bytes
    for prof_name in os_profiles:
        xs, ys = [], []
        for i, name in enumerate(STRATEGY_NAMES):
            sim = Simulator()
            phys = PhysicalMemory(1, 4096)
            space = AddressSpace(phys)
            space.map_identity(1, prot=PROT_NONE)
            strat = strategy_by_name(name, profile=profiles[prof_name])
            ex = SimpleExecutor(sim)

            def run():
                for _ in range(n_updates):
                    space.protect(0, PROT_NONE)
                    yield from strat.update_page(ex, space, 0, page, PROT_READ)

            proc = sim.process(run())
            sim.run_until_complete(proc)
            xs.append(i)
            ys.append(sim.now / n_updates * 1e6)
        fd.series.append(Series(prof_name, xs, ys))
    fd.xlabel = " / ".join(STRATEGY_NAMES)
    return fd
