"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.bench.microbench` — EPCC-style directive-overhead
  measurements (Figures 6 and 7: ``critical`` and ``single`` on ParADE vs
  KDSM over 1–8 nodes);
* :mod:`repro.bench.figures`    — application execution-time series
  (Figures 8–11: CG, EP, Helmholtz, MD under the three §6.2
  configurations), the §5.1 atomic-page-update comparison, and the
  ablations DESIGN.md calls out (home migration, hybrid threshold,
  interconnect);
* :mod:`repro.bench.report`     — plain-text tables and CSV output.
"""

from repro.bench.microbench import (
    measure_critical_overhead,
    measure_single_overhead,
    sweep_directive,
)
from repro.bench.figures import (
    Series,
    FigureData,
    registered_programs,
    fig6_critical,
    fig7_single,
    fig8_cg,
    fig9_ep,
    fig10_helmholtz,
    fig11_md,
    atomic_update_comparison,
    run_app_over_configs,
)
from repro.bench.report import render_table, write_csv

__all__ = [
    "measure_critical_overhead",
    "measure_single_overhead",
    "sweep_directive",
    "Series",
    "FigureData",
    "registered_programs",
    "fig6_critical",
    "fig7_single",
    "fig8_cg",
    "fig9_ep",
    "fig10_helmholtz",
    "fig11_md",
    "atomic_update_comparison",
    "run_app_over_configs",
    "render_table",
    "write_csv",
]
