"""EPCC-style synchronisation microbenchmarks (Figures 6 and 7).

Following Bull's methodology [19]: run the directive in a loop inside one
parallel region and report the mean time per encounter.  The paper compares
the ParADE translation (pthread lock + collective) against the KDSM
translation (distributed lock + page traffic + barrier) as the node count
grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.runtime import (
    ParadeRuntime,
    ExecConfig,
    TWO_THREAD_TWO_CPU,
)
from repro.mpi.ops import SUM

#: encounters measured per run
DEFAULT_ITERS = 50


def _system_args(system: str) -> dict:
    """Map a system name to runtime arguments."""
    if system == "parade":
        return {"mode": "parade"}
    if system == "kdsm":
        return {"mode": "sdsm"}
    raise ValueError(f"unknown system {system!r}; use 'parade' or 'kdsm'")


def measure_critical_overhead(
    system: str = "parade",
    n_nodes: int = 4,
    exec_config: ExecConfig = TWO_THREAD_TWO_CPU,
    iters: int = DEFAULT_ITERS,
    cluster_config=None,
) -> float:
    """Mean virtual seconds per ``critical`` encounter.

    The measured body is the paper's canonical analyzable critical section
    ``x = x + 1`` on a small shared scalar.
    """

    def program(ctx):
        x = ctx.shared_scalar("mb_x")

        def body(tc, x):
            for _ in range(iters):
                yield from tc.critical_update(x, 1.0, SUM)

        t0 = ctx.now
        yield from ctx.parallel(body, x)
        per_op = (ctx.now - t0) / iters
        total = yield from ctx.scalar(x).get()
        expected = float(iters * tc_count)
        assert abs(total - expected) < 1e-6, (total, expected)
        return per_op

    rt = ParadeRuntime(
        n_nodes=n_nodes,
        exec_config=exec_config,
        cluster_config=cluster_config,
        pool_bytes=1 << 20,
        **_system_args(system),
    )
    tc_count = n_nodes * exec_config.threads_per_node
    return rt.run(program).value


def measure_single_overhead(
    system: str = "parade",
    n_nodes: int = 4,
    exec_config: ExecConfig = TWO_THREAD_TWO_CPU,
    iters: int = DEFAULT_ITERS,
    cluster_config=None,
) -> float:
    """Mean virtual seconds per ``single`` encounter (small init body)."""

    def program(ctx):
        v = ctx.shared_scalar("mb_v")

        def body(tc, v):
            for i in range(iters):
                def init(i=i):
                    return float(i)
                    yield  # pragma: no cover

                got = yield from tc.single(body_gen_fn=init, shared_scalar=v)
                # In parade mode the broadcast value is deterministic.  In the
                # conventional translation a thread's post-barrier read races
                # with the next instance's writer, so no assertion there.
                if system == "parade":
                    assert got == float(i), (got, i)

        t0 = ctx.now
        yield from ctx.parallel(body, v)
        return (ctx.now - t0) / iters

    rt = ParadeRuntime(
        n_nodes=n_nodes,
        exec_config=exec_config,
        cluster_config=cluster_config,
        pool_bytes=1 << 20,
        **_system_args(system),
    )
    return rt.run(program).value


def sweep_directive(
    directive: str,
    systems: List[str] = ("parade", "kdsm"),
    nodes: List[int] = (1, 2, 4, 8),
    exec_config: ExecConfig = TWO_THREAD_TWO_CPU,
    iters: int = DEFAULT_ITERS,
    cluster_config=None,
) -> Dict[str, List[float]]:
    """Sweep a directive microbenchmark over systems × node counts.

    Returns {system: [seconds-per-op for each node count]}.
    """
    measure = {
        "critical": measure_critical_overhead,
        "single": measure_single_overhead,
    }[directive]
    out: Dict[str, List[float]] = {}
    for system in systems:
        out[system] = [
            measure(
                system=system,
                n_nodes=n,
                exec_config=exec_config,
                iters=iters,
                cluster_config=cluster_config,
            )
            for n in nodes
        ]
    return out
