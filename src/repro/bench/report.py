"""Plain-text tables and CSV output for figure data."""

from __future__ import annotations

import csv
import io
from typing import Optional

from repro.bench.figures import FigureData


def render_table(fd: FigureData, precision: int = 3) -> str:
    """ASCII table: one row per x value, one column per series."""
    labels = [s.label for s in fd.series]
    xs = fd.series[0].x if fd.series else []
    width = max(12, max((len(l) for l in labels), default=12) + 2)

    out = io.StringIO()
    out.write(f"# {fd.figure}: {fd.title}\n")
    out.write(f"# y = {fd.ylabel}\n")
    header = f"{fd.xlabel:>10}" + "".join(f"{l:>{width}}" for l in labels)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for i, x in enumerate(xs):
        row = f"{x:>10}"
        for s in fd.series:
            row += f"{s.y[i]:>{width}.{precision}f}"
        out.write(row + "\n")
    return out.getvalue()


def write_csv(fd: FigureData, path: str) -> None:
    """CSV: columns x, <series...> (one row per x)."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow([fd.xlabel] + [s.label for s in fd.series])
        xs = fd.series[0].x if fd.series else []
        for i, x in enumerate(xs):
            writer.writerow([x] + [s.y[i] for s in fd.series])
