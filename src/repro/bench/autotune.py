"""Adaptive configuration search (§8 future work).

"As the experimental results show, more processors do not always give
better performance.  For a given problem, we want to find the best
configuration ...  We may dynamically determine a proper number of
processors and threads."  This module does that over the simulator: run
the workload across a configuration grid and return the fastest, together
with the full measurement table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime import ParadeRuntime, ExecConfig, ALL_EXEC_CONFIGS


@dataclass(frozen=True)
class TunePoint:
    n_nodes: int
    exec_config: ExecConfig
    elapsed: float

    @property
    def label(self) -> str:
        return f"{self.n_nodes}n/{self.exec_config.name}"


@dataclass
class TuneResult:
    best: TunePoint
    points: List[TunePoint]

    def table(self) -> str:
        lines = [f"{'configuration':>24} {'time (ms)':>12}"]
        for p in sorted(self.points, key=lambda p: p.elapsed):
            marker = "  <-- best" if p == self.best else ""
            lines.append(f"{p.label:>24} {p.elapsed * 1e3:>12.3f}{marker}")
        return "\n".join(lines)


def find_best_config(
    program_factory: Callable[[], Callable],
    nodes: Sequence[int] = (1, 2, 4, 8),
    exec_configs: Sequence[ExecConfig] = ALL_EXEC_CONFIGS,
    mode: str = "parade",
    pool_bytes: int = 1 << 22,
    cluster_config=None,
) -> TuneResult:
    """Sweep (node count × exec config) and pick the fastest run.

    *program_factory* is invoked once per run (programs are not reusable
    across runtimes).  Deterministic: one run per point suffices.
    """
    points: List[TunePoint] = []
    for ec in exec_configs:
        for n in nodes:
            rt = ParadeRuntime(
                n_nodes=n,
                exec_config=ec,
                mode=mode,
                pool_bytes=pool_bytes,
                cluster_config=cluster_config,
            )
            res = rt.run(program_factory())
            points.append(TunePoint(n, ec, res.elapsed))
    best = min(points, key=lambda p: p.elapsed)
    return TuneResult(best=best, points=points)
