"""Run results: value + virtual-time and protocol statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class RunResult:
    """Outcome of :meth:`ParadeRuntime.run`."""

    value: Any
    #: end-to-end virtual seconds of the whole program
    elapsed: float
    #: virtual seconds spent inside parallel regions only
    region_time: float
    cluster_stats: Dict[str, float] = field(default_factory=dict)
    dsm_stats: Dict[str, int] = field(default_factory=dict)
    mpi_stats: Dict[str, int] = field(default_factory=dict)

    #: per-node rows: filled by ParadeRuntime.run
    node_profile: list = field(default_factory=list)

    def node_report(self) -> str:
        """Per-node breakdown: compute vs protocol-overhead vs idle CPU
        time, message counts and bytes — a quick profile of where the run
        went (the measurement the paper's §8 adaptive-configuration idea
        needs)."""
        if not self.node_profile:
            return "(no per-node profile recorded)"
        header = (
            f"{'node':>4} {'MHz':>5} {'compute ms':>11} {'overhead ms':>12} "
            f"{'cpu busy %':>11} {'msgs out':>9} {'KB out':>8}"
        )
        lines = [header, "-" * len(header)]
        for row in self.node_profile:
            lines.append(
                f"{row['node']:>4} {row['mhz']:>5} {row['compute'] * 1e3:>11.3f} "
                f"{row['overhead'] * 1e3:>12.3f} {row['busy_frac'] * 100:>10.1f}% "
                f"{row['msgs_sent']:>9} {row['bytes_sent'] / 1024:>8.1f}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [
            f"elapsed        : {self.elapsed * 1e3:10.3f} ms (virtual)",
            f"region time    : {self.region_time * 1e3:10.3f} ms",
            f"messages       : {self.cluster_stats.get('total_messages', 0):>10}",
            f"bytes on wire  : {self.cluster_stats.get('total_bytes', 0):>10}",
        ]
        interesting = (
            "read_faults",
            "write_faults",
            "pages_fetched",
            "diffs_sent",
            "barriers",
            "lock_acquires",
            "home_migrations",
            "invalidations",
        )
        for k in interesting:
            v = self.dsm_stats.get(k, 0)
            if v:
                lines.append(f"{k:<15}: {v:>10}")
        return "\n".join(lines)
