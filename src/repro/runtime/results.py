"""Run results: value + virtual-time and protocol statistics.

This module is the *aggregate* end of the observability story; the
per-event end is :mod:`repro.trace`.  Both use one vocabulary: every
key documented below appears verbatim in trace-event ``args`` or can be
recomputed by summing the corresponding trace events (e.g. ``diffs_sent``
is the count of ``dsm.page/flush`` span ``diffs`` args).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class RunResult:
    """Outcome of :meth:`ParadeRuntime.run`.

    Statistics dictionaries
    -----------------------

    ``cluster_stats`` (hardware level; from :meth:`Cluster.stats`):

    ================== ======= ====================================================
    key                unit    meaning / figure consuming it
    ================== ======= ====================================================
    virtual_time       s       end-of-run virtual clock (== ``elapsed``)
    total_messages     count   frames sent on the network (Figs 6-7 cost arguments)
    total_bytes        bytes   wire bytes incl. 42 B/frame headers
    events_processed   count   simulator events (run size / determinism checks)
    compute_time       s       per-node application CPU time, summed over nodes
    overhead_time      s       per-node protocol CPU time, summed over nodes
    ================== ======= ====================================================

    ``dsm_stats`` (protocol level; per-node
    :class:`~repro.dsm.node.DsmNodeStats` summed over nodes, plus
    ``home_migrations``) — see :class:`DsmNodeStats` for the per-key
    documentation.  Runs with the protocol accelerator on
    (``protocol_accel=True``; docs/PERFORMANCE.md "Protocol
    optimizations") additionally populate ``notices_batched``,
    ``diffs_piggybacked``, ``updates_pushed``, ``updates_installed`` and
    ``readahead_pages``; all five stay zero with the flags off, so a
    flags-off run's dict is unchanged.  Runs with hierarchical
    synchronization on (``hierarchical=True``; docs/PERFORMANCE.md
    "Scaling past eight nodes") likewise populate the scale-out
    counters ``barrier_relays`` (tree-barrier aggregate frames relayed
    or fanned out by interior nodes) and ``notices_merged`` (per-page
    write-notice records collapsed into an existing page entry while
    folding child contributions in-tree), while ``barrier_arrivals_rx``
    (remote barrier-arrival frames received — on the master this is
    n−1 per epoch flat but at most the tree fan-in with
    ``barrier_fanin`` set), ``lock_grants`` and ``lock_remote_grants``
    (grants total / grants to another node, whose ratio is the lock
    shard's remote-grant share) count in every run and let flat and
    sharded topologies be compared key-for-key.

    ``mpi_stats``:

    ============ ===== ========================================================
    p2p          count point-to-point sends (collective tree edges included)
    collectives  count collective *calls* across ranks (Bcast/Reduce/... each
                       counts once per participating rank)
    ============ ===== ========================================================

    ``chaos_stats`` (reliability level; empty unless the run had a
    ``fault_plan``; from :meth:`~repro.chaos.ChaosStats.as_dict`):

    ================= ===== ===================================================
    key               unit  meaning
    ================= ===== ===================================================
    frames            count remote frames offered to the chaos pipeline
    drops             count frames lost to a random drop draw
    flap_drops        count frames + acks lost to outage windows
    corrupts          count frames discarded by the receiver checksum
    delays            count frames that took a latency spike
    reorders          count frames held so successors overtook them
    dups_injected     count switch-duplicated deliveries injected
    retransmits       count sender retransmissions (timer fired unacked)
    max_attempts      count worst per-frame transmission count (1 = clean)
    acks_sent         count reliability acks put on the wire
    ack_drops         count acks lost (draw or flap)
    dup_suppressed    count duplicate frames discarded by ``rel_seq`` dedup
    reorder_buffered  count frames parked in the resequencing buffer
    dsm_reissues      count DSM requests idempotently re-issued
    comm_stalls       count injected comm-thread service stalls
    slowdown_windows  count node CPU-derating windows entered
    ================= ===== ===================================================

    The graceful-degradation guarantee (docs/RELIABILITY.md): whatever
    these counters say, ``value`` is bit-identical to the fault-free
    run's — chaos perturbs timing, never data.

    ``node_profile`` rows (one dict per node; consumed by
    :meth:`node_report` and the §8 adaptive-configuration search):

    ============ ======== ====================================================
    node         id       cluster node id
    mhz          MHz      modelled CPU clock (heterogeneous-cluster ablation)
    compute      s        application CPU time on this node
    overhead     s        protocol CPU time (faults, diffs, message service)
    busy_frac    0..1     CPU busy fraction (compute+overhead vs capacity)
    msgs_sent    count    frames this node put on the wire
    bytes_sent   bytes    wire bytes sent incl. headers
    ============ ======== ====================================================
    """

    value: Any
    #: end-to-end virtual seconds of the whole program
    elapsed: float
    #: virtual seconds spent inside parallel regions only
    region_time: float
    cluster_stats: Dict[str, float] = field(default_factory=dict)
    dsm_stats: Dict[str, int] = field(default_factory=dict)
    mpi_stats: Dict[str, int] = field(default_factory=dict)
    #: fault-injection + recovery counters (empty without a fault_plan)
    chaos_stats: Dict[str, int] = field(default_factory=dict)

    #: per-node rows: filled by ParadeRuntime.run
    node_profile: list = field(default_factory=list)

    def node_report(self) -> str:
        """Per-node breakdown: compute vs protocol-overhead vs idle CPU
        time, message counts and bytes — a quick profile of where the run
        went (the measurement the paper's §8 adaptive-configuration idea
        needs).

        Rows missing optional keys (e.g. profiles recorded by external
        drivers or older result files) render with zero defaults instead
        of raising; only ``node`` is required.
        """
        if not self.node_profile:
            return "(no per-node profile recorded)"
        header = (
            f"{'node':>4} {'MHz':>5} {'compute ms':>11} {'overhead ms':>12} "
            f"{'cpu busy %':>11} {'msgs out':>9} {'KB out':>8}"
        )
        lines = [header, "-" * len(header)]
        for row in self.node_profile:
            lines.append(
                f"{row.get('node', '?'):>4} {row.get('mhz', 0):>5} "
                f"{row.get('compute', 0.0) * 1e3:>11.3f} "
                f"{row.get('overhead', 0.0) * 1e3:>12.3f} "
                f"{row.get('busy_frac', 0.0) * 100:>10.1f}% "
                f"{row.get('msgs_sent', 0):>9} "
                f"{row.get('bytes_sent', 0) / 1024:>8.1f}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [
            f"elapsed        : {self.elapsed * 1e3:10.3f} ms (virtual)",
            f"region time    : {self.region_time * 1e3:10.3f} ms",
            f"messages       : {self.cluster_stats.get('total_messages', 0):>10}",
            f"bytes on wire  : {self.cluster_stats.get('total_bytes', 0):>10}",
        ]
        interesting = (
            "read_faults",
            "write_faults",
            "pages_fetched",
            "diffs_sent",
            "barriers",
            "lock_acquires",
            "home_migrations",
            "invalidations",
            # protocol-accelerator counters: zero (hence hidden) unless
            # the run had protocol_accel=True
            "notices_batched",
            "diffs_piggybacked",
            "updates_pushed",
            "updates_installed",
            "readahead_pages",
            # scale-out counters: relay/merge stay zero (hence hidden)
            # unless the run had hierarchical=True
            "barrier_relays",
            "notices_merged",
            "lock_remote_grants",
        )
        for k in interesting:
            v = self.dsm_stats.get(k, 0)
            if v:
                lines.append(f"{k:<15}: {v:>10}")
        if self.chaos_stats.get("frames"):
            lost = (
                self.chaos_stats.get("drops", 0)
                + self.chaos_stats.get("flap_drops", 0)
                + self.chaos_stats.get("corrupts", 0)
            )
            lines.append(
                f"{'chaos':<15}: {self.chaos_stats['frames']:>10} frames, "
                f"{lost} lost, {self.chaos_stats.get('retransmits', 0)} "
                f"retransmits (recovered)"
            )
        return "\n".join(lines)
