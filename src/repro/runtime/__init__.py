"""The ParADE runtime system (§3, §5).

The runtime provides the single system image: fork-join parallel regions
spanning the cluster, a static loop scheduler, hierarchical synchronisation
(pthread-style intra-node + message-passing inter-node), and the **hybrid
consistency switch** — shared data ≤ 256 bytes guarded by synchronisation
directives is kept consistent with explicit collectives (update protocol),
everything else with HLRC (invalidate protocol).

Two execution modes implement the paper's comparison:

* ``mode="parade"`` — the hybrid model: ``critical``/``atomic``/``reduction``
  map to ``MPI_Allreduce``, ``single`` to ``MPI_Bcast`` (§4.2/§4.3);
* ``mode="sdsm"``   — the conventional SDSM translation: every
  synchronisation directive becomes a distributed lock + shared-page
  traffic + barriers (the KDSM baseline of §6.1).
"""

from repro.runtime.exec_config import (
    ExecConfig,
    ONE_THREAD_ONE_CPU,
    ONE_THREAD_TWO_CPU,
    TWO_THREAD_TWO_CPU,
    ALL_EXEC_CONFIGS,
)
from repro.runtime.scheduler import static_chunk, static_chunks_round_robin
from repro.runtime.team import NodeTeam
from repro.runtime.context import ThreadCtx, MasterCtx
from repro.runtime.results import RunResult
from repro.runtime.runtime import ParadeRuntime, HYBRID_THRESHOLD_BYTES

__all__ = [
    "ExecConfig",
    "ONE_THREAD_ONE_CPU",
    "ONE_THREAD_TWO_CPU",
    "TWO_THREAD_TWO_CPU",
    "ALL_EXEC_CONFIGS",
    "static_chunk",
    "static_chunks_round_robin",
    "NodeTeam",
    "ThreadCtx",
    "MasterCtx",
    "RunResult",
    "ParadeRuntime",
    "HYBRID_THRESHOLD_BYTES",
]
