"""The paper's three measurement configurations (§6.2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecConfig:
    """How many compute threads and CPUs each node runs.

    * ``1Thread-1CPU`` — uniprocessor kernel: one CPU handles both the
      compute thread and the communication thread (no overlap);
    * ``1Thread-2CPU`` — SMP kernel, one compute thread: the second CPU is
      free for the communication thread (full overlap);
    * ``2Thread-2CPU`` — SMP kernel, two compute threads: compute and
      communication share the two CPUs.
    """

    name: str
    threads_per_node: int
    cpus_per_node: int

    def __post_init__(self):
        if self.threads_per_node < 1 or self.cpus_per_node < 1:
            raise ValueError("thread and CPU counts must be >= 1")


ONE_THREAD_ONE_CPU = ExecConfig("1Thread-1CPU", 1, 1)
ONE_THREAD_TWO_CPU = ExecConfig("1Thread-2CPU", 1, 2)
TWO_THREAD_TWO_CPU = ExecConfig("2Thread-2CPU", 2, 2)

ALL_EXEC_CONFIGS = (ONE_THREAD_ONE_CPU, ONE_THREAD_TWO_CPU, TWO_THREAD_TWO_CPU)
