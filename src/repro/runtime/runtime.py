"""ParadeRuntime: wiring + fork-join region engine.

Builds the whole stack for one program run: simulated cluster, per-node
communication threads, DSM system, MPI communicator.  The master program is
a generator ``program(master_ctx)`` running on node 0; worker nodes run
agent loops that wait on a fork broadcast, execute the region's local
threads, and synchronise at the region-end barrier — the fork-join
execution model of §4.1 realised with messages.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.sim import AllOf
from repro.cluster import Cluster, ClusterConfig
from repro.mpi import CommThread, Communicator
from repro.dsm import DsmSystem, SharedArray, SharedScalar
from repro.dsm.config import DsmConfig, PARADE_DSM, KDSM_BASELINE
from repro.runtime.exec_config import ExecConfig, TWO_THREAD_TWO_CPU
from repro.runtime.team import NodeTeam
from repro.runtime.context import ThreadCtx, MasterCtx
from repro.runtime.results import RunResult

#: §5.2.1 — shared data up to this size switches to the message-passing
#: (update) protocol; larger data stays under HLRC.
HYBRID_THRESHOLD_BYTES = 256


class ParadeRuntime:
    """One program run on one simulated cluster.

    Parameters
    ----------
    n_nodes : cluster size (paper sweeps 1..8)
    exec_config : one of the §6.2 thread/CPU configurations
    mode : ``"parade"`` (hybrid translation) or ``"sdsm"`` (conventional)
    dsm_config : protocol preset; defaults to PARADE_DSM or KDSM_BASELINE
        according to *mode*
    protocol_accel : turn on the protocol accelerator — write-notice/diff
        batching, lock-grant diff piggybacking, adaptive home migration —
        on top of whatever *dsm_config* resolves to (see
        :meth:`DsmConfig.accelerated` and docs/PERFORMANCE.md)
    hierarchical : turn on hierarchical synchronization — fan-in-4 tree
        barrier with in-tree write-notice merging plus spread lock-manager
        sharding — on top of whatever *dsm_config* resolves to (see
        :meth:`DsmConfig.hierarchical` and docs/PERFORMANCE.md "Scaling");
        composes with *protocol_accel*
    cluster_config : hardware model override (interconnect, speeds, costs)
    sanitize : attach the happens-before sanitizer (overrides
        ``dsm_config.sanitize`` when given); the attached instance is
        available as :attr:`sanitizer`
    profile : attach a virtual-time :class:`~repro.profile.Profiler`;
        the attached instance is available as :attr:`profiler` (finalized
        automatically when :meth:`run` returns)
    fault_plan : a :class:`~repro.chaos.FaultPlan` to execute the run
        under; builds a :class:`~repro.chaos.ChaosEngine` (available as
        :attr:`chaos`), installs it on the cluster, and reports its
        counters through ``RunResult.chaos_stats``
    chaos_seed : seed of the engine's per-link fault streams (one
        (plan, seed) pair reproduces every fault bit-for-bit)
    reliability : optional :class:`~repro.chaos.ReliabilityConfig`
        overriding the plan's ack/retransmit tuning
    metrics : attach a live :class:`~repro.metrics.Metrics` with the
        stock per-layer sources installed (available as :attr:`metrics`,
        finalized automatically when :meth:`run` returns).  ``None``
        (the default) defers to the ``PARADE_METRICS`` environment
        variable: set it to ``1``/``true``/``yes`` to meter any run
        without touching its driver
    metrics_period : sampling grid spacing in virtual seconds
    """

    def __init__(
        self,
        n_nodes: int = 8,
        exec_config: ExecConfig = TWO_THREAD_TWO_CPU,
        mode: str = "parade",
        dsm_config: Optional[DsmConfig] = None,
        protocol_accel: bool = False,
        hierarchical: bool = False,
        cluster_config: Optional[ClusterConfig] = None,
        pool_bytes: Optional[int] = None,
        sanitize: Optional[bool] = None,
        profile: bool = False,
        fault_plan=None,
        chaos_seed: int = 0,
        reliability=None,
        metrics: Optional[bool] = None,
        metrics_period: float = 1e-4,
    ):
        if mode not in ("parade", "sdsm"):
            raise ValueError(f"mode must be 'parade' or 'sdsm', got {mode!r}")
        self.mode = mode
        self.exec_config = exec_config

        base_cc = cluster_config or ClusterConfig()
        cc = base_cc.with_nodes(n_nodes).with_cpus(exec_config.cpus_per_node)
        self.cluster = Cluster(cc)
        self.sim = self.cluster.sim

        self.comm_threads = [CommThread(n, self.cluster.network) for n in self.cluster.nodes]
        for ct in self.comm_threads:
            ct.start()

        dc = dsm_config or (PARADE_DSM if mode == "parade" else KDSM_BASELINE)
        if protocol_accel:
            dc = dc.accelerated()
        if hierarchical:
            dc = dc.hierarchical()
        if pool_bytes is not None:
            dc = dc.replace(pool_bytes=pool_bytes)
        self.dsm = DsmSystem(self.cluster, self.comm_threads, dc)
        self.comm = Communicator(self.cluster, self.comm_threads)

        self.sanitizer = None
        if dc.sanitize if sanitize is None else sanitize:
            from repro.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(
                self.sim, n_nodes=self.cluster.n_nodes, page_size=cc.page_size
            )
        self.profiler = None
        if profile:
            from repro.profile import Profiler

            self.profiler = Profiler(self.sim)
        self.chaos = None
        if fault_plan is not None:
            from repro.chaos import ChaosEngine

            self.chaos = ChaosEngine(
                self.sim, fault_plan, seed=chaos_seed, reliability=reliability
            )
            self.chaos.install(self.cluster)
        self.metrics = None
        if metrics is None:
            import os

            metrics = os.environ.get("PARADE_METRICS", "").lower() in (
                "1", "true", "yes", "on",
            )
        if metrics:
            from repro.metrics import Metrics, install_default_sources

            self.metrics = Metrics(self.sim, period=metrics_period)
            install_default_sources(self.metrics, self)
        from repro.runtime.dynamic import DynamicScheduler

        self.dynamic_scheduler = DynamicScheduler(self)

        self.threads_per_node = exec_config.threads_per_node
        self.n_threads = n_nodes * self.threads_per_node

        self._region: Optional[tuple] = None
        self._region_seq = 0
        self._lock_ids: Dict[Any, int] = {}
        self._lock_seq = itertools.count(100)
        self._single_flag: Optional[SharedScalar] = None
        self.region_time = 0.0
        self._finished = False

    # ------------------------------------------------------------------
    # shared data factories (the §5.2.1 size switch lives here)
    # ------------------------------------------------------------------
    def shared_array(
        self,
        name: str,
        shape,
        dtype=np.float64,
        page_align: bool = True,
        force_object: Optional[bool] = None,
    ) -> SharedArray:
        """Allocate a shared array.  In parade mode, arrays at or below the
        hybrid threshold are placed under the update protocol."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(np.atleast_1d(shape))) * dtype.itemsize
        if force_object is None:
            obj = self.mode == "parade" and nbytes <= HYBRID_THRESHOLD_BYTES
        else:
            obj = force_object
        return SharedArray.allocate(
            self.dsm,
            name,
            shape,
            dtype=dtype,
            page_align=page_align and not obj,
            object_granularity=obj,
        )

    def shared_scalar(self, name: str, dtype=np.float64) -> SharedScalar:
        """Allocate a shared scalar (object-granularity in parade mode)."""
        return SharedScalar(
            self.dsm, name, dtype=dtype, object_granularity=(self.mode == "parade")
        )

    def lock_id_for(self, key) -> int:
        """Stable distributed-lock id for a shared variable / name.

        Value-like keys (strings, ints, tuples of them) map by value;
        other objects (shared arrays/scalars) map by identity."""
        if isinstance(key, (str, int, tuple)):
            k = key
        else:
            k = id(key)
        if k not in self._lock_ids:
            self._lock_ids[k] = next(self._lock_seq)
        return self._lock_ids[k]

    def reduce_scratch(self) -> SharedScalar:
        """Shared scratch accumulator for the conventional value reduction."""
        if getattr(self, "_reduce_scratch", None) is None:
            self._reduce_scratch = SharedScalar(
                self.dsm, "__reduce_scratch", dtype=np.float64, object_granularity=False
            )
        return self._reduce_scratch

    def single_flag(self) -> SharedScalar:
        """The shared generation flag used by the conventional `single`."""
        if self._single_flag is None:
            self._single_flag = SharedScalar(
                self.dsm, "__single_flag", dtype=np.int64, object_granularity=False
            )
        return self._single_flag

    # ------------------------------------------------------------------
    # fork-join engine
    # ------------------------------------------------------------------
    def run_region(self, body: Callable, args: tuple, threads_per_node: Optional[int]):
        """Master side of a parallel region (generator)."""
        tpn = threads_per_node or self.threads_per_node
        self._region = (body, args, tpn)
        self._region_seq += 1
        t0 = self.sim.now
        # fork: broadcast the region command to the node agents
        yield from self.comm.rank(0).bcast(("region", self._region_seq), root=0)
        results = yield from self._run_region_on_node(0)
        self.region_time += self.sim.now - t0
        tr = self.sim.trace
        if tr is not None:
            tr.span("runtime", "region", t0, node=0,
                    seq=self._region_seq, threads_per_node=tpn)
        return results

    def _agent_loop(self, node_id: int):
        """Worker-node agent: wait for fork commands until shutdown."""
        while True:
            cmd = yield from self.comm.rank(node_id).bcast(None, root=0)
            if cmd[0] == "shutdown":
                return
            yield from self._run_region_on_node(node_id)

    def _run_region_on_node(self, node_id: int):
        body, args, tpn = self._region
        t0 = self.sim.now
        # region-start consistency point: master's sequential writes flush,
        # stale worker copies invalidate
        yield from self.dsm.node(node_id).barrier()
        team = NodeTeam(self, node_id, tpn, self._region_seq)
        procs = [
            self.sim.process(
                self._thread_main(ThreadCtx(self, team, node_id, lt), body, args),
                label=f"omp[{node_id}.{lt}]r{self._region_seq}",
            )
            for lt in range(tpn)
        ]
        san = self.sim.san
        if san is not None:
            san.on_fork([p.label for p in procs])
        prof = self.sim.prof
        if prof is None:
            joined = yield AllOf(self.sim, procs)
        else:
            from repro.profile.phases import PH_FORK_JOIN

            # master/agent waiting for the region's local threads to join
            prof.push(PH_FORK_JOIN)
            try:
                joined = yield AllOf(self.sim, procs)
            finally:
                prof.pop()
        if san is not None:
            san.on_join([p.label for p in procs])
        tr = self.sim.trace
        if tr is not None:
            tr.span("runtime", "node-region", t0, node=node_id, seq=self._region_seq)
        return [joined[i] for i in range(len(procs))]

    def _thread_main(self, tc: ThreadCtx, body: Callable, args: tuple):
        result = yield from body(tc, *args)
        # the implicit barrier at the end of a parallel region
        yield from tc.barrier()
        return result

    # ------------------------------------------------------------------
    # top-level run
    # ------------------------------------------------------------------
    def run(self, program: Callable, *args, time_limit: Optional[float] = None) -> RunResult:
        """Execute generator ``program(master_ctx, *args)`` to completion.

        Returns a :class:`RunResult` with the program's return value and
        the virtual-time / protocol statistics.
        """
        if self._finished:
            raise RuntimeError("a ParadeRuntime instance runs exactly one program")
        agents = [
            self.sim.process(self._agent_loop(nid), label=f"agent[{nid}]")
            for nid in range(1, self.cluster.n_nodes)
        ]

        def master_main():
            ctx = MasterCtx(self)
            value = yield from program(ctx, *args)
            yield from self.comm.rank(0).bcast(("shutdown",), root=0)
            return value

        master = self.sim.process(master_main(), label="master")
        value = self.sim.run_until_complete(master, limit=time_limit)
        for ag in agents:
            if not ag.processed:
                self.sim.run_until_complete(ag, limit=time_limit)
        elapsed = self.sim.now
        for ct in self.comm_threads:
            ct.shutdown()
        self.sim.run()
        self._finished = True
        if self.profiler is not None:
            self.profiler.finalize()
        if self.metrics is not None:
            self.metrics.finalize()
        profile = []
        for n in self.cluster.nodes:
            busy = n.cpus.total_busy_time
            cap = n.cpus.capacity * max(elapsed, 1e-30)
            profile.append(
                {
                    "node": n.id,
                    "mhz": self.cluster.config.cpu_mhz[n.id],
                    "compute": n.compute_time,
                    "overhead": n.overhead_time,
                    "busy_frac": min(1.0, busy / cap),
                    "msgs_sent": n.msgs_sent,
                    "bytes_sent": n.bytes_sent,
                }
            )
        return RunResult(
            value=value,
            elapsed=elapsed,
            region_time=self.region_time,
            cluster_stats=self.cluster.stats(),
            dsm_stats=self.dsm.stats(),
            mpi_stats={
                "p2p": self.comm.n_p2p,
                "collectives": self.comm.n_collectives,
            },
            node_profile=profile,
            chaos_stats=(
                self.chaos.stats.as_dict() if self.chaos is not None else {}
            ),
        )
