"""Thread and master contexts: the directive-level API.

:class:`ThreadCtx` is what a parallel-region body receives — the OpenMP
directives as generator methods, dispatching to either the ParADE hybrid
translation or the conventional SDSM translation depending on the runtime
mode.  :class:`MasterCtx` is the sequential (outside-region) context of the
master program.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

import numpy as np

from repro.mpi.ops import ReduceOp, SUM
from repro.runtime.scheduler import static_chunk, static_chunks_round_robin


class _CtxBase:
    """Shared helpers for master and thread contexts."""

    def __init__(self, runtime, node_id: int):
        self.runtime = runtime
        self.node_id = node_id
        self.dsm_node = runtime.dsm.node(node_id)
        self.sim = runtime.sim

    @property
    def now(self) -> float:
        return self.sim.now

    def array(self, shared_array):
        """Bind a SharedArray to this context's node."""
        return shared_array.on(self.node_id)

    def scalar(self, shared_scalar):
        """Bind a SharedScalar to this context's node."""
        return shared_scalar.on(self.node_id)

    def compute(self, work_units: float):
        """Charge *work_units* of application computation to a CPU."""
        yield from self.runtime.cluster.node(self.node_id).compute(work_units)


class ThreadCtx(_CtxBase):
    """One OpenMP thread inside a parallel region."""

    def __init__(self, runtime, team, node_id: int, local_tid: int):
        super().__init__(runtime, node_id)
        self.team = team
        self.local_tid = local_tid
        self.tid = node_id * team.n_local + local_tid
        self.nthreads = runtime.cluster.n_nodes * team.n_local
        self._keys: dict = {}

    # -- encounter keys ----------------------------------------------------
    def _key(self, kind: str):
        n = self._keys.get(kind, 0)
        self._keys[kind] = n + 1
        return (kind, n)

    # -- work sharing (omp for, static schedule) ----------------------------
    def for_range(self, lo: int, hi: int) -> Tuple[int, int]:
        """Block partition of [lo, hi) for this thread (schedule(static))."""
        return static_chunk(lo, hi, self.tid, self.nthreads)

    def for_chunks(self, lo: int, hi: int, chunk: int) -> Iterator[Tuple[int, int]]:
        """Round-robin chunks (schedule(static, chunk))."""
        return static_chunks_round_robin(lo, hi, self.tid, self.nthreads, chunk)

    def dynamic_loop(self, lo: int, hi: int, chunk: int = 1, sched: str = "dynamic"):
        """schedule(dynamic, chunk) / schedule(guided): a cluster-wide chunk
        dispenser on the master node (the §8 loop-scheduling extension).
        Returns a :class:`~repro.runtime.dynamic.DynamicLoop` handle."""
        from repro.runtime.dynamic import DynamicLoop

        key = self._key("dyn")
        loop_id = (self.team.region_seq, key[1])
        return DynamicLoop(self, loop_id, lo, hi, chunk, sched)

    # -- barrier -------------------------------------------------------------
    def barrier(self):
        """#pragma omp barrier — hierarchical (pthread + DSM barrier)."""
        tr = self.sim.trace
        t0 = self.sim.now
        key = self._key("bar")
        prof = self.sim.prof
        if prof is None:
            yield from self.team.barrier(key)
        else:
            from repro.profile.phases import PH_BARRIER

            # arrival-to-departure, covering the local gather and (on the
            # leader) the inter-node DSM barrier
            prof.push(PH_BARRIER)
            try:
                yield from self.team.barrier(key)
            finally:
                prof.pop()
        if tr is not None:
            # per-thread span: arrival-to-departure, showing barrier fan-in skew
            tr.span("runtime", "omp-barrier", t0, node=self.node_id,
                    tid_local=self.local_tid, encounter=key[1])

    # -- critical / atomic ----------------------------------------------------
    def critical_update(self, shared_scalar, delta, op: ReduceOp = SUM):
        """``#pragma omp critical { x = x op delta; }`` for a small shared
        scalar — the lexically-analyzable case the translator rewrites.

        ParADE mode (Figure 2, right): pthread lock for intra-node
        exclusion + one ``MPI_Allreduce`` wave per encounter combining the
        current deltas of all processes; every process applies the combined
        delta to its (object-granularity) local copy — no SDSM lock, no
        twin/diff.

        SDSM mode (Figure 2, left): a distributed lock around a normal
        shared-page read-modify-write — lock round-trip, page fault, twin,
        diff at release.
        """
        view = self.scalar(shared_scalar)
        if self.runtime.mode == "parade" and shared_scalar.array.segment.object_granularity:
            yield from self.team.mutex.acquire()
            try:
                total = yield from self.team.rank_comm.allreduce(delta, op=op)
                view.raw_set(op(view.raw_get(), total))
            finally:
                self.team.mutex.release()
            return
        # conventional SDSM translation
        lock_id = self.runtime.lock_id_for(shared_scalar)
        yield from self.dsm_node.lock_acquire(lock_id)
        try:
            cur = yield from view.get()
            yield from view.set(op(cur, delta))
        finally:
            yield from self.dsm_node.lock_release(lock_id)

    def atomic_update(self, shared_scalar, delta, op: ReduceOp = SUM):
        """#pragma omp atomic — treated as a special case of critical (§4.2)."""
        yield from self.critical_update(shared_scalar, delta, op=op)

    def critical_region(self, body_gen_fn: Callable[[], Any], name: str = "crit"):
        """A *non-analyzable* critical section (contains calls / large data):
        both modes fall back to the distributed lock (§7).  ``body_gen_fn``
        is a generator function executed while holding the global lock."""
        lock_id = self.runtime.lock_id_for(name)
        yield from self.dsm_node.lock_acquire(lock_id)
        try:
            result = yield from body_gen_fn()
        finally:
            yield from self.dsm_node.lock_release(lock_id)
        return result

    # -- reduction clause -----------------------------------------------------
    def reduce_into(self, shared_scalar, partial, op: ReduceOp = SUM):
        """The ``reduction`` clause: combine per-thread partials into the
        shared variable; returns the final value.

        ParADE mode: intra-node combine, one ``MPI_Allreduce`` per node
        team, result applied to every node's local copy — replacing the
        lock-based accumulation *and* the work-sharing barrier (§5.2.1).

        SDSM mode: each thread accumulates under the distributed lock,
        then a full barrier (the conventional translation).
        """
        view = self.scalar(shared_scalar)
        if self.runtime.mode == "parade" and shared_scalar.array.segment.object_granularity:
            def inter(merged):
                total = yield from self.team.rank_comm.allreduce(merged, op=op)
                final = op(view.raw_get(), total)
                view.raw_set(final)
                return final

            result = yield from self.team.combining(self._key("red"), partial, op, inter)
            return result
        # conventional SDSM translation: critical accumulation + barrier
        lock_id = self.runtime.lock_id_for(shared_scalar)
        yield from self.dsm_node.lock_acquire(lock_id)
        try:
            cur = yield from view.get()
            yield from view.set(op(cur, partial))
        finally:
            yield from self.dsm_node.lock_release(lock_id)
        yield from self.barrier()
        final = yield from view.get()
        # Trailing barrier: without it the unlocked read above races with
        # the next encounter's locked accumulation into the same scalar
        # (found by repro.sanitizer — a thread could observe a later
        # interval's partial sum).
        yield from self.barrier()
        return final

    def reduce_value(self, partial, op: ReduceOp = SUM):
        """Pure value reduction returning the combined value to every thread.

        ParADE mode: intra-node combine + one ``MPI_Allreduce``.

        SDSM mode: the conventional translation — a ``single`` resets a
        shared scratch variable, every thread accumulates under the
        distributed lock, and a barrier publishes the result (the pattern
        whose cost §2.2 calls "expensive ... long latency").
        """
        if self.runtime.mode == "parade":
            def inter(merged):
                total = yield from self.team.rank_comm.allreduce(merged, op=op)
                return total

            result = yield from self.team.combining(self._key("redv"), partial, op, inter)
            return result
        scratch = self.runtime.reduce_scratch()
        sview = self.scalar(scratch)

        def reset():
            yield from sview.set(0.0 if op.name == "SUM" else partial)

        yield from self.single(body_gen_fn=reset)
        lock_id = self.runtime.lock_id_for(scratch)
        yield from self.dsm_node.lock_acquire(lock_id)
        try:
            cur = yield from sview.get()
            yield from sview.set(op(float(cur), partial) if op.name != "SUM" else float(cur) + partial)
        finally:
            yield from self.dsm_node.lock_release(lock_id)
        yield from self.barrier()
        total = yield from sview.get()
        # Trailing barrier: the unlocked read above must complete on every
        # thread before any thread's *next* encounter resets the shared
        # scratch inside ``single`` (which holds the flag lock, not the
        # scratch lock — no ordering).  Without it a thread can read 0.0
        # after the reset; repro.sanitizer flagged this as a read/write
        # race on __reduce_scratch, and it surfaced as a nondeterministic
        # ZeroDivisionError in cg/sdsm.
        yield from self.barrier()
        return float(total)

    # -- single ------------------------------------------------------------------
    def single(self, body_gen_fn: Optional[Callable[[], Any]] = None, shared_scalar=None, value=None):
        """#pragma omp single.

        ParADE mode (Figure 3, right): the earliest thread of the master
        process executes the block; the result travels by ``MPI_Bcast``;
        other threads synchronise on a pthread gate — no SDSM lock, no
        barrier.  If *shared_scalar* is given, the broadcast value is
        stored to each node's local copy.

        SDSM mode (Figure 3, left): distributed lock + shared "done" flag
        page + implicit barrier.
        """
        if self.runtime.mode == "parade":
            key = self._key("sgl")
            is_first, inst = self.team.first_arriver(key)
            if not is_first:
                result = yield from self.team.wait_gate(inst, key)
                return result
            result = None
            if self.node_id == 0 and body_gen_fn is not None:
                result = yield from body_gen_fn()
                if result is None and value is not None:
                    result = value
            result = yield from self.team.rank_comm.bcast(result, root=0)
            if shared_scalar is not None:
                self.scalar(shared_scalar).raw_set(result)
            self.team.open_gate(inst, key, result)
            return result
        # conventional SDSM translation
        flag = self.runtime.single_flag()
        fview = flag.on(self.node_id)
        my_gen = self._keys.get("sgl_gen", 0)
        self._keys["sgl_gen"] = my_gen + 1
        lock_id = self.runtime.lock_id_for(flag)
        result = None
        yield from self.dsm_node.lock_acquire(lock_id)
        try:
            done = yield from fview.get()
            if int(done) <= my_gen:
                if body_gen_fn is not None:
                    result = yield from body_gen_fn()
                if shared_scalar is not None and result is not None:
                    yield from self.scalar(shared_scalar).set(result)
                yield from fview.set(my_gen + 1)
        finally:
            yield from self.dsm_node.lock_release(lock_id)
        yield from self.barrier()  # the implicit barrier of `single`
        if shared_scalar is not None:
            result = yield from self.scalar(shared_scalar).get()
            # Order the unlocked read against the next encounter's write
            # (same race shape as reduce_value's scratch read).
            yield from self.barrier()
        return result

    def master(self, body_gen_fn: Callable[[], Any]):
        """#pragma omp master: global thread 0 only, no synchronisation."""
        if self.tid == 0:
            result = yield from body_gen_fn()
            return result
        return None

    def sections(self, section_gen_fns, nowait: bool = False):
        """#pragma omp sections: section k runs on the thread with
        ``tid == k % nthreads``; implicit barrier at the end unless
        *nowait*.  Returns this thread's section results (in order)."""
        results = []
        for k, fn in enumerate(section_gen_fns):
            if k % self.nthreads == self.tid:
                value = yield from fn()
                results.append(value)
        if not nowait:
            yield from self.barrier()
        return results

    # -- explicit OpenMP lock API (omp_set_lock / omp_unset_lock) ---------
    def set_lock(self, lock_name):
        """omp_set_lock: hierarchical — pthread mutex locally, the
        distributed LRC lock across nodes (notices applied on grant)."""
        lock_id = self.runtime.lock_id_for(("omp_lock", lock_name))
        yield from self.team.named_mutex(lock_name).acquire()
        yield from self.dsm_node.lock_acquire(lock_id)

    def unset_lock(self, lock_name):
        """omp_unset_lock: release the distributed lock (flushing this
        interval's modifications) then the local mutex."""
        lock_id = self.runtime.lock_id_for(("omp_lock", lock_name))
        yield from self.dsm_node.lock_release(lock_id)
        self.team.named_mutex(lock_name).release()


class MasterCtx(_CtxBase):
    """The sequential context of the master program (node 0, outside
    parallel regions).  ``parallel`` forks a region across the cluster."""

    def __init__(self, runtime):
        super().__init__(runtime, node_id=0)

    def parallel(self, body: Callable, *args, threads_per_node: Optional[int] = None):
        """#pragma omp parallel: run generator ``body(tc, *args)`` on every
        thread of every node; returns the list of node-0 thread results.
        Includes the fork broadcast, a region-start consistency barrier,
        and the implicit region-end barrier."""
        results = yield from self.runtime.run_region(body, args, threads_per_node)
        return results

    def shared_array(self, name: str, shape, dtype=np.float64, **kw):
        return self.runtime.shared_array(name, shape, dtype=dtype, **kw)

    def shared_scalar(self, name: str, dtype=np.float64):
        return self.runtime.shared_scalar(name, dtype=dtype)
