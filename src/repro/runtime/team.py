"""Per-node thread team: hierarchical synchronisation machinery.

A :class:`NodeTeam` groups the compute threads of one node within one
parallel region.  It provides the *combining* pattern behind ParADE's
hierarchical directives (§4.2/§4.3): threads synchronise locally with
pthread-style primitives and exactly one thread per node performs the
inter-node step (DSM barrier, MPI collective, ...).

Directive encounters are matched across threads by per-thread encounter
counters ("instances"), which is sound for conforming OpenMP programs:
every thread of the team encounters the same work-sharing and
synchronisation constructs in the same order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim import Event, Mutex


class _Instance:
    __slots__ = ("count", "done", "gate", "partial", "has_partial", "taken")

    def __init__(self, sim):
        self.count = 0
        self.done = 0
        self.gate = Event(sim, name="team-gate")
        self.partial: Any = None
        self.has_partial = False
        self.taken = False  # for 'single': has some thread claimed execution?


class NodeTeam:
    """The threads of one node inside one parallel region."""

    def __init__(self, runtime, node_id: int, n_local: int, region_seq: int):
        self.runtime = runtime
        self.node_id = node_id
        self.n_local = n_local
        self.region_seq = region_seq
        self.sim = runtime.sim
        self.dsm_node = runtime.dsm.node(node_id)
        self.rank_comm = runtime.comm.rank(node_id)
        #: the pthread mutex of the translated code (intra-node exclusion)
        self.mutex = Mutex(self.sim, name=f"team-mutex[{node_id}]")
        self._named_mutexes: Dict[Any, Mutex] = {}
        self._instances: Dict[Any, _Instance] = {}

    def named_mutex(self, name) -> Mutex:
        """A distinct pthread mutex per explicit OpenMP lock name."""
        mtx = self._named_mutexes.get(name)
        if mtx is None:
            mtx = Mutex(self.sim, name=f"omp-lock[{self.node_id}:{name}]")
            self._named_mutexes[name] = mtx
        return mtx

    def _instance(self, key) -> _Instance:
        inst = self._instances.get(key)
        if inst is None:
            inst = _Instance(self.sim)
            self._instances[key] = inst
        return inst

    def _retire(self, key, inst: _Instance) -> None:
        inst.done += 1
        if inst.done == self.n_local:
            del self._instances[key]

    # ------------------------------------------------------------------
    def combining(self, key, partial, op, inter_fn: Callable[[Any], Any]):
        """Generic combine: threads contribute *partial* (merged with *op*,
        which may be None for pure barriers); the **last** arriver runs
        generator ``inter_fn(merged)`` and its result is returned to all.
        """
        inst = self._instance(key)
        san = self.sim.san
        if san is not None:
            # contributor -> leader happens-before edge (gather side)
            san.on_gather(id(inst))
        if op is not None:
            if inst.has_partial:
                inst.partial = op(inst.partial, partial)
            else:
                inst.partial = partial
                inst.has_partial = True
        inst.count += 1
        if inst.count == self.n_local:
            if san is not None:
                san.on_gather_leader(id(inst))
            result = yield from inter_fn(inst.partial)
            gate = inst.gate
            self._retire(key, inst)
            if san is not None:
                # leader -> waiters edge (gate side); n_local-1 waiters
                san.on_gate_open(id(gate), self.n_local - 1)
            gate.succeed(result)
            yield gate  # consume our own gate pass for deterministic ordering
            return result
        gate = inst.gate
        prof = self.sim.prof
        if prof is None:
            result = yield gate
        else:
            from repro.profile.phases import PH_BARRIER, PH_TEAM_WAIT

            # pure barriers (op is None) are barrier waits; reductions and
            # other combining encounters are team (gather) waits
            prof.push(PH_BARRIER if op is None else PH_TEAM_WAIT)
            try:
                result = yield gate
            finally:
                prof.pop()
        if san is not None:
            san.on_gate_wait(id(gate))
        self._retire(key, inst)
        return result

    def barrier(self, key):
        """Hierarchical barrier: local gather, leader runs the DSM barrier."""

        def inter(_merged):
            yield from self.dsm_node.barrier()
            return None

        yield from self.combining(key, None, None, inter)

    def first_arriver(self, key):
        """Return True for exactly the first thread to reach *key*; the
        winner must later call :meth:`open_gate`; losers wait on it."""
        inst = self._instance(key)
        inst.count += 1
        if not inst.taken:
            inst.taken = True
            return True, inst
        return False, inst

    def wait_gate(self, inst: _Instance, key):
        prof = self.sim.prof
        if prof is None:
            value = yield inst.gate
        else:
            from repro.profile.phases import PH_TEAM_WAIT

            prof.push(PH_TEAM_WAIT)
            try:
                value = yield inst.gate
            finally:
                prof.pop()
        san = self.sim.san
        if san is not None:
            san.on_gate_wait(id(inst.gate))
        self._retire(key, inst)
        return value

    def open_gate(self, inst: _Instance, key, value=None) -> None:
        san = self.sim.san
        if san is not None:
            san.on_gate_open(id(inst.gate), self.n_local - 1)
        inst.gate.succeed(value)
        self._retire(key, inst)
