"""Loop scheduling.

The paper's runtime supports **static scheduling only**: iterations evenly
distributed over threads (§4.3); richer policies are future work (§8).  We
implement the block partition the Omni-derived translator emits, plus a
round-robin chunked variant used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Iterator, Tuple


def static_chunk(lo: int, hi: int, tid: int, nthreads: int) -> Tuple[int, int]:
    """Contiguous block of [lo, hi) for thread *tid* of *nthreads*.

    Iterations are distributed as evenly as possible: the first
    ``extra = n % nthreads`` threads get one extra iteration.
    """
    if nthreads < 1:
        raise ValueError(f"nthreads must be >= 1, got {nthreads}")
    if not (0 <= tid < nthreads):
        raise ValueError(f"tid {tid} outside [0, {nthreads})")
    n = max(0, hi - lo)
    base = n // nthreads
    extra = n % nthreads
    start = lo + tid * base + min(tid, extra)
    size = base + (1 if tid < extra else 0)
    return start, start + size


def static_chunks_round_robin(
    lo: int, hi: int, tid: int, nthreads: int, chunk: int
) -> Iterator[Tuple[int, int]]:
    """OpenMP ``schedule(static, chunk)``: chunks dealt round-robin."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    start = lo + tid * chunk
    stride = nthreads * chunk
    while start < hi:
        yield start, min(start + chunk, hi)
        start += stride
