"""Dynamic and guided loop scheduling (§8 future work).

The paper ships static scheduling only and names cluster-aware loop
scheduling as the most promising improvement: "processes wait a long time
at barrier due to load-imbalance in executing the for blocks".  This
module implements the natural cluster design — a chunk dispenser on the
master node, served by its communication thread; threads request chunks
with one round-trip message:

    thread --("dls","req")--> master comm thread --("dls","rep")--> thread

``schedule(dynamic, chunk)`` hands out fixed chunks; ``schedule(guided)``
hands out ``remaining / (2 * nthreads)`` (bounded below by *chunk*), the
classic guided-self-scheduling rule.

Loop instances are identified by (region sequence, per-thread encounter
index), which SPMD execution keeps consistent across threads; the
dispenser is created lazily by the first request (all requests carry the
same loop parameters).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.sim import Event


class _Dispenser:
    """Master-side state for one dynamic loop instance."""

    __slots__ = ("next", "hi", "chunk", "kind", "nthreads", "served")

    def __init__(self, lo: int, hi: int, chunk: int, kind: str, nthreads: int):
        self.next = lo
        self.hi = hi
        self.chunk = chunk
        self.kind = kind
        self.nthreads = nthreads
        self.served = 0

    def grab(self) -> Optional[Tuple[int, int]]:
        if self.next >= self.hi:
            return None
        if self.kind == "guided":
            remaining = self.hi - self.next
            size = max(self.chunk, remaining // (2 * self.nthreads))
        else:
            size = self.chunk
        lo = self.next
        hi = min(lo + size, self.hi)
        self.next = hi
        self.served += 1
        return lo, hi


class DynamicScheduler:
    """Cluster-wide dynamic-loop service: dispenser on the master node,
    request/reply plumbing on every node's communication thread."""

    MASTER = 0
    #: CPU cost of dequeueing one chunk at the dispenser
    DISPATCH_COST = 0.5e-6

    def __init__(self, runtime):
        self.runtime = runtime
        self.sim = runtime.sim
        self.net = runtime.cluster.network
        self._dispensers: Dict[tuple, _Dispenser] = {}
        self._pending: Dict[tuple, Event] = {}
        self._req_seq = itertools.count()
        self.total_chunks = 0
        for node_id, ct in enumerate(runtime.comm_threads):
            ct.register("dls", self._make_handler(node_id))

    # ------------------------------------------------------------------
    def _make_handler(self, node_id: int):
        def handler(msg):
            _chan, kind, req_id = msg.tag
            if kind == "req":
                assert node_id == self.MASTER
                loop_id, lo, hi, chunk, sched, nthreads, requester = msg.payload
                disp = self._dispensers.get(loop_id)
                if disp is None:
                    disp = _Dispenser(lo, hi, chunk, sched, nthreads)
                    self._dispensers[loop_id] = disp
                yield from self.runtime.cluster.node(node_id).busy_cpu(
                    self.DISPATCH_COST, priority=-1
                )
                rng = disp.grab()
                if rng is not None:
                    self.total_chunks += 1
                yield from self.net.send(
                    node_id, requester, 16, rng, tag=("dls", "rep", req_id)
                )
                return
            if kind == "rep":
                self._pending.pop((node_id, req_id)).succeed(msg.payload)
                return
            raise RuntimeError(f"unknown dls message {kind!r}")  # pragma: no cover

        return handler

    def request(self, node_id: int, loop_id: tuple, lo: int, hi: int,
                chunk: int, sched: str, nthreads: int):
        """Generator: one chunk request round-trip; returns (lo, hi) or None."""
        req_id = next(self._req_seq)
        ev = Event(self.sim, name=f"dls[{node_id}:{req_id}]")
        self._pending[(node_id, req_id)] = ev
        payload = (loop_id, lo, hi, chunk, sched, nthreads, node_id)
        yield from self.net.send(
            node_id, self.MASTER, 48, payload, tag=("dls", "req", req_id)
        )
        rng = yield ev
        return rng


class DynamicLoop:
    """Per-thread handle over one dynamic/guided loop instance.

    Usage inside a thread body::

        loop = tc.dynamic_loop(0, n, chunk=16)          # or sched="guided"
        while True:
            rng = yield from loop.next_chunk()
            if rng is None:
                break
            lo, hi = rng
            ...
    """

    def __init__(self, tc, loop_id: tuple, lo: int, hi: int, chunk: int, sched: str):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        if sched not in ("dynamic", "guided"):
            raise ValueError(f"sched must be 'dynamic' or 'guided', got {sched!r}")
        self.tc = tc
        self.loop_id = loop_id
        self.lo = lo
        self.hi = hi
        self.chunk = chunk
        self.sched = sched
        self.chunks_taken = 0

    def next_chunk(self):
        rng = yield from self.tc.runtime.dynamic_scheduler.request(
            self.tc.node_id,
            self.loop_id,
            self.lo,
            self.hi,
            self.chunk,
            self.sched,
            self.tc.nthreads,
        )
        if rng is not None:
            self.chunks_taken += 1
        return rng
