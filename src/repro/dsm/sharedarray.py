"""Typed shared arrays and scalars over the DSM pool.

Applications never touch raw addresses: they allocate a
:class:`SharedArray` and use its ``get``/``set``/``view`` accessors from a
node context.  Accessors that can fault are generators; ``yield from`` them
inside thread functions.

Performance note (guides: vectorise, views over copies): ``get`` validates
the page range once and returns a zero-copy numpy view of the node-local
pool, so bulk numerics run at numpy speed; protocol costs are charged only
at fault time.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np


def _normalize_shape(shape) -> Tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    shape = tuple(int(s) for s in shape)
    if any(s <= 0 for s in shape):
        raise ValueError(f"invalid shape {shape}")
    return shape


class SharedArray:
    """An ndarray living in distributed shared memory.

    Created via :meth:`allocate`; bound to a node with :meth:`on`, giving a
    :class:`NodeArrayView` whose accessors drive the DSM protocol of that
    node.
    """

    def __init__(self, system, segment, dtype, shape):
        self.system = system
        self.segment = segment
        self.dtype = np.dtype(dtype)
        self.shape = _normalize_shape(shape)
        self.size = int(np.prod(self.shape))
        self.nbytes = self.size * self.dtype.itemsize

    @classmethod
    def allocate(
        cls,
        system,
        name: str,
        shape,
        dtype=np.float64,
        page_align: bool = True,
        object_granularity: bool = False,
    ) -> "SharedArray":
        shape = _normalize_shape(shape)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        seg = system.alloc(
            nbytes,
            name=name,
            align=dtype.itemsize,
            page_align=page_align,
            object_granularity=object_granularity,
        )
        return cls(system, seg, dtype, shape)

    def on(self, node_id: int) -> "NodeArrayView":
        return NodeArrayView(self, self.system.node(node_id))

    def _flat_range(self, start: int, stop: int) -> Tuple[int, int]:
        """Byte range of flat elements [start, stop)."""
        if not (0 <= start <= stop <= self.size):
            raise IndexError(f"flat range [{start}, {stop}) outside array of {self.size}")
        addr = self.segment.addr + start * self.dtype.itemsize
        nbytes = (stop - start) * self.dtype.itemsize
        return addr, nbytes


class NodeArrayView:
    """A shared array as accessed from one node."""

    def __init__(self, array: SharedArray, dsm_node):
        self.array = array
        self.node = dsm_node

    # -- element range helpers -------------------------------------------
    def _resolve(self, start: Optional[int], stop: Optional[int]) -> Tuple[int, int]:
        n = self.array.size
        s = 0 if start is None else int(start)
        e = n if stop is None else int(stop)
        if s < 0 or e > n or s > e:
            raise IndexError(f"range [{s}, {e}) outside array of {n} elements")
        return s, e

    def _np_view(self, s: int, e: int) -> np.ndarray:
        addr, nbytes = self.array._flat_range(s, e)
        raw = self.node.raw_view(addr, nbytes)
        return raw.view(self.array.dtype)

    # -- generator accessors ------------------------------------------------
    # Hot path: when the whole range is already valid for the requested
    # mode (DsmNode.try_fast_access), skip constructing the acquire_*
    # fault-loop generators — the accessor runs to completion without
    # touching the simulator.  Callers still drive these with
    # ``yield from``; a no-fault call simply never yields.
    def get(self, start: Optional[int] = None, stop: Optional[int] = None):
        """Validate + return a read-only flat view of elements [start, stop)."""
        s, e = self._resolve(start, stop)
        if e == s:
            return np.empty(0, dtype=self.array.dtype)
        addr, nbytes = self.array._flat_range(s, e)
        if not self.node.try_fast_access(addr, nbytes, False):
            yield from self.node.acquire_read(addr, nbytes)
        san = self.node.sim.san
        if san is not None and not self.array.segment.object_granularity:
            san.on_access(self.node.id, addr, nbytes, False,
                          f"{self.array.segment.name}[{s}:{e}]")
        view = self._np_view(s, e)
        view.flags.writeable = False
        return view

    def writable(self, start: Optional[int] = None, stop: Optional[int] = None):
        """Validate-for-write + return a writable flat view."""
        s, e = self._resolve(start, stop)
        if e == s:
            return np.empty(0, dtype=self.array.dtype)
        addr, nbytes = self.array._flat_range(s, e)
        if not self.node.try_fast_access(addr, nbytes, True):
            yield from self.node.acquire_write(addr, nbytes)
        san = self.node.sim.san
        if san is not None and not self.array.segment.object_granularity:
            san.on_access(self.node.id, addr, nbytes, True,
                          f"{self.array.segment.name}[{s}:{e}]")
        return self._np_view(s, e)

    def set(self, values, start: int = 0):
        """Write *values* at flat offset *start*."""
        values = np.asarray(values, dtype=self.array.dtype).ravel()
        view = yield from self.writable(start, start + values.size)
        view[:] = values

    def get_scalar(self, index: int):
        v = yield from self.get(index, index + 1)
        return self.array.dtype.type(v[0])

    def set_scalar(self, index: int, value):
        yield from self.set(np.asarray([value], dtype=self.array.dtype), start=index)

    # -- raw (no protocol) ---------------------------------------------------
    def raw(self, start: Optional[int] = None, stop: Optional[int] = None) -> np.ndarray:
        """Unchecked view — for object-granularity segments and tests."""
        s, e = self._resolve(start, stop)
        return self._np_view(s, e)


class SharedScalar:
    """A single shared value, usually object-granularity (update protocol)."""

    def __init__(self, system, name: str, dtype=np.float64, object_granularity: bool = True):
        self.array = SharedArray.allocate(
            system,
            name,
            (1,),
            dtype=dtype,
            page_align=False,
            object_granularity=object_granularity,
        )
        self.system = system

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def on(self, node_id: int) -> "NodeScalarView":
        return NodeScalarView(self, self.array.on(node_id))


class NodeScalarView:
    def __init__(self, scalar: SharedScalar, view: NodeArrayView):
        self.scalar = scalar
        self._view = view

    def get(self):
        value = yield from self._view.get_scalar(0)
        return value

    def set(self, value):
        yield from self._view.set_scalar(0, value)

    def raw_get(self):
        return self.scalar.array.dtype.type(self._view.raw(0, 1)[0])

    def raw_set(self, value) -> None:
        self._view.raw(0, 1)[0] = value
