"""Cluster-wide DSM facade: allocation, node agents, wiring.

One :class:`DsmSystem` per cluster.  It owns the shared-pool layout (a bump
allocator over the page pool), creates one :class:`DsmNode` per node, and
registers the protocol handlers on each node's communication thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dsm.config import DsmConfig, PARADE_DSM
from repro.dsm.node import DsmNode


@dataclass(frozen=True)
class Segment:
    """A named allocation in the shared pool."""

    name: str
    addr: int
    nbytes: int
    object_granularity: bool

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


class DsmSystem:
    """The software DSM spanning the cluster."""

    def __init__(self, cluster, comm_threads, config: Optional[DsmConfig] = None):
        self.cluster = cluster
        self.config = config or PARADE_DSM
        page_size = cluster.config.page_size
        self.page_size = page_size
        self.n_pages = max(1, self.config.pool_bytes // page_size)
        self.stats_home_migrations = 0

        self.nodes: List[DsmNode] = [
            DsmNode(self, node, self.config) for node in cluster.nodes
        ]
        for dn, ct in zip(self.nodes, comm_threads):
            ct.register("dsm", dn.handle_dsm)
            ct.register("bar", dn.handle_barrier)
            ct.register("lk", dn.handle_lock)

        self._brk = 0
        self.segments: Dict[str, Segment] = {}

    # -- allocation -------------------------------------------------------
    def alloc(
        self,
        nbytes: int,
        name: str = "",
        align: int = 8,
        page_align: bool = False,
        object_granularity: bool = False,
    ) -> Segment:
        """Bump-allocate *nbytes* of shared memory.

        ``object_granularity=True`` places the segment under the update
        protocol (always valid everywhere; consistency via collectives) —
        used by the runtime for small synchronisation variables (§5.2.1).
        ``page_align=True`` pads to a page boundary; leaving it False lets
        distinct arrays share pages, i.e. false sharing is representable.
        """
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        # Object-granularity segments take whole pages: sharing a page with
        # HLRC data would exempt that data from the invalidate protocol.
        if object_granularity:
            page_align = True
        align = self.page_size if page_align else max(1, align)
        addr = (self._brk + align - 1) // align * align
        end = addr + nbytes
        if object_granularity:
            end = (end + self.page_size - 1) // self.page_size * self.page_size
        if end > self.n_pages * self.page_size:
            raise MemoryError(
                f"shared pool exhausted: need {end} bytes, pool is "
                f"{self.n_pages * self.page_size} (raise DsmConfig.pool_bytes)"
            )
        self._brk = end
        if not name:
            name = f"seg@{addr:#x}"
        if name in self.segments:
            raise ValueError(f"duplicate segment name {name!r}")
        seg = Segment(name, addr, nbytes, object_granularity)
        self.segments[name] = seg
        if object_granularity:
            for dn in self.nodes:
                dn.mark_object_pages(addr, nbytes)
        return seg

    def node(self, node_id: int) -> DsmNode:
        return self.nodes[node_id]

    # -- whole-system stats -------------------------------------------------
    def stats(self) -> Dict[str, int]:
        agg: Dict[str, int] = {}
        for dn in self.nodes:
            for k, v in dn.stats.as_dict().items():
                agg[k] = agg.get(k, 0) + v
        agg["home_migrations"] = self.stats_home_migrations
        return agg

    def check_coherence(self) -> None:
        """Debug invariant: after a global barrier, every valid copy of a
        page matches the home's copy bytewise."""
        import numpy as np
        from repro.dsm.states import PageState

        for p in range(self._brk // self.page_size + 1):
            if p >= self.n_pages:
                break
            if self.config.homeless:
                # no home: every *valid* copy must agree pairwise
                valid = [
                    dn for dn in self.nodes
                    if dn.state[p] in (PageState.READ_ONLY, PageState.DIRTY)
                ]
                for dn in valid[1:]:
                    if not np.array_equal(dn._page_view(p), valid[0]._page_view(p)):
                        raise AssertionError(
                            f"incoherent page {p}: nodes {valid[0].id} and {dn.id} differ"
                        )
                continue
            home = self.nodes[0].home[p]
            home_data = self.nodes[home]._page_view(p)
            for dn in self.nodes:
                if dn.state[p] in (PageState.READ_ONLY, PageState.DIRTY):
                    if not np.array_equal(dn._page_view(p), home_data):
                        raise AssertionError(
                            f"incoherent page {p}: node {dn.id} differs from home {home}"
                        )
