"""Page-based software distributed shared memory.

Implements the paper's memory-consistency substrate (§5):

* a multi-threaded page state machine — INVALID, TRANSIENT, BLOCKED,
  READ_ONLY, DIRTY (Figure 5) — with the atomic-page-update strategies of
  :mod:`repro.vm` underneath;
* home-based lazy release consistency (HLRC): twins and diffs at non-home
  writers, diff merge at the home, write notices, invalidation at
  synchronisation points;
* ParADE's **migratory home** variant: at each barrier the sole modifier of
  a page becomes its new home (else the home stays), with write notices and
  new-home announcements piggybacked on the barrier messages (§5.2.2);
* a distributed lock manager with lazy-release-consistency semantics, used
  by the conventional-SDSM baseline (KDSM, [20]) and by the OpenMP lock API
  — including KDSM's busy-wait lock client that causes the paper's 2-node
  anomaly in Figure 7.

:class:`DsmSystem` is the per-cluster facade; :class:`DsmNode` the per-node
protocol agent.
"""

from repro.dsm.states import PageState, VALID_TRANSITIONS, is_valid_transition
from repro.dsm.diffs import make_twin, compute_diff, apply_diff, diff_nbytes
from repro.dsm.writenotice import WriteNotice, NoticeLog
from repro.dsm.config import (
    DsmConfig,
    PARADE_DSM,
    PARADE_ACCEL,
    PARADE_HIER,
    KDSM_BASELINE,
)
from repro.dsm.system import DsmSystem
from repro.dsm.node import DsmNode
from repro.dsm.sharedarray import SharedArray, SharedScalar

__all__ = [
    "PageState",
    "VALID_TRANSITIONS",
    "is_valid_transition",
    "make_twin",
    "compute_diff",
    "apply_diff",
    "diff_nbytes",
    "WriteNotice",
    "NoticeLog",
    "DsmConfig",
    "PARADE_DSM",
    "PARADE_ACCEL",
    "PARADE_HIER",
    "KDSM_BASELINE",
    "DsmSystem",
    "DsmNode",
    "SharedArray",
    "SharedScalar",
]
