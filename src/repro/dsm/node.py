"""Per-node DSM protocol agent.

One :class:`DsmNode` per cluster node.  It owns the node's copy of the
shared pool (physical frames + application address space), the page table
(states, homes, twins), and implements:

* the SIGSEGV-style fault loop: protection-checked access, fault, fetch
  from home, atomic page update via a :mod:`repro.vm` strategy, retry —
  with the TRANSIENT/BLOCKED multithread states of Figure 5;
* barrier arrival/departure with flushed diffs, piggybacked write notices
  and home migration (ParADE §5.2.2), the master role living on node 0;
* the distributed lock manager + client with lazy-release-consistency
  write-notice piggybacking; the client optionally busy-waits (KDSM).

All public operations are generators called from application-thread
processes; protocol service for *incoming* messages runs on the node's
communication thread (see :class:`repro.mpi.CommThread`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.sim import AnyOf, Event
from repro.vm import (
    AddressSpace,
    PhysicalMemory,
    ProtectionFault,
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    strategy_by_name,
    LINUX_24,
    AIX_433,
)
from repro.dsm.states import PageState, IllegalTransition, is_valid_transition
from repro.dsm.diffs import make_twin, compute_diff, apply_diff, diff_nbytes
from repro.dsm.writenotice import (
    WriteNotice,
    NoticeLog,
    dedupe_notices,
    fold_writer_bytes,
    fold_writer_sets,
    merge_notices,
    merge_notice_bytes,
)
from repro.profile.phases import (
    PH_BARRIER,
    PH_FAULT_FETCH,
    PH_FAULT_WORK,
    PH_FLUSH,
    PH_LOCK_WAIT,
    PH_PAGE_WAIT,
)

#: page kinds: HLRC-managed vs object-granularity (update protocol) regions
KIND_HLRC = 0
KIND_OBJECT = 1

#: wire bytes per record header in a batched diff frame (page id + length)
BATCH_ENTRY_BYTES = 8

#: update push (adaptive migration): a home keeps pushing a page's fresh
#: copy to a reader for this many barrier epochs after the reader's last
#: real fetch.  A stable consumer re-fetches once per window and is pushed
#: to in between (~1/(N+1) of its faults survive); a reader that stops
#: consuming wastes at most this many pushed frames per page.
PUSH_INTEREST_EPOCHS = 8

#: wire bytes of a push frame header (page id + epoch stamp)
PUSH_HEADER_BYTES = 12


class DiffGapClobber(RuntimeError):
    """A coalesced diff (``diff_gap > 0``) would overwrite bytes another
    node wrote in the same interval — the documented single-writer
    precondition of :func:`repro.dsm.diffs.compute_diff` is violated and
    the home copy would be silently corrupted."""

    def __init__(self, home: int, page: int, writer: int, other: int,
                 lo: int, hi: int) -> None:
        super().__init__(
            f"diff_gap clobber on home {home}, page {page}: coalesced diff "
            f"from node {writer} overlaps bytes [{lo:#x}, {hi:#x}) written by "
            f"node {other} in the same interval; diff_gap > 0 requires a "
            f"single writer per page per interval"
        )
        self.home = home
        self.page = page
        self.writer = writer
        self.other = other
        self.lo = lo
        self.hi = hi

_OS_PROFILES = {"linux-2.4": LINUX_24, "aix-4.3.3": AIX_433}


@dataclass
class DsmNodeStats:
    """Per-node DSM protocol counters.

    The sum over nodes (plus the system-wide ``home_migrations``) becomes
    ``RunResult.dsm_stats``.  Each counter has a per-event counterpart in
    :mod:`repro.trace` (category/name given below), so aggregates and
    traces speak one vocabulary.

    ====================  ======  =======================================  ==========================
    key                   unit    meaning (trace counterpart)              paper figure it feeds
    ====================  ======  =======================================  ==========================
    read_faults           count   read faults on INVALID pages             Figs 8-11 (SDSM overhead)
                                  (``dsm.page/fault`` kind=read)
    write_faults          count   write faults: INVALID fetch-for-write    Figs 8-11
                                  or READ_ONLY upgrade
                                  (``dsm.page/fault`` kind=write[-upgrade])
    pages_fetched         count   whole pages / homeless diffs pulled      Figs 8-11
                                  from remote (``dsm.page/fetch``,
                                  ``dsm.page/diff-pull``)
    fetch_bytes           bytes   payload bytes of those fetches           traffic ablations
    diffs_sent            count   diffs shipped to homes at releases       Fig 6 (critical), Figs 8-11
                                  (``dsm.page/flush`` args ``diffs``)
    diff_bytes            bytes   diff payload bytes                       traffic ablations
    twins_created         count   twin copies made before first write      Fig 6 (twin/diff cost)
                                  (``dsm.page/twin``)
    barriers              count   HLRC barriers entered by this node       Figs 8-11 (barrier cost)
                                  (``dsm.barrier/barrier`` spans)
    lock_acquires         count   distributed lock acquires                Fig 6 (KDSM lock path)
                                  (``dsm.lock/acquire`` spans)
    lock_remote_acquires  count   ... whose manager is on another node     Fig 6 (lock hops)
                                  (``dsm.lock/acquire`` remote=True)
    invalidations         count   pages invalidated by write notices       Figs 8-11
                                  (``dsm.page/page-state`` dst=INVALID)
    blocked_waits         count   threads parked on an in-flight page      §5.2.3 TRANSIENT/BLOCKED
                                  update (``dsm.page/page-wait`` spans)
    fetches_served        count   fetch/diff requests served as home       comm-thread contention,
                                  (``dsm.page/serve-fetch``)               §6.2 configurations
    dsm_reissues          count   fetch/dget requests idempotently         reliability ablations
                                  re-issued after a quiet RTO, chaos       (docs/RELIABILITY.md)
                                  runs only (``chaos/dsm-reissue``)
    stale_replies         count   duplicate/late replies discarded         reliability ablations
                                  after a re-issue already resolved
                                  the request (``chaos/stale-reply``)
    notices_batched       count   per-page diff records coalesced into     protocol-accelerator
                                  batched ``dbat`` frames — messages        ablations
                                  saved is this minus the frame count      (docs/PERFORMANCE.md)
                                  (``dsm.page/diff-batch`` args
                                  ``entries``)
    diffs_piggybacked     count   diffs applied straight off lock grants   protocol-accelerator
                                  instead of invalidate + fault + fetch    ablations
                                  (``dsm.page/piggy-apply`` args
                                  ``diffs``)
    updates_pushed        count   fresh page copies pushed by this home    protocol-accelerator
                                  to predicted re-fetchers after a         ablations
                                  barrier departure (``dsm.page/push``)
    updates_installed     count   pushed copies this node installed —      protocol-accelerator
                                  faults it will never take; pushes        ablations
                                  minus installs were dropped as stale
                                  (``dsm.page/push-apply``)
    readahead_pages       count   extra pages installed off bundled        protocol-accelerator
                                  sequential-fetch replies — round-trips   ablations
                                  a block scan or gather skipped
                                  (``dsm.page/readahead-apply``)
    barrier_arrivals_rx   count   barrier arrival frames received from     scale-out ablations
                                  *other* nodes: n-1 per epoch at a flat   (docs/PERFORMANCE.md
                                  master, <= fan-in per epoch per tree     "Scaling")
                                  node with ``barrier_fanin`` on
                                  (``dsm.barrier`` arrive/relay receipt)
    barrier_relays        count   tree frames this node relayed as an      scale-out ablations
                                  interior node: subtree aggregates
                                  forwarded up + departure frames fanned
                                  out down (``dsm.barrier/relay``,
                                  ``dsm.barrier/fanout``)
    notices_merged        count   page records collapsed into an already   scale-out ablations
                                  aggregated page entry while climbing
                                  the barrier tree — notice records the
                                  in-tree merge kept off the wire
                                  (``dsm.barrier/relay`` args ``pages``)
    lock_grants           count   lock grants issued by this node as       scale-out ablations
                                  manager (``dsm.lock/grant``)             (shard balance)
    lock_remote_grants    count   ... granted to another node; the         scale-out ablations
                                  remote share shows whether
                                  ``lock_shard="locality"`` kept grants
                                  local (``dsm.lock/grant`` requester)
    ====================  ======  =======================================  ==========================

    ``RunResult.dsm_stats`` additionally carries the system-wide
    ``home_migrations`` counter (eager sole-writer or adaptive
    byte-weighted migrations, by :class:`~repro.dsm.config.DsmConfig`).
    """

    read_faults: int = 0
    write_faults: int = 0
    pages_fetched: int = 0
    fetch_bytes: int = 0
    diffs_sent: int = 0
    diff_bytes: int = 0
    twins_created: int = 0
    barriers: int = 0
    lock_acquires: int = 0
    lock_remote_acquires: int = 0
    invalidations: int = 0
    blocked_waits: int = 0
    fetches_served: int = 0
    dsm_reissues: int = 0
    stale_replies: int = 0
    notices_batched: int = 0
    diffs_piggybacked: int = 0
    updates_pushed: int = 0
    updates_installed: int = 0
    readahead_pages: int = 0
    barrier_arrivals_rx: int = 0
    barrier_relays: int = 0
    notices_merged: int = 0
    lock_grants: int = 0
    lock_remote_grants: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class DsmNode:
    """DSM agent for one node; see module docstring."""

    def __init__(self, system, node, dsm_config):
        self.system = system
        self.node = node
        self.id = node.id
        self.sim = node.sim
        self.net = system.cluster.network
        self.config = dsm_config
        self.cluster_config = system.cluster.config
        self.page_size = self.cluster_config.page_size
        self.n_pages = system.n_pages
        n_nodes = system.cluster.n_nodes

        # Node-local copy of the shared pool, behind a protected app mapping.
        self.phys = PhysicalMemory(self.n_pages, self.page_size)
        self.space = AddressSpace(self.phys, name=f"app[{self.id}]")
        self.space.map_identity(self.n_pages, prot=PROT_NONE)

        profile = _OS_PROFILES[dsm_config.os_profile]
        self.strategy = strategy_by_name(dsm_config.update_strategy, profile=profile)

        # Page table: master starts READ_ONLY everywhere, others INVALID
        # (§5.2.3).  Homeless mode: every copy starts valid (all zeros are
        # trivially coherent) and writers retain diffs for pulling.
        all_valid = dsm_config.homeless
        initial = PageState.READ_ONLY if (self.id == 0 or all_valid) else PageState.INVALID
        self.state: List[PageState] = [initial] * self.n_pages
        self.home: List[int] = [0] * self.n_pages
        self.kind: List[int] = [KIND_HLRC] * self.n_pages
        if self.id == 0 or all_valid:
            for p in range(self.n_pages):
                self.space.protect(p, PROT_READ)
        #: homeless mode: (page, barrier epoch) -> retained diff
        self._diff_log: Dict[tuple, list] = {}
        #: homeless mode: page -> ordered [(epoch, [writers])] still unapplied
        self._missing: Dict[int, List[tuple]] = {}

        self.twins: Dict[int, np.ndarray] = {}
        self.dirty: Set[int] = set()
        self._page_waiters: Dict[int, Event] = {}

        # fast-path cache: ranges validated against self.space.version;
        # any protect/map (every state transition goes through protect)
        # bumps the version and empties the cache lazily
        self._fast_version = -1
        self._fast_valid: Set[tuple] = set()

        # request/response plumbing
        self._pending: Dict[int, Event] = {}
        self._req_seq = itertools.count()

        # barrier state (master only uses _bar_arrivals)
        self._barrier_epoch = 0
        self._bar_arrivals: Dict[int, Dict[int, List[WriteNotice]]] = {}
        self._bar_wait: Dict[int, Event] = {}
        # highest epoch whose release/departure has passed through this
        # node — arrival frames at or below it are late duplicates and are
        # dropped instead of resurrecting a ghost _bar_arrivals entry that
        # could never complete
        self._bar_released = -1
        # hierarchical barrier (DsmConfig.barrier_fanin >= 2): k-ary tree
        # rooted at the master; arrivals climb it with in-tree notice
        # merging, departures fan out down it
        f = dsm_config.barrier_fanin
        self._fanin = f
        if f:
            self._bar_parent = (self.id - 1) // f if self.id else None
            self._bar_children = [
                c for c in range(f * self.id + 1, f * self.id + f + 1)
                if c < n_nodes
            ]
        else:
            self._bar_parent = None
            self._bar_children = []
        # epoch -> partially folded subtree aggregate:
        # {"n": contributions seen, "writers": {page: {writer}},
        #  "bytes": {page: {writer: diff bytes}} (adaptive only),
        #  "fetched": {node: (page, ...)} (adaptive push interest)}
        self._bar_agg: Dict[int, dict] = {}

        # lock manager state (for locks homed here)
        self._lock_holder: Dict[int, Optional[int]] = {}
        self._lock_queue: Dict[int, List] = {}
        self._lock_log: Dict[int, NoticeLog] = {}
        # lock sharding (DsmConfig.lock_shard="locality"): the static
        # directory's record of each lock's assigned (first-toucher)
        # manager, and the client-side manager cache learned from grants
        self._lock_assign: Dict[int, int] = {}
        self._lock_home: Dict[int, int] = {}
        self._interval = 0
        # notices this node created in lock intervals since the last barrier;
        # they must still propagate at the next barrier (HLRC would carry
        # them in vector timestamps — we piggyback them conservatively)
        self._notices_since_barrier: List[WriteNotice] = []

        # home-side bookkeeping for the diff_gap > 0 precondition:
        # byte runs of diffs applied this interval, page -> [(seq, writer,
        # lo, hi)], and a freshness floor per (page, requester) — a node
        # that fetched the page after a diff applied already carries those
        # bytes, so its later (lock-ordered) diff is not a second writer.
        self._gap_runs: Dict[int, List[tuple]] = {}
        self._gap_fresh: Dict[tuple, int] = {}
        self._apply_seq = 0

        # pages whose invalidation arrived while a fetch was in flight
        # (TRANSIENT/BLOCKED); drained by the fetching thread, which
        # discards the stale update and retries.
        self._pending_inval: Set[int] = set()

        # protocol accelerator (docs/PERFORMANCE.md "Protocol
        # optimizations").  Piggybacking needs exact diffs: coalesced
        # diff_gap runs carry stale gap bytes that must not be replayed
        # at third nodes, so the flag is inert while diff_gap > 0.
        self._accel_piggyback = (
            dsm_config.lock_piggyback
            and dsm_config.diff_gap == 0
            and not dsm_config.homeless
        )
        self._accel_adaptive = dsm_config.adaptive_migration and not dsm_config.homeless
        #: wire bytes per notice record: sized notices carry diff byte counts
        self._notice_nbytes = (
            WriteNotice.NBYTES_SIZED if self._accel_adaptive else WriteNotice.NBYTES
        )
        # adaptive migration, master only: page -> {writer: EWMA diff bytes}
        self._mig_hist: Dict[int, Dict[int, float]] = {}
        # adaptive migration, new-home side: page -> event local threads
        # wait on until the old home's copy arrives ...
        self._pending_handoff: Dict[int, Event] = {}
        # ... fetch requests parked meanwhile, page -> [(requester, req_id)]
        self._handoff_waiters: Dict[int, List[tuple]] = {}
        # ... and copies that arrived before this node processed the
        # departure that announces the migration (possible under chaos
        # delays), page -> raw page bytes
        self._handoff_data: Dict[int, bytes] = {}
        # update push, master side: page -> {reader: epoch of its last
        # reported fetch}; predicts which nodes will re-fetch a page after
        # a barrier invalidates it (fed by the arrival payloads)
        self._push_interest: Dict[int, Dict[int, int]] = {}
        # update push, reader side: pages this node remote-fetched since
        # its last barrier arrival — reported to the master as interest
        self._fetched_since_barrier: Set[int] = set()
        # receiver side: page -> event a faulting thread parks on when an
        # inbound one-way frame was promised for the page — a barrier
        # departure announced an update push, or a fetch reply promised
        # read-ahead trailers.  Waiting for the frame in flight beats
        # issuing our own fetch round-trip; any install or lock-grant
        # invalidation of the page wakes (and removes) the event.
        self._expected_frames: Dict[int, Event] = {}
        # ... frames that arrived before this node processed the departure
        # that announced them, page -> (epoch, raw page bytes)
        self._push_stash: Dict[int, tuple] = {}
        # ... and the last barrier epoch whose departure this node has
        # processed (separates the stash window from the install window)
        self._departed_epoch = -1
        # update push, receiver side: pages invalidated by lock-grant
        # notices since the last barrier departure.  A push snapshotted at
        # that departure is stale with respect to the lock writer's data,
        # so it must not be installed (the lock's happens-before edge
        # promised the newer bytes); cleared at every departure.
        self._lock_invalidated: Set[int] = set()
        # fetch read-ahead: the previously fetched page (the sequential-
        # scan detector — a fault on the successor of the last fetched
        # page asks the home to trail further contiguous pages)
        self._last_fetched_page = -2
        # grant time of locks this node currently holds; feeds the
        # metrics layer's lock-hold histogram (grant-to-release)
        self._lock_grant_t: Dict[int, float] = {}

        self.stats = DsmNodeStats()

    # -- strategy executor interface -----------------------------------
    def busy(self, seconds: float):
        yield from self.node.busy_cpu(seconds)

    # ------------------------------------------------------------------
    # page table helpers
    # ------------------------------------------------------------------
    def _set_state(self, page: int, new: PageState, reason: str) -> None:
        old = self.state[page]
        if old == new:
            return
        san = self.sim.san
        if san is not None:
            san.on_page_state(self.id, page, old, new, reason)
        if not is_valid_transition(old, new, reason):
            raise IllegalTransition(page, old, new, reason)
        self.state[page] = new
        tr = self.sim.trace
        if tr is not None:
            tr.instant(
                "dsm.page", "page-state", node=self.id,
                page=page, src=old.name, dst=new.name, reason=reason,
            )

    def page_range(self, addr: int, size: int) -> range:
        if size <= 0:
            return range(0)
        first = addr // self.page_size
        last = (addr + size - 1) // self.page_size
        if last >= self.n_pages:
            raise IndexError(
                f"shared access [{addr}, {addr+size}) beyond pool of {self.n_pages} pages"
            )
        return range(first, last + 1)

    def mark_object_pages(self, addr: int, size: int) -> None:
        """Move pages to object-granularity management: always valid on all
        nodes, kept consistent by runtime collectives (entry-consistency
        style, §5.2.1).  Called at allocation time by the runtime."""
        for p in self.page_range(addr, size):
            self.kind[p] = KIND_OBJECT
            self.state[p] = PageState.READ_ONLY
            self.space.protect(p, PROT_RW)
            self.twins.pop(p, None)
            self.dirty.discard(p)

    def raw_view(self, addr: int, size: int) -> np.ndarray:
        """Unchecked zero-copy view of the local pool (uint8)."""
        return self.phys.buffer[addr : addr + size]

    # ------------------------------------------------------------------
    # application access API
    # ------------------------------------------------------------------
    def try_fast_access(self, addr: int, nbytes: int, write: bool) -> bool:
        """Non-generator fast path: True iff [addr, addr+nbytes) is already
        accessible for the requested mode, so the caller may skip the
        generator fault loop entirely.

        Equivalent to :meth:`acquire_read`/:meth:`acquire_write` returning
        without a fault: in that case those generators consume no virtual
        time and take no protocol action, so skipping them is invisible to
        the simulation.  Positive answers are cached per
        ``(addr, nbytes, write)`` and stamped with
        :attr:`AddressSpace.version`; any mapping or protection change
        (every page-state transition performs an mprotect) invalidates the
        whole cache.
        """
        if not self.config.fast_path:
            return False
        v = self.space.version
        if v != self._fast_version:
            self._fast_version = v
            self._fast_valid.clear()
        key = (addr, nbytes, write)
        if key in self._fast_valid:
            return True
        if self.space.can_access(addr, nbytes, write):
            self._fast_valid.add(key)
            return True
        return False

    def acquire_read(self, addr: int, size: int):
        """Ensure every page in [addr, addr+size) is locally readable."""
        while True:
            try:
                self.space.check_range(addr, size, write=False)
                return
            except ProtectionFault as fault:
                yield from self._service_fault(fault.vpage, is_write=False)

    def acquire_write(self, addr: int, size: int):
        """Ensure pages are writable; creates twins and marks them dirty."""
        while True:
            try:
                self.space.check_range(addr, size, write=True)
                return
            except ProtectionFault as fault:
                yield from self._service_fault(fault.vpage, is_write=True)

    def read(self, addr: int, size: int):
        """Protection-checked read returning bytes (faults as needed)."""
        if not self.try_fast_access(addr, size, write=False):
            yield from self.acquire_read(addr, size)
        san = self.sim.san
        if san is not None:
            san.on_access(self.id, addr, size, False, f"[{addr:#x}+{size}]")
        return self.space.read(addr, size)

    def write(self, addr: int, data: bytes):
        """Protection-checked write (faults as needed)."""
        data = bytes(data)
        if not self.try_fast_access(addr, len(data), write=True):
            yield from self.acquire_write(addr, len(data))
        san = self.sim.san
        if san is not None:
            san.on_access(self.id, addr, len(data), True, f"[{addr:#x}+{len(data)}]")
        self.space.write(addr, data)

    # ------------------------------------------------------------------
    # fault service (the SIGSEGV handler, §5.2.3)
    # ------------------------------------------------------------------
    def _service_fault(self, page: int, is_write: bool):
        tr = self.sim.trace
        while True:
            st = self.state[page]
            prof = self.sim.prof
            if st == PageState.READ_ONLY:
                if not is_write:
                    return  # raced with another thread's completed fetch
                # write fault on a valid clean page
                self.stats.write_faults += 1
                t0 = self.sim.now
                if prof is not None:
                    # local service only: SIGSEGV + twin + mprotect costs,
                    # charged as fault-work by the busy slices inside
                    prof.on_fault(page, True)
                    prof.push(PH_FAULT_WORK)
                try:
                    yield from self.node.busy_cpu(self.cluster_config.fault_overhead)
                    if self.state[page] is not PageState.READ_ONLY:
                        # a sibling invalidated the page (lock-grant notice)
                        # or upgraded it first while we yielded; retry
                        continue
                    if self.config.homeless or self.home[page] != self.id:
                        self._make_twin(page)
                    yield from self.node.busy_cpu(self.cluster_config.mprotect_overhead)
                    if self.state[page] is not PageState.READ_ONLY:
                        continue  # _invalidate dropped the twin; retry
                    self._set_state(page, PageState.DIRTY, "write-fault")
                    self.space.protect(page, PROT_RW)
                    self.dirty.add(page)
                    if tr is not None:
                        tr.span("dsm.page", "fault", t0, node=self.id,
                                page=page, kind="write-upgrade")
                    return
                finally:
                    if prof is not None:
                        prof.pop()
            if st == PageState.DIRTY:
                return  # already writable
            if st == PageState.INVALID and page in self._expected_frames:
                # The barrier departure announced an update push for this
                # page: the home's one-way frame is already in flight, so
                # waiting for it strictly beats issuing our own fetch
                # round-trip.  If a lock-grant notice voids the push, the
                # wake-up retries this loop and falls through to a fetch.
                if is_write:
                    self.stats.write_faults += 1
                else:
                    self.stats.read_faults += 1
                t0 = self.sim.now
                if prof is not None:
                    prof.on_fault(page, is_write)
                    prof.push(PH_FAULT_WORK)
                try:
                    yield from self.node.busy_cpu(self.cluster_config.fault_overhead)
                finally:
                    if prof is not None:
                        prof.pop()
                ev = self._expected_frames.get(page)
                if ev is not None and not ev.triggered:
                    if prof is None:
                        yield ev
                    else:
                        prof.push(PH_PAGE_WAIT)
                        try:
                            yield ev
                        finally:
                            prof.pop()
                if tr is not None:
                    tr.span("dsm.page", "fault", t0, node=self.id,
                            page=page, kind="push-wait")
                continue
            if st == PageState.INVALID:
                if is_write:
                    self.stats.write_faults += 1
                else:
                    self.stats.read_faults += 1
                t0 = self.sim.now
                if prof is not None:
                    # fetch round-trips re-phase themselves as fault-fetch;
                    # the rest (fault/mprotect/update CPU) is fault-work
                    prof.on_fault(page, is_write)
                    prof.push(PH_FAULT_WORK)
                try:
                    self._set_state(page, PageState.TRANSIENT, "fault")
                    yield from self.node.busy_cpu(self.cluster_config.fault_overhead)
                    final_prot = PROT_RW if is_write else PROT_READ
                    if self.config.homeless:
                        yield from self._pull_missing_diffs(page)
                        yield from self.node.busy_cpu(self.cluster_config.mprotect_overhead)
                        self.space.protect(page, final_prot)
                    else:
                        data = yield from self._fetch_page(page)
                        yield from self.strategy.update_page(self, self.space, page, data, final_prot)
                    if page in self._pending_inval:
                        # An invalidation raced with this fetch (a sibling
                        # thread applied a write notice for the page while
                        # the fetch was in flight): the copy just installed
                        # may be stale.  Close the update through the legal
                        # Figure-5 chain, drop it, wake waiters, and retry.
                        self._pending_inval.discard(page)
                        self._set_state(page, PageState.READ_ONLY, "update-done")
                        self._invalidate(page)
                        waiter = self._page_waiters.pop(page, None)
                        if waiter is not None:
                            waiter.succeed()
                        if tr is not None:
                            tr.span("dsm.page", "fault", t0, node=self.id,
                                    page=page, kind="retry-invalidated")
                        continue
                    if is_write:
                        if self.config.homeless or self.home[page] != self.id:
                            self._make_twin(page)
                        self.dirty.add(page)
                        self._set_state(page, PageState.DIRTY, "update-done-write")
                    else:
                        self._set_state(page, PageState.READ_ONLY, "update-done")
                    waiter = self._page_waiters.pop(page, None)
                    if waiter is not None:
                        waiter.succeed()
                    if tr is not None:
                        tr.span("dsm.page", "fault", t0, node=self.id,
                                page=page, kind="write" if is_write else "read")
                    return
                finally:
                    if prof is not None:
                        prof.pop()
            # TRANSIENT or BLOCKED: some other thread is updating; wait.
            self.stats.blocked_waits += 1
            if st == PageState.TRANSIENT:
                self._set_state(page, PageState.BLOCKED, "concurrent-fault")
            waiter = self._page_waiters.get(page)
            if waiter is None:
                waiter = Event(self.sim, name=f"pagewait[{self.id}:{page}]")
                self._page_waiters[page] = waiter
            t0 = self.sim.now
            if prof is None:
                yield waiter
            else:
                prof.push(PH_PAGE_WAIT)
                try:
                    yield waiter
                finally:
                    prof.pop()
            if tr is not None:
                tr.span("dsm.page", "page-wait", t0, node=self.id, page=page)
            # loop: re-examine the state (may need to upgrade to write)

    def _make_twin(self, page: int) -> None:
        self.twins[page] = make_twin(self._page_view(page))
        self.stats.twins_created += 1
        tr = self.sim.trace
        if tr is not None:
            tr.instant("dsm.page", "twin", node=self.id, page=page)

    def _page_view(self, page: int) -> np.ndarray:
        return self.phys.frame_view(page)

    # ------------------------------------------------------------------
    # fetch protocol
    # ------------------------------------------------------------------
    def _next_req(self) -> int:
        return next(self._req_seq)

    def _pending_event(self, req_id: int) -> Event:
        ev = Event(self.sim, name=f"pending[{self.id}:{req_id}]")
        self._pending[req_id] = ev
        return ev

    def _resolve(self, req_id: int, value) -> None:
        ev = self._pending.pop(req_id, None)
        if ev is None:
            # On a perfect network every request gets exactly one reply, so
            # an unmatched req_id is protocol corruption — keep the strict
            # failure.  Under chaos an idempotent re-issue (_await_reply)
            # can legitimately draw a second reply: count and drop it.
            if self.sim.chaos is None:
                raise KeyError(req_id)
            self.stats.stale_replies += 1
            tr = self.sim.trace
            if tr is not None:
                tr.instant("chaos", "stale-reply", node=self.id,
                           tid="chaos", req=req_id)
            return
        ev.succeed(value)

    def _await_reply(self, ev: Event, resend):
        """Wait for a request's reply event; under chaos, idempotently
        re-issue the request after quiet RTOs.

        *resend* is a generator function replaying the original send with
        the **same** req_id — only used for pure reads (page fetch, diff
        pull), which are idempotent: a duplicate reply is discarded by
        :meth:`_resolve` as stale.  Non-idempotent requests (lock acquire,
        barrier arrival, diff application) rely solely on the chaos
        engine's ack/retransmit layer, which already guarantees
        exactly-once delivery.  Re-issues are bounded by
        ``dsm_max_reissues``; past that we trust the link layer (which
        raises :class:`~repro.chaos.ChaosDeliveryError` if truly dead).
        """
        ch = self.sim.chaos
        if ch is None:
            value = yield ev
            return value
        rel = ch.reliability
        rto = ch.dsm_rto()
        tr = self.sim.trace
        for attempt in range(rel.dsm_max_reissues):
            timer = self.sim.timeout(rto * (rel.backoff ** attempt))
            yield AnyOf(self.sim, [ev, timer])
            if ev.processed:
                return ev.value
            self.stats.dsm_reissues += 1
            ch.stats.dsm_reissues += 1
            if tr is not None:
                tr.instant("chaos", "dsm-reissue", node=self.id,
                           tid="chaos", attempt=attempt + 1)
            yield from resend()
        value = yield ev
        return value

    def _fetch_page(self, page: int):
        """Request the up-to-date page from its home; returns page bytes.

        With ``fetch_readahead`` and a sequential fault pattern (previous
        fault hit page - 1), the request also names up to *readahead*
        further contiguous pages that are invalid here and share the same
        home.  The home replies with the primary page alone — the fault's
        round-trip latency is untouched — then trails one-way ``raP``
        frames for the named pages it can serve; the comm thread installs
        each sound arrival (:meth:`_receive_readahead`).  Best-effort: a
        page that never arrives simply faults later.
        """
        home = self.home[page]
        assert home != self.id, f"node {self.id} faulted on page {page} it homes"
        ra = self.config.fetch_readahead
        if ra > 0:
            extras = ()
            if page - 1 == self._last_fetched_page:
                n_pages = len(self.state)
                extras = tuple(
                    q for q in range(page + 1, min(page + ra, n_pages))
                    if self.home[q] == home
                    and self.state[q] is PageState.INVALID
                    and self.kind[q] != KIND_OBJECT
                    # a parked thread waits on the announced push frame
                    # for that page — installing a fetch copy would not
                    # wake it, so leave announced pages to the push
                    and q not in self._expected_frames
                )
            self._last_fetched_page = page
            req_payload = (page, self.id, extras, self._barrier_epoch)
            req_nb = 12 + 4 * len(extras)
        else:
            req_payload = (page, self.id)
            req_nb = 8
        req_id = self._next_req()
        ev = self._pending_event(req_id)
        t0 = self.sim.now

        def send_req():
            yield from self.net.send(
                self.id, home, req_nb, req_payload, tag=("dsm", "fetch", req_id)
            )

        prof = self.sim.prof
        if prof is None:
            yield from send_req()
            reply = yield from self._await_reply(ev, send_req)
        else:
            # request round-trip: send + wait for the home's reply
            prof.push(PH_FAULT_FETCH)
            try:
                yield from send_req()
                reply = yield from self._await_reply(ev, send_req)
            finally:
                prof.pop()
        if ra > 0:
            data, promised = reply
            for q in promised:
                # park follow-up faults on the promised trailer frames —
                # registered only for still-INVALID pages (a sibling's
                # in-flight fetch wins TRANSIENT pages, and its install
                # path would not resolve the promise)
                if (
                    self.state[q] is PageState.INVALID
                    and q not in self._expected_frames
                ):
                    self._expected_frames[q] = Event(
                        self.sim, name=f"rawait[{self.id}:{q}]"
                    )
        else:
            data = reply
        if prof is not None:
            prof.on_fetch(page, len(data))
        self.stats.pages_fetched += 1
        self.stats.fetch_bytes += len(data)
        if self._accel_adaptive:
            # reported to the master at the next barrier arrival as
            # update-push interest
            self._fetched_since_barrier.add(page)
        tr = self.sim.trace
        if tr is not None:
            tr.span("dsm.page", "fetch", t0, node=self.id,
                    page=page, home=home, nbytes=len(data))
        return data

    def _pull_missing_diffs(self, page: int):
        """Homeless fault service: pull and apply every missing diff, in
        barrier-epoch order (within an epoch, writers touch disjoint bytes
        for data-race-free programs, so cross-writer order is free)."""
        records = self._missing.pop(page, [])
        view = self._page_view(page)
        tr = self.sim.trace
        t0 = self.sim.now
        n_pulled = 0
        check_gap = self.config.diff_gap > 0
        for epoch, writers in sorted(records):
            # runs applied within this epoch, for the coalescing guard:
            # with diff_gap > 0 a gap byte carries the writer's (possibly
            # stale) copy of another writer's same-epoch data
            epoch_runs: List[tuple] = []
            for w in writers:
                req_id = self._next_req()
                ev = self._pending_event(req_id)

                def send_req(w=w, req_id=req_id):
                    yield from self.net.send(
                        self.id, w, 12, (page, epoch, self.id), tag=("dsm", "dget", req_id)
                    )

                prof = self.sim.prof
                if prof is None:
                    yield from send_req()
                    diff = yield from self._await_reply(ev, send_req)
                else:
                    prof.push(PH_FAULT_FETCH)
                    try:
                        yield from send_req()
                        diff = yield from self._await_reply(ev, send_req)
                    finally:
                        prof.pop()
                self.stats.pages_fetched += 1
                nb = diff_nbytes(diff)
                self.stats.fetch_bytes += nb
                if prof is not None:
                    prof.on_fetch(page, nb)
                yield from self.node.busy_cpu(self.cluster_config.diff_apply_overhead)
                if check_gap:
                    for off, data in diff:
                        lo, hi = off, off + len(data)
                        for ow, olo, ohi in epoch_runs:
                            if ow != w and lo < ohi and olo < hi:
                                raise DiffGapClobber(
                                    self.id, page, w, ow, max(lo, olo), min(hi, ohi)
                                )
                        epoch_runs.append((w, lo, hi))
                apply_diff(view, diff)
                n_pulled += 1
        if tr is not None and records:
            tr.span("dsm.page", "diff-pull", t0, node=self.id, page=page, diffs=n_pulled)

    # -- handlers run on the communication thread ------------------------
    def handle_dsm(self, msg):
        """Comm-thread handler for the 'dsm' channel."""
        _chan, kind, req_id = msg.tag
        if kind == "dget":
            page, epoch, requester = msg.payload
            diff = self._diff_log.get((page, epoch), [])
            self.stats.fetches_served += 1
            yield from self.net.send(
                self.id, requester, diff_nbytes(diff), diff, tag=("dsm", "dgetR", req_id)
            )
            return
        if kind == "dgetR":
            self._resolve(req_id, msg.payload)
            return
        if kind == "fetch":
            if len(msg.payload) == 4:
                page, requester, extras, ra_epoch = msg.payload
            else:
                page, requester = msg.payload
                extras, ra_epoch = (), -1
            yield from self._serve_fetch(page, requester, req_id, extras, ra_epoch)
        elif kind == "fetchR":
            self._resolve(req_id, msg.payload)
        elif kind == "diff":
            page, diff = msg.payload
            yield from self._apply_incoming_diff(page, diff, msg.src)
            yield from self.net.send(self.id, msg.src, 4, None, tag=("dsm", "diffR", req_id))
        elif kind == "diffR":
            self._resolve(req_id, None)
        elif kind == "dbat":
            # batched release: apply every (page, diff) record, ack once.
            # Rides the chaos ack/retransmit layer like "diff" — the frame
            # is exactly-once at the link layer, so per-page application
            # stays non-idempotent-safe.
            for page, diff in msg.payload:
                yield from self._apply_incoming_diff(page, diff, msg.src)
            yield from self.net.send(self.id, msg.src, 4, None, tag=("dsm", "dbatR", req_id))
        elif kind == "dbatR":
            self._resolve(req_id, None)
        elif kind == "hand":
            # adaptive migration: the old home ships its current copy to
            # the new home chosen at the barrier (fire-and-forget;
            # exactly-once at the link layer)
            yield from self._receive_handoff(msg.payload, msg.src)
        elif kind == "push":
            # update push: a home forwards the fresh copy of a page this
            # node is predicted to re-fetch (fire-and-forget; dropped
            # whenever installing would not be sound)
            yield from self._receive_push(msg.payload, msg.src)
        elif kind == "raP":
            # sequential-fetch read-ahead: a home trails contiguous pages
            # behind a fetch reply (fire-and-forget; dropped whenever
            # installing would not be sound)
            yield from self._receive_readahead(msg.payload, msg.src)
        else:  # pragma: no cover - protocol corruption guard
            raise RuntimeError(f"unknown dsm message kind {kind!r}")

    def _serve_fetch(self, page: int, requester: int, req_id: int,
                     extras=(), ra_epoch: int = -1):
        if self.home[page] != self.id:
            # Stale home pointer (should not happen barrier-to-barrier, but
            # forward for robustness; one extra hop).  Read-ahead extras
            # are dropped at the forward — best-effort by design.
            yield from self.net.send(
                self.id, self.home[page], 8, (page, requester), tag=("dsm", "fetch", req_id)
            )
            return
        if page in self._pending_handoff:
            # This page just migrated to us and the old home's copy is
            # still in flight: park the request (the comm thread must not
            # block), served in arrival order when the handoff lands.
            waiters = self._handoff_waiters.setdefault(page, [])
            if (requester, req_id) not in waiters:
                waiters.append((requester, req_id))
            return
        st = self.state[page]
        assert st in (PageState.READ_ONLY, PageState.DIRTY), (
            f"home {self.id} of page {page} holds it {st.name}"
        )
        self.stats.fetches_served += 1
        data = self._page_view(page).tobytes()
        if self.config.diff_gap > 0:
            # the requester's copy now reflects every diff applied so far;
            # diffs it sends later are not concurrent with those
            self._gap_fresh[(page, requester)] = self._apply_seq
        tr = self.sim.trace
        if tr is not None:
            tr.instant("dsm.page", "serve-fetch", node=self.id,
                       page=page, requester=requester)
        if self.config.fetch_readahead > 0:
            # snapshot the requested read-ahead pages this home can serve
            # right now (synchronously — same snapshot semantics as the
            # primary page).  The reply carries the exact promise list so
            # the requester can park follow-up faults on the trailing
            # frames instead of re-fetching; the frames themselves go out
            # from a detached sender so this comm thread stays responsive.
            bundle = [
                (q, self._page_view(q).tobytes())
                for q in extras
                if self.home[q] == self.id
                and q not in self._pending_handoff
                and self.state[q] in (PageState.READ_ONLY, PageState.DIRTY)
            ]
            if self.config.diff_gap > 0:
                for q, _ in bundle:
                    self._gap_fresh[(q, requester)] = self._apply_seq
            promised = tuple(q for q, _ in bundle)
            yield from self.net.send(
                self.id, requester, len(data) + 4 * len(promised),
                (data, promised), tag=("dsm", "fetchR", req_id),
            )
            if bundle:
                self.sim.process(
                    self._readahead_sender(bundle, requester, ra_epoch),
                    label=f"ra[{self.id}->{requester}]",
                )
            return
        yield from self.net.send(
            self.id, requester, len(data), data, tag=("dsm", "fetchR", req_id)
        )

    def _readahead_sender(self, bundle, requester: int, ra_epoch: int):
        """Detached sender for read-ahead pages: one one-way ``raP``
        frame per page, installed by the requester's comm thread when
        still sound (:meth:`_receive_readahead`)."""
        for q, qdata in bundle:
            yield from self.net.send(
                self.id, requester, self.page_size + PUSH_HEADER_BYTES,
                (q, qdata, ra_epoch), tag=("dsm", "raP", self._next_req()),
            )

    def _receive_readahead(self, payload, src: int):
        """Comm-thread handler for an incoming ``raP`` read-ahead frame.

        Installs the copy only when doing so is indistinguishable from
        the fetch the requester would otherwise issue: the requester is
        still in the inter-barrier window it stamped on the request
        (entering the next barrier bumps ``_barrier_epoch``, so frames
        crossing a barrier are dropped before they can bypass its
        invalidations), the page is still INVALID with an unchanged home,
        and no lock-grant notice promised newer bytes this window.
        Anything else: drop — the frame is an optimisation, the fault +
        fetch path remains correct.  Installing resolves the promise
        registered off the fetch reply, waking parked threads.
        """
        page, data, ra_epoch = payload
        if (
            self.kind[page] == KIND_OBJECT
            or self._barrier_epoch != ra_epoch
            or self.home[page] != src
            or page in self._lock_invalidated
            or self.state[page] is not PageState.INVALID
        ):
            return
        self.stats.readahead_pages += 1
        # keep the sequential-scan detector alive across trailer-served
        # stretches: the next fault past the promised run re-triggers
        # read-ahead instead of restarting the two-fault warm-up
        self._last_fetched_page = page
        yield from self._install_copy(page, data, "readahead-apply")

    def _apply_incoming_diff(self, page: int, diff, src: int):
        assert self.home[page] == self.id, (
            f"diff for page {page} arrived at non-home {self.id}"
        )
        if self.config.diff_gap > 0 and diff:
            self._check_gap_precondition(page, diff, src)
        yield from self.node.busy_cpu(self.cluster_config.diff_apply_overhead)
        apply_diff(self._page_view(page), diff)
        tr = self.sim.trace
        if tr is not None:
            tr.instant("dsm.page", "diff-apply", node=self.id, page=page)

    def _check_gap_precondition(self, page: int, diff, src: int) -> None:
        """Enforce compute_diff's single-writer-per-interval precondition.

        With ``diff_gap > 0`` a diff run may contain *gap* bytes carrying
        the writer's stale copy of data; if another node wrote overlapping
        bytes of the same page in the same interval, applying this run
        would silently clobber them — raise instead.  A writer whose copy
        was fetched *after* an earlier diff applied (tracked by
        ``_gap_fresh``, stamped at :meth:`_serve_fetch`) already carries
        those bytes, so lock-ordered writer chains pass; the registry is
        cleared when this node departs a barrier, bounding it to one
        interval.
        """
        self._apply_seq += 1
        seq = self._apply_seq
        floor = self._gap_fresh.get((page, src), -1)
        runs = self._gap_runs.setdefault(page, [])
        stale = [r for r in runs if r[1] != src and r[0] > floor]
        if stale:
            for off, data in diff:
                lo, hi = off, off + len(data)
                for oseq, owriter, olo, ohi in stale:
                    if lo < ohi and olo < hi:
                        raise DiffGapClobber(
                            self.id, page, src, owriter, max(lo, olo), min(hi, ohi)
                        )
            san = self.sim.san
            if san is not None:
                san.on_gap_writers(self.id, page, {src} | {r[1] for r in stale})
        for off, data in diff:
            runs.append((seq, src, off, off + len(data)))

    # ------------------------------------------------------------------
    # adaptive home migration: page handoff (new-home side)
    # ------------------------------------------------------------------
    def _receive_handoff(self, payload, src: int):
        """Comm-thread handler for an incoming ``hand`` frame.

        Normally this node already processed the barrier departure that
        announced the migration (it registered ``_pending_handoff``):
        install the copy, wake local waiters, serve parked fetches.  Under
        chaos delays the frame can overtake this node's departure — stash
        the bytes; the departure path installs them inline.
        """
        page, data = payload
        if page not in self._pending_handoff:
            self._handoff_data[page] = data
            return
        yield from self._install_handoff(page, data)
        self._pending_handoff.pop(page).succeed()
        for requester, rid in self._handoff_waiters.pop(page, []):
            yield from self._serve_fetch(page, requester, rid)

    def _install_handoff(self, page: int, data):
        """Install the old home's page copy on the new home, through the
        legal Figure-5 chain (the page was invalidated at the departure)."""
        yield from self._install_copy(page, data, "handoff-apply")

    def _install_copy(self, page: int, data, label: str):
        """Install a whole-page copy (migration handoff or update push)
        on an INVALID page through the legal Figure-5 chain.

        TRANSIENT is entered before the first yield so application
        threads faulting concurrently (push installs run mid-window) see
        the update in progress and park in BLOCKED instead of starting a
        competing fetch; they are woken when the install completes, same
        as the fetch path.
        """
        assert self.state[page] is PageState.INVALID, (
            f"{label} for page {page} found state {self.state[page].name} on {self.id}"
        )
        self._set_state(page, PageState.TRANSIENT, "fault")
        yield from self.node.busy_cpu(self.cluster_config.diff_apply_overhead)
        yield from self.node.busy_cpu(self.cluster_config.mprotect_overhead)
        self._page_view(page)[:] = np.frombuffer(data, dtype=np.uint8)
        self._set_state(page, PageState.READ_ONLY, "update-done")
        self.space.protect(page, PROT_READ)
        if page in self._pending_inval:
            # a write notice invalidated the page while the install was in
            # its busy windows (lock-grant processing on a sibling thread):
            # the copy is stale — drop it, woken waiters re-fault
            self._pending_inval.discard(page)
            self._invalidate(page)
        waiter = self._page_waiters.pop(page, None)
        if waiter is not None:
            waiter.succeed()
        # any install resolves an expected-frame promise for the page:
        # parked threads wake and re-examine the (now usually READ_ONLY)
        # state; on the stale-install path above they re-fault and fetch
        ev = self._expected_frames.pop(page, None)
        if ev is not None and not ev.triggered:
            ev.succeed()
        tr = self.sim.trace
        if tr is not None:
            tr.instant("dsm.page", label, node=self.id, page=page)

    # ------------------------------------------------------------------
    # update push (adaptive migration): home -> predicted re-fetchers
    #
    # The master turns reader interest (pages each node reported fetching
    # in its arrival) into a push plan announced in every departure.
    # Homes snapshot the announced pages and push one-way copies; a
    # reader faulting on an announced page parks for the frame instead of
    # issuing its own fetch — the steady-state invalidate/fault/fetch
    # round-trip of producer-consumer pages becomes half a round-trip.
    # ------------------------------------------------------------------
    def _process_push_plan(self, push_plan, epoch: int):
        """Receiver side, inside barrier processing after invalidations:
        install frames that overtook our departure (stash) and register a
        park event for every still-missing announced page, so faults wait
        for the one-way push instead of fetching."""
        for page in sorted(push_plan):
            if self.id not in push_plan[page]:
                continue
            stash = self._push_stash.pop(page, None)
            if self.state[page] is not PageState.INVALID:
                continue
            if stash is not None:
                self.stats.updates_installed += 1
                # consuming a push renews interest: without this, a page
                # served by pushes alone would fall out of the master's
                # interest window and cost one fetch every window
                self._fetched_since_barrier.add(page)
                yield from self._install_copy(page, stash[1], "push-apply")
                continue
            self._expected_frames[page] = Event(
                self.sim, name=f"pushwait[{self.id}:{page}]"
            )

    def _push_updates(self, push_plan, epoch: int, *,
                      awaiting_handoff: bool, new_homes) -> None:
        """Home side, during barrier processing: snapshot every announced
        page homed here and hand the copies to a detached sender process.

        Called twice per departure: first (``awaiting_handoff=False``)
        for pages whose home did not change — frames go on the wire
        before the handoff wait, minimising parked readers' stall — then
        (``awaiting_handoff=True``) for pages just migrated here, whose
        copy only exists once the old home's handoff installed.

        The snapshot is taken synchronously (no virtual time passes), so
        the pushed bytes are exactly what a fetch at departure time would
        return — application writes of the next interval can never leak
        into the frame.  Transmission happens off the barrier critical
        path.  Every announced (page, reader) pair IS pushed — readers
        may be parked on the frame — and the chaos link layer delivers
        exactly-once, so parked faults never strand.
        """
        pushes = []
        for page in sorted(push_plan):
            if self.home[page] != self.id:
                continue
            if (new_homes.get(page) == self.id) != awaiting_handoff:
                continue
            assert self.state[page] in (PageState.READ_ONLY, PageState.DIRTY), (
                f"push of page {page} from home {self.id} in state "
                f"{self.state[page].name}"
            )
            data = self._page_view(page).tobytes()
            for r in push_plan[page]:
                if r != self.id:
                    pushes.append((page, r, data))
        if pushes:
            self.sim.process(
                self._push_sender(pushes, epoch),
                label=f"push[{self.id}:{epoch}]",
            )

    def _push_sender(self, pushes, epoch: int):
        """Detached sender: one ``push`` frame per (page, reader) —
        exactly-once at the link layer, dropped by the receiver whenever
        installing it would not be sound."""
        tr = self.sim.trace
        for page, dst, data in pushes:
            self.stats.updates_pushed += 1
            if tr is not None:
                tr.instant("dsm.page", "push", node=self.id,
                           page=page, dst=dst, epoch=epoch)
            yield from self.net.send(
                self.id, dst, self.page_size + PUSH_HEADER_BYTES,
                (page, epoch, data), tag=("dsm", "push", self._next_req()),
            )

    def _receive_push(self, payload, src: int):
        """Comm-thread handler for an incoming ``push`` frame.

        Installs the copy only when doing so is indistinguishable from a
        completed fetch issued right now: the receiver is in the
        inter-barrier window the frame was produced for (epoch check —
        both sides completed barrier *epoch*, next one not yet entered),
        its departure already ran (else the frame overtook it: stash, the
        departure path installs it), the page is INVALID, and no
        lock-grant notice invalidated the page this window (the lock's
        happens-before edge promised bytes newer than the departure-time
        snapshot).  Anything else: drop — the frame is an optimisation, a
        fault + fetch always remains correct.  Threads parked on the
        announced frame are woken after the install.
        """
        page, epoch, data = payload
        if self.kind[page] == KIND_OBJECT or self._barrier_epoch != epoch + 1:
            return
        if self._departed_epoch < epoch:
            self._push_stash[page] = (epoch, data)
            return
        if (
            self.home[page] != src
            or page in self._lock_invalidated
            or self.state[page] is not PageState.INVALID
        ):
            return
        self.stats.updates_installed += 1
        self._fetched_since_barrier.add(page)  # consuming renews interest
        yield from self._install_copy(page, data, "push-apply")

    # ------------------------------------------------------------------
    # flush: ship diffs of dirty pages to their homes (release operation)
    # ------------------------------------------------------------------
    def _flush_dirty(self, epoch: Optional[int] = None, collect: Optional[dict] = None):
        """Send diffs for all dirty non-home pages; returns write notices
        for every dirty page.  Diff sends are pipelined, then acks awaited.

        Homeless mode (*epoch* given): diffs are retained locally, keyed by
        the barrier epoch, for later pulling by faulting nodes.

        With ``batch_notices`` every diff within ``batch_max_bytes`` bound
        for the same home travels in one ``("dsm", "dbat")`` frame per
        peer with a single ack (larger diffs keep their own pipelined
        ``diff`` frame — see the config field's rationale); the
        per-page ``diffs_sent``/``diff_bytes`` accounting is unchanged so
        runs stay comparable across the flag.  *collect*, if given,
        receives ``{page: diff}`` for diffs within the piggyback budget —
        the lock-release path forwards them to the lock manager.  With
        ``adaptive_migration`` the returned notices are sized: they carry
        the diff byte count, the home writer credited one full page."""
        self._interval += 1
        tr = self.sim.trace
        t0 = self.sim.now
        n_dirty = len(self.dirty)
        diffs_before = self.stats.diffs_sent
        bytes_before = self.stats.diff_bytes
        pages = sorted(self.dirty)
        prof = self.sim.prof
        if prof is not None:
            # release-time twin/diff work: diff CPU bursts inherit this
            # label; the trailing ack waits count as flush too
            prof.push(PH_FLUSH)
        try:
            if self.config.homeless:
                assert epoch is not None, "homeless flush requires a barrier epoch"
                for p in pages:
                    twin = self.twins.get(p)
                    assert twin is not None, f"dirty page {p} has no twin on {self.id}"
                    yield from self.node.busy_cpu(self.cluster_config.diff_overhead)
                    diff = compute_diff(twin, self._page_view(p), self.config.diff_gap)
                    self._diff_log[(p, epoch)] = diff
                    if prof is not None:
                        prof.on_diff(p, diff_nbytes(diff))
                if tr is not None and n_dirty:
                    tr.span("dsm.page", "flush", t0, node=self.id, dirty=n_dirty, retained=True)
                return [WriteNotice(p, self.id, self._interval) for p in pages]
            acks = []
            batch = self.config.batch_notices
            by_home: Dict[int, List[tuple]] = {}
            sizes: Dict[int, int] = {}
            for p in pages:
                if self.home[p] == self.id:
                    continue
                twin = self.twins.get(p)
                assert twin is not None, f"dirty non-home page {p} has no twin on {self.id}"
                yield from self.node.busy_cpu(self.cluster_config.diff_overhead)
                diff = compute_diff(twin, self._page_view(p), self.config.diff_gap)
                nb = diff_nbytes(diff)
                sizes[p] = nb
                if not diff:
                    continue
                if collect is not None and nb <= self.config.piggyback_max_bytes:
                    collect[p] = diff
                self.stats.diffs_sent += 1
                self.stats.diff_bytes += nb
                if prof is not None:
                    prof.on_diff(p, nb)
                if batch and nb <= self.config.batch_max_bytes:
                    by_home.setdefault(self.home[p], []).append((p, diff))
                else:
                    req_id = self._next_req()
                    acks.append(self._pending_event(req_id))
                    yield from self.net.send(self.id, self.home[p], nb, (p, diff), tag=("dsm", "diff", req_id))
            for dst in sorted(by_home):
                entries = by_home[dst]
                req_id = self._next_req()
                acks.append(self._pending_event(req_id))
                nb = sum(diff_nbytes(d) for _, d in entries) + BATCH_ENTRY_BYTES * len(entries)
                self.stats.notices_batched += len(entries)
                if tr is not None:
                    tr.instant("dsm.page", "diff-batch", node=self.id,
                               dst=dst, entries=len(entries), nbytes=nb)
                yield from self.net.send(self.id, dst, nb, entries, tag=("dsm", "dbat", req_id))
            for ev in acks:
                yield ev
            if tr is not None and n_dirty:
                tr.span(
                    "dsm.page", "flush", t0, node=self.id, dirty=n_dirty,
                    diffs=self.stats.diffs_sent - diffs_before,
                    nbytes=self.stats.diff_bytes - bytes_before,
                )
            if self._accel_adaptive:
                # sized notices; the home writer never diffs — credit a
                # full page as the documented incumbent proxy
                return [
                    WriteNotice(p, self.id, self._interval, sizes.get(p, self.page_size))
                    for p in pages
                ]
            return [WriteNotice(p, self.id, self._interval) for p in pages]
        finally:
            if prof is not None:
                prof.pop()

    def _close_interval(self) -> None:
        """After a flush: dirty pages become clean, twins dropped."""
        for p in self.dirty:
            self._set_state(p, PageState.READ_ONLY, "flush")
            self.space.protect(p, PROT_READ)
            self.twins.pop(p, None)
        self.dirty.clear()

    def _invalidate(self, page: int) -> None:
        if self.kind[page] == KIND_OBJECT:
            return
        st = self.state[page]
        if st == PageState.INVALID:
            return
        if st in (PageState.TRANSIENT, PageState.BLOCKED):
            # A write notice arrived while another thread's fetch of this
            # page is still in flight (possible only with >1 app thread
            # per node: this thread is applying lock-grant notices while
            # a sibling faults).  The copy being installed may already be
            # stale, but the frame cannot be yanked mid-update — defer:
            # the fetching thread invalidates and retries on completion.
            self._pending_inval.add(page)
            return
        assert st in (PageState.READ_ONLY, PageState.DIRTY), (
            f"invalidate of page {page} in state {st.name} on node {self.id}"
        )
        self._set_state(page, PageState.INVALID, "invalidate")
        self.space.protect(page, PROT_NONE)
        self.twins.pop(page, None)
        self.dirty.discard(page)
        self.stats.invalidations += 1

    # ------------------------------------------------------------------
    # barrier (one caller per node per epoch; ParADE §5.2.2)
    # ------------------------------------------------------------------
    @property
    def master_id(self) -> int:
        return 0

    def barrier(self):
        """HLRC barrier: flush, send arrival+notices to master, wait for
        departure carrying invalidations and new homes."""
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        self.stats.barriers += 1
        tr = self.sim.trace
        bar_t0 = self.sim.now
        prof = self.sim.prof
        if prof is not None:
            # arrival-to-departure; the nested flush re-phases its own span
            prof.push(PH_BARRIER)
        try:
            yield from self._barrier_body(epoch, tr, bar_t0)
        finally:
            if prof is not None:
                prof.pop()
            mx = self.sim.metrics
            if mx is not None:
                mx.on_barrier_epoch(self.id, self.sim.now - bar_t0)

    def _barrier_body(self, epoch: int, tr, bar_t0: float):
        flushed = yield from self._flush_dirty(epoch=epoch)
        self._close_interval()
        # include notices from lock intervals since the last barrier
        notices = dedupe_notices(self._notices_since_barrier + flushed)
        self._notices_since_barrier = []

        wait = Event(self.sim, name=f"bardep[{self.id}:{epoch}]")
        self._bar_wait[epoch] = wait
        nb = 16 + self._notice_nbytes * len(notices)
        fetched: List[int] = []
        if self._accel_adaptive:
            # report update-push interest: pages we remote-fetched this
            # window (4 B per page id on the wire)
            fetched = sorted(self._fetched_since_barrier)
            self._fetched_since_barrier.clear()
            payload = (self.id, notices, fetched)
            nb += 4 * len(fetched)
        else:
            payload = (self.id, notices)
        if tr is not None:
            tr.instant("dsm.barrier", "arrive", node=self.id,
                       epoch=epoch, notices=len(notices))
        san = self.sim.san
        if san is not None:
            san.on_barrier_arrive(self.id, epoch)
        if self._fanin:
            # hierarchical barrier: contribute the page-level aggregate of
            # our own notices to this node's subtree fold — no frame until
            # the whole subtree has arrived (leaves forward immediately)
            own = {self.id: notices}
            yield from self._tree_contribute(
                epoch,
                merge_notices(own),
                merge_notice_bytes(own) if self._accel_adaptive else None,
                {self.id: tuple(fetched)} if fetched else {},
            )
        else:
            yield from self.net.send(self.id, self.master_id, nb, payload,
                                     tag=("bar", "arr", epoch))
        departure = yield wait
        if len(departure) == 3:
            inval_writers, new_homes, push_plan = departure
        else:
            (inval_writers, new_homes), push_plan = departure, {}
        if san is not None:
            san.on_barrier_depart(self.id, epoch)
        if self._gap_runs:
            # the barrier closes every node's interval; diffs of the next
            # interval start a fresh single-writer window
            self._gap_runs.clear()
            self._gap_fresh.clear()
        # push staleness guard: lock invalidations of the closed window
        # no longer block installs (stale pushes now fail the epoch check)
        self._lock_invalidated.clear()
        if tr is not None:
            tr.span("dsm.barrier", "barrier", bar_t0, node=self.id,
                    epoch=epoch, notices=len(notices))

        if self.config.homeless:
            # record which writers' diffs this copy is missing, oldest first
            for page, writers in sorted(inval_writers.items()):
                others = writers - {self.id}
                if others:
                    self._missing.setdefault(page, []).append((epoch, sorted(others)))
                    self._invalidate(page)
            if tr is not None:
                self._emit_census(tr, epoch)
            return

        # adaptive migration: before invalidating, an old home whose page
        # migrates to a non-sole writer must ship its (current) copy —
        # the new home's own copy lacks the other writers' diffs
        if self._accel_adaptive:
            for page, new_home in new_homes.items():
                if self.home[page] != self.id or new_home == self.id:
                    continue
                if inval_writers.get(page, set()) - {new_home}:
                    data = self._page_view(page).tobytes()
                    if tr is not None:
                        tr.instant("dsm.page", "handoff", node=self.id,
                                   page=page, dst=new_home, epoch=epoch)
                    yield from self.net.send(
                        self.id, new_home, self.page_size + 8, (page, data),
                        tag=("dsm", "hand", self._next_req()),
                    )
        # apply invalidations and the new home directory
        for page, writers in inval_writers.items():
            new_home = new_homes.get(page, self.home[page])
            others = writers - {self.id}
            if others and new_home != self.id:
                self._invalidate(page)
        for page, new_home in new_homes.items():
            self.home[page] = new_home
        if self._accel_adaptive:
            # from here on, incoming push frames for this epoch install
            # directly instead of being stashed (no yields have happened
            # since the invalidation loop, so no frame can slip between)
            self._departed_epoch = epoch
            self._expected_frames.clear()
            self._push_stash = {
                p: v for p, v in self._push_stash.items() if v[0] == epoch
            }
            # pages already homed here push immediately — parked readers
            # are waiting on these frames, so every tick of delay counts;
            # pages migrating *to* this node can only push once the old
            # home's handoff is installed
            self._push_updates(push_plan, epoch, awaiting_handoff=False,
                               new_homes=new_homes)
            yield from self._await_handoffs(inval_writers, new_homes)
            yield from self._process_push_plan(push_plan, epoch)
            self._push_updates(push_plan, epoch, awaiting_handoff=True,
                               new_homes=new_homes)
        if tr is not None:
            self._emit_census(tr, epoch)

    def _await_handoffs(self, inval_writers, new_homes):
        """New-home side of adaptive migration: invalidate the stale local
        copy and block (still inside the barrier) until the old home's
        handoff arrives, so the barrier never returns with a home page
        that cannot serve fetches."""
        # pass 1, no yields: invalidate and register every migrated-to-us
        # page before any suspension, so a fetch arriving mid-install of
        # one page cannot be served a stale copy of another
        pending = []
        for page, new_home in new_homes.items():
            if new_home != self.id:
                continue
            if not (inval_writers.get(page, set()) - {self.id}):
                continue  # sole writer: local copy already current
            self._invalidate(page)
            self._pending_handoff[page] = Event(
                self.sim, name=f"handoff[{self.id}:{page}]"
            )
            pending.append(page)
        if not pending:
            return
        waits = []
        for page in pending:
            data = self._handoff_data.pop(page, None)
            if data is None:
                waits.append(self._pending_handoff[page])
                continue
            # the hand frame overtook our departure; install inline
            yield from self._install_handoff(page, data)
            self._pending_handoff.pop(page).succeed()
            for requester, rid in self._handoff_waiters.pop(page, []):
                yield from self._serve_fetch(page, requester, rid)
        if not waits:
            return
        prof = self.sim.prof
        if prof is not None:
            # a new wait point: phase it like any other page-update wait
            prof.push(PH_PAGE_WAIT)
        try:
            for ev in waits:
                yield ev
        finally:
            if prof is not None:
                prof.pop()

    def _emit_census(self, tr, epoch: int) -> None:
        """Counter sample of this node's page-state census (post-barrier).

        All counter args must stay numeric series values: Chrome stacks
        every ``args`` key as one band of the counter track.
        """
        del epoch  # census is stamped by virtual time, not epoch
        counts = {st.name: 0 for st in PageState}
        for st in self.state:
            counts[st.name] += 1
        tr.counter("counter", "page-census", node=self.id, **counts)

    def handle_barrier(self, msg):
        """Comm-thread handler for the 'bar' channel."""
        _chan, kind, epoch = msg.tag
        if kind == "arr":
            if epoch <= self._bar_released:
                # late or duplicate arrival for an epoch already released:
                # drop it instead of resurrecting a ghost arrivals entry
                # that could never reach quorum again
                tr = self.sim.trace
                if tr is not None:
                    tr.instant("dsm.barrier", "drop-late", node=self.id,
                               epoch=epoch, src=msg.src)
                return
            if msg.src != self.id:
                self.stats.barrier_arrivals_rx += 1
            if self._fanin:
                # tree mode: the frame is a subtree's page-level aggregate
                _node, writers, bytes_by_page, fetched = msg.payload
                yield from self._tree_contribute(
                    epoch, writers, bytes_by_page, fetched
                )
                return
            assert self.id == self.master_id
            if len(msg.payload) == 3:
                node, notices, fetched = msg.payload
                for p in fetched:
                    self._push_interest.setdefault(p, {})[node] = epoch
            else:
                node, notices = msg.payload
            arrivals = self._bar_arrivals.setdefault(epoch, {})
            arrivals[node] = notices
            if len(arrivals) == self.system.cluster.n_nodes:
                yield from self._barrier_release(epoch, arrivals)
            return
        if kind == "dep":
            self._bar_released = max(self._bar_released, epoch)
            if self._fanin and self._bar_children:
                # fan the departure out down the tree before waking local
                # threads — the deeper subtrees' latency dominates
                tr = self.sim.trace
                fwd_nb = msg.nbytes - self.net.HEADER_BYTES
                for dst in self._bar_children:
                    self.stats.barrier_relays += 1
                    if tr is not None:
                        tr.instant("dsm.barrier", "fanout", node=self.id,
                                   epoch=epoch, dst=dst)
                    yield from self.net.send(self.id, dst, fwd_nb, msg.payload,
                                             tag=("bar", "dep", epoch))
            ev = self._bar_wait.pop(epoch)
            ev.succeed(msg.payload)
            return
        raise RuntimeError(f"unknown barrier message kind {kind!r}")  # pragma: no cover
        yield  # pragma: no cover

    def _tree_contribute(self, epoch: int, writers, bytes_by_page, fetched):
        """Fold one subtree contribution (our own arrival or a child's
        aggregate frame) into this node's per-epoch aggregate; once the
        whole subtree (self + every child) has contributed, forward one
        merged frame to the parent — or release, at the master."""
        agg = self._bar_agg.get(epoch)
        if agg is None:
            agg = self._bar_agg[epoch] = {
                "n": 0, "writers": {}, "bytes": {}, "fetched": {},
            }
        self.stats.notices_merged += fold_writer_sets(agg["writers"], writers)
        if bytes_by_page:
            fold_writer_bytes(agg["bytes"], bytes_by_page)
        if fetched:
            agg["fetched"].update(fetched)
        agg["n"] += 1
        if agg["n"] == 1 + len(self._bar_children):
            del self._bar_agg[epoch]
            yield from self._tree_forward(epoch, agg)

    def _tree_forward(self, epoch: int, agg):
        """A subtree is complete: merge cost, then one frame up — or the
        release itself when this node is the master."""
        writers = agg["writers"]
        # the in-tree merge costs CPU, same scale as the master's merge
        yield from self.node.busy_cpu(0.5e-6 + 0.1e-6 * len(writers))
        if self.id == self.master_id:
            yield from self._tree_release(epoch, agg)
            return
        pairs = sum(len(ws) for ws in writers.values())
        nb = 16 + 8 * len(writers) + 4 * pairs
        if self._accel_adaptive:
            nb += 4 * pairs  # sized aggregates: per-writer byte counts
            nb += sum(8 + 4 * len(pg) for pg in agg["fetched"].values())
            payload = (self.id, writers, agg["bytes"], agg["fetched"])
        else:
            payload = (self.id, writers, None, None)
        tr = self.sim.trace
        if tr is not None:
            tr.instant("dsm.barrier", "relay", node=self.id, epoch=epoch,
                       pages=len(writers), pairs=pairs,
                       subtree=1 + len(self._bar_children))
        if self._bar_children:
            self.stats.barrier_relays += 1
        yield from self.net.send(self.id, self._bar_parent, nb, payload,
                                 tag=("bar", "arr", epoch))

    def _tree_release(self, epoch: int, agg):
        """Master, tree mode: the aggregate is already page-level."""
        if self._accel_adaptive:
            self._update_migration_history(agg["bytes"])
            for node, pages in agg["fetched"].items():
                for p in pages:
                    self._push_interest.setdefault(p, {})[node] = epoch
        yield from self._release_epoch(epoch, agg["writers"])

    def _barrier_release(self, epoch: int, arrivals):
        """Master, flat mode: merge notices, then release the epoch."""
        del self._bar_arrivals[epoch]
        writers_by_page = merge_notices(arrivals)
        if self._accel_adaptive:
            self._update_migration_history(merge_notice_bytes(arrivals))
        yield from self._release_epoch(epoch, writers_by_page)

    def _release_epoch(self, epoch: int, writers_by_page):
        """Master: decide home migration, build the departure, send it —
        to every node directly (flat) or down the tree (hierarchical)."""
        tr = self.sim.trace
        new_homes: Dict[int, int] = {}
        if self._accel_adaptive:
            for page, writers in writers_by_page.items():
                old_home = self.home[page]
                hist = self._mig_hist.get(page)
                if not hist:
                    continue
                total = sum(hist.values())
                best_writer, best = max(
                    hist.items(), key=lambda kv: (kv[1], -kv[0])
                )
                if (
                    best_writer != old_home
                    and total > 0
                    and best > self.config.migration_share * total
                ):
                    new_homes[page] = best_writer
                    self.system.stats_home_migrations += 1
                    if tr is not None:
                        tr.instant("dsm.page", "home-migrate", node=self.id,
                                   page=page, src=old_home, dst=best_writer,
                                   epoch=epoch, adaptive=True)
        elif self.config.home_migration:
            for page, writers in writers_by_page.items():
                old_home = self.home[page]
                if len(writers) == 1:
                    (sole,) = tuple(writers)
                    if sole != old_home:
                        new_homes[page] = sole
                        self.system.stats_home_migrations += 1
                        if tr is not None:
                            tr.instant("dsm.page", "home-migrate", node=self.id,
                                       page=page, src=old_home, dst=sole, epoch=epoch)
                # multiple writers: current home keeps highest priority (§5.2.2)
        if self._accel_adaptive:
            # Push plan: for every written page, the readers that fetched
            # it recently and are about to be invalidated get a one-way
            # copy from the (possibly new) home right after departure.
            push_plan: Dict[int, tuple] = {}
            for page, writers in sorted(writers_by_page.items()):
                if self.kind[page] == KIND_OBJECT:
                    continue
                interest = self._push_interest.get(page)
                if not interest:
                    continue
                stale = [r for r, last in interest.items()
                         if epoch - last > PUSH_INTEREST_EPOCHS]
                for r in stale:
                    del interest[r]
                if not interest:
                    del self._push_interest[page]
                    continue
                final_home = new_homes.get(page, self.home[page])
                readers = tuple(
                    r for r in sorted(interest)
                    if r != final_home and (writers - {r})
                )
                if readers:
                    push_plan[page] = readers
            if tr is not None:
                tr.instant("dsm.barrier", "release", node=self.id, epoch=epoch,
                           pages=len(writers_by_page), migrations=len(new_homes),
                           pushes=len(push_plan))
            payload = (writers_by_page, new_homes, push_plan)
            nb = (16 + 16 * len(writers_by_page) + 8 * len(new_homes)
                  + 8 * sum(len(v) for v in push_plan.values()))
        else:
            if tr is not None:
                tr.instant("dsm.barrier", "release", node=self.id, epoch=epoch,
                           pages=len(writers_by_page), migrations=len(new_homes))
            payload = (writers_by_page, new_homes)
            nb = 16 + 16 * len(writers_by_page) + 8 * len(new_homes)
        # small CPU cost for the merge itself
        yield from self.node.busy_cpu(1e-6 + 0.2e-6 * len(writers_by_page))
        self._bar_released = max(self._bar_released, epoch)
        if self._fanin:
            for dst in self._bar_children:
                if tr is not None:
                    tr.instant("dsm.barrier", "fanout", node=self.id,
                               epoch=epoch, dst=dst)
                yield from self.net.send(self.id, dst, nb, payload,
                                         tag=("bar", "dep", epoch))
            # the master's own departure is local: wake the waiting thread
            # directly instead of a loopback frame
            ev = self._bar_wait.pop(epoch)
            ev.succeed(payload)
        else:
            for dst in range(self.system.cluster.n_nodes):
                yield from self.net.send(self.id, dst, nb, payload,
                                         tag=("bar", "dep", epoch))

    def _update_migration_history(self, bytes_by_page) -> None:
        """Fold this epoch's merged sized-notice bytes (page -> {writer:
        bytes}) into the per-page writer EWMA (halved every epoch; entries
        fading below one byte are dropped so the table tracks the working
        set, not the whole pool)."""
        hist = self._mig_hist
        dead = []
        for page, by_writer in hist.items():
            gone = []
            for w in by_writer:
                by_writer[w] *= 0.5
                if by_writer[w] < 1.0:
                    gone.append(w)
            for w in gone:
                del by_writer[w]
            if not by_writer:
                dead.append(page)
        for page in dead:
            del hist[page]
        for page, by_writer in bytes_by_page.items():
            cur = hist.setdefault(page, {})
            for w, nb in by_writer.items():
                cur[w] = cur.get(w, 0.0) + float(nb)

    # ------------------------------------------------------------------
    # distributed locks (LRC piggybacking; KDSM-style optional busy-wait)
    # ------------------------------------------------------------------
    def lock_directory_of(self, lock_id: int) -> int:
        """Static shard home of a lock: the node that serves (or, in
        locality mode, assigns and forwards) its acquire requests.
        ``"modulo"`` keeps the historical ``lock_id % n`` mapping; the
        other modes scatter consecutive lock ids across the cluster with
        a multiplicative hash so small id sets don't pile every manager
        onto the low nodes."""
        n = self.system.cluster.n_nodes
        if self.config.lock_shard == "modulo":
            return lock_id % n
        # Fibonacci hash, taking the *high* bits of the 32-bit product:
        # the multiplier is odd, so reducing the product mod a
        # power-of-two n would use only its low bits and collapse back
        # to the modulo mapping (2654435761 ≡ 1 mod 16).
        return (((lock_id * 2654435761) & 0xFFFFFFFF) >> 17) % n

    def lock_manager_of(self, lock_id: int) -> int:
        """The node this client sends lock traffic to.  In locality mode
        this is the cached first-toucher manager once a grant has taught
        us where the lock lives; until then, the directory (which
        forwards)."""
        if self.config.lock_shard == "locality":
            return self._lock_home.get(lock_id, self.lock_directory_of(lock_id))
        return self.lock_directory_of(lock_id)

    def lock_acquire(self, lock_id: int):
        """Acquire a global lock; applies piggybacked write notices."""
        if self.config.homeless:
            raise NotImplementedError(
                "the homeless-LRC ablation supports barrier synchronisation only"
            )
        self.stats.lock_acquires += 1
        manager = self.lock_manager_of(lock_id)
        req_id = self._next_req()
        ev = self._pending_event(req_id)
        if manager != self.id:
            self.stats.lock_remote_acquires += 1
        tr = self.sim.trace
        t0 = self.sim.now
        prof = self.sim.prof
        if prof is not None:
            # request-to-grant, spin slices included (they surface as
            # *active* lock-wait — the KDSM busy-wait anomaly of Fig. 7)
            prof.push(PH_LOCK_WAIT)
        try:
            yield from self.net.send(
                self.id, manager, 12, (lock_id, self.id), tag=("lk", "acq", req_id)
            )
            if self.config.lock_spin:
                # KDSM busy-wait client: burn CPU slices until granted (§6.1).
                while not ev.triggered:
                    yield from self.node.busy_cpu(self.config.spin_slice)
            granted = yield ev
        finally:
            if prof is not None:
                prof.pop()
        if self.config.lock_shard == "locality":
            # the grant names the actual manager: cache it so later
            # acquires/releases skip the directory hop
            manager, granted = granted
            self._lock_home[lock_id] = manager
        if self._accel_piggyback:
            notices, piggy = granted
        else:
            notices, piggy = granted, None
        if prof is not None:
            prof.on_lock_acquired(
                lock_id, self.sim.now - t0, remote=manager != self.id
            )
        mx = self.sim.metrics
        if mx is not None:
            mx.on_lock_wait(lock_id, self.sim.now - t0)
            self._lock_grant_t[lock_id] = self.sim.now
        san = self.sim.san
        if san is not None:
            san.on_lock_acquire(("dsm-lock", lock_id))
        inval_before = self.stats.invalidations
        piggy_before = self.stats.diffs_piggybacked
        done: Set[int] = set()
        for wn in notices:
            if wn.writer == self.id or self.home[wn.page] == self.id:
                continue
            page = wn.page
            if page in done:
                continue
            done.add(page)
            chain = piggy.get(page) if piggy else None
            if chain and self.state[page] is PageState.READ_ONLY:
                # the grant shipped the complete diff chain for this page:
                # patch the valid copy in place — no invalidate, no fault,
                # no fetch round-trip inside the critical section
                yield from self._apply_piggyback(page, chain)
            else:
                self._invalidate(page)
                # a barrier-departure update push snapshotted before this
                # lock's release must not resurrect the page this window;
                # threads parked on that push must wake and fetch instead
                self._lock_invalidated.add(page)
                pev = self._expected_frames.pop(page, None)
                if pev is not None and not pev.triggered:
                    pev.succeed()
        if tr is not None:
            if piggy is None:
                tr.span(
                    "dsm.lock", "acquire", t0, node=self.id, lock=lock_id,
                    manager=manager, remote=manager != self.id,
                    notices=len(notices),
                    invalidated=self.stats.invalidations - inval_before,
                )
            else:
                tr.span(
                    "dsm.lock", "acquire", t0, node=self.id, lock=lock_id,
                    manager=manager, remote=manager != self.id,
                    notices=len(notices),
                    invalidated=self.stats.invalidations - inval_before,
                    piggybacked=self.stats.diffs_piggybacked - piggy_before,
                )

    def _apply_piggyback(self, page: int, chain):
        """Apply a grant-piggybacked diff chain to a valid READ_ONLY copy
        (log order = lock order, so the final bytes match the home)."""
        prof = self.sim.prof
        if prof is not None:
            prof.push(PH_FAULT_WORK)
        try:
            view = self._page_view(page)
            for diff in chain:
                yield from self.node.busy_cpu(self.cluster_config.diff_apply_overhead)
                apply_diff(view, diff)
        finally:
            if prof is not None:
                prof.pop()
        self.stats.diffs_piggybacked += len(chain)
        tr = self.sim.trace
        if tr is not None:
            tr.instant("dsm.page", "piggy-apply", node=self.id,
                       page=page, diffs=len(chain))

    def lock_release(self, lock_id: int):
        """Flush modifications, hand write notices to the manager.

        With ``lock_piggyback`` the small diffs of this critical section
        ride along: the manager stores them next to the notice log and
        ships complete per-page chains with later grants, so predicted
        acquirers patch their copies instead of faulting."""
        manager = self.lock_manager_of(lock_id)
        tr = self.sim.trace
        t0 = self.sim.now
        mx = self.sim.metrics
        if mx is not None:
            grant_t = self._lock_grant_t.pop(lock_id, None)
            if grant_t is not None:
                mx.on_lock_hold(lock_id, t0 - grant_t)
        san = self.sim.san
        if san is not None:
            san.on_lock_release(("dsm-lock", lock_id))
        piggy: Optional[Dict[int, list]] = {} if self._accel_piggyback else None
        notices = yield from self._flush_dirty(collect=piggy)
        self._close_interval()
        self._notices_since_barrier.extend(notices)
        nb = 16 + self._notice_nbytes * len(notices)
        if piggy is None:
            payload = (lock_id, notices)
        else:
            payload = (lock_id, notices, piggy)
            nb += sum(diff_nbytes(d) for d in piggy.values()) + 8 * len(piggy)
        prof = self.sim.prof
        if prof is None:
            yield from self.net.send(
                self.id, manager, nb, payload, tag=("lk", "rel", self._next_req())
            )
        else:
            # the notice hand-off is part of the release (flush) cost
            prof.push(PH_FLUSH)
            try:
                yield from self.net.send(
                    self.id, manager, nb, payload, tag=("lk", "rel", self._next_req())
                )
            finally:
                prof.pop()
        if tr is not None:
            tr.span("dsm.lock", "release", t0, node=self.id, lock=lock_id,
                    manager=manager, notices=len(notices))

    def handle_lock(self, msg):
        """Comm-thread handler for the 'lk' channel (manager side)."""
        _chan, kind, req_id = msg.tag
        if kind == "acq":
            lock_id, requester = msg.payload
            if self.config.lock_shard == "locality":
                owner = self._lock_assign.get(lock_id)
                if owner is None:
                    if self.lock_directory_of(lock_id) == self.id:
                        # directory, first request: the first toucher
                        # becomes the lock's manager
                        owner = self._lock_assign[lock_id] = requester
                        tr = self.sim.trace
                        if tr is not None:
                            tr.instant("dsm.lock", "shard-assign",
                                       node=self.id, lock=lock_id,
                                       manager=requester)
                    else:
                        # the directory forwarded this frame to us: we are
                        # the assigned manager
                        owner = self._lock_assign[lock_id] = self.id
                if owner != self.id:
                    # request landed on the directory for a lock managed
                    # elsewhere (a client that hasn't learnt the manager
                    # yet): forward it, same tag so the grant still
                    # resolves the requester's original req_id
                    tr = self.sim.trace
                    if tr is not None:
                        tr.instant("dsm.lock", "forward", node=self.id,
                                   lock=lock_id, requester=requester,
                                   manager=owner)
                    yield from self.net.send(
                        self.id, owner, 12, msg.payload,
                        tag=("lk", "acq", req_id),
                    )
                    return
            log = self._lock_log.setdefault(lock_id, NoticeLog())
            holder = self._lock_holder.get(lock_id)
            if holder is None:
                self._lock_holder[lock_id] = requester
                yield from self._grant(lock_id, requester, req_id, log)
            else:
                self._lock_queue.setdefault(lock_id, []).append((requester, req_id))
            return
        if kind == "rel":
            if len(msg.payload) == 3:  # piggyback mode: diffs ride along
                lock_id, notices, diffs = msg.payload
            else:
                (lock_id, notices), diffs = msg.payload, None
            log = self._lock_log.setdefault(lock_id, NoticeLog())
            log.append(notices, diffs)
            queue = self._lock_queue.get(lock_id, [])
            if queue:
                requester, rid = queue.pop(0)
                self._lock_holder[lock_id] = requester
                yield from self._grant(lock_id, requester, rid, log)
            else:
                self._lock_holder[lock_id] = None
            return
        if kind == "gr":
            # grant arriving back at the requester
            self._resolve(req_id, msg.payload)
            return
        raise RuntimeError(f"unknown lock message kind {kind!r}")  # pragma: no cover

    def _grant(self, lock_id: int, requester: int, req_id: int, log: NoticeLog):
        self.stats.lock_grants += 1
        if requester != self.id:
            self.stats.lock_remote_grants += 1
        prof = self.sim.prof
        if prof is not None:
            # manager-side grant: the hot-lock table counts token hops
            prof.on_lock_grant(lock_id, requester)
        start = log.cursor_of(requester)
        pending = log.unseen_by(requester)
        # A node's own notices carry no information for it (the writer never
        # invalidates its own copy) — filter them here so the wire bytes and
        # the grant's notices= accounting reflect what the acquirer can act
        # on, instead of shipping them and discarding at apply time.  A
        # first-time consumer otherwise pays for the lock's entire history
        # of its own writes.
        notices = [wn for wn in pending if wn.writer != requester]
        piggy = None
        if self._accel_piggyback:
            piggy = self._build_piggyback(log, requester, start, pending)
        tr = self.sim.trace
        if tr is not None:
            if piggy is None:
                tr.instant("dsm.lock", "grant", node=self.id, lock=lock_id,
                           requester=requester, notices=len(notices))
            else:
                tr.instant("dsm.lock", "grant", node=self.id, lock=lock_id,
                           requester=requester, notices=len(notices),
                           piggy=len(piggy))
        san = self.sim.san
        if san is not None:
            san.on_lock_grant(self.id, lock_id, requester,
                              start, log.cursor_of(requester), len(log))
            if piggy:
                san.on_lock_piggyback(
                    self.id, lock_id, requester,
                    set(piggy), {wn.page for wn in notices},
                )
        nb = 16 + self._notice_nbytes * len(notices)
        if piggy is None:
            payload = notices
        else:
            payload = (notices, piggy)
            nb += sum(
                diff_nbytes(d) for chain in piggy.values() for d in chain
            ) + 8 * len(piggy)
        if self.config.lock_shard == "locality":
            # grants carry the manager id so clients learn (and cache)
            # where the lock lives after the first directory hop
            payload = (self.id, payload)
            nb += 4
        yield from self.net.send(self.id, requester, nb, payload, tag=("lk", "gr", req_id))

    def _build_piggyback(self, log: NoticeLog, requester: int, start: int, pending):
        """Per-page diff chains to attach to a grant.

        Prediction is last-acquirer history: pages *requester* itself
        released notices for under this lock (migratory data — the same
        pages get rewritten every critical section).  A page ships only if
        **every** unseen notice by another writer has its diff stored (an
        incomplete chain cannot reconstruct the home copy) — chains are in
        log order, so replaying one on a valid READ_ONLY copy lands on the
        home's exact bytes even when a prefix was already incorporated.
        """
        predicted = log.history_of(requester)
        if not predicted:
            return {}
        broken: Set[int] = set()
        chains: Dict[int, List[list]] = {}
        for i, wn in enumerate(pending):
            if wn.writer == requester or wn.page not in predicted:
                continue
            diff = log.diff_at(start + i)
            if diff is None:
                broken.add(wn.page)
            else:
                chains.setdefault(wn.page, []).append(diff)
        return {p: c for p, c in chains.items() if p not in broken}
