"""Twin/diff machinery of lazy release consistency.

A non-home writer *twins* a page at its first write fault (pristine copy).
At a release point the runtime *diffs* the current page against the twin —
a run-length list of changed byte ranges — and ships only the diff to the
home, which merges it.  Homes never need twins: all diffs land in their
copy (§5.2.2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: a diff is a list of (offset, bytes) runs
Diff = List[Tuple[int, bytes]]

#: wire overhead per run (offset + length fields)
RUN_HEADER_BYTES = 8


def make_twin(page: np.ndarray) -> np.ndarray:
    """Pristine copy of a page taken at the first write fault."""
    return page.copy()


def compute_diff(twin: np.ndarray, current: np.ndarray) -> Diff:
    """Run-length encode the byte positions where *current* != *twin*."""
    if twin.shape != current.shape:
        raise ValueError("twin/page shape mismatch")
    changed = twin != current
    if not changed.any():
        return []
    idx = np.flatnonzero(changed)
    # split into maximal consecutive runs
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(idx) - 1]))
    diff: Diff = []
    for s, e in zip(starts, ends):
        lo = int(idx[s])
        hi = int(idx[e]) + 1
        diff.append((lo, current[lo:hi].tobytes()))
    return diff


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Merge a diff into *page* in place."""
    n = page.shape[0]
    for off, data in diff:
        if off < 0 or off + len(data) > n:
            raise ValueError(f"diff run [{off}, {off + len(data)}) outside page")
        page[off : off + len(data)] = np.frombuffer(data, dtype=np.uint8)


def diff_nbytes(diff: Diff) -> int:
    """Bytes a diff occupies on the wire."""
    return sum(RUN_HEADER_BYTES + len(data) for _off, data in diff)
