"""Twin/diff machinery of lazy release consistency.

A non-home writer *twins* a page at its first write fault (pristine copy).
At a release point the runtime *diffs* the current page against the twin —
a run-length list of changed byte ranges — and ships only the diff to the
home, which merges it.  Homes never need twins: all diffs land in their
copy (§5.2.2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: a diff is a list of (offset, bytes) runs
Diff = List[Tuple[int, bytes]]

#: wire overhead per run (offset + length fields)
RUN_HEADER_BYTES = 8


def make_twin(page: np.ndarray) -> np.ndarray:
    """Pristine copy of a page taken at the first write fault."""
    return page.copy()


def compute_diff(twin: np.ndarray, current: np.ndarray, coalesce_gap: int = 0) -> Diff:
    """Run-length encode the byte positions where *current* != *twin*.

    *coalesce_gap* merges runs separated by at most that many unchanged
    bytes into one run: fewer run headers on the wire in exchange for
    resending the gap bytes.  The gap bytes overwrite the home copy, so a
    non-zero gap is only safe for pages with a single writer per interval
    (see :attr:`DsmConfig.diff_gap`); the default 0 produces exact diffs.

    Run payloads are sliced from one ``tobytes()`` snapshot of the page
    and run bounds come out of numpy in bulk — no per-run array slicing.
    """
    if twin.shape != current.shape:
        raise ValueError("twin/page shape mismatch")
    idx = np.flatnonzero(twin != current)
    if idx.size == 0:
        return []
    # split into maximal runs; consecutive changed bytes have diff == 1,
    # so a break needs a gap strictly wider than the coalescing tolerance
    breaks = np.flatnonzero(np.diff(idx) > 1 + coalesce_gap)
    los = idx[np.concatenate(([0], breaks + 1))].tolist()
    his = (idx[np.concatenate((breaks, [idx.size - 1]))] + 1).tolist()
    buf = current.tobytes()
    return [(lo, buf[lo:hi]) for lo, hi in zip(los, his)]


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Merge a diff into *page* in place.

    Runs splice through one memoryview of the page: a memoryview slice
    assignment from bytes is a straight memcpy with no intermediate array,
    ~2× faster per run than ``np.frombuffer`` splicing and with none of
    the fixed cost a bulk numpy scatter pays on small diffs.
    """
    if not diff:
        return
    n = page.shape[0]
    mv = page.data
    for off, data in diff:
        end = off + len(data)
        if off < 0 or end > n:
            raise ValueError(f"diff run [{off}, {end}) outside page")
        mv[off:end] = data


def diff_nbytes(diff: Diff) -> int:
    """Bytes a diff occupies on the wire."""
    total = RUN_HEADER_BYTES * len(diff)
    for _off, data in diff:
        total += len(data)
    return total
